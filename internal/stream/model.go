package stream

import (
	"sync/atomic"
	"time"

	"tkdc/internal/core"
)

// generation pairs a classifier with its generation number and birth
// time. Swaps replace the whole struct behind one atomic pointer, so a
// reader can never observe a classifier paired with another generation's
// metadata (no torn reads).
type generation struct {
	clf  *core.Classifier
	gen  uint64
	born time.Time
}

// Model is a zero-downtime handle over a live classifier. Queries read
// the current generation with a single atomic pointer load and never
// block on a swap; Publish installs a new classifier with the next
// generation number. Generation numbers increase monotonically from 1.
//
// The handle adds one atomic load per query over calling the classifier
// directly — within measurement noise (see BenchmarkScoreModel).
type Model struct {
	cur atomic.Pointer[generation]
}

// NewModel wraps a trained classifier as generation 1. clf must be
// non-nil: a Model always has a servable classifier, which is what lets
// the query methods skip nil checks on the hot path.
func NewModel(clf *core.Classifier) *Model {
	if clf == nil {
		panic("stream: NewModel with nil classifier")
	}
	m := &Model{}
	m.cur.Store(&generation{clf: clf, gen: 1, born: time.Now()})
	return m
}

// Current returns the live classifier.
func (m *Model) Current() *core.Classifier { return m.cur.Load().clf }

// View returns the live classifier together with its generation number
// and birth time, coherently (all three from the same swap).
func (m *Model) View() (*core.Classifier, uint64, time.Time) {
	g := m.cur.Load()
	return g.clf, g.gen, g.born
}

// Generation returns the live model's generation number.
func (m *Model) Generation() uint64 { return m.cur.Load().gen }

// Age returns how long the live model has been serving.
func (m *Model) Age() time.Duration { return time.Since(m.cur.Load().born) }

// Publish atomically installs clf as the next generation and returns its
// generation number. Concurrent publishers are safe (compare-and-swap
// loop), though the Service serializes retrains anyway.
func (m *Model) Publish(clf *core.Classifier) uint64 {
	if clf == nil {
		panic("stream: Publish with nil classifier")
	}
	for {
		old := m.cur.Load()
		next := &generation{clf: clf, gen: old.gen + 1, born: time.Now()}
		if m.cur.CompareAndSwap(old, next) {
			return next.gen
		}
	}
}

// Classify labels one query point against the live generation.
func (m *Model) Classify(x []float64) (core.Label, error) {
	return m.cur.Load().clf.Classify(x)
}

// Score labels one query point and returns the density bounds behind the
// decision, against the live generation.
func (m *Model) Score(x []float64) (core.Result, error) {
	return m.cur.Load().clf.Score(x)
}

// ClassifyAll labels a batch against one coherent generation: the whole
// batch is scored by the classifier that was live when the call started,
// even if a swap lands mid-batch.
func (m *Model) ClassifyAll(queries [][]float64) ([]core.Label, error) {
	return m.cur.Load().clf.ClassifyAll(queries)
}

// DensityBounds estimates the density at x to relative precision rel
// against the live generation.
func (m *Model) DensityBounds(x []float64, rel float64) (fl, fu float64, err error) {
	return m.cur.Load().clf.DensityBounds(x, rel)
}

// ClassifyFlat labels a flat row-major batch against one pinned
// generation, auto-selecting dual-tree or per-query execution by batch
// size (core.ClassifyFlatAuto). The returned generation number
// identifies the classifier that answered every row — a swap landing
// mid-batch cannot split the batch across generations, because the
// classifier pointer is loaded exactly once.
func (m *Model) ClassifyFlat(flat []float64, n int) ([]core.Label, uint64, error) {
	g := m.cur.Load()
	out, err := g.clf.ClassifyFlatAuto(flat, n)
	return out, g.gen, err
}

// ScoreFlat scores a flat row-major batch against one pinned
// generation, returning full per-query results and the generation
// number that produced them.
func (m *Model) ScoreFlat(flat []float64, n int) ([]core.Result, uint64, error) {
	g := m.cur.Load()
	out, err := g.clf.ScoreFlat(flat, n)
	return out, g.gen, err
}
