// Package dataset provides seeded synthetic stand-ins for the seven
// evaluation datasets of Table 3, plus the small 2-d datasets behind
// Figures 1 and 2, CSV import/export, and dimensionality helpers.
//
// The real datasets (UCI shuttle, NREL tmy3, UCI home gas sensors, UCI
// HEPMASS, Caltech-256 SIFT features, MNIST) are not available offline.
// Each generator reproduces the statistical shape that matters to tKDC's
// behaviour — modality, anisotropy, low-density filaments, tail weight,
// dimensionality — because the pruning rules' effectiveness depends only
// on the geometry of the density field (Appendix A, Lemma 1), not on
// column semantics. All generators are deterministic in their seed.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"tkdc/internal/matrix"
)

// Info describes one generator for registries and CLI listings.
type Info struct {
	Name string
	// Dim is the native dimensionality (0 means caller-chosen, as for
	// gauss).
	Dim int
	// DefaultN is the paper's dataset size (scaled runs use less).
	DefaultN    int
	Description string
}

// Catalog lists every generator, mirroring Table 3.
func Catalog() []Info {
	return []Info{
		{"gauss", 0, 100_000_000, "multivariate standard normal (caller-chosen d)"},
		{"shuttle", 9, 43_500, "anisotropic cluster mixture with low-density filaments (space-shuttle-sensor-like)"},
		{"tmy3", 8, 1_820_000, "seasonal/diurnal load profiles across building types (tmy3-like)"},
		{"home", 10, 929_000, "drifting correlated gas-sensor regimes (home-sensor-like)"},
		{"hep", 27, 10_500_000, "signal/background mixture with heavy tails (HEPMASS-like)"},
		{"sift", 128, 11_200_000, "non-negative clustered image features (SIFT-like)"},
		{"mnist", 784, 70_000, "prototype digit images plus pixel noise (MNIST-like)"},
	}
}

// Generate dispatches by dataset name. d is honoured only by "gauss"
// (other datasets have a native dimensionality; use TakeColumns or
// PCAReduce to change it afterwards, as the paper does).
func Generate(name string, n, d int, seed int64) ([][]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataset: n = %d must be positive", n)
	}
	switch name {
	case "gauss":
		if d <= 0 {
			return nil, fmt.Errorf("dataset: gauss requires a positive dimension, got %d", d)
		}
		return Gauss(n, d, seed), nil
	case "shuttle":
		return Shuttle(n, seed), nil
	case "tmy3":
		return TMY3(n, seed), nil
	case "home":
		return Home(n, seed), nil
	case "hep":
		return HEP(n, seed), nil
	case "sift":
		return SIFT(n, seed), nil
	case "mnist":
		return MNIST(n, seed), nil
	default:
		return nil, fmt.Errorf("dataset: unknown dataset %q", name)
	}
}

// Gauss draws n points from a d-dimensional standard normal — the paper's
// synthetic gauss dataset, reproduced exactly.
func Gauss(n, d int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		rows[i] = row
	}
	return rows
}

// Shuttle emulates the 9-dimensional space-shuttle sensor dataset: several
// anisotropic operating-mode clusters of very different sizes, joined by
// sparse filaments (the rare-transition readings visible in Figure 1's
// low-density bridges).
func Shuttle(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	const d = 9
	type cluster struct {
		weight float64
		center [d]float64
		scale  [d]float64
	}
	clusters := []cluster{
		{0.60, [d]float64{0, 40, 0, 0, 20, 0, 30, 10, 0}, [d]float64{2, 5, 1, 8, 3, 2, 4, 2, 1}},
		{0.20, [d]float64{40, 60, 5, -30, 45, 3, 10, 40, 5}, [d]float64{4, 3, 2, 5, 6, 1, 3, 5, 2}},
		{0.12, [d]float64{-35, 20, -4, 25, 70, -2, 50, -20, 8}, [d]float64{3, 4, 1, 6, 2, 2, 5, 3, 2}},
		{0.05, [d]float64{10, 80, 8, 60, 10, 6, -40, 60, -6}, [d]float64{2, 2, 1, 3, 2, 1, 2, 2, 1}},
	}
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, d)
		u := rng.Float64()
		acc := 0.0
		var picked *cluster
		for ci := range clusters {
			acc += clusters[ci].weight
			if u < acc {
				picked = &clusters[ci]
				break
			}
		}
		if picked == nil {
			// Remaining 3%: filament points interpolated between two
			// cluster centers with tight orthogonal noise.
			a := &clusters[rng.Intn(len(clusters))]
			b := &clusters[rng.Intn(len(clusters))]
			t := rng.Float64()
			for j := 0; j < d; j++ {
				row[j] = a.center[j] + t*(b.center[j]-a.center[j]) + rng.NormFloat64()*0.8
			}
		} else {
			for j := 0; j < d; j++ {
				row[j] = picked.center[j] + rng.NormFloat64()*picked.scale[j]
			}
		}
		rows[i] = row
	}
	return rows
}

// TMY3 emulates the 8-dimensional hourly building-load profiles: each row
// is a building type's smooth diurnal/seasonal harmonic response sampled
// at a random hour, giving strongly correlated banana-shaped clusters.
func TMY3(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	const d = 8
	const types = 6
	// Per-type base level, amplitude, and phase for each feature.
	base := make([][d]float64, types)
	amp := make([][d]float64, types)
	phase := make([][d]float64, types)
	for t := 0; t < types; t++ {
		for j := 0; j < d; j++ {
			base[t][j] = 20 + 60*rng.Float64()
			amp[t][j] = 5 + 25*rng.Float64()
			phase[t][j] = 2 * math.Pi * rng.Float64()
		}
	}
	rows := make([][]float64, n)
	for i := range rows {
		t := rng.Intn(types)
		row := make([]float64, d)
		if rng.Float64() < 0.25 {
			// Off-hours base load: real metered profiles spend a quarter
			// of their hours at a nearly constant baseline, producing the
			// sharp density spikes that make the paper's grid cache
			// effective on this dataset.
			for j := 0; j < d; j++ {
				row[j] = base[t][j] - 0.8*amp[t][j] + rng.NormFloat64()*0.5
			}
			rows[i] = row
			continue
		}
		hour := rng.Float64() * 24
		season := rng.Float64() * 2 * math.Pi
		for j := 0; j < d; j++ {
			diurnal := amp[t][j] * math.Sin(2*math.Pi*hour/24+phase[t][j])
			seasonal := 0.4 * amp[t][j] * math.Sin(season+phase[t][j]/2)
			row[j] = base[t][j] + diurnal + seasonal + rng.NormFloat64()*1.5
		}
		rows[i] = row
	}
	return rows
}

// Home emulates the 10-dimensional home gas-sensor dataset: a handful of
// environmental regimes, each with its own correlated sensor response and
// slow drift.
func Home(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	const d = 10
	const regimes = 4
	means := make([][d]float64, regimes)
	load := make([][d]float64, regimes) // shared-factor loadings per regime
	for r := 0; r < regimes; r++ {
		for j := 0; j < d; j++ {
			means[r][j] = rng.NormFloat64() * 8
			load[r][j] = 0.5 + rng.Float64()*2
		}
	}
	rows := make([][]float64, n)
	drift := 0.0
	for i := range rows {
		drift += rng.NormFloat64() * 0.01
		r := rng.Intn(regimes)
		common := rng.NormFloat64() // shared factor ⇒ correlated sensors
		row := make([]float64, d)
		for j := 0; j < d; j++ {
			row[j] = means[r][j] + load[r][j]*common + rng.NormFloat64()*0.7 + drift
		}
		rows[i] = row
	}
	return rows
}

// HEP emulates the 27-dimensional particle-collision dataset. The real
// HEPMASS features are derived kinematic quantities of a handful of
// final-state objects, so they concentrate near a low-dimensional
// manifold; we reproduce that with a 5-factor latent model (heavy-tailed
// latents, random loadings, small isotropic noise) plus a shifted signal
// component. Without this structure, 27 near-independent coordinates
// would leave every point isolated and its KDE density degenerate.
func HEP(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	const d = 27
	const latents = 5
	loadings := make([][latents]float64, d)
	for j := range loadings {
		for k := 0; k < latents; k++ {
			loadings[j][k] = rng.NormFloat64()
		}
	}
	signalShift := make([]float64, latents)
	for k := range signalShift {
		signalShift[k] = rng.NormFloat64() * 1.5
	}
	rows := make([][]float64, n)
	var z [latents]float64
	for i := range rows {
		// Student-t tails on the latents: normal / sqrt(chi²_5 / 5).
		chi := 0.0
		for k := 0; k < 5; k++ {
			v := rng.NormFloat64()
			chi += v * v
		}
		tail := math.Sqrt(5 / chi)
		signal := rng.Float64() < 0.3
		for k := 0; k < latents; k++ {
			z[k] = rng.NormFloat64() * tail
			if signal {
				z[k] += signalShift[k]
			}
		}
		row := make([]float64, d)
		for j := 0; j < d; j++ {
			v := rng.NormFloat64() * 0.2 // detector noise
			for k := 0; k < latents; k++ {
				v += loadings[j][k] * z[k]
			}
			row[j] = v
		}
		rows[i] = row
	}
	return rows
}

// SIFT emulates 128-dimensional image gradient features: non-negative,
// clustered around visual-word centroids, with exponential magnitude
// falloff.
func SIFT(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	const d = 128
	const words = 32
	centers := make([][d]float64, words)
	for w := 0; w < words; w++ {
		for j := 0; j < d; j++ {
			centers[w][j] = math.Abs(rng.NormFloat64()) * 40 * rng.Float64()
		}
	}
	rows := make([][]float64, n)
	for i := range rows {
		w := rng.Intn(words)
		row := make([]float64, d)
		for j := 0; j < d; j++ {
			v := centers[w][j] + rng.NormFloat64()*6
			if v < 0 {
				v = 0
			}
			row[j] = v
		}
		rows[i] = row
	}
	return rows
}

// MNIST emulates 28×28 grayscale digit images: ten smooth prototype
// "digits" (sums of Gaussian strokes on the pixel grid), each sampled with
// intensity scaling and pixel noise, clipped to [0, 255]. As in the
// paper, use PCAReduce to bring it to 64 or 256 dimensions.
func MNIST(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	const side = 28
	const d = side * side
	const digits = 10
	protos := make([][]float64, digits)
	for p := range protos {
		img := make([]float64, d)
		strokes := 3 + rng.Intn(4)
		for s := 0; s < strokes; s++ {
			cx := 4 + rng.Float64()*20
			cy := 4 + rng.Float64()*20
			sx := 1 + rng.Float64()*3
			sy := 1 + rng.Float64()*3
			for y := 0; y < side; y++ {
				for x := 0; x < side; x++ {
					dx := (float64(x) - cx) / sx
					dy := (float64(y) - cy) / sy
					img[y*side+x] += 200 * math.Exp(-0.5*(dx*dx+dy*dy))
				}
			}
		}
		protos[p] = img
	}
	rows := make([][]float64, n)
	for i := range rows {
		p := protos[rng.Intn(digits)]
		scale := 0.7 + rng.Float64()*0.6
		row := make([]float64, d)
		for j := 0; j < d; j++ {
			v := p[j]*scale + rng.NormFloat64()*8
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			row[j] = v
		}
		rows[i] = row
	}
	return rows
}

// Iris2D emulates the two sepal measurements of the Iris dataset behind
// Figure 2a: two dominant modes (setosa vs. the overlapping pair) with a
// sparse valley between them.
func Iris2D(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		var w, l float64
		switch r := rng.Float64(); {
		case r < 0.34: // setosa-like
			w = 3.4 + rng.NormFloat64()*0.35
			l = 5.0 + rng.NormFloat64()*0.33
		case r < 0.67: // versicolor-like
			w = 2.8 + rng.NormFloat64()*0.30
			l = 5.9 + rng.NormFloat64()*0.45
		default: // virginica-like
			w = 3.0 + rng.NormFloat64()*0.32
			l = 6.6 + rng.NormFloat64()*0.60
		}
		rows[i] = []float64{w, l}
	}
	return rows
}

// Galaxy2D emulates a sky-survey cross-section like Figure 2b: dense
// filamentary structure (a web of line segments) over a sparse uniform
// field, the geometry behind void-finding analyses.
func Galaxy2D(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	type segment struct{ x0, y0, x1, y1 float64 }
	segs := make([]segment, 12)
	for s := range segs {
		segs[s] = segment{
			rng.Float64() * 100, rng.Float64() * 100,
			rng.Float64() * 100, rng.Float64() * 100,
		}
	}
	rows := make([][]float64, n)
	for i := range rows {
		if rng.Float64() < 0.85 {
			sg := segs[rng.Intn(len(segs))]
			t := rng.Float64()
			rows[i] = []float64{
				sg.x0 + t*(sg.x1-sg.x0) + rng.NormFloat64()*1.2,
				sg.y0 + t*(sg.y1-sg.y0) + rng.NormFloat64()*1.2,
			}
		} else {
			rows[i] = []float64{rng.Float64() * 100, rng.Float64() * 100}
		}
	}
	return rows
}

// TakeColumns keeps the first d columns of every row (how the paper forms
// the d-sweeps of Figures 11 and the sift d=64 panel).
func TakeColumns(rows [][]float64, d int) ([][]float64, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: TakeColumns of empty dataset")
	}
	if d < 1 || d > len(rows[0]) {
		return nil, fmt.Errorf("dataset: TakeColumns d = %d out of range [1, %d]", d, len(rows[0]))
	}
	out := make([][]float64, len(rows))
	for i, row := range rows {
		out[i] = row[:d:d]
	}
	return out, nil
}

// PCAReduce projects rows onto their top-k principal components (how the
// paper reduces mnist to 64/256 dimensions). For efficiency the PCA is
// fitted on a subsample of at most fitSample rows (all rows if fewer).
func PCAReduce(rows [][]float64, k, fitSample int, seed int64) ([][]float64, error) {
	fit := rows
	if fitSample > 0 && len(rows) > fitSample {
		fit = sampleWithout(rows, fitSample, rand.New(rand.NewSource(seed)))
	}
	p, err := matrix.FitPCA(fit, k)
	if err != nil {
		return nil, err
	}
	return p.TransformAll(rows), nil
}

func sampleWithout(rows [][]float64, k int, rng *rand.Rand) [][]float64 {
	idx := rng.Perm(len(rows))[:k]
	sort.Ints(idx)
	out := make([][]float64, k)
	for i, j := range idx {
		out[i] = rows[j]
	}
	return out
}
