package core

import (
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentQueries hammers one classifier from many goroutines; run
// with -race to verify the immutable-after-train contract.
func TestConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	data := gauss2D(rng, 1200)
	c, err := Train(data, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				q := []float64{r.NormFloat64() * 3, r.NormFloat64() * 3}
				if _, err := c.Score(q); err != nil {
					errs <- err
					return
				}
				if i%50 == 0 {
					if _, _, err := c.DensityBounds(q, 0.05); err != nil {
						errs <- err
						return
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := c.Stats().Queries; got != goroutines*(200+4) {
		t.Fatalf("Queries = %d, want %d", got, goroutines*(200+4))
	}
}

// TestParallelTrainWhileServingHammer retrains with Workers=8 while an
// existing classifier serves queries — the streaming retrain shape. Run
// with -race: it exercises the level-parallel tree build, concurrent
// bootstrap scoring, parallel grid fill, and fanned-out refinement pass
// against live traffic, and checks every rebuilt model is bit-identical
// to the serving one.
func TestParallelTrainWhileServingHammer(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	data := gauss2D(rng, 1500)
	cfg := testConfig()
	cfg.Workers = 8
	serving, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	errs := make(chan error, 4)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := []float64{r.NormFloat64() * 3, r.NormFloat64() * 3}
				if _, err := serving.Score(q); err != nil {
					errs <- err
					return
				}
			}
		}(int64(g))
	}

	retrains := 3
	if testing.Short() {
		retrains = 1
	}
	for i := 0; i < retrains; i++ {
		clf, err := Train(data, cfg)
		if err != nil {
			close(stop)
			t.Fatal(err)
		}
		if clf.Threshold() != serving.Threshold() {
			close(stop)
			t.Fatalf("retrain %d: threshold %.17g, serving model %.17g", i, clf.Threshold(), serving.Threshold())
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
