package bench

import (
	"fmt"

	"tkdc/internal/dataset"
)

// Figure13 sweeps the rkde radius cutoff on 4-d tmy3-like data. Smaller
// radii trade accuracy for speed; even generous speedups leave rkde far
// behind tkdc (the paper's conclusion).
func Figure13(opts Options) ([]Table, error) {
	opts = opts.normalized()
	n := opts.scaled(1_820_000, 15_000)
	data, err := dataset.TakeColumns(dataset.TMY3(n, opts.Seed), 4)
	if err != nil {
		return nil, err
	}

	cfg := opts.config()
	tk, err := MeasureTKDC(data, cfg, opts.MaxQueries)
	if err != nil {
		return nil, err
	}

	t := Table{
		Title:   "Figure 13: rkde throughput vs radius cutoff (tmy3-like, d=4)",
		Columns: []string{"radius (bandwidths)", "rkde q/s", "rkde kernels/q"},
		Notes: []string{
			fmt.Sprintf("tkdc reference: %s q/s at %s kernels/q", fmtRate(tk.QueryThroughput()), fmtCount(tk.KernelsPerQuery)),
			"paper shape: rkde improves as the radius shrinks but stays orders of magnitude behind tkdc; small radii lose accuracy",
		},
	}
	for _, radius := range []float64{0.5, 1, 1.5, 2, 3, 4, 5} {
		q := opts.MaxQueries
		if q > 500 {
			q = 500
		}
		m, err := MeasureBaseline(RKDE, data, BaselineParams{Radius: radius}, q)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.1f", radius), fmtRate(m.QueryThroughput()), fmtCount(m.KernelsPerQuery))
	}
	t.Fprint(opts.Out)
	return []Table{t}, nil
}

// Figure15 sweeps the quantile threshold p. Throughput peaks at extreme
// quantiles (few near-threshold points) and dips in the middle, per the
// runtime's dependence on q'(t) (Appendix A).
func Figure15(opts Options) ([]Table, error) {
	opts = opts.normalized()
	n := opts.scaled(1_820_000, 15_000)
	data, err := dataset.TakeColumns(dataset.TMY3(n, opts.Seed), 4)
	if err != nil {
		return nil, err
	}

	t := Table{
		Title:   "Figure 15: tkdc throughput vs quantile threshold p (tmy3-like, d=4, training amortized)",
		Columns: []string{"p", "tkdc q/s", "tkdc kernels/q"},
	}
	for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		cfg := opts.config()
		cfg.P = p
		tk, err := MeasureTKDC(data, cfg, opts.MaxQueries)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.2f", p), fmtRate(tk.EffectiveThroughput()), fmtCount(tk.KernelsPerQuery))
	}

	// Flat references, measured once: simple and nocut don't depend on p.
	for _, kind := range []BaselineKind{Simple, NoCut} {
		q := opts.MaxQueries
		if kind == Simple && q > 300 {
			q = 300
		}
		m, err := MeasureBaseline(kind, data, BaselineParams{}, q)
		if err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes, fmt.Sprintf("%s reference (p-independent): %s q/s", kind, fmtRate(m.EffectiveThroughput())))
	}
	t.Notes = append(t.Notes, "paper shape: fastest at extreme p (few near-threshold points), slowest mid-range; always above sklearn/simple")
	t.Fprint(opts.Out)
	return []Table{t}, nil
}
