package fleet

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tkdc/internal/core"
	"tkdc/internal/stream"
	"tkdc/internal/telemetry"
)

// FollowerConfig tunes a Follower. Only URL is required.
type FollowerConfig struct {
	// URL is the leader's base URL (e.g. http://leader:8080); the
	// follower polls URL/snapshot.
	URL string
	// PollEvery is the steady-state poll interval (default 2s). Each wait
	// is jittered ±20% so a fleet restarted together does not thundering-
	// herd the leader forever.
	PollEvery time.Duration
	// MaxBackoff caps the exponential backoff after consecutive failures
	// (default 30s, never below PollEvery).
	MaxBackoff time.Duration
	// StaleAfter, when positive, marks the follower stale once that long
	// has passed without a successful leader contact (fetch or 304). The
	// server surfaces staleness as a 503 on /healthz so load balancers
	// drain the replica; the follower itself keeps serving the last good
	// model either way.
	StaleAfter time.Duration
	// MaxSnapshotBytes rejects snapshot bodies larger than this
	// (default 1 GiB) before buffering them.
	MaxSnapshotBytes int64
	// Workers is applied to each loaded classifier (SetWorkers), so a
	// replica serves with its own host's budget rather than the
	// trainer's. 0 leaves the snapshot's value.
	Workers int
	// Recorder is attached to each loaded classifier so replica telemetry
	// (latency histograms, work counters) keeps flowing across swaps.
	Recorder telemetry.Recorder
	// Client issues the polls (default: dedicated client, 30s timeout).
	Client *http.Client
	// Logger receives sync/fault lines; nil disables logging.
	Logger *slog.Logger
	// Seed drives the poll jitter; 0 derives one from the clock.
	Seed int64
}

func (c FollowerConfig) normalized() (FollowerConfig, error) {
	if c.URL == "" {
		return c, fmt.Errorf("fleet: follower requires a leader URL")
	}
	if !strings.Contains(c.URL, "://") {
		return c, fmt.Errorf("fleet: leader URL %q has no scheme (want e.g. http://host:port)", c.URL)
	}
	if c.PollEvery <= 0 {
		c.PollEvery = 2 * time.Second
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 30 * time.Second
	}
	if c.MaxBackoff < c.PollEvery {
		c.MaxBackoff = c.PollEvery
	}
	if c.MaxSnapshotBytes <= 0 {
		c.MaxSnapshotBytes = 1 << 30
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if c.Seed == 0 {
		c.Seed = time.Now().UnixNano()
	}
	return c, nil
}

// FollowerStats is a coherent view of a follower's replication state.
type FollowerStats struct {
	// LeaderURL is the followed base URL; LeaderEpoch the last seen
	// leader epoch ID ("" before first contact).
	LeaderURL   string
	LeaderEpoch string

	// Synced is true once a snapshot has ever been applied; the Model
	// handle exists from that point on.
	Synced bool
	// AppliedGeneration is the leader generation currently served;
	// LeaderGeneration the newest generation the leader has advertised
	// (even if applying it failed). GenerationLag is their difference.
	AppliedGeneration uint64
	LeaderGeneration  uint64
	GenerationLag     uint64
	// LocalGeneration counts this replica's own Model swaps (1 = first
	// sync); it differs from AppliedGeneration across leader restarts.
	LocalGeneration uint64

	// LastSync is the time of the last successful leader contact (a 304
	// counts: it confirms the replica is current); SinceSync its age.
	// Stale reports SinceSync > StaleAfter when a threshold is set.
	LastSync  time.Time
	SinceSync time.Duration
	Stale     bool

	// Polls counts poll attempts; NotModified the 304 answers; Applied
	// the snapshots loaded and published; Failures transport/HTTP/load
	// errors; Rejected snapshots refused by validation (checksum
	// mismatch, generation regression).
	Polls, NotModified, Applied int64
	Failures, Rejected          int64

	// LastError is the most recent poll failure ("" after a clean poll).
	LastError string
}

// Follower replicates a leader's model into a local stream.Model handle.
// Construct with NewFollower, call Sync for the blocking first fetch,
// then Start the background poll loop; queries read through Model().
// The poll loop is the only writer of the follower's replication state;
// Stats and the query path are safe from any goroutine.
type Follower struct {
	cfg     FollowerConfig
	snapURL string
	rng     *rand.Rand // poll jitter; loop goroutine only

	model atomic.Pointer[stream.Model] // nil until first applied snapshot

	mu          sync.Mutex // guards etag, epoch, lastErr
	etag        string     // SHA-256 of the applied snapshot bytes
	epoch       string     // leader epoch of the applied snapshot
	lastErr     string
	appliedGen  atomic.Uint64
	leaderGen   atomic.Uint64
	localGen    atomic.Uint64
	lastSyncNS  atomic.Int64
	polls       atomic.Int64
	notModified atomic.Int64
	applied     atomic.Int64
	failures    atomic.Int64
	rejected    atomic.Int64

	done     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewFollower validates the configuration and builds an unsynced
// follower. It performs no I/O; call Sync to fetch the first snapshot.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	return &Follower{
		cfg:     cfg,
		snapURL: strings.TrimRight(cfg.URL, "/") + "/snapshot",
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		done:    make(chan struct{}),
	}, nil
}

// Model returns the replica's zero-downtime query handle, or nil before
// the first successful Sync. The same handle stays valid across every
// later swap, so wire it into a server once and forget it.
func (f *Follower) Model() *stream.Model { return f.model.Load() }

// Sync blocks until one snapshot has been fetched and applied, retrying
// with backoff until ctx is done. It is the bootstrap step: a replica
// has nothing to serve before its first snapshot.
func (f *Follower) Sync(ctx context.Context) error {
	for attempt := 0; ; attempt++ {
		applied, err := f.poll()
		if err == nil && (applied || f.Model() != nil) {
			return nil
		}
		if err == nil {
			err = fmt.Errorf("fleet: leader answered 304 to an unsynced follower")
		}
		wait := f.backoff(attempt)
		if f.cfg.Logger != nil {
			f.cfg.Logger.Warn("fleet: initial sync failed, retrying",
				slog.String("leader", f.cfg.URL),
				slog.Duration("retry_in", wait),
				slog.String("error", err.Error()))
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("fleet: initial sync from %s: %w (last error: %v)", f.cfg.URL, ctx.Err(), err)
		case <-time.After(wait):
		}
	}
}

// Start launches the background poll loop. Call after a successful Sync;
// Close stops it.
func (f *Follower) Start() {
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		fails := 0
		for {
			var wait time.Duration
			if fails == 0 {
				wait = f.jitter(f.cfg.PollEvery)
			} else {
				wait = f.backoff(fails - 1)
			}
			select {
			case <-f.done:
				return
			case <-time.After(wait):
			}
			if _, err := f.poll(); err != nil {
				fails++
			} else {
				fails = 0
			}
		}
	}()
}

// Close stops the poll loop. Idempotent; the Model handle keeps serving
// the last good generation afterwards.
func (f *Follower) Close() {
	f.stopOnce.Do(func() { close(f.done) })
	f.wg.Wait()
}

// jitter spreads d by ±20%.
func (f *Follower) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	frac := 0.8 + 0.4*f.rng.Float64()
	return time.Duration(float64(d) * frac)
}

// backoff returns the jittered exponential delay after `attempt`
// consecutive failures (attempt 0 = first retry).
func (f *Follower) backoff(attempt int) time.Duration {
	d := f.cfg.PollEvery
	for i := 0; i < attempt && d < f.cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > f.cfg.MaxBackoff {
		d = f.cfg.MaxBackoff
	}
	return f.jitter(d)
}

// poll performs one conditional fetch against the leader and applies the
// snapshot if it is new and valid. It returns (true, nil) when a new
// generation was published locally, (false, nil) on 304/no-op, and a
// non-nil error on any fault — in which case the previously published
// model keeps serving untouched.
func (f *Follower) poll() (bool, error) {
	f.polls.Add(1)
	applied, err := f.pollOnce()
	f.mu.Lock()
	if err != nil {
		f.lastErr = err.Error()
	} else {
		f.lastErr = ""
	}
	f.mu.Unlock()
	if err != nil && f.cfg.Logger != nil {
		f.cfg.Logger.Warn("fleet: poll failed",
			slog.String("leader", f.cfg.URL),
			slog.String("error", err.Error()))
	}
	return applied, err
}

func (f *Follower) pollOnce() (bool, error) {
	req, err := http.NewRequest(http.MethodGet, f.snapURL, nil)
	if err != nil {
		f.failures.Add(1)
		return false, fmt.Errorf("fleet: build request: %w", err)
	}
	f.mu.Lock()
	if f.etag != "" {
		req.Header.Set("If-None-Match", `"`+f.etag+`"`)
	}
	prevEpoch := f.epoch
	f.mu.Unlock()

	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		f.failures.Add(1)
		return false, fmt.Errorf("fleet: fetch snapshot: %w", err)
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()

	// The advertised generation is tracked even when the body later fails
	// validation: lag reporting must reflect where the leader is, not
	// where we managed to get.
	hdrGen, hdrGenOK := parseGen(resp.Header.Get(HeaderGeneration))
	epoch := resp.Header.Get(HeaderLeader)
	sameEpoch := epoch == "" || prevEpoch == "" || epoch == prevEpoch
	if hdrGenOK && sameEpoch {
		f.leaderGen.Store(hdrGen)
	}

	switch resp.StatusCode {
	case http.StatusNotModified:
		// Confirmed current: refresh the sync clock.
		f.notModified.Add(1)
		f.lastSyncNS.Store(time.Now().UnixNano())
		return false, nil
	case http.StatusOK:
	default:
		f.failures.Add(1)
		return false, fmt.Errorf("fleet: leader answered %s", resp.Status)
	}
	if !hdrGenOK {
		f.failures.Add(1)
		return false, fmt.Errorf("fleet: leader response missing %s header", HeaderGeneration)
	}

	// Reject a generation that does not advance within the same leader
	// epoch. A changed epoch means the leader restarted: its counter
	// reset, so whatever it serves now is the truth to follow.
	if sameEpoch && f.Model() != nil && hdrGen <= f.appliedGen.Load() {
		f.rejected.Add(1)
		return false, fmt.Errorf("fleet: generation regression: leader %s serves gen %d, already applied gen %d",
			f.cfg.URL, hdrGen, f.appliedGen.Load())
	}

	body, err := io.ReadAll(io.LimitReader(resp.Body, f.cfg.MaxSnapshotBytes+1))
	if err != nil {
		// Torn transfer: Content-Length promised more than arrived.
		f.failures.Add(1)
		return false, fmt.Errorf("fleet: read snapshot body: %w", err)
	}
	if int64(len(body)) > f.cfg.MaxSnapshotBytes {
		f.failures.Add(1)
		return false, fmt.Errorf("fleet: snapshot exceeds %d bytes", f.cfg.MaxSnapshotBytes)
	}
	if cl := resp.ContentLength; cl >= 0 && cl != int64(len(body)) {
		f.failures.Add(1)
		return false, fmt.Errorf("fleet: torn snapshot: got %d of %d bytes", len(body), cl)
	}
	sum := sha256.Sum256(body)
	sumHex := hex.EncodeToString(sum[:])
	if want := resp.Header.Get(HeaderSHA256); want != "" && !strings.EqualFold(want, sumHex) {
		f.rejected.Add(1)
		return false, fmt.Errorf("fleet: snapshot checksum mismatch: leader advertised %s, body hashes to %s", want, sumHex)
	}

	// core.Load verifies the frame's payload checksum again and rebuilds
	// the index; any corruption that slipped past the transport hash
	// (or a leader serving garbage with a matching header) dies here.
	clf, err := core.Load(bytes.NewReader(body))
	if err != nil {
		f.rejected.Add(1)
		return false, fmt.Errorf("fleet: load snapshot: %w", err)
	}
	if f.cfg.Workers > 0 {
		clf.SetWorkers(f.cfg.Workers)
	}
	if f.cfg.Recorder != nil {
		clf.SetRecorder(f.cfg.Recorder)
	}

	var local uint64
	if m := f.Model(); m != nil {
		local = m.Publish(clf)
	} else {
		f.model.Store(stream.NewModel(clf))
		local = 1
	}
	f.mu.Lock()
	f.etag = sumHex
	f.epoch = epoch
	f.mu.Unlock()
	f.appliedGen.Store(hdrGen)
	f.leaderGen.Store(hdrGen)
	f.localGen.Store(local)
	f.lastSyncNS.Store(time.Now().UnixNano())
	f.applied.Add(1)
	if f.cfg.Logger != nil {
		f.cfg.Logger.Info("fleet: snapshot applied",
			slog.String("leader", f.cfg.URL),
			slog.Uint64("leader_generation", hdrGen),
			slog.Uint64("local_generation", local),
			slog.Int("bytes", len(body)),
			slog.String("sha256", sumHex))
	}
	return true, nil
}

// parseGen parses a generation header value.
func parseGen(s string) (uint64, bool) {
	if s == "" {
		return 0, false
	}
	g, err := strconv.ParseUint(s, 10, 64)
	return g, err == nil
}

// Stale reports whether the follower has gone longer than StaleAfter
// without a successful leader contact (always false with no threshold).
func (f *Follower) Stale() bool {
	if f.cfg.StaleAfter <= 0 {
		return false
	}
	last := f.lastSyncNS.Load()
	if last == 0 {
		return true // never synced
	}
	return time.Since(time.Unix(0, last)) > f.cfg.StaleAfter
}

// Stats snapshots the replication state.
func (f *Follower) Stats() FollowerStats {
	st := FollowerStats{
		LeaderURL:         f.cfg.URL,
		Synced:            f.Model() != nil,
		AppliedGeneration: f.appliedGen.Load(),
		LeaderGeneration:  f.leaderGen.Load(),
		LocalGeneration:   f.localGen.Load(),
		Polls:             f.polls.Load(),
		NotModified:       f.notModified.Load(),
		Applied:           f.applied.Load(),
		Failures:          f.failures.Load(),
		Rejected:          f.rejected.Load(),
		Stale:             f.Stale(),
	}
	if st.LeaderGeneration > st.AppliedGeneration {
		st.GenerationLag = st.LeaderGeneration - st.AppliedGeneration
	}
	if ns := f.lastSyncNS.Load(); ns != 0 {
		st.LastSync = time.Unix(0, ns)
		st.SinceSync = time.Since(st.LastSync)
	}
	f.mu.Lock()
	st.LastError = f.lastErr
	st.LeaderEpoch = f.epoch
	f.mu.Unlock()
	return st
}
