// Package tkdc implements thresholded kernel density classification
// (tKDC) from Gan & Bailis, "Scalable Kernel Density Classification via
// Threshold-Based Pruning", SIGMOD 2017.
//
// Density classification labels query points HIGH or LOW depending on
// whether their kernel density estimate lies above or below a threshold
// t(p) — the p-quantile of the training densities. tKDC avoids computing
// exact densities: it traverses a k-d tree maintaining certified upper
// and lower density bounds and stops as soon as the bounds fall on one
// side of the threshold (the threshold rule) or are within ε·t of each
// other (the tolerance rule). For d-dimensional data this reduces the
// per-query cost from O(n) to O(n^{(d−1)/d}) — O(log n) when d = 1 —
// while guaranteeing that every point whose density is farther than ε·t
// from the threshold is classified exactly as an exact KDE would.
//
// Basic usage:
//
//	clf, err := tkdc.Train(data, tkdc.DefaultConfig())
//	if err != nil { ... }
//	label, err := clf.Classify(query)   // tkdc.High or tkdc.Low
//
// DefaultConfig matches the paper's Table 1 defaults: classification rate
// p = 0.01, multiplicative error ε = 0.01, bound failure probability
// δ = 0.01, Scott's-rule bandwidths, Gaussian kernels, an equi-width k-d
// tree, and a hypergrid inlier cache for d ≤ 4.
//
// The classifier is immutable once trained and safe for concurrent
// queries; set Config.Workers to fan both training (tree construction,
// bootstrap scoring, grid fill) and batch classification out over
// goroutines. Trained models are bit-identical at every worker count.
package tkdc

import (
	"io"

	"tkdc/internal/core"
	"tkdc/internal/kdtree"
	"tkdc/internal/telemetry"
)

// Config carries the density-classification parameters (Table 1 of the
// paper) and implementation knobs. See DefaultConfig for the defaults.
type Config = core.Config

// Classifier is a trained tKDC model: immutable and safe for concurrent
// queries.
type Classifier = core.Classifier

// Label is a density classification outcome: High or Low.
type Label = core.Label

// Result carries a classification together with the certified density
// bounds behind it.
type Result = core.Result

// QueryStats counts the work one density query performed.
type QueryStats = core.QueryStats

// Counters aggregates query work since training.
type Counters = core.Counters

// TrainStats describes the training phase: bandwidths, threshold bounds,
// bootstrap rounds, and kernel evaluations spent.
type TrainStats = core.TrainStats

// KernelFamily selects the kernel used by the density estimate.
type KernelFamily = core.KernelFamily

// SplitRule selects the k-d tree partitioning strategy.
type SplitRule = kdtree.SplitRule

// Recorder receives per-query telemetry samples and training phase
// spans; hang one on Config.Recorder (nil keeps telemetry off). See
// Registry for the standard implementation.
type Recorder = telemetry.Recorder

// Registry is the standard telemetry recorder: atomic counters plus
// log-spaced histograms for query latency, kernel evaluations per
// query, and tree nodes visited, and a phase trace for training.
type Registry = telemetry.Registry

// MetricsSnapshot is a coherent copy of a Registry: counters, latency
// and work histograms (with Quantile/Mean accessors), and the phase
// trace. Its String method renders a human-readable summary.
type MetricsSnapshot = telemetry.Snapshot

// QuerySample is one query's telemetry: latency and traversal work.
type QuerySample = telemetry.QuerySample

// QueryTrace is one query's flight record: per-stage timings, traversal
// work, the density bounds reached, and the threshold margin at decision
// time. Traces are captured when a FlightRecorder is attached to the
// classifier's Registry and are immutable once filed.
type QueryTrace = telemetry.QueryTrace

// TraceStage is one named stage of a QueryTrace (tree refinement, the
// near phase, a far-field sampling round) with its duration and work.
type TraceStage = telemetry.TraceStage

// FlightRecorder retains the K slowest and K most recent query traces
// plus every threshold-straddling query, and logs queries slower than a
// configurable latency threshold. Attach one with
// Registry.AttachFlightRecorder; snapshot it with FlightRecorder.Snapshot.
type FlightRecorder = telemetry.FlightRecorder

// FlightOptions configures NewFlightRecorder: retention depth K, the
// slow-query log threshold, and the structured logger slow queries go to.
type FlightOptions = telemetry.FlightOptions

// FlightSnapshot is a coherent copy of a FlightRecorder's retained
// traces and counters, ready for JSON encoding (GET /debug/queries
// serves exactly this).
type FlightSnapshot = telemetry.FlightSnapshot

// PhaseSpan names one bounded phase of batch work (a bootstrap round, a
// training pass) with its duration and kernel count.
type PhaseSpan = telemetry.Span

// Classification labels.
const (
	// Low marks a point whose density is below the threshold (an outlier
	// for small p).
	Low = core.Low
	// High marks a point whose density is above the threshold.
	High = core.High
)

// Kernel families.
const (
	// KernelGaussian is the paper's default Gaussian product kernel.
	KernelGaussian = core.KernelGaussian
	// KernelEpanechnikov is a finite-support alternative kernel.
	KernelEpanechnikov = core.KernelEpanechnikov
)

// Density backends. Config.Backend selects the engine answering density
// queries: the certified tree traversal, the sampled far-field
// estimator, or dimension-based auto-selection between them.
const (
	// BackendAuto picks the tree backend for d ≤ 8 and sampling above.
	BackendAuto = core.BackendAuto
	// BackendTree is the paper's certified branch-and-bound traversal.
	BackendTree = core.BackendTree
	// BackendSampling is the DEANN-style near/far split estimator with
	// probabilistic (1−δ) bounds; it scales to dimensions where the
	// tree's distance bounds degenerate.
	BackendSampling = core.BackendSampling
)

// Backends lists the valid Config.Backend values.
func Backends() []string { return core.Backends() }

// k-d tree split rules.
const (
	// SplitEquiWidth splits nodes at the trimmed midpoint
	// (x⁽¹⁰⁾+x⁽⁹⁰⁾)/2 — the paper's tKDC default (Section 3.7).
	SplitEquiWidth = kdtree.SplitEquiWidth
	// SplitMedian produces a balanced tree (the classic construction).
	SplitMedian = kdtree.SplitMedian
)

// DefaultConfig returns the paper's Table 1 parameter defaults.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewRegistry returns a fresh, enabled telemetry registry ready to set
// as Config.Recorder (or to pass to several classifiers, which then
// aggregate into one set of histograms).
func NewRegistry() *Registry { return telemetry.NewRegistry() }

// NewFlightRecorder returns an enabled query flight recorder. Attach it
// to a classifier's registry with Registry.AttachFlightRecorder to start
// capturing per-query traces.
func NewFlightRecorder(opts FlightOptions) *FlightRecorder {
	return telemetry.NewFlightRecorder(opts)
}

// DefaultRegistry returns the process-wide registry behind Metrics().
// The tkdc CLI's -serve and -stats modes record into it.
func DefaultRegistry() *Registry { return telemetry.Default }

// Metrics snapshots the process-wide default registry: query latency
// and work histograms, grid cache counters, and phase traces from every
// classifier whose Recorder is DefaultRegistry(). Classifiers without a
// recorder contribute nothing (telemetry defaults to off).
func Metrics() MetricsSnapshot { return telemetry.Default.Snapshot() }

// Train fits a tKDC classifier: it bootstraps probabilistic threshold
// bounds from growing subsamples (Algorithm 3), builds the spatial index
// and grid cache, and refines the threshold to t̃(p) by scoring every
// training point with threshold-pruned traversals (Algorithm 1).
//
// The rows are copied into the classifier's own contiguous storage, so
// callers are free to mutate or discard data after Train returns.
// Training is deterministic for a fixed Config.Seed.
func Train(data [][]float64, cfg Config) (*Classifier, error) {
	return core.Train(data, cfg)
}

// TrainFlat is Train for data already in flat row-major form: flat holds
// n·dim coordinates with point i occupying flat[i*dim : (i+1)*dim]. The
// buffer is copied in, like Train. Use this to avoid building a
// [][]float64 when the data source is already contiguous (a matrix, a
// column file, an mmap'd array).
func TrainFlat(flat []float64, dim int, cfg Config) (*Classifier, error) {
	return core.TrainFlat(flat, dim, cfg)
}

// TrainDefault is Train with DefaultConfig.
func TrainDefault(data [][]float64) (*Classifier, error) {
	return core.Train(data, core.DefaultConfig())
}

// Load reconstructs a classifier previously serialized with
// Classifier.Save. The spatial index is rebuilt deterministically from
// the stored data; the persisted threshold is reused, so loading skips
// the training phase entirely.
func Load(r io.Reader) (*Classifier, error) {
	return core.Load(r)
}

// LoadFile loads a snapshot file written by Classifier.SaveFile (or the
// CLI's -save), verifying the SHA-256 recorded in the snapshot frame
// before deserializing — a torn or corrupted file fails loudly with a
// checksum error naming the path.
func LoadFile(path string) (*Classifier, error) {
	return core.LoadFile(path)
}
