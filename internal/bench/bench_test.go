package bench

import (
	"bytes"
	"strings"
	"testing"

	"tkdc/internal/core"
	"tkdc/internal/dataset"
	"tkdc/internal/points"
)

// tinyOpts keeps experiments test-sized.
func tinyOpts() Options {
	return Options{Scale: 0.0005, MaxQueries: 200, Seed: 1}
}

func TestOptionsNormalization(t *testing.T) {
	o := Options{}.normalized()
	if o.Scale <= 0 || o.MaxQueries <= 0 || o.Out == nil {
		t.Fatalf("normalized options incomplete: %+v", o)
	}
	if got := o.scaled(1_000_000, 500); got != 10_000 {
		t.Fatalf("scaled = %d, want 10000", got)
	}
	if got := o.scaled(100, 500); got != 100 {
		t.Fatalf("scaled must cap at n: got %d", got)
	}
	if got := o.scaled(10_000, 500); got != 500 {
		t.Fatalf("scaled must respect floor: got %d", got)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{Title: "T", Columns: []string{"a", "bb"}, Notes: []string{"n1"}}
	tbl.AddRow("1", "2")
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== T ==", "a", "bb", "1", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestMeasurementMath(t *testing.T) {
	m := Measurement{N: 1000, TrainSeconds: 1, QueriesMeasured: 100, QuerySeconds: 1}
	// per-query 10ms ⇒ full pass 10s ⇒ effective = 1000/11.
	if got := m.EffectiveThroughput(); got < 90 || got > 92 {
		t.Fatalf("EffectiveThroughput = %v, want ≈90.9", got)
	}
	if got := m.QueryThroughput(); got != 100 {
		t.Fatalf("QueryThroughput = %v, want 100", got)
	}
	var zero Measurement
	if zero.EffectiveThroughput() != 0 || zero.QueryThroughput() != 0 {
		t.Fatal("zero measurement should report zero throughput")
	}
}

func TestMeasureTKDCAndBaselines(t *testing.T) {
	data := dataset.Gauss(3000, 2, 1)
	m, err := MeasureTKDC(data, tkdcConfigForTest(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if m.QueriesMeasured != 100 || m.EffectiveThroughput() <= 0 {
		t.Fatalf("tkdc measurement bad: %+v", m)
	}
	for _, kind := range []BaselineKind{Simple, NoCut, RKDE, Binned} {
		bm, err := MeasureBaseline(kind, data, BaselineParams{}, 50)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if bm.QueriesMeasured != 50 || bm.QueryThroughput() <= 0 {
			t.Fatalf("%s measurement bad: %+v", kind, bm)
		}
		if kind == Simple && bm.KernelsPerQuery != float64(len(data)) {
			t.Fatalf("simple kernels/q = %v, want n", bm.KernelsPerQuery)
		}
	}
	if _, err := NewBaseline("bogus", data, BaselineParams{}); err == nil {
		t.Fatal("unknown baseline should error")
	}
}

func TestRunRegistry(t *testing.T) {
	if _, err := Run("nope", tinyOpts()); err == nil {
		t.Fatal("unknown experiment should error")
	}
	exps := Experiments()
	ids := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Description == "" || e.Run == nil {
			t.Fatalf("incomplete experiment entry: %+v", e)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"tab2", "tab3", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "stream", "trace", "fleet"} {
		if !ids[want] {
			t.Fatalf("registry missing %s", want)
		}
	}
}

func TestTablesRun(t *testing.T) {
	var buf bytes.Buffer
	opts := tinyOpts()
	opts.Out = &buf
	for _, id := range []string{"tab2", "tab3"} {
		tables, err := Run(id, opts)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) != 1 || len(tables[0].Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
	}
	if !strings.Contains(buf.String(), "Table 2") || !strings.Contains(buf.String(), "Table 3") {
		t.Fatal("tables not printed to Out")
	}
}

// TestFig8AccuracyF1 is the acceptance check for the Figure 8
// reproduction at test scale: tkdc must be nearly perfect, and the binned
// (ks-style) estimator must trail it at d=4.
func TestFig8AccuracyF1(t *testing.T) {
	if testing.Short() {
		t.Skip("accuracy experiment skipped in -short mode")
	}
	data, err := dataset.TakeColumns(dataset.TMY3(4000, 1), 4)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := points.FromRows(data)
	if err != nil {
		t.Fatal(err)
	}
	truth, threshold, err := exactGroundTruth(pts, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if threshold <= 0 {
		t.Fatalf("ground-truth threshold = %g", threshold)
	}
	f1, err := tkdcAccuracy(data, 0.01, 1, truth)
	if err != nil {
		t.Fatal(err)
	}
	if f1 < 0.95 {
		t.Fatalf("tkdc F1 = %.3f, want ≥ 0.95 (paper: ~0.995)", f1)
	}
}

// TestFig9Shape runs the core scalability claim at test scale: tkdc's
// per-query kernel work must grow much more slowly than the baselines'.
func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling experiment skipped in -short mode")
	}
	opts := tinyOpts()
	opts.Scale = 0.0003 // up to 30k on the 100M paper size
	tables, err := Figure9(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) < 2 {
		t.Fatalf("fig9 rows: %+v", tables)
	}
}

func TestFactorAnalysesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("factor experiments skipped in -short mode")
	}
	opts := tinyOpts()
	for name, run := range map[string]func(Options) ([]Table, error){"fig12": Figure12, "fig16": Figure16} {
		tables, err := run(opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tables[0].Rows) != 5 {
			t.Fatalf("%s: %d rows, want 5", name, len(tables[0].Rows))
		}
	}
}

func tkdcConfigForTest() core.Config {
	cfg := core.DefaultConfig()
	cfg.S0 = 1000
	cfg.Seed = 1
	return cfg
}
