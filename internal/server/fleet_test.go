package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tkdc/internal/fleet"
	"tkdc/internal/stream"
	"tkdc/internal/telemetry"
)

// fleetLeader is a streaming leader whose /snapshot endpoint can be
// fault-injected: while broken is set, snapshot fetches answer 500 (the
// rest of the API stays healthy, like a leader with a sick disk).
func fleetLeader(t *testing.T) (ts *httptest.Server, svc *stream.Service, broken *atomic.Bool) {
	t.Helper()
	inner, svc := streamServer(t, Options{})
	handler := inner.Config.Handler
	inner.Close()
	broken = &atomic.Bool{}
	ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if broken.Load() && strings.HasPrefix(r.URL.Path, "/snapshot") {
			http.Error(w, "injected snapshot fault", http.StatusInternalServerError)
			return
		}
		handler.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts, svc, broken
}

// postRaw returns the raw response body so bit-identical comparisons
// do not go through float re-parsing.
func postRaw(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw)
}

// waitForGeneration polls the follower's stats until it has applied the
// wanted leader generation.
func waitForGeneration(t *testing.T, f *fleet.Follower, gen uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if f.Stats().AppliedGeneration >= gen {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("follower stuck at generation %d, want %d (stats %+v)",
		f.Stats().AppliedGeneration, gen, f.Stats())
}

// TestFleetEndToEnd is the acceptance test for the replication
// subsystem: a real streaming leader and a real follower server, with
// the follower converging across a retrain-driven generation bump and
// an injected snapshot fault, classifying bit-identically throughout.
func TestFleetEndToEnd(t *testing.T) {
	leaderTS, svc, broken := fleetLeader(t)

	f, err := fleet.NewFollower(fleet.FollowerConfig{
		URL:        leaderTS.URL,
		PollEvery:  5 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond, // keep recovery quick under fault injection
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	f.Start()
	t.Cleanup(f.Close)

	followerTS := httptest.NewServer(New(nil, Options{
		Follower: f,
		Registry: telemetry.NewRegistry(),
	}))
	t.Cleanup(followerTS.Close)

	queries := `{"points":[[0,0],[0.5,-0.5],[3,3],[-2,1],[0.1,0.9]]}`
	assertSameAnswers := func(stage string) {
		t.Helper()
		lc, lb := postRaw(t, leaderTS.URL+"/classify?density=1", queries)
		fc, fb := postRaw(t, followerTS.URL+"/classify?density=1", queries)
		if lc != http.StatusOK || fc != http.StatusOK {
			t.Fatalf("%s: classify status leader=%d follower=%d", stage, lc, fc)
		}
		if lb != fb {
			t.Fatalf("%s: follower diverges from leader:\nleader:   %s\nfollower: %s", stage, lb, fb)
		}
	}
	assertSameAnswers("after first sync")

	// Follower identity on the observability surface.
	resp, model := getJSON(t, followerTS.URL+"/model")
	if resp.StatusCode != http.StatusOK || model["role"] != "follower" {
		t.Fatalf("follower /model = %v", model)
	}
	if model["leader_url"] != leaderTS.URL || model["applied_generation"].(float64) != 1 {
		t.Fatalf("follower /model identity fields = %v", model)
	}
	if _, ok := model["snapshot_sha256"]; !ok {
		t.Fatal("follower /model missing snapshot_sha256 (followers are valid leaders for chaining)")
	}
	_, health := getJSON(t, followerTS.URL+"/healthz")
	if health["role"] != "follower" || health["status"] != "ok" {
		t.Fatalf("follower /healthz = %v", health)
	}

	// Retrain-driven generation bump: ingest shifted data, retrain, and
	// the follower must converge and still answer identically. (Each
	// retrain is preceded by an ingest so the new generation's bytes
	// actually differ — identical bytes would legitimately answer 304.)
	if code, body := postRaw(t, leaderTS.URL+"/ingest", `{"points":[[4,4],[4.2,3.9],[3.8,4.1],[4.1,4.2]]}`); code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", code, body)
	}
	if err := svc.Retrain(); err != nil {
		t.Fatal(err)
	}
	waitForGeneration(t, f, 2)
	assertSameAnswers("after retrain bump")

	// Injected fault: the leader's snapshot endpoint dies while a new
	// generation lands. The follower keeps serving generation 2.
	broken.Store(true)
	if code, body := postRaw(t, leaderTS.URL+"/ingest", `{"points":[[-4,-4],[-4.1,-3.8],[-3.9,-4.2]]}`); code != http.StatusOK {
		t.Fatalf("ingest during fault = %d: %s", code, body)
	}
	if err := svc.Retrain(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // a few failing polls
	if got := f.Stats().AppliedGeneration; got != 2 {
		t.Fatalf("follower applied gen %d during fault, want to hold at 2", got)
	}
	if code, _ := postRaw(t, followerTS.URL+"/classify", queries); code != http.StatusOK {
		t.Fatalf("follower stopped serving during leader fault: %d", code)
	}
	if f.Stats().Failures == 0 {
		t.Fatal("injected fault produced no recorded failures")
	}

	// Heal: the follower recovers to generation 3 and matches again.
	broken.Store(false)
	waitForGeneration(t, f, 3)
	assertSameAnswers("after fault heal")

	// The follower's own metrics expose the fleet series.
	exp := getMetrics(t, followerTS.URL)
	for _, name := range []string{
		"tkdc_fleet_generation_lag", "tkdc_fleet_polls_total",
		"tkdc_fleet_syncs_total", "tkdc_fleet_failures_total",
	} {
		if !strings.Contains(exp, name+" ") {
			t.Errorf("follower /metrics missing %s", name)
		}
	}
	if got := metricValue(t, exp, "tkdc_fleet_generation_lag"); got != 0 {
		t.Errorf("generation lag = %d after convergence, want 0", got)
	}

	// Chaining: the follower itself serves /snapshot, so a second tier
	// of replicas could follow it.
	chainResp, err := http.Get(followerTS.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, chainResp.Body)
	chainResp.Body.Close()
	if chainResp.StatusCode != http.StatusOK {
		t.Fatalf("follower /snapshot = %d, want 200 (fan-out chaining)", chainResp.StatusCode)
	}
	if chainResp.Header.Get(fleet.HeaderGeneration) == "" {
		t.Fatal("follower /snapshot missing generation header")
	}
}

// TestFollowerHealthzStale: a stale follower flips /healthz to 503 while
// /classify keeps answering from the last good model.
func TestFollowerHealthzStale(t *testing.T) {
	leaderTS, _, broken := fleetLeader(t)
	f, err := fleet.NewFollower(fleet.FollowerConfig{
		URL:        leaderTS.URL,
		PollEvery:  5 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond,
		StaleAfter: 30 * time.Millisecond,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	f.Start()
	t.Cleanup(f.Close)
	ts := httptest.NewServer(New(nil, Options{Follower: f, Registry: telemetry.NewRegistry()}))
	t.Cleanup(ts.Close)

	broken.Store(true)
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, body := getJSON(t, ts.URL+"/healthz")
		if resp.StatusCode == http.StatusServiceUnavailable {
			if body["status"] != "stale" {
				t.Fatalf("503 /healthz body = %v, want status stale", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never went stale: %v", body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if code, _ := postRaw(t, ts.URL+"/classify", `{"points":[[0,0]]}`); code != http.StatusOK {
		t.Fatalf("stale follower refused queries: %d (staleness drains, it must not stop serving)", code)
	}

	broken.Store(false)
	deadline = time.Now().Add(5 * time.Second)
	for {
		resp, _ := getJSON(t, ts.URL+"/healthz")
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never recovered from staleness")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
