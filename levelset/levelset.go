// Package levelset builds the density level-set analyses that motivate
// tKDC (Section 2.1 of the paper) on top of the classifier: quantile
// ladders that bracket a point's density quantile (density-based
// p-values, Figure 2b) and 2-d contour extraction (region-boundary
// visualization, Figures 1b and 2a).
package levelset

import (
	"errors"
	"fmt"
	"sort"

	"tkdc"
)

// Ladder is a stack of tKDC classifiers trained at increasing quantile
// levels p₁ < p₂ < … < p_k over the same dataset. Because the thresholds
// t(p) are nested, classifying a point against each level brackets the
// point's density quantile — the fraction of the dataset lying in
// sparser regions — which is the density-based p-value used for
// statistical testing.
type Ladder struct {
	ps   []float64
	clfs []*tkdc.Classifier
}

// TrainLadder trains one classifier per quantile level. Levels must be
// strictly increasing within (0, 1). The same Config is used for every
// level (its P field is overridden per level).
func TrainLadder(data [][]float64, levels []float64, cfg tkdc.Config) (*Ladder, error) {
	if len(levels) == 0 {
		return nil, errors.New("levelset: no quantile levels")
	}
	if !sort.Float64sAreSorted(levels) {
		return nil, errors.New("levelset: quantile levels must be sorted ascending")
	}
	for i, p := range levels {
		if p <= 0 || p >= 1 {
			return nil, fmt.Errorf("levelset: level %d = %v must be in (0, 1)", i, p)
		}
		if i > 0 && p == levels[i-1] {
			return nil, fmt.Errorf("levelset: duplicate level %v", p)
		}
	}
	l := &Ladder{
		ps:   append([]float64(nil), levels...),
		clfs: make([]*tkdc.Classifier, len(levels)),
	}
	for i, p := range levels {
		cfg.P = p
		clf, err := tkdc.Train(data, cfg)
		if err != nil {
			return nil, fmt.Errorf("levelset: level p=%v: %w", p, err)
		}
		l.clfs[i] = clf
	}
	return l, nil
}

// Levels returns the quantile levels (ascending).
func (l *Ladder) Levels() []float64 { return l.ps }

// Thresholds returns the density threshold t(p) at each level.
func (l *Ladder) Thresholds() []float64 {
	out := make([]float64, len(l.clfs))
	for i, c := range l.clfs {
		out[i] = c.Threshold()
	}
	return out
}

// Classifier returns the trained classifier for level i.
func (l *Ladder) Classifier(i int) *tkdc.Classifier { return l.clfs[i] }

// Bracket returns an interval (lo, hi] containing x's density quantile:
// the fraction of the training data with lower density. A point LOW at
// every level brackets to (0, p₁]; a point HIGH at every level brackets
// to (p_k, 1]. Results are accurate up to the classifiers' ε bands.
func (l *Ladder) Bracket(x []float64) (lo, hi float64, err error) {
	lo, hi = 0, 1
	for i, clf := range l.clfs {
		label, err := clf.Classify(x)
		if err != nil {
			return 0, 0, err
		}
		if label == tkdc.Low {
			// Density below t(p_i): quantile ≤ p_i.
			return lo, l.ps[i], nil
		}
		lo = l.ps[i]
	}
	return lo, 1, nil
}

// PValueAtMost reports whether x's density-quantile p-value is certified
// to be at most alpha — i.e., whether x lies in the sparsest alpha
// fraction of the distribution according to some ladder level ≤ alpha.
// It requires a ladder level at or below alpha; absent one, it returns
// an error naming the closest usable level.
func (l *Ladder) PValueAtMost(x []float64, alpha float64) (bool, error) {
	best := -1
	for i, p := range l.ps {
		if p <= alpha {
			best = i
		}
	}
	if best < 0 {
		return false, fmt.Errorf("levelset: no ladder level at or below alpha=%v (smallest is %v)", alpha, l.ps[0])
	}
	label, err := l.clfs[best].Classify(x)
	if err != nil {
		return false, err
	}
	return label == tkdc.Low, nil
}
