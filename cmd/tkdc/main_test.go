package main

import (
	"net/http"
	"strings"
	"testing"

	"tkdc"
)

// TestHTTPServerTimeouts pins the serving-mode hardening: every tkdc
// server must carry header/read/idle deadlines so a slow or stalled
// client cannot pin a connection forever, while WriteTimeout stays zero
// so the streaming pprof endpoints (profile, trace) are not cut off.
func TestHTTPServerTimeouts(t *testing.T) {
	srv := newHTTPServer(":0", http.NewServeMux())
	if srv.ReadHeaderTimeout <= 0 {
		t.Fatal("ReadHeaderTimeout unset: slowloris protection missing")
	}
	if srv.ReadTimeout <= 0 {
		t.Fatal("ReadTimeout unset: a stalled body upload pins a connection")
	}
	if srv.IdleTimeout <= 0 {
		t.Fatal("IdleTimeout unset: idle keep-alive connections never reaped")
	}
	if srv.WriteTimeout != 0 {
		t.Fatal("WriteTimeout set: it would cut off streaming pprof profiles")
	}
	if srv.Addr != ":0" || srv.Handler == nil {
		t.Fatal("newHTTPServer dropped the address or handler")
	}
}

// TestValidateBackend pins the fail-fast contract of -backend: every
// published name passes, anything else is rejected with an error that
// lists the valid set.
func TestValidateBackend(t *testing.T) {
	for _, name := range tkdc.Backends() {
		if err := validateBackend(name); err != nil {
			t.Errorf("validateBackend(%q) = %v, want nil", name, err)
		}
	}
	err := validateBackend("annoy")
	if err == nil {
		t.Fatal("unknown backend accepted")
	}
	for _, name := range tkdc.Backends() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list %q", err, name)
		}
	}
	// The empty string is the library's "unset" sentinel; the flag has a
	// real default, so the CLI treats empty as a user mistake.
	if validateBackend("") == nil {
		t.Error("empty -backend accepted")
	}
}
