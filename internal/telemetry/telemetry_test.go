package telemetry

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries pins the power-of-two bucket scheme: bucket 0 is
// {0}, bucket 1 is {1}, bucket i ≥ 2 is [2^(i−1), 2^i − 1].
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1 << 62, 63}, {math.MaxInt64, 63},
	}
	for _, c := range cases {
		var h Histogram
		h.Observe(c.v)
		s := h.Snapshot()
		if s.Counts[c.bucket] != 1 {
			t.Errorf("Observe(%d): bucket %d empty, snapshot %v", c.v, c.bucket, s.Counts)
		}
		if got := s.Count(); got != 1 {
			t.Errorf("Observe(%d): Count = %d, want 1", c.v, got)
		}
		lo, hi := BucketBounds(c.bucket)
		if c.v < lo || c.v > hi {
			t.Errorf("BucketBounds(%d) = [%d, %d] does not contain %d", c.bucket, lo, hi, c.v)
		}
	}
}

// TestBucketBoundsContiguous verifies the buckets tile the non-negative
// int64 range with no gaps or overlaps.
func TestBucketBoundsContiguous(t *testing.T) {
	_, prevHi := BucketBounds(0)
	for i := 1; i < NumBuckets; i++ {
		lo, hi := BucketBounds(i)
		if lo != prevHi+1 {
			t.Errorf("bucket %d starts at %d, want %d", i, lo, prevHi+1)
		}
		if hi < lo {
			t.Errorf("bucket %d is inverted: [%d, %d]", i, lo, hi)
		}
		prevHi = hi
	}
	if prevHi != math.MaxInt64 {
		t.Errorf("top bucket ends at %d, want MaxInt64", prevHi)
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	s := h.Snapshot()
	if s.Counts[0] != 1 || s.Sum != 0 {
		t.Errorf("Observe(-5): bucket0 = %d sum = %d, want 1, 0", s.Counts[0], s.Sum)
	}
}

func TestHistogramMeanAndQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(100) // all in bucket [64, 127]
	}
	s := h.Snapshot()
	if got := s.Mean(); got != 100 {
		t.Errorf("Mean = %v, want 100", got)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := s.Quantile(q)
		if got < 64 || got > 127 {
			t.Errorf("Quantile(%v) = %v, outside bucket [64, 127]", q, got)
		}
	}
	if s.Quantile(0.9) < s.Quantile(0.1) {
		t.Error("quantiles not monotone")
	}
	if got := s.Max(); got != 127 {
		t.Errorf("Max = %d, want 127 (bucket upper bound)", got)
	}
}

func TestHistogramQuantileAcrossBuckets(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(1)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 1 {
		t.Errorf("p50 = %v, want 1", got)
	}
	if got := s.Quantile(0.99); got < 512 {
		t.Errorf("p99 = %v, want inside the bucket holding 1000", got)
	}
	if empty := (HistogramSnapshot{}); empty.Quantile(0.5) != 0 || empty.Mean() != 0 || empty.Max() != 0 {
		t.Error("empty snapshot should report zeros")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(3)
	a.Observe(100)
	b.Observe(3)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if got := sa.Count(); got != 3 {
		t.Errorf("merged Count = %d, want 3", got)
	}
	if sa.Counts[2] != 2 {
		t.Errorf("merged bucket for 3 = %d, want 2", sa.Counts[2])
	}
	if sa.Sum != 106 {
		t.Errorf("merged Sum = %d, want 106", sa.Sum)
	}
}

// TestNopRecorderAllocatesNothing is the satellite guarantee: the
// default recorder adds zero allocations to the hot path.
func TestNopRecorderAllocatesNothing(t *testing.T) {
	var rec Recorder = Nop{}
	sample := QuerySample{Latency: time.Microsecond, PointKernels: 10}
	if got := testing.AllocsPerRun(1000, func() {
		if rec.Enabled() {
			t.Fatal("Nop reported enabled")
		}
		rec.RecordQuery(sample)
		rec.RecordSpan(Span{Name: "x"})
	}); got != 0 {
		t.Errorf("Nop recorder: %v allocs/op, want 0", got)
	}
}

// TestRegistryRecordQueryAllocatesNothing keeps the enabled query path
// allocation-free too — only the span trace may allocate.
func TestRegistryRecordQueryAllocatesNothing(t *testing.T) {
	r := NewRegistry()
	sample := QuerySample{Latency: time.Microsecond, PointKernels: 10, GridChecked: true}
	if got := testing.AllocsPerRun(1000, func() {
		r.RecordQuery(sample)
	}); got != 0 {
		t.Errorf("Registry.RecordQuery: %v allocs/op, want 0", got)
	}
}

func TestRegistryDisabled(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(false)
	r.RecordQuery(QuerySample{Latency: time.Second})
	r.RecordSpan(Span{Name: "ignored"})
	s := r.Snapshot()
	if s.Queries != 0 || len(s.Spans) != 0 || s.LatencyNS.Count() != 0 {
		t.Errorf("disabled registry recorded: %+v", s)
	}
}

func TestRegistrySnapshotAndReset(t *testing.T) {
	r := NewRegistry()
	r.RecordQuery(QuerySample{Latency: 5 * time.Microsecond, PointKernels: 32, BoundKernels: 8, Nodes: 4, GridChecked: true})
	r.RecordQuery(QuerySample{Latency: time.Microsecond, GridChecked: true, GridHit: true})
	r.RecordSpan(Span{Name: "bootstrap/round-01", Duration: time.Millisecond, Kernels: 100, Items: 200})

	s := r.Snapshot()
	if s.Queries != 2 || s.GridHits != 1 || s.GridMisses != 1 {
		t.Errorf("counters: %+v", s)
	}
	if got := s.Kernels.Sum; got != 40 {
		t.Errorf("kernel sum = %d, want 40", got)
	}
	if got := s.LatencyNS.Count(); got != 2 {
		t.Errorf("latency count = %d, want 2", got)
	}
	if len(s.Spans) != 1 || s.Spans[0].Name != "bootstrap/round-01" {
		t.Errorf("spans: %+v", s.Spans)
	}
	if out := s.String(); !strings.Contains(out, "queries 2") || !strings.Contains(out, "bootstrap/round-01") {
		t.Errorf("String missing fields:\n%s", out)
	}

	r.Reset()
	if s := r.Snapshot(); s.Queries != 0 || len(s.Spans) != 0 {
		t.Errorf("Reset left state: %+v", s)
	}
}

func TestRegistrySpanCap(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < maxSpans+10; i++ {
		r.RecordSpan(Span{Name: "s"})
	}
	s := r.Snapshot()
	if len(s.Spans) != maxSpans {
		t.Errorf("spans kept = %d, want %d", len(s.Spans), maxSpans)
	}
	if s.SpansDropped != 10 {
		t.Errorf("SpansDropped = %d, want 10", s.SpansDropped)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := NewRegistry()
	b := NewRegistry()
	a.RecordQuery(QuerySample{Latency: time.Microsecond, PointKernels: 4})
	b.RecordQuery(QuerySample{Latency: time.Microsecond, PointKernels: 6})
	b.RecordSpan(Span{Name: "x"})
	sa := a.Snapshot()
	sa.Merge(b.Snapshot())
	if sa.Queries != 2 || sa.Kernels.Sum != 10 || len(sa.Spans) != 1 {
		t.Errorf("merged: %+v", sa)
	}
}

// TestExposition checks the /metrics rendering: counters, cumulative
// histogram buckets, and the terminal +Inf line.
func TestExposition(t *testing.T) {
	r := NewRegistry()
	r.RecordQuery(QuerySample{Latency: 100 * time.Nanosecond, PointKernels: 3})
	r.RecordQuery(QuerySample{Latency: 200 * time.Nanosecond, PointKernels: 5})
	var b strings.Builder
	r.Snapshot().WriteMetrics(&b)
	out := b.String()
	for _, want := range []string{
		"tkdc_queries_total 2",
		"# TYPE tkdc_query_latency_ns histogram",
		"tkdc_query_latency_ns_count 2",
		"tkdc_query_latency_ns_bucket{le=\"+Inf\"} 2",
		"tkdc_query_kernels_sum 8",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative buckets must be non-decreasing.
	last := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "tkdc_query_latency_ns_bucket") {
			continue
		}
		n, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if n < last {
			t.Errorf("bucket counts decreased at %q", line)
		}
		last = n
	}
}

// TestRegistryConcurrent exercises the registry under parallel writers
// and snapshotters; run with -race.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.RecordQuery(QuerySample{Latency: time.Duration(i), PointKernels: int64(i)})
				if i%100 == 0 {
					r.RecordSpan(Span{Name: "tick"})
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Snapshot().Queries; got != 8*500 {
		t.Errorf("Queries = %d, want %d", got, 8*500)
	}
}
