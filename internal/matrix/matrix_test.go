package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromRowsAndAccessors(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("shape = %dx%d, want 3x2", m.Rows, m.Cols)
	}
	if m.At(1, 1) != 4 {
		t.Fatalf("At(1,1) = %v, want 4", m.At(1, 1))
	}
	m.Set(2, 0, 9)
	if m.Row(2)[0] != 9 {
		t.Fatal("Set/Row inconsistency")
	}
}

func TestFromRowsErrors(t *testing.T) {
	if _, err := FromRows(nil); err == nil {
		t.Fatal("empty input should error")
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged input should error")
	}
}

func TestMulVec(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := m.MulVec([]float64{1, 0, -1})
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MulVec = %v, want [-2 -2]", got)
	}
}

func TestMulVecPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on dimension mismatch")
		}
	}()
	m := NewDense(2, 3)
	m.MulVec([]float64{1, 2})
}

func TestCovarianceKnown(t *testing.T) {
	// Perfectly correlated columns.
	rows := [][]float64{{0, 0}, {1, 2}, {2, 4}}
	cov, means, err := Covariance(rows)
	if err != nil {
		t.Fatal(err)
	}
	if means[0] != 1 || means[1] != 2 {
		t.Fatalf("means = %v, want [1 2]", means)
	}
	// var(x) = 2/3, var(y) = 8/3, cov = 4/3.
	if math.Abs(cov.At(0, 0)-2.0/3) > 1e-12 ||
		math.Abs(cov.At(1, 1)-8.0/3) > 1e-12 ||
		math.Abs(cov.At(0, 1)-4.0/3) > 1e-12 ||
		cov.At(0, 1) != cov.At(1, 0) {
		t.Fatalf("covariance = %v", cov.Data)
	}
}

func TestCovarianceErrors(t *testing.T) {
	if _, _, err := Covariance(nil); err == nil {
		t.Fatal("empty dataset should error")
	}
	if _, _, err := Covariance([][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged dataset should error")
	}
}

func TestSymEigenDiagonal(t *testing.T) {
	a, _ := FromRows([][]float64{{3, 0}, {0, 1}})
	vals, vecs, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Fatalf("eigenvalues = %v, want [3 1]", vals)
	}
	// First eigenvector ≈ ±e1.
	if math.Abs(math.Abs(vecs.At(0, 0))-1) > 1e-10 || math.Abs(vecs.At(0, 1)) > 1e-10 {
		t.Fatalf("eigenvector 0 = %v", vecs.Row(0))
	}
}

func TestSymEigen2x2Known(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1)/√2, (1,-1)/√2.
	a, _ := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Fatalf("eigenvalues = %v, want [3 1]", vals)
	}
	v0 := vecs.Row(0)
	if math.Abs(math.Abs(v0[0])-1/math.Sqrt2) > 1e-9 || math.Abs(v0[0]-v0[1]) > 1e-9 {
		t.Fatalf("eigenvector 0 = %v, want ±(1,1)/√2", v0)
	}
}

func TestSymEigenRejectsAsymmetric(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	if _, _, err := SymEigen(a); err == nil {
		t.Fatal("asymmetric matrix should error")
	}
	b := NewDense(2, 3)
	if _, _, err := SymEigen(b); err == nil {
		t.Fatal("non-square matrix should error")
	}
}

// Property: for random symmetric matrices, A·v = λ·v for every pair and
// the eigenvectors are orthonormal.
func TestSymEigenProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs, err := SymEigen(a)
		if err != nil {
			return false
		}
		for k := 0; k < n; k++ {
			v := vecs.Row(k)
			av := a.MulVec(v)
			for i := 0; i < n; i++ {
				if math.Abs(av[i]-vals[k]*v[i]) > 1e-7 {
					return false
				}
			}
			// Orthonormality.
			for k2 := 0; k2 < n; k2++ {
				dot := 0.0
				v2 := vecs.Row(k2)
				for i := 0; i < n; i++ {
					dot += v[i] * v2[i]
				}
				want := 0.0
				if k == k2 {
					want = 1
				}
				if math.Abs(dot-want) > 1e-8 {
					return false
				}
			}
			// Descending order.
			if k > 0 && vals[k] > vals[k-1]+1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFitPCARecoversDominantDirection(t *testing.T) {
	// Data stretched along (1, 1) with tiny orthogonal noise.
	rng := rand.New(rand.NewSource(3))
	rows := make([][]float64, 500)
	for i := range rows {
		a := rng.NormFloat64() * 10
		b := rng.NormFloat64() * 0.1
		rows[i] = []float64{a + b, a - b}
	}
	p, err := FitPCA(rows, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := p.Components.Row(0)
	// Should align with ±(1,1)/√2.
	if math.Abs(math.Abs(c[0])-1/math.Sqrt2) > 0.01 || math.Abs(c[0]-c[1]) > 0.02 {
		t.Fatalf("dominant component = %v, want ±(1,1)/√2", c)
	}
	if p.ExplainedVariance[0] < 50 {
		t.Fatalf("explained variance = %v, want ≈100", p.ExplainedVariance[0])
	}
}

func TestPCATransformReducesDimension(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rows := make([][]float64, 200)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	p, err := FitPCA(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := p.TransformAll(rows)
	if len(out) != len(rows) || len(out[0]) != 2 {
		t.Fatalf("TransformAll shape = %dx%d, want %dx2", len(out), len(out[0]), len(rows))
	}
}

func TestPCAErrors(t *testing.T) {
	if _, err := FitPCA(nil, 1); err == nil {
		t.Fatal("empty dataset should error")
	}
	rows := [][]float64{{1, 2}, {3, 4}}
	if _, err := FitPCA(rows, 0); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := FitPCA(rows, 3); err == nil {
		t.Fatal("k>d should error")
	}
}

// Property: reconstruction error is non-increasing as k grows, and k=d
// reconstruction is (numerically) exact.
func TestPCAReconstructionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const d = 4
	rows := make([][]float64, 300)
	for i := range rows {
		row := make([]float64, d)
		base := rng.NormFloat64()
		for j := range row {
			row[j] = base*float64(j+1) + rng.NormFloat64()*0.5
		}
		rows[i] = row
	}
	prev := math.Inf(1)
	for k := 1; k <= d; k++ {
		p, err := FitPCA(rows, k)
		if err != nil {
			t.Fatal(err)
		}
		errSum := 0.0
		for _, row := range rows {
			rec := p.InverseTransform(p.Transform(row))
			for j := range row {
				dlt := row[j] - rec[j]
				errSum += dlt * dlt
			}
		}
		if errSum > prev+1e-6 {
			t.Fatalf("reconstruction error increased at k=%d: %v > %v", k, errSum, prev)
		}
		prev = errSum
	}
	if prev > 1e-6 {
		t.Fatalf("full-rank reconstruction error = %v, want ≈0", prev)
	}
}

func BenchmarkSymEigen64(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	const n = 64
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SymEigen(a); err != nil {
			b.Fatal(err)
		}
	}
}
