package bench

import (
	"fmt"

	"tkdc/internal/dataset"
)

// fig7Panel is one dataset panel of Figure 7.
type fig7Panel struct {
	name   string
	d      int
	paperN int
	floorN int
	load   func(n int, seed int64) ([][]float64, error)
	// binnedOK marks panels where the ks-style binned baseline applies
	// (d ≤ 4).
	binnedOK bool
	// bandwidthFactor overrides b (the paper uses b = 3 for PCA-mnist).
	bandwidthFactor float64
}

func fig7Panels() []fig7Panel {
	return []fig7Panel{
		{name: "gauss d=2", d: 2, paperN: 100_000_000, floorN: 20_000, binnedOK: true,
			load: func(n int, seed int64) ([][]float64, error) { return dataset.Gauss(n, 2, seed), nil }},
		{name: "tmy3 d=4", d: 4, paperN: 1_820_000, floorN: 10_000, binnedOK: true,
			load: func(n int, seed int64) ([][]float64, error) { return dataset.TakeColumns(dataset.TMY3(n, seed), 4) }},
		{name: "tmy3 d=8", d: 8, paperN: 1_820_000, floorN: 10_000,
			load: func(n int, seed int64) ([][]float64, error) { return dataset.TMY3(n, seed), nil }},
		{name: "home d=10", d: 10, paperN: 929_000, floorN: 8_000,
			load: func(n int, seed int64) ([][]float64, error) { return dataset.Home(n, seed), nil }},
		{name: "hep d=27", d: 27, paperN: 10_500_000, floorN: 6_000,
			load: func(n int, seed int64) ([][]float64, error) { return dataset.HEP(n, seed), nil }},
		{name: "sift d=64", d: 64, paperN: 11_200_000, floorN: 4_000,
			load: func(n int, seed int64) ([][]float64, error) { return dataset.TakeColumns(dataset.SIFT(n, seed), 64) }},
		{name: "mnist d=64", d: 64, paperN: 70_000, floorN: 3_000, bandwidthFactor: 3,
			load: func(n int, seed int64) ([][]float64, error) {
				return dataset.PCAReduce(dataset.MNIST(n, seed), 64, 3000, seed)
			}},
		{name: "mnist d=256", d: 256, paperN: 70_000, floorN: 2_000, bandwidthFactor: 3,
			load: func(n int, seed int64) ([][]float64, error) {
				return dataset.PCAReduce(dataset.MNIST(n, seed), 256, 3000, seed)
			}},
	}
}

// Figure7 measures end-to-end (training-amortized) classification
// throughput for every algorithm on every dataset panel.
func Figure7(opts Options) ([]Table, error) {
	opts = opts.normalized()
	t := Table{
		Title:   "Figure 7: End-to-end throughput (queries/s, training amortized)",
		Columns: []string{"dataset", "n", "d", "tkdc", "simple", "nocut(~sklearn)", "rkde", "binned(~ks)"},
		Notes: []string{
			"nocut reproduces scikit-learn's tolerance-only tree pruning; binned reproduces the ks package's binning (d<=4 only)",
			"paper shape: tkdc leads everywhere except 2-d where ks binning wins; gap narrows in very high d",
		},
	}
	for _, p := range fig7Panels() {
		n := opts.scaled(p.paperN, p.floorN)
		data, err := p.load(n, opts.Seed)
		if err != nil {
			return nil, err
		}
		bw := p.bandwidthFactor
		if bw == 0 {
			bw = 1
		}

		cfg := opts.config()
		cfg.BandwidthFactor = bw
		tk, err := MeasureTKDC(data, cfg, opts.MaxQueries)
		if err != nil {
			return nil, fmt.Errorf("tkdc on %s: %w", p.name, err)
		}

		params := BaselineParams{BandwidthFactor: bw}
		cells := []string{p.name, fmt.Sprintf("%d", n), fmt.Sprintf("%d", p.d), fmtRate(tk.EffectiveThroughput())}
		for _, kind := range []BaselineKind{Simple, NoCut, RKDE, Binned} {
			if kind == Binned && !p.binnedOK {
				cells = append(cells, "-")
				continue
			}
			// Baselines are slow; cap their measured queries harder.
			q := opts.MaxQueries
			if kind == Simple || kind == RKDE {
				if q > 500 {
					q = 500
				}
			}
			m, err := MeasureBaseline(kind, data, params, q)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", kind, p.name, err)
			}
			cells = append(cells, fmtRate(m.EffectiveThroughput()))
		}
		t.AddRow(cells...)
	}
	t.Fprint(opts.Out)
	return []Table{t}, nil
}
