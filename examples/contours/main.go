// Contours reproduces the Figure 2a scenario: probability-density contour
// bands over iris-like sepal measurements, using the levelset package. A
// quantile ladder trains one classifier per density level; stacking the
// rasterized classifications yields the nested bands a biologist would
// read as region boundaries between flower populations, and marching
// squares extracts the actual contour polyline of the outermost level.
package main

import (
	"fmt"
	"log"

	"tkdc"
	"tkdc/internal/dataset"
	"tkdc/levelset"
)

func main() {
	data := dataset.Iris2D(30000, 3)

	// One classifier per contour level: each t(p) is a density level set.
	levels := []float64{0.05, 0.25, 0.50, 0.75}
	cfg := tkdc.DefaultConfig()
	cfg.Seed = 3
	ladder, err := levelset.TrainLadder(data, levels, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range ladder.Levels() {
		fmt.Printf("density level t(%.2f) = %.4g\n", p, ladder.Thresholds()[i])
	}

	// Rasterize each level with the dual-tree batch path and stack the
	// masks: a point's band is the number of level sets containing it.
	window := levelset.Window{
		XMin: 1.8, XMax: 4.6, // sepal width
		YMin: 4.0, YMax: 8.2, // sepal length
		W: 64, H: 24,
	}
	glyphs := []byte{'.', ':', '+', '#', '@'}
	bands := make([][]int, window.H)
	for j := range bands {
		bands[j] = make([]int, window.W)
	}
	for i := range levels {
		mask, err := levelset.ClassifyWindow(ladder.Classifier(i), window)
		if err != nil {
			log.Fatal(err)
		}
		for j := 0; j < window.H; j++ {
			for x := 0; x < window.W; x++ {
				if mask[j][x] {
					bands[j][x]++
				}
			}
		}
	}

	fmt.Println("\nsepal width (x) vs sepal length (y) density contours:")
	for j := window.H - 1; j >= 0; j-- {
		line := make([]byte, window.W)
		for x := 0; x < window.W; x++ {
			line[x] = glyphs[bands[j][x]]
		}
		fmt.Println(string(line))
	}
	fmt.Println("\nlegend: '.' sparsest band … '@' densest band; each boundary is a contour of the KDE")
	fmt.Println("the two dense blobs are the setosa mode (upper left) and the overlapping versicolor/virginica mode")

	// Extract the outermost contour as a polyline (what a plotting
	// library would draw as the region boundary).
	segs, err := levelset.Contour(ladder.Classifier(0), levelset.Window{
		XMin: 1.8, XMax: 4.6, YMin: 4.0, YMax: 8.2, W: 96, H: 96,
	}, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmarching-squares boundary of the p=0.05 level set: %d segments\n", len(segs))
	for _, s := range segs[:3] {
		fmt.Printf("  (%.2f, %.2f) — (%.2f, %.2f)\n", s.X1, s.Y1, s.X2, s.Y2)
	}
	fmt.Println("  ...")
}
