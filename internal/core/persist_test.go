package core

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	data := gauss2D(rng, 1500)
	cfg := testConfig()
	orig, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if loaded.Threshold() != orig.Threshold() {
		t.Fatalf("threshold changed: %g vs %g", loaded.Threshold(), orig.Threshold())
	}
	lo1, hi1 := orig.ThresholdBounds()
	lo2, hi2 := loaded.ThresholdBounds()
	if lo1 != lo2 || hi1 != hi2 {
		t.Fatal("threshold bounds changed")
	}
	if loaded.N() != orig.N() || loaded.Dim() != orig.Dim() {
		t.Fatal("shape changed")
	}
	if loaded.TrainStats().BootstrapRounds != orig.TrainStats().BootstrapRounds {
		t.Fatal("train stats not preserved")
	}

	// Every query must classify identically — the index rebuild is
	// deterministic and the threshold is persisted exactly.
	for trial := 0; trial < 300; trial++ {
		q := []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		a, err := orig.Score(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Score(q)
		if err != nil {
			t.Fatal(err)
		}
		if a.Label != b.Label || a.Lower != b.Lower || a.Upper != b.Upper {
			t.Fatalf("query %v: original %+v, loaded %+v", q, a, b)
		}
	}
}

func TestSaveLoadPreservesGridState(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	data := gauss2D(rng, 800)

	// With grid.
	withGrid, err := Train(data, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := withGrid.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.grid == nil {
		t.Fatal("grid not rebuilt on load")
	}

	// Without grid.
	cfg := testConfig()
	cfg.DisableGrid = true
	noGrid, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := noGrid.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err = Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.grid != nil {
		t.Fatal("grid rebuilt despite DisableGrid")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob stream")); err == nil {
		t.Fatal("garbage input should error")
	}
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Fatal("empty input should error")
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	data := gauss2D(rng, 300)
	c, err := Train(data, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if modelVersion != 3 {
		t.Fatalf("update TestLoadRejectsWrongVersion for version %d", modelVersion)
	}
	if _, err := Load(&buf); err != nil {
		t.Fatal(err)
	}

	// A snapshot from a future (unknown) format version must be rejected.
	future := modelSnapshot{
		Version: modelVersion + 1,
		Config:  testConfig(),
		Flat:    []float64{1, 2},
		Dim:     2,
	}
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(&future); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil || !strings.Contains(err.Error(), "unsupported model version") {
		t.Fatalf("future version error = %v, want unsupported-version", err)
	}
}

// TestSaveLoadParallelBitIdentical trains the same data sequentially and
// with Workers=4, and checks the two models — and a save/load round trip
// of the parallel one (Load rebuilds the index and grid through the same
// parallel path) — agree on every score bit-for-bit.
func TestSaveLoadParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	data := gauss2D(rng, 1500)
	seq, err := Train(data, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Workers = 4
	par, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Threshold() != par.Threshold() {
		t.Fatalf("threshold: sequential %.17g, parallel %.17g", seq.Threshold(), par.Threshold())
	}

	var buf bytes.Buffer
	if err := par.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.TrainStats().Workers; got != 4 {
		t.Fatalf("loaded TrainStats.Workers = %d, want 4", got)
	}
	for trial := 0; trial < 200; trial++ {
		q := []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		a, err := seq.Score(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Score(q)
		if err != nil {
			t.Fatal(err)
		}
		if a.Label != b.Label || a.Lower != b.Lower || a.Upper != b.Upper {
			t.Fatalf("query %d: sequential %+v, parallel-loaded %+v", trial, a, b)
		}
	}
}
