package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV emits rows as comma-separated values with full float64
// round-trip precision, one row per line, no header.
func WriteCSV(w io.Writer, rows [][]float64) error {
	bw := bufio.NewWriter(w)
	buf := make([]byte, 0, 32)
	for _, row := range rows {
		for j, v := range row {
			if j > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			buf = strconv.AppendFloat(buf[:0], v, 'g', -1, 64)
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses comma-separated numeric rows. Blank lines are skipped; a
// non-numeric first line is treated as a header and skipped. All data
// rows must have the same number of columns.
func ReadCSV(r io.Reader) ([][]float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var rows [][]float64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		row := make([]float64, len(fields))
		ok := true
		for j, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				ok = false
				break
			}
			row[j] = v
		}
		if !ok {
			if len(rows) == 0 && lineNo == 1 {
				continue // header
			}
			return nil, fmt.Errorf("dataset: line %d is not numeric", lineNo)
		}
		if len(rows) > 0 && len(row) != len(rows[0]) {
			return nil, fmt.Errorf("dataset: line %d has %d columns, want %d", lineNo, len(row), len(rows[0]))
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: no data rows")
	}
	return rows, nil
}
