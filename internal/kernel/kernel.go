// Package kernel implements the kernel functions and bandwidth selection
// rules used by tKDC (Section 2.4 of the paper).
//
// The paper adopts product kernels with a diagonal bandwidth matrix
// H = diag(h₁², …, h_d²). For the Gaussian family this makes the kernel a
// function of the single scalar
//
//	s = Σ_i (x_i − y_i)² / h_i²
//
// (the squared Mahalanobis distance under H), which is the quantity the
// spatial index computes bounds on. Every Kernel in this package is
// radial in that scaled space and monotonically non-increasing in s — the
// property the k-d tree's min/max distance bounds rely on.
package kernel

import (
	"errors"
	"fmt"
	"math"
)

// Kernel is a probability-density kernel that is radial and non-increasing
// in the bandwidth-scaled squared distance s = Σ_i diff_i²/h_i².
type Kernel interface {
	// Dim returns the data dimensionality d.
	Dim() int
	// Bandwidths returns the per-dimension bandwidths h_i (not copied;
	// callers must not modify).
	Bandwidths() []float64
	// InvBandwidthsSq returns 1/h_i² per dimension (not copied).
	InvBandwidthsSq() []float64
	// FromScaledSqDist returns the kernel density at scaled squared
	// distance s ≥ 0.
	FromScaledSqDist(s float64) float64
	// AtZero returns the kernel's maximum value K(0) = FromScaledSqDist(0).
	AtZero() float64
	// SupportSqRadius returns the scaled squared distance beyond which the
	// kernel is exactly zero, or +Inf for infinite-support kernels.
	SupportSqRadius() float64
	// Name identifies the kernel family ("gaussian", "epanechnikov").
	Name() string
}

// ScaledSqDist returns Σ_i (a_i−b_i)²·invH2_i, the squared distance in
// bandwidth-scaled space. The three slices must have equal length.
func ScaledSqDist(a, b, invH2 []float64) float64 {
	s := 0.0
	for i, ai := range a {
		d := ai - b[i]
		s += d * d * invH2[i]
	}
	return s
}

// At evaluates a kernel at the difference between two points.
func At(k Kernel, a, b []float64) float64 {
	return k.FromScaledSqDist(ScaledSqDist(a, b, k.InvBandwidthsSq()))
}

// Sum evaluates the kernel at x against every row of a flat row-major
// buffer (row width len(x)) and returns the sum of kernel values — the
// batch form of leaf expansion. Concrete kernels get a direct loop with
// no per-point interface dispatch; other implementations fall back to a
// generic sweep. The summation order matches evaluating rows first to
// last, so results are bit-identical to the scalar loop.
func Sum(k Kernel, x, rows []float64) float64 {
	switch kk := k.(type) {
	case *Gaussian:
		return kk.SumFlat(x, rows)
	case *Epanechnikov:
		return kk.SumFlat(x, rows)
	}
	d := len(x)
	invH2 := k.InvBandwidthsSq()
	// Hoist the support radius out of the loop: beyond it the kernel is
	// exactly zero, so the interface call can be skipped entirely — the
	// same short-circuit the concrete SumFlat fast paths apply inline.
	support := k.SupportSqRadius()
	sum := 0.0
	for off := 0; off < len(rows); off += d {
		s := 0.0
		for j, xj := range x {
			diff := xj - rows[off+j]
			s += diff * diff * invH2[j]
		}
		if s >= support {
			continue
		}
		sum += k.FromScaledSqDist(s)
	}
	return sum
}

func validateBandwidths(h []float64) error {
	if len(h) == 0 {
		return errors.New("kernel: empty bandwidth vector")
	}
	for i, hi := range h {
		if math.IsNaN(hi) || math.IsInf(hi, 0) || hi <= 0 {
			return fmt.Errorf("kernel: bandwidth h[%d] = %v must be a positive finite number", i, hi)
		}
	}
	return nil
}

// Gaussian is the Gaussian product kernel of Equation 2 with diagonal
// bandwidth:
//
//	K_H(x) = (2π)^{−d/2} |H|^{−1/2} · exp(−½ Σ x_i²/h_i²)
type Gaussian struct {
	h       []float64
	invH2   []float64
	norm    float64
	logNorm float64
}

// NewGaussian builds a Gaussian product kernel from per-dimension
// bandwidths. All bandwidths must be positive and finite.
//
// In very high dimensions the normalization constant (2π)^{−d/2}·Π 1/h_i
// can fall outside float64's range entirely (the mnist-at-256-dimensions
// underflow the paper works around with b = 3). Density *classification*
// is invariant to a common positive scale — both the densities and the
// quantile threshold derived from them scale together — so when the
// constant is unrepresentable the kernel silently switches to the
// unnormalized form K(s) = exp(−s/2). LogNorm always reports the true
// log constant and NormalizedValues reports whether values returned by
// FromScaledSqDist are true probability densities.
func NewGaussian(h []float64) (*Gaussian, error) {
	if err := validateBandwidths(h); err != nil {
		return nil, err
	}
	g := &Gaussian{
		h:     append([]float64(nil), h...),
		invH2: make([]float64, len(h)),
	}
	// |H|^{1/2} = Π h_i for diagonal H. Accumulate the log to avoid
	// overflow/underflow in high dimensions, where Π (√(2π)·h_i) spans
	// hundreds of orders of magnitude.
	logNorm := 0.0
	for i, hi := range h {
		g.invH2[i] = 1 / (hi * hi)
		logNorm -= math.Log(math.Sqrt(2*math.Pi) * hi)
	}
	g.logNorm = logNorm
	g.norm = math.Exp(logNorm)
	if g.norm == 0 || math.IsInf(g.norm, 0) {
		g.norm = 1
	}
	return g, nil
}

// LogNorm returns the logarithm of the true normalization constant,
// even when the constant itself is not representable as a float64.
func (g *Gaussian) LogNorm() float64 { return g.logNorm }

// NormalizedValues reports whether FromScaledSqDist returns true
// probability densities (false when the normalization constant is
// unrepresentable and the kernel operates in scale-invariant mode).
func (g *Gaussian) NormalizedValues() bool { return g.norm != 1 || g.logNorm == 0 }

// Dim returns the data dimensionality.
func (g *Gaussian) Dim() int { return len(g.h) }

// Bandwidths returns the per-dimension bandwidths.
func (g *Gaussian) Bandwidths() []float64 { return g.h }

// InvBandwidthsSq returns 1/h_i² per dimension.
func (g *Gaussian) InvBandwidthsSq() []float64 { return g.invH2 }

// gaussianCutoffSq truncates the Gaussian at scaled squared distance
// 1488: exp(−1488/2) = exp(−744) is at the float64 subnormal boundary
// (≈ 2.5e−324), so defining K(s ≥ 1488) = 0 changes any density by at
// most one subnormal per point while letting traversals prune entire
// far subtrees without calling exp. The truncated kernel remains
// monotone non-increasing, which is all the bound machinery requires.
const gaussianCutoffSq = 1488

// FromScaledSqDist returns norm·exp(−s/2), truncated to exactly zero at
// the subnormal boundary (see gaussianCutoffSq).
func (g *Gaussian) FromScaledSqDist(s float64) float64 {
	if s >= gaussianCutoffSq {
		return 0
	}
	// exp(−0) = 1 exactly, so the peak value needs no exp call. Box
	// bounds hit s = 0 on every node containing the query point, which
	// makes this the hottest input of the whole traversal.
	if s == 0 {
		return g.norm
	}
	return g.expTail(s)
}

// expTail is the general-case body of FromScaledSqDist, kept out of line
// so the truncation and peak fast paths above stay within the inlining
// budget: traversals then pay a call only when exp is genuinely needed.
//
//go:noinline
func (g *Gaussian) expTail(s float64) float64 {
	return g.norm * math.Exp(-0.5*s)
}

// SumFlat sums the kernel over every row of a flat row-major buffer with
// row width len(x), sweeping the buffer contiguously.
func (g *Gaussian) SumFlat(x, rows []float64) float64 {
	d := len(x)
	inv := g.invH2[:d]
	sum := 0.0
	// Unrolled low-dimensional sweeps: same per-row expression in the
	// same row order as the generic loop, so the result is bit-identical
	// — only the loop bookkeeping differs.
	switch d {
	case 1:
		x0, inv0 := x[0], inv[0]
		for _, r := range rows {
			diff := x0 - r
			if s := diff * diff * inv0; s < gaussianCutoffSq {
				sum += g.norm * math.Exp(-0.5*s)
			}
		}
		return sum
	case 2:
		x0, x1 := x[0], x[1]
		inv0, inv1 := inv[0], inv[1]
		for off := 0; off+1 < len(rows); off += 2 {
			d0 := x0 - rows[off]
			d1 := x1 - rows[off+1]
			if s := d0*d0*inv0 + d1*d1*inv1; s < gaussianCutoffSq {
				sum += g.norm * math.Exp(-0.5*s)
			}
		}
		return sum
	}
	for off := 0; off < len(rows); off += d {
		row := rows[off : off+d : off+d]
		s := 0.0
		for j, xj := range x {
			diff := xj - row[j]
			s += diff * diff * inv[j]
		}
		if s >= gaussianCutoffSq {
			continue
		}
		sum += g.norm * math.Exp(-0.5*s)
	}
	return sum
}

// AtZero returns the kernel's peak value.
func (g *Gaussian) AtZero() float64 { return g.norm }

// SupportSqRadius returns the scaled squared distance beyond which the
// (truncated) Gaussian is exactly zero.
func (g *Gaussian) SupportSqRadius() float64 { return gaussianCutoffSq }

// Name returns "gaussian".
func (g *Gaussian) Name() string { return "gaussian" }

// Epanechnikov is the spherical (radial) Epanechnikov kernel in the
// bandwidth-scaled space:
//
//	K_H(x) = c_d / (Π h_i) · (1 − s)  for s = Σ x_i²/h_i² < 1, else 0
//
// where c_d = (d+2) / (2·V_d) and V_d is the volume of the d-dimensional
// unit ball, so that the kernel integrates to one. It is offered as a
// finite-support alternative to the Gaussian (an extension beyond the
// paper's default); its bounded support makes the threshold rule able to
// prune entire subtrees to an exact zero contribution.
type Epanechnikov struct {
	h     []float64
	invH2 []float64
	norm  float64
}

// NewEpanechnikov builds a spherical Epanechnikov kernel from
// per-dimension bandwidths.
func NewEpanechnikov(h []float64) (*Epanechnikov, error) {
	if err := validateBandwidths(h); err != nil {
		return nil, err
	}
	e := &Epanechnikov{
		h:     append([]float64(nil), h...),
		invH2: make([]float64, len(h)),
	}
	d := float64(len(h))
	// log V_d = (d/2)·log π − lgamma(d/2 + 1).
	lg, _ := math.Lgamma(d/2 + 1)
	logVd := d/2*math.Log(math.Pi) - lg
	logNorm := math.Log(d+2) - math.Log(2) - logVd
	for i, hi := range h {
		e.invH2[i] = 1 / (hi * hi)
		logNorm -= math.Log(hi)
	}
	e.norm = math.Exp(logNorm)
	return e, nil
}

// Dim returns the data dimensionality.
func (e *Epanechnikov) Dim() int { return len(e.h) }

// Bandwidths returns the per-dimension bandwidths.
func (e *Epanechnikov) Bandwidths() []float64 { return e.h }

// InvBandwidthsSq returns 1/h_i² per dimension.
func (e *Epanechnikov) InvBandwidthsSq() []float64 { return e.invH2 }

// FromScaledSqDist returns norm·(1−s) for s < 1 and 0 otherwise.
func (e *Epanechnikov) FromScaledSqDist(s float64) float64 {
	if s >= 1 {
		return 0
	}
	return e.norm * (1 - s)
}

// SumFlat sums the kernel over every row of a flat row-major buffer with
// row width len(x), sweeping the buffer contiguously.
func (e *Epanechnikov) SumFlat(x, rows []float64) float64 {
	d := len(x)
	inv := e.invH2[:d]
	sum := 0.0
	for off := 0; off < len(rows); off += d {
		row := rows[off : off+d : off+d]
		s := 0.0
		for j, xj := range x {
			diff := xj - row[j]
			s += diff * diff * inv[j]
		}
		if s >= 1 {
			continue
		}
		sum += e.norm * (1 - s)
	}
	return sum
}

// AtZero returns the kernel's peak value.
func (e *Epanechnikov) AtZero() float64 { return e.norm }

// SupportSqRadius returns 1: the kernel vanishes at scaled distance 1.
func (e *Epanechnikov) SupportSqRadius() float64 { return 1 }

// Name returns "epanechnikov".
func (e *Epanechnikov) Name() string { return "epanechnikov" }
