package core

import (
	"bytes"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"tkdc/internal/telemetry"
)

// TestRecorderReceivesQuerySamples checks the full wiring: a classifier
// built with a registry recorder feeds it one sample per query, and the
// registry's work histograms agree with the classifier's own counters.
func TestRecorderReceivesQuerySamples(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := gauss2D(rng, 1500)
	reg := telemetry.NewRegistry()
	cfg := testConfig()
	cfg.Recorder = reg
	c, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg.Reset() // drop the training spans; measure queries only

	const queries = 300
	for i := 0; i < queries; i++ {
		q := []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		if _, err := c.Score(q); err != nil {
			t.Fatal(err)
		}
	}

	snap := reg.Snapshot()
	if snap.Queries != queries {
		t.Fatalf("registry queries = %d, want %d", snap.Queries, queries)
	}
	if got := snap.LatencyNS.Count(); got != queries {
		t.Fatalf("latency histogram count = %d, want %d", got, queries)
	}
	if got := snap.Kernels.Count(); got != queries {
		t.Fatalf("kernels histogram count = %d, want %d", got, queries)
	}
	st := c.Stats()
	if snap.Kernels.Sum != st.Kernels() {
		t.Fatalf("kernels histogram sum = %d, want Stats().Kernels() = %d", snap.Kernels.Sum, st.Kernels())
	}
	if snap.Nodes.Sum != st.NodesVisited {
		t.Fatalf("nodes histogram sum = %d, want Stats().NodesVisited = %d", snap.Nodes.Sum, st.NodesVisited)
	}
	if snap.GridHits != st.GridHits {
		t.Fatalf("registry grid hits = %d, want Stats().GridHits = %d", snap.GridHits, st.GridHits)
	}
	if snap.GridHits+snap.GridMisses != queries {
		t.Fatalf("grid hits+misses = %d, want %d (grid enabled: every query checks)", snap.GridHits+snap.GridMisses, queries)
	}
	gh, gm := c.GridCounters()
	if gh != snap.GridHits || gm != snap.GridMisses {
		t.Fatalf("GridCounters() = (%d, %d), want (%d, %d)", gh, gm, snap.GridHits, snap.GridMisses)
	}
	if snap.LatencyNS.Sum <= 0 {
		t.Fatal("latency histogram sum should be positive")
	}
}

// TestTrainPhasesAccountForAllKernels pins the phase-trace invariant:
// the bootstrap-round and refine-pass span kernel counts sum exactly to
// TrainStats.TrainKernels, and the trace names follow the documented
// shapes.
func TestTrainPhasesAccountForAllKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := gauss2D(rng, 1500)
	c, err := Train(data, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := c.TrainStats()
	if len(ts.Phases) == 0 {
		t.Fatal("TrainStats.Phases is empty")
	}
	var kernels int64
	var rounds, refines, assembles int
	for _, sp := range ts.Phases {
		kernels += sp.Kernels
		switch {
		case strings.HasPrefix(sp.Name, "bootstrap/round-"):
			rounds++
		case strings.HasPrefix(sp.Name, "refine/pass-"):
			refines++
		case sp.Name == "assemble":
			assembles++
			if sp.Kernels != 0 {
				t.Errorf("assemble span counts %d kernels, want 0", sp.Kernels)
			}
			if sp.Items != int64(len(data)) {
				t.Errorf("assemble span items = %d, want %d", sp.Items, len(data))
			}
		default:
			t.Errorf("unexpected phase name %q", sp.Name)
		}
	}
	if kernels != ts.TrainKernels {
		t.Fatalf("phase kernel sum = %d, want TrainKernels = %d", kernels, ts.TrainKernels)
	}
	if rounds != ts.BootstrapRounds {
		t.Fatalf("bootstrap round spans = %d, want BootstrapRounds = %d", rounds, ts.BootstrapRounds)
	}
	if assembles != 1 {
		t.Fatalf("assemble spans = %d, want 1", assembles)
	}
	if refines < 1 {
		t.Fatal("no refine/pass spans recorded")
	}
}

// TestTrainingBitExactWithRecorder is the telemetry-off purity check:
// attaching a recorder must not perturb training — same threshold, same
// bounds, same labels.
func TestTrainingBitExactWithRecorder(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	data := gauss2D(rng, 1500)

	plain, err := Train(data, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Recorder = telemetry.NewRegistry()
	traced, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if plain.Threshold() != traced.Threshold() {
		t.Fatalf("threshold differs with recorder: %g vs %g", plain.Threshold(), traced.Threshold())
	}
	pl, ph := plain.ThresholdBounds()
	tl, th := traced.ThresholdBounds()
	if pl != tl || ph != th {
		t.Fatalf("threshold bounds differ: [%g, %g] vs [%g, %g]", pl, ph, tl, th)
	}
	for i := 0; i < 200; i++ {
		q := []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		a, err := plain.Classify(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := traced.Classify(q)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("query %d: label differs with recorder: %v vs %v", i, a, b)
		}
	}
}

// TestSetRecorderOnLoadedModel checks the Save/Load telemetry story: the
// recorder never persists, a loaded model starts with telemetry off, and
// SetRecorder attaches a live registry that then sees queries.
func TestSetRecorderOnLoadedModel(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	data := gauss2D(rng, 1200)
	cfg := testConfig()
	cfg.Recorder = telemetry.NewRegistry()
	c, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatalf("save with recorder attached: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.Score([]float64{0, 0}); err != nil {
		t.Fatal(err)
	}
	if snap := loaded.Snapshot(); snap.Queries != 0 {
		t.Fatalf("loaded model recorded %d queries before SetRecorder; telemetry should be off", snap.Queries)
	}
	// Phases persist as model state even though the recorder does not.
	if len(loaded.TrainStats().Phases) == 0 {
		t.Fatal("loaded model lost TrainStats.Phases")
	}

	reg := telemetry.NewRegistry()
	loaded.SetRecorder(reg)
	const queries = 50
	for i := 0; i < queries; i++ {
		if _, err := loaded.Score([]float64{rng.NormFloat64(), rng.NormFloat64()}); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Snapshot().Queries; got != queries {
		t.Fatalf("registry saw %d queries after SetRecorder, want %d", got, queries)
	}
	loaded.SetRecorder(nil) // nil restores the no-op
	if _, err := loaded.Score([]float64{0, 0}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Queries; got != queries {
		t.Fatalf("detached registry still receives samples: %d queries", got)
	}
}

// TestSnapshotWithoutRecorder checks that Snapshot degrades to a zero
// value instead of panicking when no registry is attached.
func TestSnapshotWithoutRecorder(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	c, err := Train(gauss2D(rng, 800), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Score([]float64{0, 0}); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	if snap.Queries != 0 || snap.LatencyNS.Count() != 0 {
		t.Fatalf("no-op recorder produced a non-zero snapshot: %+v", snap)
	}
}

// TestDualTreeBatchSpan checks the batch path records one span per
// dual-tree pass (per-query latency being meaningless there) while the
// work still lands in the coherent counters.
func TestDualTreeBatchSpan(t *testing.T) {
	skipUnlessTreeEfficiency(t)
	rng := rand.New(rand.NewSource(51))
	data := gauss2D(rng, 1200)
	reg := telemetry.NewRegistry()
	cfg := testConfig()
	cfg.Recorder = reg
	c, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg.Reset()

	batch := data[:64]
	if _, err := c.ClassifyAllDualTree(batch); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "dualtree/batch" {
		t.Fatalf("spans = %+v, want exactly one dualtree/batch span", snap.Spans)
	}
	if snap.Spans[0].Items != int64(len(batch)) {
		t.Fatalf("span items = %d, want %d", snap.Spans[0].Items, len(batch))
	}
	if got := c.Stats().Queries; got != int64(len(batch)) {
		t.Fatalf("Stats().Queries = %d, want %d", got, len(batch))
	}
}

// TestStatsCoherentUnderConcurrency is the torn-snapshot regression test
// (run with -race): queries hammer the classifier while a reader
// continuously snapshots Stats. With the grid disabled every committed
// query performed at least the root's two bound kernels, so any coherent
// snapshot satisfies BoundKernels >= 2*Queries; the old split-atomic
// implementation could expose a query counted before its work.
func TestStatsCoherentUnderConcurrency(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	data := gauss2D(rng, 1200)
	cfg := testConfig()
	cfg.DisableGrid = true
	c, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := c.Stats() // training-pass work is already committed

	const writers = 4
	const queriesPer = 400
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < queriesPer; i++ {
				q := []float64{r.NormFloat64() * 3, r.NormFloat64() * 3}
				if _, err := c.Score(q); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(w))
	}
	go func() { wg.Wait(); close(done) }()

	var prev Counters
	for {
		select {
		case <-done:
			final := c.Stats()
			if got := final.Queries - base.Queries; got != writers*queriesPer {
				t.Fatalf("final Queries delta = %d, want %d", got, writers*queriesPer)
			}
			return
		default:
			s := c.Stats()
			if s.BoundKernels-base.BoundKernels < 2*(s.Queries-base.Queries) {
				t.Fatalf("torn snapshot: %d queries committed with only %d bound kernels",
					s.Queries-base.Queries, s.BoundKernels-base.BoundKernels)
			}
			if s.Queries < prev.Queries || s.BoundKernels < prev.BoundKernels ||
				s.PointKernels < prev.PointKernels || s.NodesVisited < prev.NodesVisited {
				t.Fatalf("counters went backwards: %+v after %+v", s, prev)
			}
			prev = s
		}
	}
}
