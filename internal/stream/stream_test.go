package stream

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"tkdc/internal/core"
	"tkdc/internal/telemetry"
)

// gauss2D generates n rows of a 2-d Gaussian, optionally scaled.
func gauss2D(n int, seed int64, scale float64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = []float64{scale * rng.NormFloat64(), scale * rng.NormFloat64()}
	}
	return rows
}

// testConfig is a small, fast training configuration.
func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.S0 = 2000
	cfg.Seed = 42
	return cfg
}

func trainSmall(t *testing.T, rows [][]float64) *core.Classifier {
	t.Helper()
	clf, err := core.Train(rows, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return clf
}

func TestReservoirFillPreservesOrder(t *testing.T) {
	ing, err := NewIngestor(10, 0, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	if n, err := ing.Add(rows); err != nil || n != 3 {
		t.Fatalf("Add = (%d, %v), want (3, nil)", n, err)
	}
	snap, seen := ing.Snapshot()
	if seen != 3 || snap.Len() != 3 || snap.Dim != 2 {
		t.Fatalf("snapshot shape = %dx%d seen=%d, want 3x2 seen=3", snap.Len(), snap.Dim, seen)
	}
	for i, want := range rows {
		got := snap.Row(i)
		if got[0] != want[0] || got[1] != want[1] {
			t.Fatalf("row %d = %v, want %v (fill phase must preserve arrival order)", i, got, want)
		}
	}
}

func TestReservoirDeterministicAndBounded(t *testing.T) {
	const capRows = 50
	a, _ := NewIngestor(capRows, 2, 7, false)
	b, _ := NewIngestor(capRows, 2, 7, false)
	rows := gauss2D(1000, 3, 1)
	for i := 0; i < len(rows); i += 100 {
		if _, err := a.Add(rows[i : i+100]); err != nil {
			t.Fatal(err)
		}
	}
	// Same rows, different batch boundaries: the sample depends only on
	// the row sequence and seed.
	if _, err := b.Add(rows); err != nil {
		t.Fatal(err)
	}
	sa, seenA := a.Snapshot()
	sb, seenB := b.Snapshot()
	if seenA != 1000 || seenB != 1000 {
		t.Fatalf("seen = %d, %d, want 1000", seenA, seenB)
	}
	if sa.Len() != capRows || sb.Len() != capRows {
		t.Fatalf("sample sizes = %d, %d, want %d", sa.Len(), sb.Len(), capRows)
	}
	for i := range sa.Data {
		if sa.Data[i] != sb.Data[i] {
			t.Fatalf("samples diverge at flat index %d: %v vs %v", i, sa.Data[i], sb.Data[i])
		}
	}
}

func TestWindowKeepsLatestInOrder(t *testing.T) {
	ing, _ := NewIngestor(4, 1, 0, true)
	for v := 1.0; v <= 10; v++ {
		if _, err := ing.Add([][]float64{{v}}); err != nil {
			t.Fatal(err)
		}
	}
	snap, seen := ing.Snapshot()
	if seen != 10 || snap.Len() != 4 {
		t.Fatalf("seen=%d len=%d, want 10, 4", seen, snap.Len())
	}
	for i, want := range []float64{7, 8, 9, 10} {
		if got := snap.At(i, 0); got != want {
			t.Fatalf("window row %d = %v, want %v (oldest to newest)", i, got, want)
		}
	}
}

func TestIngestRejectsBatchWhole(t *testing.T) {
	ing, _ := NewIngestor(10, 2, 0, false)
	bad := [][]float64{{1, 2}, {3, math.NaN()}}
	if n, err := ing.Add(bad); err == nil || n != 0 {
		t.Fatalf("Add(NaN batch) = (%d, %v), want (0, error)", n, err)
	}
	if ing.Len() != 0 || ing.Seen() != 0 {
		t.Fatalf("malformed batch mutated the sample: len=%d seen=%d", ing.Len(), ing.Seen())
	}
	if _, err := ing.Add([][]float64{{1, 2, 3}}); err == nil {
		t.Fatal("dimension-mismatch row accepted")
	}
}

// TestDeterminismBridge is the acceptance criterion: a static dataset
// fed through the Ingestor with reservoir ≥ n retrains to a model
// bit-identical to batch Train on the same rows.
func TestDeterminismBridge(t *testing.T) {
	rows := gauss2D(600, 11, 1)
	cfg := testConfig()

	batch, err := core.Train(rows, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The initial classifier is arbitrary (it gets swapped out); train it
	// on a different slice to prove the retrain owes it nothing.
	initial := trainSmall(t, gauss2D(300, 99, 2))
	svc, err := NewService(initial, Config{Capacity: 1000, Seed: cfg.Seed, Train: cfg})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(rows); i += 150 {
		if _, err := svc.Ingest(rows[i : i+150]); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Retrain(); err != nil {
		t.Fatal(err)
	}
	live := svc.Model().Current()

	if got, want := live.Threshold(), batch.Threshold(); got != want {
		t.Fatalf("threshold = %v, want bit-identical %v", got, want)
	}
	glo, ghi := live.ThresholdBounds()
	wlo, whi := batch.ThresholdBounds()
	if glo != wlo || ghi != whi {
		t.Fatalf("bounds = [%v, %v], want [%v, %v]", glo, ghi, wlo, whi)
	}
	if g, w := live.Bandwidths(), batch.Bandwidths(); g[0] != w[0] || g[1] != w[1] {
		t.Fatalf("bandwidths = %v, want %v", g, w)
	}
	probes := gauss2D(200, 23, 2)
	for i, q := range probes {
		gl, gu, err := live.DensityBounds(q, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		wl, wu, err := batch.DensityBounds(q, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if gl != wl || gu != wu {
			t.Fatalf("probe %d: density bounds (%v, %v) != batch (%v, %v)", i, gl, gu, wl, wu)
		}
		gLab, _ := live.Classify(q)
		wLab, _ := batch.Classify(q)
		if gLab != wLab {
			t.Fatalf("probe %d: label %v != batch %v", i, gLab, wLab)
		}
	}
	if gen := svc.Model().Generation(); gen != 2 {
		t.Fatalf("generation = %d, want 2 after one retrain", gen)
	}
}

func TestCountTrigger(t *testing.T) {
	initial := trainSmall(t, gauss2D(300, 5, 1))
	svc, err := NewService(initial, Config{Capacity: 1000, RetrainEvery: 100, Train: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Ingest(gauss2D(99, 6, 1)); err != nil {
		t.Fatal(err)
	}
	if reason, err := svc.maybeRetrain(); reason != "" || err != nil {
		t.Fatalf("trigger below RetrainEvery = (%q, %v), want none", reason, err)
	}
	if _, err := svc.Ingest(gauss2D(1, 7, 1)); err != nil {
		t.Fatal(err)
	}
	reason, err := svc.maybeRetrain()
	if reason != "count" || err != nil {
		t.Fatalf("trigger = (%q, %v), want (count, nil)", reason, err)
	}
	if gen := svc.Model().Generation(); gen != 2 {
		t.Fatalf("generation = %d, want 2", gen)
	}
	// Pending resets: no further trigger without new rows.
	if reason, _ := svc.maybeRetrain(); reason != "" {
		t.Fatalf("trigger after retrain = %q, want none", reason)
	}
}

func TestAgeTriggerNeedsNewRows(t *testing.T) {
	initial := trainSmall(t, gauss2D(300, 5, 1))
	svc, err := NewService(initial, Config{Capacity: 1000, MaxModelAge: time.Nanosecond, Train: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Millisecond)
	if reason, _ := svc.maybeRetrain(); reason != "" {
		t.Fatalf("age trigger with no new rows = %q, want none", reason)
	}
	if _, err := svc.Ingest(gauss2D(150, 6, 1)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Millisecond)
	if reason, err := svc.maybeRetrain(); reason != "age" || err != nil {
		t.Fatalf("trigger = (%q, %v), want (age, nil)", reason, err)
	}
}

func TestDriftTrigger(t *testing.T) {
	// Live model on unit-variance data; the stream switches to 6x the
	// spread, which moves t(p) by orders of magnitude in 2-d.
	initial := trainSmall(t, gauss2D(500, 5, 1))
	svc, err := NewService(initial, Config{Capacity: 1000, DriftTolerance: 0.5, Seed: 9, Train: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Ingest(gauss2D(500, 8, 6)); err != nil {
		t.Fatal(err)
	}
	reason, err := svc.maybeRetrain()
	if reason != "drift" || err != nil {
		t.Fatalf("trigger = (%q, %v), want (drift, nil)", reason, err)
	}

	// Same-distribution stream: the probe should sit near the live
	// threshold and not fire.
	svc2, err := NewService(initial, Config{Capacity: 1000, DriftTolerance: 5, Seed: 9, Train: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc2.Ingest(gauss2D(500, 10, 1)); err != nil {
		t.Fatal(err)
	}
	if reason, _ := svc2.maybeRetrain(); reason != "" {
		t.Fatalf("stationary stream fired %q with a loose tolerance", reason)
	}
}

func TestPrefillSeedsSample(t *testing.T) {
	rows := gauss2D(400, 5, 1)
	initial := trainSmall(t, rows)
	svc, err := NewService(initial, Config{Capacity: 1000, Prefill: true, Train: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.SampleSize != 400 || st.Ingested != 400 {
		t.Fatalf("prefilled sample = %d/%d ingested, want 400/400", st.SampleSize, st.Ingested)
	}
	// Prefilled rows do not count as pending work.
	if reason, _ := svc.maybeRetrain(); reason != "" {
		t.Fatalf("prefill alone fired trigger %q", reason)
	}
	if _, err := svc.Ingest(gauss2D(50, 6, 1)); err != nil {
		t.Fatal(err)
	}
	if err := svc.Retrain(); err != nil {
		t.Fatal(err)
	}
	if n := svc.Model().Current().N(); n != 450 {
		t.Fatalf("retrained on %d rows, want 450 (prefill + stream)", n)
	}
}

// TestRetrainInheritsBackend pins the lifecycle half of backend
// selection: a service built without an explicit Train config retrains
// with the initial model's configuration, so a forced density backend
// survives every hot swap.
func TestRetrainInheritsBackend(t *testing.T) {
	cfg := testConfig()
	cfg.Backend = core.BackendSampling // d=2 would auto-resolve to tree
	initial, err := core.Train(gauss2D(400, 5, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(initial, Config{Capacity: 1000, Prefill: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Ingest(gauss2D(50, 6, 1)); err != nil {
		t.Fatal(err)
	}
	if err := svc.Retrain(); err != nil {
		t.Fatal(err)
	}
	cur := svc.Model().Current()
	if cur == initial {
		t.Fatal("retrain did not swap the model")
	}
	if cur.Backend() != core.BackendSampling {
		t.Fatalf("retrained backend = %q, want inherited %q", cur.Backend(), core.BackendSampling)
	}
}

func TestSnapshotOnSwapAndClose(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.tkdc")
	initial := trainSmall(t, gauss2D(300, 5, 1))
	svc, err := NewService(initial, Config{Capacity: 1000, SnapshotPath: path, Train: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Ingest(gauss2D(400, 6, 1)); err != nil {
		t.Fatal(err)
	}
	if err := svc.Retrain(); err != nil {
		t.Fatal(err)
	}
	assertLoadable := func() {
		t.Helper()
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		loaded, err := core.Load(f)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := loaded.Threshold(), svc.Model().Current().Threshold(); got != want {
			t.Fatalf("snapshot threshold = %v, want live %v", got, want)
		}
		if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
			t.Fatalf("temp file left behind: %v", err)
		}
	}
	assertLoadable()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	assertLoadable()
}

func TestBackgroundRetrainer(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := testConfig()
	cfg.Recorder = reg
	initial := trainSmall(t, gauss2D(300, 5, 1))
	svc, err := NewService(initial, Config{
		Capacity:      2000,
		RetrainEvery:  200,
		CheckInterval: 5 * time.Millisecond,
		Train:         cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	defer svc.Close()

	if _, err := svc.Ingest(gauss2D(500, 6, 1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for svc.Model().Generation() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("background retrainer never fired: %+v", svc.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := svc.Stats()
	if st.Retrains < 1 || st.ModelN == 0 {
		t.Fatalf("stats after retrain = %+v", st)
	}
	// The retrain shows up as a phase span in the registry.
	found := false
	for _, sp := range reg.Snapshot().Spans {
		if len(sp.Name) >= 7 && sp.Name[:7] == "retrain" {
			found = true
			if sp.Items == 0 || sp.Kernels == 0 {
				t.Fatalf("retrain span carries no work: %+v", sp)
			}
		}
	}
	if !found {
		t.Fatal("no retrain/gen-N span recorded")
	}
}

func TestRetrainOnEmptySample(t *testing.T) {
	initial := trainSmall(t, gauss2D(300, 5, 1))
	svc, err := NewService(initial, Config{Capacity: 100, Train: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Retrain(); err == nil {
		t.Fatal("Retrain on empty sample succeeded; want error")
	}
	if gen := svc.Model().Generation(); gen != 1 {
		t.Fatalf("generation moved to %d on failed retrain", gen)
	}
}

// TestRetrainObservability pins the lifecycle stats added for the flight
// recorder era: Pending tracks rows since the last retrain, the retrain
// reason and duration survive into Stats, and drift probes report their
// score and count.
func TestRetrainObservability(t *testing.T) {
	initial := trainSmall(t, gauss2D(300, 5, 1))
	svc, err := NewService(initial, Config{Capacity: 1000, RetrainEvery: 100, Train: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.Pending != 0 || st.LastRetrainReason != "" || st.DriftProbes != 0 {
		t.Fatalf("fresh service stats not zeroed: %+v", st)
	}
	if _, err := svc.Ingest(gauss2D(40, 6, 1)); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.Pending != 40 {
		t.Fatalf("Pending = %d after 40 rows, want 40", st.Pending)
	}
	if err := svc.Retrain(); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Pending != 0 {
		t.Fatalf("Pending = %d after retrain, want 0", st.Pending)
	}
	if st.LastRetrainReason != "manual" {
		t.Fatalf("LastRetrainReason = %q, want manual", st.LastRetrainReason)
	}
	if st.LastRetrainDuration <= 0 {
		t.Fatalf("LastRetrainDuration = %v, want > 0", st.LastRetrainDuration)
	}

	// A count-triggered retrain overwrites the reason.
	if _, err := svc.Ingest(gauss2D(100, 7, 1)); err != nil {
		t.Fatal(err)
	}
	if reason, err := svc.maybeRetrain(); reason != "count" || err != nil {
		t.Fatalf("trigger = (%q, %v), want (count, nil)", reason, err)
	}
	if st := svc.Stats(); st.LastRetrainReason != "count" {
		t.Fatalf("LastRetrainReason = %q, want count", st.LastRetrainReason)
	}
}

// TestDriftProbeStats checks the drift gauge: a probe that fires records
// a score past the tolerance and increments the probe counter.
func TestDriftProbeStats(t *testing.T) {
	initial := trainSmall(t, gauss2D(500, 5, 1))
	svc, err := NewService(initial, Config{Capacity: 1000, DriftTolerance: 0.5, Seed: 9, Train: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Ingest(gauss2D(500, 8, 6)); err != nil {
		t.Fatal(err)
	}
	if reason, err := svc.maybeRetrain(); reason != "drift" || err != nil {
		t.Fatalf("trigger = (%q, %v), want (drift, nil)", reason, err)
	}
	st := svc.Stats()
	if st.DriftProbes != 1 {
		t.Fatalf("DriftProbes = %d, want 1", st.DriftProbes)
	}
	if st.DriftScore <= 0.5 {
		t.Fatalf("DriftScore = %g, want > tolerance 0.5 (the probe fired)", st.DriftScore)
	}
	if st.LastRetrainReason != "drift" {
		t.Fatalf("LastRetrainReason = %q, want drift", st.LastRetrainReason)
	}
}

// TestHandleMetricsMatchDirect is the telemetry-parity regression test:
// the same queries produce identical work metrics whether they go
// straight at the Classifier or through a Model handle — the handle adds
// one atomic load and must not touch, duplicate, or drop any sample.
// Latency histograms are excluded (wall-clock differs by definition).
func TestHandleMetricsMatchDirect(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := testConfig()
	cfg.Recorder = reg
	clf, err := core.Train(gauss2D(600, 5, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries := gauss2D(200, 11, 2)

	workFields := func(s telemetry.Snapshot) []int64 {
		return []int64{
			s.Queries, s.GridHits, s.GridMisses,
			s.SamplingRounds, s.SampledPoints, s.NearKernels, s.FarKernels,
			s.Kernels.Count(), s.Kernels.Sum,
			s.Nodes.Count(), s.Nodes.Sum,
		}
	}

	reg.Reset()
	for _, q := range queries {
		if _, err := clf.Score(q); err != nil {
			t.Fatal(err)
		}
	}
	direct := workFields(reg.Snapshot())

	reg.Reset()
	model := NewModel(clf)
	for _, q := range queries {
		if _, err := model.Score(q); err != nil {
			t.Fatal(err)
		}
	}
	handle := workFields(reg.Snapshot())

	for i := range direct {
		if direct[i] != handle[i] {
			t.Fatalf("work metric %d differs: direct %d vs handle %d\ndirect %v\nhandle %v",
				i, direct[i], handle[i], direct, handle)
		}
	}
}
