// Pvalues reproduces the Figure 2b scenario: using density classification
// for statistical testing on a sky-survey-like dataset. A levelset.Ladder
// brackets each observed object's density quantile — the fraction of the
// survey in sparser regions of space — yielding a p-value interval for
// the hypothesis "this object lies in a low-mass-density void".
package main

import (
	"fmt"
	"log"

	"tkdc"
	"tkdc/internal/dataset"
	"tkdc/levelset"
)

func main() {
	survey := dataset.Galaxy2D(60000, 11)

	// Ladder of quantile thresholds: an observation bracketing to
	// (0.05, 0.10] has a void-test p-value in that interval.
	cfg := tkdc.DefaultConfig()
	cfg.Seed = 11
	ladder, err := levelset.TrainLadder(survey, []float64{0.01, 0.05, 0.10, 0.25, 0.50}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("density thresholds:")
	for i, p := range ladder.Levels() {
		fmt.Printf("  t(%.2f) = %.5g\n", p, ladder.Thresholds()[i])
	}

	observations := [][]float64{
		{50, 50}, // likely on or near a filament
		{3, 97},  // likely a void corner
		{25, 60}, // somewhere in between
		{80, 15}, // depends on the filament layout
	}
	fmt.Println("\nobservation p-value brackets (fraction of survey in sparser space):")
	for _, obs := range observations {
		lo, hi, err := ladder.Bracket(obs)
		if err != nil {
			log.Fatal(err)
		}
		verdict := fmt.Sprintf("ambient (p in (%.2f, %.2f])", lo, hi)
		switch {
		case hi <= 0.01:
			verdict = "deep void (p <= 0.01)"
		case hi <= 0.10:
			verdict = fmt.Sprintf("void candidate (p in (%.2f, %.2f])", lo, hi)
		case hi == 1:
			verdict = "not a void (p > 0.50)"
		}
		fmt.Printf("  object at (%5.1f, %5.1f): %s\n", obs[0], obs[1], verdict)
	}

	// Hypothesis test at a fixed significance level.
	sig, err := ladder.PValueAtMost(observations[1], 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvoid test at alpha=0.05 for object (3, 97): significant=%v\n", sig)

	// For one object, also report certified density bounds — the quantity
	// physics analyses plug into likelihood ratios.
	fl, fu, err := ladder.Classifier(0).DensityBounds(observations[1], 0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("certified density at (%.0f, %.0f): [%.5g, %.5g] (±0.5%% relative)\n",
		observations[1][0], observations[1][1], fl, fu)
}
