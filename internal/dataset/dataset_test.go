package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"tkdc/internal/stats"
)

// TestTable3DatasetShapes pins the native shapes of every generator to
// the dimensionalities of Table 3.
func TestTable3DatasetShapes(t *testing.T) {
	cases := []struct {
		name string
		dim  int
	}{
		{"shuttle", 9},
		{"tmy3", 8},
		{"home", 10},
		{"hep", 27},
		{"sift", 128},
		{"mnist", 784},
	}
	for _, c := range cases {
		rows, err := Generate(c.name, 200, 0, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(rows) != 200 {
			t.Errorf("%s: n = %d, want 200", c.name, len(rows))
		}
		if len(rows[0]) != c.dim {
			t.Errorf("%s: d = %d, want %d", c.name, len(rows[0]), c.dim)
		}
	}
	rows, err := Generate("gauss", 100, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows[0]) != 5 {
		t.Errorf("gauss d = %d, want 5", len(rows[0]))
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate("gauss", 0, 2, 1); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := Generate("gauss", 10, 0, 1); err == nil {
		t.Error("gauss d=0 should error")
	}
	if _, err := Generate("nope", 10, 2, 1); err == nil {
		t.Error("unknown name should error")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, info := range Catalog() {
		d := info.Dim
		if d == 0 {
			d = 3
		}
		a, err := Generate(info.Name, 50, d, 99)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(info.Name, 50, d, 99)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					t.Fatalf("%s: not deterministic at [%d][%d]", info.Name, i, j)
				}
			}
		}
		c, err := Generate(info.Name, 50, d, 100)
		if err != nil {
			t.Fatal(err)
		}
		same := true
		for i := range a {
			for j := range a[i] {
				if a[i][j] != c[i][j] {
					same = false
				}
			}
		}
		if same {
			t.Fatalf("%s: different seeds produced identical data", info.Name)
		}
	}
}

func TestGeneratorsFinite(t *testing.T) {
	for _, info := range Catalog() {
		d := info.Dim
		if d == 0 {
			d = 4
		}
		rows, err := Generate(info.Name, 300, d, 7)
		if err != nil {
			t.Fatal(err)
		}
		for i, row := range rows {
			for j, v := range row {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s: row %d col %d = %v", info.Name, i, j, v)
				}
			}
		}
	}
}

func TestGaussMomentsMatchStandardNormal(t *testing.T) {
	rows := Gauss(20000, 2, 3)
	for j := 0; j < 2; j++ {
		col := make([]float64, len(rows))
		for i, r := range rows {
			col[i] = r[j]
		}
		if m := stats.Mean(col); math.Abs(m) > 0.05 {
			t.Errorf("col %d mean = %v, want ≈0", j, m)
		}
		if s := stats.StdDev(col); math.Abs(s-1) > 0.05 {
			t.Errorf("col %d std = %v, want ≈1", j, s)
		}
	}
}

func TestShuttleIsMultiModal(t *testing.T) {
	rows := Shuttle(20000, 4)
	// Column 0 mixes clusters centered near 0, 40, -35, 10: variance far
	// exceeds any single cluster's scale (≤ 4).
	col := make([]float64, len(rows))
	for i, r := range rows {
		col[i] = r[0]
	}
	if s := stats.StdDev(col); s < 10 {
		t.Fatalf("shuttle col 0 std = %v; clusters not separated", s)
	}
}

func TestHEPHasHeavyTails(t *testing.T) {
	rows := HEP(30000, 5)
	col := make([]float64, len(rows))
	for i, r := range rows {
		col[i] = r[0]
	}
	// Excess kurtosis of a Student-t(5) mixture is clearly positive;
	// compute kurtosis = E[(x-μ)⁴]/σ⁴ and require > 3.5 (normal = 3).
	m := stats.Mean(col)
	s := stats.StdDev(col)
	sum4 := 0.0
	for _, v := range col {
		d := (v - m) / s
		sum4 += d * d * d * d
	}
	kurt := sum4 / float64(len(col))
	if kurt < 3.5 {
		t.Fatalf("hep kurtosis = %v, want heavy-tailed (> 3.5)", kurt)
	}
}

func TestSIFTNonNegative(t *testing.T) {
	rows := SIFT(500, 6)
	for i, r := range rows {
		for j, v := range r {
			if v < 0 {
				t.Fatalf("sift[%d][%d] = %v, want ≥ 0", i, j, v)
			}
		}
	}
}

func TestMNISTPixelRange(t *testing.T) {
	rows := MNIST(100, 7)
	nonzero := 0
	for i, r := range rows {
		for j, v := range r {
			if v < 0 || v > 255 {
				t.Fatalf("mnist[%d][%d] = %v outside [0, 255]", i, j, v)
			}
			if v > 0 {
				nonzero++
			}
		}
	}
	if nonzero == 0 {
		t.Fatal("mnist images are all-black")
	}
}

func TestIris2DAndGalaxy2DShapes(t *testing.T) {
	iris := Iris2D(1000, 8)
	if len(iris) != 1000 || len(iris[0]) != 2 {
		t.Fatal("iris shape wrong")
	}
	gal := Galaxy2D(1000, 9)
	if len(gal) != 1000 || len(gal[0]) != 2 {
		t.Fatal("galaxy shape wrong")
	}
	for _, r := range gal {
		if r[0] < -10 || r[0] > 110 || r[1] < -10 || r[1] > 110 {
			t.Fatalf("galaxy point %v far outside the survey window", r)
		}
	}
}

func TestTakeColumns(t *testing.T) {
	rows := [][]float64{{1, 2, 3}, {4, 5, 6}}
	got, err := TakeColumns(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got[0]) != 2 || got[1][1] != 5 {
		t.Fatalf("TakeColumns = %v", got)
	}
	if _, err := TakeColumns(rows, 0); err == nil {
		t.Error("d=0 should error")
	}
	if _, err := TakeColumns(rows, 4); err == nil {
		t.Error("d>width should error")
	}
	if _, err := TakeColumns(nil, 1); err == nil {
		t.Error("empty should error")
	}
}

func TestPCAReduce(t *testing.T) {
	rows := MNIST(300, 11)
	red, err := PCAReduce(rows, 16, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(red) != 300 || len(red[0]) != 16 {
		t.Fatalf("PCAReduce shape = %dx%d, want 300x16", len(red), len(red[0]))
	}
	// Variance should concentrate in the leading component.
	lead := make([]float64, len(red))
	tail := make([]float64, len(red))
	for i, r := range red {
		lead[i] = r[0]
		tail[i] = r[15]
	}
	if stats.Variance(lead) <= stats.Variance(tail) {
		t.Fatal("leading PCA component does not dominate")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rows := [][]float64{{1.5, -2.25, 3e-10}, {0, 42, -1e6}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("round trip rows = %d", len(got))
	}
	for i := range rows {
		for j := range rows[i] {
			if got[i][j] != rows[i][j] {
				t.Fatalf("round trip [%d][%d] = %v, want %v", i, j, got[i][j], rows[i][j])
			}
		}
	}
}

func TestReadCSVHeaderAndErrors(t *testing.T) {
	got, err := ReadCSV(strings.NewReader("a,b\n1,2\n3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1][0] != 3 {
		t.Fatalf("header handling wrong: %v", got)
	}
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input should error")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\nx,y\n")); err == nil {
		t.Error("non-numeric mid-file should error")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n")); err == nil {
		t.Error("ragged rows should error")
	}
	// Blank lines are fine.
	got, err = ReadCSV(strings.NewReader("1,2\n\n3,4\n"))
	if err != nil || len(got) != 2 {
		t.Errorf("blank lines: got %v, %v", got, err)
	}
}

func TestCatalogComplete(t *testing.T) {
	names := map[string]bool{}
	for _, info := range Catalog() {
		names[info.Name] = true
		if info.Description == "" || info.DefaultN == 0 {
			t.Errorf("%s: incomplete catalog entry", info.Name)
		}
	}
	for _, want := range []string{"gauss", "shuttle", "tmy3", "home", "hep", "sift", "mnist"} {
		if !names[want] {
			t.Errorf("catalog missing %s", want)
		}
	}
}
