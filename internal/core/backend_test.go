package core

import (
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"tkdc/internal/kernel"
)

func TestResolveBackend(t *testing.T) {
	cases := []struct {
		name string
		dim  int
		want string
	}{
		{"", 2, BackendTree},
		{"", 27, BackendSampling},
		{BackendAuto, AutoTreeMaxDim, BackendTree},
		{BackendAuto, AutoTreeMaxDim + 1, BackendSampling},
		{BackendTree, 27, BackendTree},
		{BackendSampling, 2, BackendSampling},
	}
	for _, tc := range cases {
		if got := resolveBackend(tc.name, tc.dim); got != tc.want {
			t.Errorf("resolveBackend(%q, %d) = %q, want %q", tc.name, tc.dim, got, tc.want)
		}
	}
}

func TestBackendValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	data := gauss2D(rng, 300)
	cfg := testConfig()
	cfg.Backend = "annoy"
	_, err := Train(data, cfg)
	if err == nil {
		t.Fatal("unknown backend accepted")
	}
	for _, name := range Backends() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list valid backend %q", err, name)
		}
	}
}

// TestBackendAccessor checks the classifier reports the backend it
// resolved, both implicit and forced.
func TestBackendAccessor(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	data := gauss2D(rng, 300)
	// Pin auto explicitly: this test asserts the resolution policy, so
	// it must not inherit a TKDC_TEST_BACKEND override.
	auto := testConfig()
	auto.Backend = BackendAuto
	c, err := Train(data, auto)
	if err != nil {
		t.Fatal(err)
	}
	if c.Backend() != BackendTree {
		t.Fatalf("d=2 auto backend = %q, want %q", c.Backend(), BackendTree)
	}
	cfg := testConfig()
	cfg.Backend = BackendSampling
	c, err = Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Backend() != BackendSampling {
		t.Fatalf("forced backend = %q, want %q", c.Backend(), BackendSampling)
	}
}

// TestForcedTreeBackendMatchesGolden pins the refactor's central
// guarantee: explicitly selecting the tree backend reproduces the
// committed golden fixture bit-for-bit, so extracting the DensityBackend
// interface changed no arithmetic on the certified path.
func TestForcedTreeBackendMatchesGolden(t *testing.T) {
	cfg := goldenConfig()
	cfg.Backend = BackendTree
	got := computeGoldenWith(t, cfg)
	compareToFixture(t, got, filepath.Join("testdata", "golden.json"))
}

// TestSamplingBoundsBracketHighDim is the property test for the sampling
// backend in its home regime: on latent-structure data at d=27 the
// reported (Lower, Upper) must bracket the exact brute-force density at
// well above the 1−δ rate.
func TestSamplingBoundsBracketHighDim(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	data := latentData(rng, 4000, 27, 5)
	// Pin auto explicitly so a TKDC_TEST_BACKEND=tree override cannot
	// redirect the property test away from the backend under test; at
	// d=27 auto must resolve to sampling.
	cfg := testConfig()
	cfg.Backend = BackendAuto
	c, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Backend() != BackendSampling {
		t.Fatalf("d=27 resolved to %q, want %q", c.Backend(), BackendSampling)
	}

	queries := latentData(rng, 150, 27, 5)
	queries = append(queries, data[:150]...)
	misses := 0
	for i, q := range queries {
		res, err := c.Score(q)
		if err != nil {
			t.Fatal(err)
		}
		f := kernel.Sum(c.kern, q, c.data.Data) / float64(c.data.Len())
		// Queries the near phase resolves completely return an exact
		// interval that differs from the flat-order reference only by
		// summation order; tolerate that rounding at the interval ends.
		if tol := 1e-9 * f; res.Lower > f+tol || f > res.Upper+tol {
			misses++
		}
		if res.Density < res.Lower || res.Density > res.Upper {
			t.Fatalf("query %d: density %v outside [%v, %v]", i, res.Density, res.Lower, res.Upper)
		}
	}
	// δ=0.01 over 300 trials permits ~3 misses in expectation; the
	// empirical-Bernstein band is conservative, so 10% signals a defect.
	if misses > len(queries)/10 {
		t.Fatalf("bounds missed the exact density %d/%d times (δ=%v)", misses, len(queries), testConfig().Delta)
	}
}
