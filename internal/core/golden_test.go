package core

import (
	"encoding/json"
	"flag"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden.json from the current implementation")

// goldenDataset builds the fixed synthetic dataset the golden fixture is
// defined over: two well-separated Gaussian clusters plus a sprinkle of
// uniform background outliers. It depends only on math/rand, never on the
// code under test, so the fixture pins implementation behaviour.
func goldenDataset() ([][]float64, [][]float64) {
	rng := rand.New(rand.NewSource(7))
	const n = 400
	data := make([][]float64, 0, n)
	for i := 0; i < n; i++ {
		switch {
		case i < 180:
			data = append(data, []float64{rng.NormFloat64() * 0.5, rng.NormFloat64() * 0.5})
		case i < 360:
			data = append(data, []float64{6 + rng.NormFloat64()*0.8, 3 + rng.NormFloat64()*0.8})
		default:
			data = append(data, []float64{rng.Float64()*20 - 7, rng.Float64()*20 - 7})
		}
	}
	queries := make([][]float64, 0, 64)
	for i := 0; i < 64; i++ {
		queries = append(queries, []float64{rng.Float64()*16 - 5, rng.Float64()*14 - 5})
	}
	return data, queries
}

func goldenConfig() Config {
	cfg := DefaultConfig()
	cfg.P = 0.1
	cfg.Seed = 7
	return cfg
}

// goldenFixture captures the numerical outcome of training: the refined
// threshold t̃(p), its bootstrap bounds, and the labels of both the
// training points and an independent query grid.
type goldenFixture struct {
	Threshold   float64 `json:"threshold"`
	TLow        float64 `json:"t_low"`
	THigh       float64 `json:"t_high"`
	TrainLabels []int   `json:"train_labels"`
	QueryLabels []int   `json:"query_labels"`
}

func computeGolden(t *testing.T) goldenFixture {
	return computeGoldenWith(t, goldenConfig())
}

func computeGoldenWith(t *testing.T, cfg Config) goldenFixture {
	t.Helper()
	data, queries := goldenDataset()
	clf, err := Train(data, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	fix := goldenFixture{Threshold: clf.Threshold()}
	fix.TLow, fix.THigh = clf.ThresholdBounds()
	for _, x := range data {
		l, err := clf.Classify(x)
		if err != nil {
			t.Fatalf("Classify: %v", err)
		}
		fix.TrainLabels = append(fix.TrainLabels, int(l))
	}
	for _, x := range queries {
		l, err := clf.Classify(x)
		if err != nil {
			t.Fatalf("Classify: %v", err)
		}
		fix.QueryLabels = append(fix.QueryLabels, int(l))
	}
	return fix
}

// TestGoldenDeterminism pins the exact numerical outcome of training and
// classification on a fixed dataset/seed/config. Any refactor of the
// storage layer, tree build, or traversal order must keep reproducing the
// committed fixture, which certifies the change is a pure layout change.
func TestGoldenDeterminism(t *testing.T) {
	path := filepath.Join("testdata", "golden.json")
	got := computeGolden(t)
	if *updateGolden {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	compareToFixture(t, got, path)
}

// TestGoldenDeterminismParallel re-derives the fixture with Workers = 4:
// the parallel training pipeline — level-parallel tree build, concurrent
// bootstrap scoring, parallel grid fill, fanned-out refinement pass —
// must reproduce the sequential model bit-for-bit.
func TestGoldenDeterminismParallel(t *testing.T) {
	if *updateGolden {
		t.Skip("fixture is written by TestGoldenDeterminism")
	}
	cfg := goldenConfig()
	cfg.Workers = 4
	got := computeGoldenWith(t, cfg)
	compareToFixture(t, got, filepath.Join("testdata", "golden.json"))
}

// compareToFixture checks a computed fixture against the committed one.
func compareToFixture(t *testing.T, got goldenFixture, path string) {
	t.Helper()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read fixture (regenerate with -update-golden): %v", err)
	}
	var want goldenFixture
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}

	if !floatClose(got.Threshold, want.Threshold) {
		t.Errorf("threshold = %.17g, fixture %.17g", got.Threshold, want.Threshold)
	}
	if !floatClose(got.TLow, want.TLow) {
		t.Errorf("tLow = %.17g, fixture %.17g", got.TLow, want.TLow)
	}
	if !floatClose(got.THigh, want.THigh) {
		t.Errorf("tHigh = %.17g, fixture %.17g", got.THigh, want.THigh)
	}
	compareLabels(t, "train", got.TrainLabels, want.TrainLabels)
	compareLabels(t, "query", got.QueryLabels, want.QueryLabels)
}

func compareLabels(t *testing.T, which string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s labels: %d results, fixture has %d", which, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("%s label %d = %d, fixture %d", which, i, got[i], want[i])
		}
	}
}

// floatClose tolerates only last-ulp-scale drift: the refactor is supposed
// to preserve the arithmetic, not merely approximate it.
func floatClose(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-12*scale
}
