package fleet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"tkdc/internal/stream"
)

// fakeLeader is a scripted /snapshot endpoint: it serves a real
// publisher's bytes in mode "ok" and injects one fault class per other
// mode, so follower behavior under each failure is tested in isolation.
type fakeLeader struct {
	mu    sync.Mutex
	pub   *Publisher
	mode  string // "ok", "500", "truncate", "badsum", "rollback"
	old   *Snapshot
	epoch string // override leader epoch; "" serves pub's
}

func (l *fakeLeader) setMode(mode string) {
	l.mu.Lock()
	l.mode = mode
	l.mu.Unlock()
}

func (l *fakeLeader) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	l.mu.Lock()
	mode, old, epoch := l.mode, l.old, l.epoch
	l.mu.Unlock()

	snap, err := l.pub.Current()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if epoch == "" {
		epoch = l.pub.Epoch()
	}
	serve := func(s *Snapshot, sha string, body []byte) {
		w.Header().Set(HeaderGeneration, strconv.FormatUint(s.Generation, 10))
		w.Header().Set(HeaderSHA256, sha)
		w.Header().Set(HeaderLeader, epoch)
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(http.StatusOK)
		w.Write(body)
	}

	switch mode {
	case "500":
		http.Error(w, "leader mid-crash", http.StatusInternalServerError)
	case "truncate":
		// Promise the full body, deliver half: the client sees an
		// unexpected EOF, exactly what a leader dying mid-response looks
		// like.
		w.Header().Set(HeaderGeneration, strconv.FormatUint(snap.Generation, 10))
		w.Header().Set(HeaderSHA256, snap.SHA256)
		w.Header().Set(HeaderLeader, epoch)
		w.Header().Set("Content-Length", strconv.Itoa(len(snap.Data)))
		w.WriteHeader(http.StatusOK)
		w.Write(snap.Data[:len(snap.Data)/2])
	case "badsum":
		serve(snap, "0000000000000000000000000000000000000000000000000000000000000000", snap.Data)
	case "rollback":
		serve(old, old.SHA256, old.Data)
	default:
		// Honest leader, including conditional fetch.
		if r.Header.Get("If-None-Match") == `"`+snap.SHA256+`"` {
			w.Header().Set(HeaderGeneration, strconv.FormatUint(snap.Generation, 10))
			w.Header().Set(HeaderSHA256, snap.SHA256)
			w.Header().Set(HeaderLeader, epoch)
			w.WriteHeader(http.StatusNotModified)
			return
		}
		serve(snap, snap.SHA256, snap.Data)
	}
}

// newFakeLeader builds the scripted leader over a fresh model handle.
func newFakeLeader(t *testing.T, n int) (*fakeLeader, *stream.Model, *httptest.Server) {
	t.Helper()
	model, pub := newLeaderModel(t, n)
	l := &fakeLeader{pub: pub, mode: "ok"}
	mux := http.NewServeMux()
	mux.Handle("/snapshot", l)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return l, model, ts
}

// syncedFollower builds a follower and completes its first sync.
func syncedFollower(t *testing.T, url string, cfg FollowerConfig) *Follower {
	t.Helper()
	cfg.URL = url
	if cfg.PollEvery == 0 {
		cfg.PollEvery = 10 * time.Millisecond
	}
	cfg.Seed = 1
	f, err := NewFollower(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestFollowerSyncMatchesLeader: after Sync the replica classifies a
// query set bit-identically to the leader, and a leader publish followed
// by a poll converges it again.
func TestFollowerSyncMatchesLeader(t *testing.T) {
	_, model, ts := newFakeLeader(t, 400)
	f := syncedFollower(t, ts.URL, FollowerConfig{})

	queries := gauss2D(200, 3, 0)
	assertBitIdentical(t, model, f.Model(), queries)

	st := f.Stats()
	if !st.Synced || st.AppliedGeneration != 1 || st.GenerationLag != 0 {
		t.Fatalf("stats after sync = %+v", st)
	}

	// 304 path: nothing changed, nothing republished.
	if applied, err := f.poll(); err != nil || applied {
		t.Fatalf("poll unchanged = (%v, %v), want (false, nil)", applied, err)
	}
	if st := f.Stats(); st.NotModified != 1 {
		t.Fatalf("NotModified = %d, want 1", st.NotModified)
	}

	// Retrain-driven generation bump.
	model.Publish(trainSmall(t, gauss2D(400, 11, 2)))
	if applied, err := f.poll(); err != nil || !applied {
		t.Fatalf("poll after publish = (%v, %v), want (true, nil)", applied, err)
	}
	if st := f.Stats(); st.AppliedGeneration != 2 || st.LocalGeneration != 2 {
		t.Fatalf("stats after second sync = %+v", st)
	}
	assertBitIdentical(t, model, f.Model(), queries)
}

// assertBitIdentical scores queries through both handles and requires
// exactly equal labels and density bounds.
func assertBitIdentical(t *testing.T, leader, replica *stream.Model, queries [][]float64) {
	t.Helper()
	if lt, rt := leader.Current().Threshold(), replica.Current().Threshold(); lt != rt {
		t.Fatalf("thresholds differ: leader %v, replica %v", lt, rt)
	}
	for i, q := range queries {
		lr, err := leader.Score(q)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := replica.Score(q)
		if err != nil {
			t.Fatal(err)
		}
		if lr.Label != rr.Label || lr.Lower != rr.Lower || lr.Upper != rr.Upper {
			t.Fatalf("query %d diverges: leader %+v, replica %+v", i, lr, rr)
		}
	}
}

// TestFollowerFailureModes injects each fault class into an otherwise
// healthy leader: the follower must reject the poll, keep serving the
// last good model untouched, and recover as soon as the leader heals.
func TestFollowerFailureModes(t *testing.T) {
	cases := []struct {
		mode         string
		wantRejected bool // vs counted as failure
	}{
		{"500", false},
		{"truncate", false},
		{"badsum", true},
		{"rollback", true},
	}
	for _, tc := range cases {
		t.Run(tc.mode, func(t *testing.T) {
			leader, model, ts := newFakeLeader(t, 400)
			f := syncedFollower(t, ts.URL, FollowerConfig{})
			before := f.Model().Current()

			// Leader moves to gen 2; the rollback case replays gen 1's bytes
			// with gen 1's (lower) generation header afterwards.
			old, err := leader.pub.Current()
			if err != nil {
				t.Fatal(err)
			}
			leader.mu.Lock()
			leader.old = old
			leader.mu.Unlock()
			model.Publish(trainSmall(t, gauss2D(400, 13, 2)))
			if applied, err := f.poll(); err != nil || !applied {
				t.Fatalf("converge to gen 2 = (%v, %v)", applied, err)
			}
			good := f.Model().Current()
			if good == before {
				t.Fatal("gen 2 did not swap the model")
			}

			// Inject the fault alongside a real gen-3 publish, so the
			// follower is genuinely behind while the leader misbehaves.
			model.Publish(trainSmall(t, gauss2D(400, 17, 4)))
			leader.setMode(tc.mode)
			applied, err := f.poll()
			if err == nil || applied {
				t.Fatalf("%s: poll = (%v, %v), want rejection", tc.mode, applied, err)
			}
			if f.Model().Current() != good {
				t.Fatalf("%s: fault swapped the served model", tc.mode)
			}
			st := f.Stats()
			if tc.wantRejected && st.Rejected == 0 {
				t.Fatalf("%s: Rejected = 0, want > 0 (stats %+v)", tc.mode, st)
			}
			if !tc.wantRejected && st.Failures == 0 {
				t.Fatalf("%s: Failures = 0, want > 0 (stats %+v)", tc.mode, st)
			}
			if st.LastError == "" {
				t.Fatalf("%s: LastError empty after fault", tc.mode)
			}
			// Only faults that still advertised the new generation in their
			// headers can surface lag (a bare 500 advertises nothing).
			if (tc.mode == "truncate" || tc.mode == "badsum") && st.GenerationLag == 0 {
				t.Fatalf("%s: GenerationLag = 0 while behind a known newer generation", tc.mode)
			}

			// Heal: the next poll converges to gen 3.
			leader.setMode("ok")
			if applied, err := f.poll(); err != nil || !applied {
				t.Fatalf("%s: poll after heal = (%v, %v)", tc.mode, applied, err)
			}
			st = f.Stats()
			if st.AppliedGeneration != 3 || st.GenerationLag != 0 || st.LastError != "" {
				t.Fatalf("%s: stats after heal = %+v", tc.mode, st)
			}
			assertBitIdentical(t, model, f.Model(), gauss2D(100, 5, 0))
		})
	}
}

// TestFollowerLeaderRestart: a new leader epoch legitimately resets the
// generation counter; the follower must adopt the restarted leader's
// generation 1 instead of treating it as a regression.
func TestFollowerLeaderRestart(t *testing.T) {
	leader, model, ts := newFakeLeader(t, 400)
	f := syncedFollower(t, ts.URL, FollowerConfig{})
	model.Publish(trainSmall(t, gauss2D(400, 19, 2)))
	if _, err := f.poll(); err != nil {
		t.Fatal(err)
	}
	if st := f.Stats(); st.AppliedGeneration != 2 {
		t.Fatalf("applied gen = %d, want 2", st.AppliedGeneration)
	}

	// "Restart" the leader: fresh model handle (gen 1), fresh epoch.
	restarted := stream.NewModel(trainSmall(t, gauss2D(400, 23, 5)))
	pub2 := NewPublisher(restarted)
	leader.mu.Lock()
	leader.pub = pub2
	leader.epoch = pub2.Epoch()
	leader.mu.Unlock()

	if applied, err := f.poll(); err != nil || !applied {
		t.Fatalf("poll after restart = (%v, %v), want applied", applied, err)
	}
	st := f.Stats()
	if st.AppliedGeneration != 1 || st.LeaderEpoch != pub2.Epoch() {
		t.Fatalf("stats after restart = %+v, want applied gen 1 under new epoch", st)
	}
	if st.LocalGeneration != 3 {
		t.Fatalf("local generation = %d, want 3 (monotone across leader restarts)", st.LocalGeneration)
	}
	assertBitIdentical(t, restarted, f.Model(), gauss2D(100, 5, 0))
}

// TestFollowerStaleness: the staleness clock trips after StaleAfter
// without leader contact and clears on the next successful poll.
func TestFollowerStaleness(t *testing.T) {
	leader, _, ts := newFakeLeader(t, 300)
	f := syncedFollower(t, ts.URL, FollowerConfig{StaleAfter: 50 * time.Millisecond})
	if f.Stale() {
		t.Fatal("stale immediately after sync")
	}
	leader.setMode("500")
	time.Sleep(70 * time.Millisecond)
	if _, err := f.poll(); err == nil {
		t.Fatal("500 poll succeeded")
	}
	if !f.Stale() {
		t.Fatal("not stale after StaleAfter of failed polls")
	}
	if st := f.Stats(); !st.Stale {
		t.Fatal("Stats does not surface staleness")
	}
	leader.setMode("ok")
	if _, err := f.poll(); err != nil {
		t.Fatal(err)
	}
	if f.Stale() {
		t.Fatal("still stale after a successful poll (304 or fetch must clear it)")
	}
}

// TestFollowerBadConfig pins constructor validation.
func TestFollowerBadConfig(t *testing.T) {
	if _, err := NewFollower(FollowerConfig{}); err == nil {
		t.Fatal("empty URL accepted")
	}
	if _, err := NewFollower(FollowerConfig{URL: "leader:8080"}); err == nil {
		t.Fatal("scheme-less URL accepted")
	}
}

// TestFollowerBackoffBounds: the retry delay grows from PollEvery and
// never exceeds MaxBackoff (both jittered ±20%).
func TestFollowerBackoffBounds(t *testing.T) {
	f, err := NewFollower(FollowerConfig{
		URL:        "http://leader",
		PollEvery:  100 * time.Millisecond,
		MaxBackoff: time.Second,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	prevMax := time.Duration(0)
	for attempt := 0; attempt < 10; attempt++ {
		d := f.backoff(attempt)
		if d < 80*time.Millisecond || d > 1200*time.Millisecond {
			t.Fatalf("backoff(%d) = %v outside [0.8·PollEvery, 1.2·MaxBackoff]", attempt, d)
		}
		if attempt >= 5 && d < prevMax/4 {
			t.Fatalf("backoff(%d) = %v collapsed far below earlier %v", attempt, d, prevMax)
		}
		if d > prevMax {
			prevMax = d
		}
	}
}

// TestFollowerChurnHammer races readers against rapid generation churn:
// a leader republishing every millisecond, a follower polling flat-out,
// and several goroutines querying through the follower's Model the whole
// time. Run under -race this pins the lock discipline of the swap path.
func TestFollowerChurnHammer(t *testing.T) {
	_, model, ts := newFakeLeader(t, 300)
	f := syncedFollower(t, ts.URL, FollowerConfig{PollEvery: time.Millisecond})
	f.Start()
	defer f.Close()

	// Two pre-trained classifiers alternate, so consecutive generations
	// always differ (identical bytes would 304 and defeat the churn).
	a := trainSmall(t, gauss2D(300, 31, 1))
	b := trainSmall(t, gauss2D(300, 37, 2))

	stop := make(chan struct{})
	var churns sync.WaitGroup
	churns.Add(1)
	go func() {
		defer churns.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
			}
			if i%2 == 0 {
				model.Publish(a)
			} else {
				model.Publish(b)
			}
		}
	}()

	queries := gauss2D(50, 41, 0)
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, q := range queries {
					if _, err := f.Model().Score(q); err != nil {
						t.Error(err)
						return
					}
				}
				_ = f.Stats()
				_ = f.Stale()
			}
		}()
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	churns.Wait()
	readers.Wait()

	if st := f.Stats(); st.Applied < 2 {
		t.Fatalf("hammer applied only %d snapshots; churn did not reach the follower (stats %+v)", st.Applied, st)
	}
}
