package stream

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"tkdc/internal/points"
)

// indexRows builds n rows of dimension 1 whose single coordinate is the
// row's global index — a stream where every sampled row announces where
// it came from, which is what the origin-distribution tests need.
func indexRows(from, n int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = []float64{float64(from + i)}
	}
	return rows
}

// feedBatches pushes rows through Add in fixed-size batches, returning
// how many rows went in. Sequential feeding fixes the batch→shard
// assignment (the ticket counter is deterministic), which is the
// precondition for the determinism properties below.
func feedBatches(t *testing.T, add func([][]float64) (int, error), rows [][]float64, batch int) {
	t.Helper()
	for off := 0; off < len(rows); off += batch {
		end := off + batch
		if end > len(rows) {
			end = len(rows)
		}
		if _, err := add(rows[off:end]); err != nil {
			t.Fatal(err)
		}
	}
}

func storesEqual(a, b *points.Store) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Len() != b.Len() || a.Dim != b.Dim || len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

// TestShardedOneShardByteIdentical pins the K=1 contract: a
// ShardedIngestor with one shard is the pre-sharding code path — the
// same batches with the same seed yield byte-identical snapshots and
// probe samples, in both reservoir and window mode. The batch-training
// determinism bridge rests on this.
func TestShardedOneShardByteIdentical(t *testing.T) {
	for _, window := range []bool{false, true} {
		t.Run(fmt.Sprintf("window=%v", window), func(t *testing.T) {
			const cap, seed = 256, 11
			plain, err := NewIngestor(cap, 0, seed, window)
			if err != nil {
				t.Fatal(err)
			}
			sharded, err := NewShardedIngestor(cap, 0, seed, window, 1)
			if err != nil {
				t.Fatal(err)
			}
			rows := gauss2D(3000, 5, 1)
			feedBatches(t, plain.Add, rows, 37)
			feedBatches(t, sharded.Add, rows, 37)

			if plain.Seen() != sharded.Seen() || plain.Len() != sharded.Len() || plain.Dim() != sharded.Dim() {
				t.Fatalf("counters diverge: plain seen=%d len=%d dim=%d, sharded seen=%d len=%d dim=%d",
					plain.Seen(), plain.Len(), plain.Dim(), sharded.Seen(), sharded.Len(), sharded.Dim())
			}
			ps, pn := plain.Snapshot()
			ss, sn := sharded.Snapshot()
			if pn != sn || !storesEqual(ps, ss) {
				t.Fatal("K=1 snapshot is not byte-identical to the unsharded ingestor")
			}
			if !storesEqual(plain.Sample(50, 99), sharded.Sample(50, 99)) {
				t.Fatal("K=1 Sample is not byte-identical to the unsharded ingestor")
			}
		})
	}
}

// TestShardedMergeDeterministic pins the reproducibility contract for
// K > 1: for a fixed batch→shard assignment (any sequential feed), two
// ingestors built alike hold byte-identical merged samples, and
// re-snapshotting an idle ingestor is a no-op on the result — the merge
// RNG is per-call, never shared state.
func TestShardedMergeDeterministic(t *testing.T) {
	for _, window := range []bool{false, true} {
		t.Run(fmt.Sprintf("window=%v", window), func(t *testing.T) {
			const cap, seed, shards = 300, 21, 4
			build := func() *ShardedIngestor {
				s, err := NewShardedIngestor(cap, 1, seed, window, shards)
				if err != nil {
					t.Fatal(err)
				}
				return s
			}
			a, b := build(), build()
			rows := indexRows(0, 5000)
			feedBatches(t, a.Add, rows, 64)
			feedBatches(t, b.Add, rows, 64)

			as, an := a.Snapshot()
			bs, bn := b.Snapshot()
			if an != bn || !storesEqual(as, bs) {
				t.Fatal("identically fed K-shard ingestors diverge at Snapshot")
			}
			if as.Len() != cap {
				t.Fatalf("merged snapshot holds %d rows, want capacity %d", as.Len(), cap)
			}
			again, _ := a.Snapshot()
			if !storesEqual(as, again) {
				t.Fatal("back-to-back snapshots of an idle ingestor differ: the merge perturbs shard state")
			}
			if !storesEqual(a.Sample(100, 7), b.Sample(100, 7)) {
				t.Fatal("identically fed K-shard ingestors diverge at Sample")
			}
		})
	}
}

// TestShardedMergeDistinct checks the merged reservoir draws without
// replacement: every row of the union stream appears at most once.
func TestShardedMergeDistinct(t *testing.T) {
	s, err := NewShardedIngestor(400, 1, 3, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	feedBatches(t, s.Add, indexRows(0, 6000), 50)
	snap, _ := s.Snapshot()
	seen := make(map[float64]bool, snap.Len())
	for i := 0; i < snap.Len(); i++ {
		v := snap.Row(i)[0]
		if seen[v] {
			t.Fatalf("row %v sampled twice", v)
		}
		seen[v] = true
	}
}

// TestShardedMergeUniform is the statistical acceptance test: the
// merged reservoir over a K-shard ingest of N distinct rows should be
// uniform over the stream. Chi-square over 10 equal origin bins, and —
// because shard boundaries are the failure mode sharding could
// introduce — over per-shard origin counts too. The draw is
// deterministic (fixed seeds), so this never flakes; thresholds are the
// p=0.001 critical values with generous headroom checked at seed time.
func TestShardedMergeUniform(t *testing.T) {
	const (
		cap    = 400
		total  = 8000
		shards = 4
		bins   = 10
	)
	chi2 := func(counts []int, expected float64) float64 {
		var x float64
		for _, c := range counts {
			d := float64(c) - expected
			x += d * d / expected
		}
		return x
	}

	// Aggregate over several independent ingestors so one unlucky draw
	// cannot dominate; the sum of chi-squares is chi-square with summed
	// degrees of freedom.
	const runs = 5
	var binStat, shardStat float64
	for r := 0; r < runs; r++ {
		s, err := NewShardedIngestor(cap, 1, int64(100+r), false, shards)
		if err != nil {
			t.Fatal(err)
		}
		// 1-row batches: the ticket assigns row i to shard i%shards, so a
		// row's shard is its index mod shards.
		feedBatches(t, s.Add, indexRows(0, total), 1)
		snap, seen := s.Snapshot()
		if seen != total || snap.Len() != cap {
			t.Fatalf("run %d: seen=%d len=%d, want %d/%d", r, seen, snap.Len(), total, cap)
		}
		binCounts := make([]int, bins)
		shardCounts := make([]int, shards)
		for i := 0; i < cap; i++ {
			idx := int(snap.Row(i)[0])
			binCounts[idx/(total/bins)]++
			shardCounts[idx%shards]++
		}
		binStat += chi2(binCounts, float64(cap)/bins)
		shardStat += chi2(shardCounts, float64(cap)/shards)
	}
	// p=0.001 critical values: chi2(df=45) ≈ 80.1, chi2(df=15) ≈ 37.7.
	if binStat > 80.1 {
		t.Fatalf("origin-bin chi-square %.1f exceeds the df=45 p=0.001 critical value: merged sample is not uniform over the stream", binStat)
	}
	if shardStat > 37.7 {
		t.Fatalf("shard-origin chi-square %.1f exceeds the df=15 p=0.001 critical value: merge is biased across shards", shardStat)
	}
}

// TestShardedFillPhase checks the no-eviction regime: while the union
// stream fits in capacity, the merged snapshot is exactly the ingested
// rows — nothing sampled away, nothing duplicated. This is what keeps
// the determinism bridge exact for K=1 and extends the "reservoir
// covers the stream" guarantee to K>1 (as a set; arrival order is
// per-shard).
func TestShardedFillPhase(t *testing.T) {
	const cap, n = 500, 300
	s, err := NewShardedIngestor(cap, 1, 5, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	feedBatches(t, s.Add, indexRows(0, n), 17)
	snap, seen := s.Snapshot()
	if seen != n || snap.Len() != n {
		t.Fatalf("seen=%d len=%d, want %d rows", seen, snap.Len(), n)
	}
	got := make(map[float64]bool, n)
	for i := 0; i < n; i++ {
		got[snap.Row(i)[0]] = true
	}
	for i := 0; i < n; i++ {
		if !got[float64(i)] {
			t.Fatalf("fill-phase snapshot lost row %d", i)
		}
	}
}

// TestShardedWindowMerge checks window-mode semantics at K>1: the merge
// keeps the newest rows of each shard in per-shard arrival order, with
// slots allocated proportionally to occupancy. With balanced 1-row
// round-robin traffic that is exactly the newest capacity rows of the
// union stream (as a set).
func TestShardedWindowMerge(t *testing.T) {
	const cap, n, shards = 100, 300, 2
	s, err := NewShardedIngestor(cap, 1, 9, true, shards)
	if err != nil {
		t.Fatal(err)
	}
	feedBatches(t, s.Add, indexRows(0, n), 1)
	snap, seen := s.Snapshot()
	if seen != n || snap.Len() != cap {
		t.Fatalf("seen=%d len=%d, want seen=%d len=%d", seen, snap.Len(), n, cap)
	}
	// Row i went to shard i%2; each shard holds its newest 100 of 150 and
	// contributes its newest 50. So the merged window must be exactly the
	// global newest 100 rows {200..299}, each shard's run ascending.
	got := make(map[float64]bool, cap)
	for i := 0; i < cap; i++ {
		got[snap.Row(i)[0]] = true
	}
	for v := n - cap; v < n; v++ {
		if !got[float64(v)] {
			t.Fatalf("window merge dropped recent row %d", v)
		}
	}
	for i := 1; i < cap/shards; i++ {
		if snap.Row(i)[0] <= snap.Row(i - 1)[0] {
			t.Fatalf("shard run not in arrival order at merged row %d", i)
		}
	}
}

// TestShardedDimAgreement checks the cross-shard width race: once any
// batch fixes the dimensionality, a batch of a different width is
// rejected even though it would land on a different — still empty —
// shard.
func TestShardedDimAgreement(t *testing.T) {
	s, err := NewShardedIngestor(100, 0, 1, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add([][]float64{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add([][]float64{{1, 2, 3}}); err == nil {
		t.Fatal("a 3-wide batch was accepted after a 2-wide batch fixed the width")
	}
	if _, err := s.AddFlat([]float64{1, 2, 3}, 3); err == nil {
		t.Fatal("a 3-wide flat batch was accepted after a 2-wide batch fixed the width")
	}
	if s.Dim() != 2 {
		t.Fatalf("Dim() = %d, want 2", s.Dim())
	}
}

// TestShardedConfigValidation pins the constructor's edges.
func TestShardedConfigValidation(t *testing.T) {
	if _, err := NewShardedIngestor(100, 2, 1, false, -1); err == nil {
		t.Fatal("negative shard count accepted")
	}
	if _, err := NewShardedIngestor(100, 2, 1, false, maxShards+1); err == nil {
		t.Fatal("absurd shard count accepted")
	}
	s, err := NewShardedIngestor(100, 2, 1, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.Shards(), DefaultShards(); got != want {
		t.Fatalf("shards=0 resolved to %d, want DefaultShards()=%d", got, want)
	}
	if d := DefaultShards(); d < 1 || d > maxShards {
		t.Fatalf("DefaultShards() = %d, outside [1, %d]", d, maxShards)
	}
	if fills := s.ShardFills(); len(fills) != s.Shards() {
		t.Fatalf("ShardFills() has %d entries, want %d", len(fills), s.Shards())
	}
}

// TestShardedHammer drives concurrent Adds, Snapshots, and Samples at
// K=4 under -race: no row count is ever lost (the per-shard seen totals
// must sum to everything ingested) and every merged view stays
// well-formed while ingest churns.
func TestShardedHammer(t *testing.T) {
	const cap, shards, writers, batches, batchRows = 512, 4, 8, 50, 20
	s, err := NewShardedIngestor(cap, 2, 13, false, shards)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < batches; i++ {
				batch := make([][]float64, batchRows)
				for j := range batch {
					batch[j] = []float64{rng.NormFloat64(), rng.NormFloat64()}
				}
				if _, err := s.Add(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() { // concurrent merged readers
		defer wg.Done()
		for i := 0; i < 40; i++ {
			if snap, seen := s.Snapshot(); snap != nil {
				if snap.Dim != 2 || int64(snap.Len()) > seen || snap.Len() > cap {
					t.Errorf("malformed snapshot: len=%d dim=%d seen=%d", snap.Len(), snap.Dim, seen)
					return
				}
			}
			if probe := s.Sample(64, int64(i)); probe != nil && probe.Dim != 2 {
				t.Errorf("malformed probe sample: dim=%d", probe.Dim)
				return
			}
		}
	}()
	wg.Wait()
	const total = writers * batches * batchRows
	if s.Seen() != total {
		t.Fatalf("Seen() = %d after concurrent ingest, want %d", s.Seen(), total)
	}
	if s.Len() != cap {
		t.Fatalf("Len() = %d, want capacity %d", s.Len(), cap)
	}
	snap, seen := s.Snapshot()
	if seen != total || snap.Len() != cap {
		t.Fatalf("final snapshot: len=%d seen=%d, want %d/%d", snap.Len(), seen, cap, total)
	}
}

// TestSampleSparseMatchesDense pins the RNG compatibility of the sparse
// Fisher–Yates: for the same seed, Sample must emit exactly the rows the
// dense index-permutation shuffle used to emit — the drift probe's
// fixed-seed behaviour is part of the determinism surface. The dense
// reference is reimplemented here as the oracle.
func TestSampleSparseMatchesDense(t *testing.T) {
	const n, k, seed = 5000, 100, 17 // k*4 < n forces the sparse path
	ing, err := NewIngestor(n, 1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	feedBatchesB := indexRows(0, n)
	if _, err := ing.Add(feedBatchesB); err != nil {
		t.Fatal(err)
	}
	got := ing.Sample(k, seed)

	rng := rand.New(rand.NewSource(seed))
	idx := make([]int, n)
	for j := range idx {
		idx[j] = j
	}
	for j := 0; j < k; j++ {
		l := j + rng.Intn(n-j)
		idx[j], idx[l] = idx[l], idx[j]
		if want, have := float64(idx[j]), got.Row(j)[0]; want != have {
			t.Fatalf("draw %d: sparse sample emitted row %v, dense oracle says %v", j, have, want)
		}
	}
}
