package fleet

import (
	"math/rand"
	"testing"

	"tkdc/internal/core"
	"tkdc/internal/stream"
)

// gauss2D generates n rows of a 2-d Gaussian shifted by off, so
// different offsets train models with different thresholds (and
// different snapshot bytes).
func gauss2D(n int, seed int64, off float64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64() + off, rng.NormFloat64() + off}
	}
	return rows
}

// testConfig is a small, fast training configuration.
func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.S0 = 2000
	cfg.Seed = 42
	return cfg
}

func trainSmall(t *testing.T, rows [][]float64) *core.Classifier {
	t.Helper()
	clf, err := core.Train(rows, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return clf
}

// newLeaderModel trains a model and wraps it in a handle + publisher.
func newLeaderModel(t *testing.T, n int) (*stream.Model, *Publisher) {
	t.Helper()
	model := stream.NewModel(trainSmall(t, gauss2D(n, 7, 0)))
	return model, NewPublisher(model)
}
