package stats

// Confusion accumulates a binary-classification confusion matrix. The
// "positive" class for tKDC's accuracy evaluation (Figure 8) is the
// low-density class identified by the threshold, matching the paper:
// "Since p = 0.01, the classification problem identifies points under the
// threshold."
type Confusion struct {
	TP, FP, TN, FN int
}

// Add records one prediction against the ground truth.
func (c *Confusion) Add(predictedPositive, actualPositive bool) {
	switch {
	case predictedPositive && actualPositive:
		c.TP++
	case predictedPositive && !actualPositive:
		c.FP++
	case !predictedPositive && actualPositive:
		c.FN++
	default:
		c.TN++
	}
}

// Precision returns TP / (TP + FP), or 1 when no positives were predicted.
func (c *Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP / (TP + FN), or 1 when there were no actual positives.
func (c *Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall, or 0 when both
// are 0.
func (c *Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns the fraction of correct predictions, or 0 with no data.
func (c *Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.TN + c.FN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}
