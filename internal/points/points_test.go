package points

import (
	"math"
	"testing"

	"tkdc/internal/matrix"
)

func TestFromRows(t *testing.T) {
	s, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.Dim != 2 {
		t.Fatalf("shape = %dx%d, want 3x2", s.Len(), s.Dim)
	}
	if got := s.Row(1); got[0] != 3 || got[1] != 4 {
		t.Fatalf("Row(1) = %v, want [3 4]", got)
	}
	if s.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %v, want 6", s.At(2, 1))
	}
}

func TestFromRowsCopies(t *testing.T) {
	src := [][]float64{{1, 2}, {3, 4}}
	s, err := FromRows(src)
	if err != nil {
		t.Fatal(err)
	}
	src[0][0] = 99
	if s.At(0, 0) != 1 {
		t.Fatal("FromRows must copy, not reference, the input rows")
	}
}

func TestFromRowsErrors(t *testing.T) {
	if _, err := FromRows(nil); err == nil {
		t.Fatal("want error for empty input")
	}
	if _, err := FromRows([][]float64{{}}); err == nil {
		t.Fatal("want error for zero-dimensional rows")
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("want error for ragged rows")
	}
}

func TestFromFlat(t *testing.T) {
	src := []float64{1, 2, 3, 4, 5, 6}
	s, err := FromFlat(src, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.Dim != 3 {
		t.Fatalf("shape = %dx%d, want 2x3", s.Len(), s.Dim)
	}
	src[0] = 42
	if s.Data[0] != 1 {
		t.Fatal("FromFlat must copy the input buffer")
	}
	if _, err := FromFlat([]float64{1, 2, 3}, 2); err == nil {
		t.Fatal("want error for length not a multiple of dim")
	}
	if _, err := FromFlat(nil, 2); err == nil {
		t.Fatal("want error for empty buffer")
	}
	if _, err := FromFlat([]float64{1}, 0); err == nil {
		t.Fatal("want error for non-positive dim")
	}
}

func TestFromDense(t *testing.T) {
	m := matrix.NewDense(2, 2)
	m.Set(0, 0, 1)
	m.Set(1, 1, 4)
	s, err := FromDense(m)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.At(1, 1) != 4 {
		t.Fatalf("FromDense got %v", s.Data)
	}
	m.Set(0, 0, 99)
	if s.At(0, 0) != 1 {
		t.Fatal("FromDense must copy the matrix data")
	}
	if _, err := FromDense(nil); err == nil {
		t.Fatal("want error for nil matrix")
	}
}

func TestSlabAndSwap(t *testing.T) {
	s, err := FromRows([][]float64{{0, 0}, {1, 1}, {2, 2}, {3, 3}})
	if err != nil {
		t.Fatal(err)
	}
	slab := s.Slab(1, 3)
	want := []float64{1, 1, 2, 2}
	for i, v := range want {
		if slab[i] != v {
			t.Fatalf("Slab(1,3) = %v, want %v", slab, want)
		}
	}
	s.Swap(0, 3)
	if s.At(0, 0) != 3 || s.At(3, 0) != 0 {
		t.Fatal("Swap did not exchange rows")
	}
	s.Swap(1, 1)
	if s.At(1, 0) != 1 {
		t.Fatal("self-Swap must be a no-op")
	}
}

func TestRowViewCapacity(t *testing.T) {
	s := New(2, 2)
	r := s.Row(0)
	if cap(r) != 2 {
		t.Fatalf("Row view capacity %d leaks into the next row", cap(r))
	}
}

func TestCloneIndependent(t *testing.T) {
	s, _ := FromRows([][]float64{{1, 2}})
	c := s.Clone()
	c.Data[0] = 9
	if s.Data[0] != 1 {
		t.Fatal("Clone shares storage with the original")
	}
}

func TestRowsViews(t *testing.T) {
	s, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	rows := s.Rows()
	if len(rows) != 2 || rows[1][0] != 3 {
		t.Fatalf("Rows() = %v", rows)
	}
	// Views, not copies: writes show through (documented interop behaviour).
	rows[0][0] = 7
	if s.At(0, 0) != 7 {
		t.Fatal("Rows() should return views into the flat buffer")
	}
}

func TestCheckFinite(t *testing.T) {
	ok, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	if err := ok.CheckFinite(); err != nil {
		t.Fatalf("CheckFinite on finite data: %v", err)
	}
	bad, _ := FromRows([][]float64{{1, 2}, {3, math.NaN()}})
	if err := bad.CheckFinite(); err == nil {
		t.Fatal("want error for NaN coordinate")
	}
	inf, _ := FromRows([][]float64{{math.Inf(-1), 2}})
	if err := inf.CheckFinite(); err == nil {
		t.Fatal("want error for infinite coordinate")
	}
}

func TestNilAndEmptyLen(t *testing.T) {
	var s *Store
	if s.Len() != 0 {
		t.Fatal("nil store Len should be 0")
	}
	if (&Store{}).Len() != 0 {
		t.Fatal("zero store Len should be 0")
	}
}
