package kdtree

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"tkdc/internal/points"
)

// duplicateHeavyPoints builds a store where many rows collide exactly —
// the input that drives splitRange into its sort-based duplicate
// fallback, the trickiest path to reproduce bit-identically.
func duplicateHeavyPoints(rng *rand.Rand, n, d int) *points.Store {
	pts := points.New(n, d)
	for i := 0; i < n; i++ {
		row := pts.Row(i)
		for j := range row {
			// Coordinates drawn from a handful of discrete values.
			row[j] = float64(rng.Intn(4))
		}
	}
	return pts
}

// TestParallelBuildBitIdentical is the parallel-construction property
// test: across split rules, leaf sizes, dimensionalities, dataset
// shapes, and worker counts, Build must produce byte-identical NodeMeta
// and box slabs — and an identically reordered point buffer — as the
// single-threaded build.
func TestParallelBuildBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	type gen struct {
		name string
		mk   func(n, d int) *points.Store
	}
	gens := []gen{
		{"gauss", func(n, d int) *points.Store { return randomPoints(rng, n, d) }},
		{"dupes", func(n, d int) *points.Store { return duplicateHeavyPoints(rng, n, d) }},
	}
	for _, split := range []SplitRule{SplitEquiWidth, SplitMedian} {
		for _, leaf := range []int{1, 4, 32} {
			for _, n := range []int{1, 7, 100, 1500} {
				for _, d := range []int{1, 2, 3} {
					for _, g := range gens {
						pts := g.mk(n, d)
						ref, err := Build(pts, Options{LeafSize: leaf, Split: split, Workers: 1})
						if err != nil {
							t.Fatalf("sequential Build(%s split=%v leaf=%d n=%d d=%d): %v", g.name, split, leaf, n, d, err)
						}
						for _, w := range []int{2, 4, 7} {
							name := fmt.Sprintf("%s/split=%v/leaf=%d/n=%d/d=%d/w=%d", g.name, split, leaf, n, d, w)
							got, err := Build(pts, Options{LeafSize: leaf, Split: split, Workers: w})
							if err != nil {
								t.Fatalf("%s: %v", name, err)
							}
							compareTrees(t, name, ref, got)
						}
					}
				}
			}
		}
	}
}

// compareTrees asserts got's arena slabs, reordered buffer, and stats
// are exactly equal to ref's.
func compareTrees(t *testing.T, name string, ref, got *Tree) {
	t.Helper()
	if !reflect.DeepEqual(ref.Meta, got.Meta) {
		t.Fatalf("%s: NodeMeta slab differs from sequential build", name)
	}
	if len(ref.Boxes) != len(got.Boxes) {
		t.Fatalf("%s: box slab length %d, sequential %d", name, len(got.Boxes), len(ref.Boxes))
	}
	for i := range ref.Boxes {
		if ref.Boxes[i] != got.Boxes[i] {
			t.Fatalf("%s: box slab[%d] = %v, sequential %v", name, i, got.Boxes[i], ref.Boxes[i])
		}
	}
	for i := range ref.Pts.Data {
		if ref.Pts.Data[i] != got.Pts.Data[i] {
			t.Fatalf("%s: reordered buffer[%d] = %v, sequential %v", name, i, got.Pts.Data[i], ref.Pts.Data[i])
		}
	}
	if ref.Stats() != got.Stats() {
		t.Fatalf("%s: stats %+v, sequential %+v", name, got.Stats(), ref.Stats())
	}
}

// TestParallelBuildClampsWorkers makes sure an absurd worker count is
// clamped rather than spawning a goroutine army, and still builds the
// same tree.
func TestParallelBuildClampsWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomPoints(rng, 500, 2)
	ref, err := Build(pts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Build(pts, Options{Workers: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	compareTrees(t, "clamped", ref, got)
}

// BenchmarkBuildWorkers pins the parallel construction cost at the
// worker counts the BENCH_train.json baseline tracks.
func BenchmarkBuildWorkers(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	pts := randomPoints(rng, 100_000, 2)
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Build(pts, Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
