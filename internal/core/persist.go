package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"tkdc/internal/estimator"
	"tkdc/internal/points"
)

// modelSnapshot is the serialized form of a trained classifier. The
// spatial index and grid are rebuilt deterministically from the data on
// load (they are pure functions of data + config), so only the training
// outcome — the threshold and its bounds — needs to persist alongside the
// data. Loading therefore skips the expensive phases of Train entirely.
//
// Format v3 records the resolved density backend tag and the sampling
// backend's parameters alongside the v2 layout, so a loaded replica runs
// the same engine the model was trained with even if the auto-selection
// policy changes between releases. Format v2 stores the dataset as one
// contiguous row-major buffer (Flat + Dim), matching the in-memory
// points.Store layout; format v1 stored a slice of rows (Data). Save
// always writes v3; Load decodes all three. Gob matches fields by name,
// so one struct covers every version.
type modelSnapshot struct {
	Version   int
	Config    Config
	Data      [][]float64 // v1 layout; nil in v2+ snapshots
	Flat      []float64   // v2+ layout: row-major buffer …
	Dim       int         // … with this row width
	Threshold float64
	TLow      float64
	THigh     float64
	Train     TrainStats
	// Backend is the resolved backend tag (v3; empty in v1/v2, which
	// predate backends and always resolve to the tree).
	Backend string
	// Sampler records the sampling backend's tuning parameters at save
	// time (v3). They are currently package constants — persisted so a
	// future release that makes them configurable can honor old
	// snapshots, and so operators can audit what an artifact ran with.
	Sampler samplerParams
}

// samplerParams is the persisted tuning of the sampling backend.
type samplerParams struct {
	NearCut                float64
	MinSamples, MaxSamples int
}

// modelVersion identifies the current snapshot format: 3 = flat buffer
// plus backend tag.
const modelVersion = 3

// Snapshot files and replicated snapshot bytes carry an integrity frame
// around the gob payload so a torn write or a corrupted transfer fails
// loudly at load time instead of deserializing garbage:
//
//	magic   [4]byte  "TKDC"
//	version [1]byte  frame format (1)
//	sha256  [32]byte SHA-256 of the gob payload that follows
//	payload          gob(modelSnapshot)
//
// The frame is what SaveFile writes and what the replication fleet ships
// over /snapshot. Load accepts both framed and bare-gob streams (every
// pre-frame snapshot, and Save's output, is bare gob): gob type
// descriptors for modelSnapshot exceed 127 bytes, so a legitimate bare
// stream can never begin with the magic's first byte 'T' (0x54).
const (
	frameMagic   = "TKDC"
	frameVersion = 1
	frameHdrLen  = len(frameMagic) + 1 + sha256.Size
)

// EncodeSnapshot serializes the classifier in the framed on-disk/wire
// format: the integrity header followed by the gob payload. The returned
// buffer is freshly allocated and safe to retain; checksum is the
// SHA-256 of the whole framed encoding (what `sha256sum model.tkdc`
// reports), which the replication layer uses as its content address.
func (c *Classifier) EncodeSnapshot() (data []byte, checksum [sha256.Size]byte, err error) {
	var payload bytes.Buffer
	if err := c.Save(&payload); err != nil {
		return nil, checksum, err
	}
	sum := sha256.Sum256(payload.Bytes())
	buf := make([]byte, 0, frameHdrLen+payload.Len())
	buf = append(buf, frameMagic...)
	buf = append(buf, frameVersion)
	buf = append(buf, sum[:]...)
	buf = append(buf, payload.Bytes()...)
	return buf, sha256.Sum256(buf), nil
}

// Save serializes the trained classifier (including its training data —
// a KDE *is* its data) so a later Load can serve queries without
// retraining. The format is Go-specific (encoding/gob) and versioned;
// the dataset is written as the flat row-major buffer of format v2.
func (c *Classifier) Save(w io.Writer) error {
	cfg := c.cfg
	// The recorder is live runtime wiring, not model state: drop it so
	// gob never sees a non-nil interface (which it cannot encode without
	// registration). Load-ed models start with telemetry off; reattach
	// with SetRecorder.
	cfg.Recorder = nil
	snap := modelSnapshot{
		Version:   modelVersion,
		Config:    cfg,
		Flat:      c.data.Data,
		Dim:       c.data.Dim,
		Threshold: c.threshold,
		TLow:      c.tLow,
		THigh:     c.tHigh,
		Train:     c.train,
		Backend:   c.backend,
		Sampler: samplerParams{
			NearCut:    estimator.DefaultNearCut,
			MinSamples: estimator.DefaultMinSamples,
			MaxSamples: estimator.DefaultMaxSamples,
		},
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("core: save model: %w", err)
	}
	return nil
}

// SaveFile atomically persists the classifier to path: the snapshot is
// written to path+".tmp", fsynced, renamed over path, and the containing
// directory fsynced, so a crash mid-save can never leave a truncated or
// half-written model file where a good one used to be. The bytes carry
// the integrity frame (magic + payload SHA-256), so a file torn by
// anything the rename dance cannot defend against — a failing disk, a
// partial copy between machines — is rejected loudly by Load instead of
// deserializing garbage. This is the helper behind the CLI's -save and
// the streaming lifecycle's per-swap snapshots; concurrent SaveFile
// calls on the same path are not safe (they share the temp name).
func (c *Classifier) SaveFile(path string) error {
	data, _, err := c.EncodeSnapshot()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("core: save model: %w", err)
	}
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(fmt.Errorf("core: save model: %w", err))
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("core: save model: sync: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: save model: close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: save model: %w", err)
	}
	// Fsync the directory so the rename itself survives a crash. Best
	// effort: some filesystems reject directory syncs.
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// Load reconstructs a classifier saved with Save or SaveFile: the k-d
// tree and grid are rebuilt from the stored data, and the persisted
// threshold is used directly, skipping the bootstrap and the
// full-dataset density pass. Framed streams (SaveFile, /snapshot) have
// their payload verified against the recorded SHA-256 before any
// decoding — a truncated or bit-flipped snapshot fails with a checksum
// error, never a half-built model. All snapshot formats are accepted:
// v3 (flat buffer + backend tag), v2 (flat buffer), and the legacy v1
// (slice of rows), which is converted to flat storage on the way in. A
// v3 snapshot's recorded backend pins the loaded model's engine — an
// auto-selection policy change between releases cannot silently flip a
// serving replica.
func Load(r io.Reader) (*Classifier, error) {
	payload, err := verifyFrame(r)
	if err != nil {
		return nil, err
	}
	var snap modelSnapshot
	if err := gob.NewDecoder(payload).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: load model: %w", err)
	}
	var store *points.Store
	switch snap.Version {
	case 1:
		if len(snap.Data) == 0 {
			return nil, errors.New("core: model contains no data")
		}
		s, err := points.FromRows(snap.Data)
		if err != nil {
			return nil, fmt.Errorf("core: load model: %w", err)
		}
		store = s
	case 2, 3:
		if len(snap.Flat) == 0 {
			return nil, errors.New("core: model contains no data")
		}
		s, err := points.FromFlat(snap.Flat, snap.Dim)
		if err != nil {
			return nil, fmt.Errorf("core: load model: %w", err)
		}
		store = s
	default:
		return nil, fmt.Errorf("core: unsupported model version %d (want 1 to %d)", snap.Version, modelVersion)
	}
	if math.IsNaN(snap.Threshold) {
		return nil, errors.New("core: model threshold is NaN")
	}
	cfg := snap.Config.normalized()
	if snap.Backend != "" {
		cfg.Backend = snap.Backend
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := store.CheckFinite(); err != nil {
		return nil, fmt.Errorf("core: load model: %w", err)
	}

	c, err := assemble(store, cfg)
	if err != nil {
		return nil, err
	}
	c.tLow = snap.TLow
	c.tHigh = snap.THigh
	c.threshold = snap.Threshold
	c.train = snap.Train
	return c, nil
}

// verifyFrame sniffs r for the integrity frame. Framed input has its
// payload read whole and checked against the header SHA-256; the
// returned reader then yields the verified payload. Bare-gob input
// (legacy snapshots, Save output) is passed through untouched, with the
// sniffed prefix stitched back on.
func verifyFrame(r io.Reader) (io.Reader, error) {
	head := make([]byte, len(frameMagic))
	n, err := io.ReadFull(r, head)
	if err != nil {
		// Too short to even carry the magic: hand the bytes to gob, whose
		// error ("EOF", "unexpected EOF") names the real problem.
		return io.MultiReader(bytes.NewReader(head[:n]), r), nil
	}
	if string(head) != frameMagic {
		return io.MultiReader(bytes.NewReader(head), r), nil
	}
	rest := make([]byte, 1+sha256.Size)
	if _, err := io.ReadFull(r, rest); err != nil {
		return nil, fmt.Errorf("core: load model: truncated snapshot frame: %w", err)
	}
	if rest[0] != frameVersion {
		return nil, fmt.Errorf("core: load model: unsupported snapshot frame version %d (want %d)", rest[0], frameVersion)
	}
	want := rest[1:]
	payload, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("core: load model: read snapshot payload: %w", err)
	}
	got := sha256.Sum256(payload)
	if !bytes.Equal(got[:], want) {
		return nil, fmt.Errorf("core: load model: snapshot checksum mismatch (want %s, got %s): torn or corrupted snapshot",
			hex.EncodeToString(want), hex.EncodeToString(got[:]))
	}
	return bytes.NewReader(payload), nil
}

// LoadFile opens and loads a snapshot written by SaveFile, verifying the
// recorded SHA-256 before deserializing. It is the file-path counterpart
// of Load and the loud-failure guard for replicas booting off local
// snapshots: a torn file surfaces as a checksum error naming the path.
func LoadFile(path string) (*Classifier, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: load model: %w", err)
	}
	defer f.Close()
	c, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return c, nil
}
