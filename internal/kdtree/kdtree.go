// Package kdtree implements the spatial index tKDC traverses (Sections
// 3.1–3.2 and 3.7 of the paper): a k-d tree whose every node tracks the
// bounding box and point count of its region, in the style of
// multi-resolution k-d trees (Deng & Moore).
//
// Two split rules are provided. The paper's default for tKDC is the
// "equi-width" trimmed midpoint — split at (x⁽¹⁰⁾ + x⁽⁹⁰⁾)/2, the midpoint
// of the 10th and 90th percentiles along the cycling axis — which
// identifies tightly constrained regions faster than balanced median
// splits when the kernel decays exponentially (Section 3.7). Median
// splitting is retained for the ablation study (Figures 12 and 16).
package kdtree

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// SplitRule selects how Build partitions points at each node.
type SplitRule int

const (
	// SplitEquiWidth splits at the trimmed midpoint (x⁽¹⁰⁾+x⁽⁹⁰⁾)/2 of the
	// node's points along the split axis (the paper's default for tKDC).
	SplitEquiWidth SplitRule = iota
	// SplitMedian splits at the median, producing a balanced tree (the
	// classic construction, used as the ablation baseline).
	SplitMedian
)

// String returns the rule's name.
func (r SplitRule) String() string {
	switch r {
	case SplitEquiWidth:
		return "equiwidth"
	case SplitMedian:
		return "median"
	default:
		return fmt.Sprintf("SplitRule(%d)", int(r))
	}
}

// DefaultLeafSize is the maximum number of points kept in a leaf when
// Options.LeafSize is zero.
const DefaultLeafSize = 32

// Options configures Build.
type Options struct {
	// LeafSize caps the number of points per leaf (DefaultLeafSize if 0).
	LeafSize int
	// Split selects the partitioning rule.
	Split SplitRule
}

// Node is one region of the index. Interior nodes have both children set;
// leaves hold their points directly. Min/Max give the tight bounding box
// of the points under the node (not the splitting hyperplanes), which is
// what makes the distance bounds of Equation 6 tight.
type Node struct {
	Min, Max []float64
	Count    int
	Left     *Node
	Right    *Node
	Points   [][]float64 // non-nil only for leaves
}

// IsLeaf reports whether the node stores points directly.
func (n *Node) IsLeaf() bool { return n.Left == nil }

// Tree is an immutable k-d tree over a point set. It is safe for
// concurrent readers once built.
type Tree struct {
	Root *Node
	Dim  int
	Size int
	Opts Options
}

// Build constructs a k-d tree over the given points. The point slices are
// referenced, not copied; callers must not mutate them afterwards. All
// points must share the same dimensionality and contain no NaNs or
// infinities.
func Build(points [][]float64, opts Options) (*Tree, error) {
	if len(points) == 0 {
		return nil, errors.New("kdtree: no points")
	}
	d := len(points[0])
	if d == 0 {
		return nil, errors.New("kdtree: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != d {
			return nil, fmt.Errorf("kdtree: point %d has dimension %d, want %d", i, len(p), d)
		}
		for j, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("kdtree: point %d coordinate %d is %v", i, j, v)
			}
		}
	}
	if opts.LeafSize <= 0 {
		opts.LeafSize = DefaultLeafSize
	}
	// Work on a private ordering so partitioning doesn't disturb the
	// caller's slice.
	work := append([][]float64(nil), points...)
	t := &Tree{Dim: d, Size: len(points), Opts: opts}
	t.Root = t.build(work, 0)
	return t, nil
}

func (t *Tree) build(pts [][]float64, depth int) *Node {
	n := &Node{Count: len(pts)}
	n.Min, n.Max = boundingBox(pts, t.Dim)

	if len(pts) <= t.Opts.LeafSize {
		n.Points = pts
		return n
	}

	// Cycle through the dimensions one per level (Section 3.1), skipping
	// axes with zero extent. If every axis has zero extent the points are
	// all identical and further splitting is pointless.
	dim := -1
	for off := 0; off < t.Dim; off++ {
		cand := (depth + off) % t.Dim
		if n.Max[cand] > n.Min[cand] {
			dim = cand
			break
		}
	}
	if dim < 0 {
		n.Points = pts
		return n
	}

	split := t.splitValue(pts, dim)
	left, right := partition(pts, dim, split)
	if len(left) == 0 || len(right) == 0 {
		// Degenerate split (heavily duplicated coordinates): fall back to
		// a median partition by rank, which always separates a non-trivial
		// prefix because the axis has positive extent.
		sort.Slice(pts, func(i, j int) bool { return pts[i][dim] < pts[j][dim] })
		mid := len(pts) / 2
		// Move mid off a run of duplicates so left's max < right's min.
		for mid < len(pts) && pts[mid][dim] == pts[mid-1][dim] {
			mid++
		}
		if mid == len(pts) {
			mid = len(pts) / 2
			for mid > 0 && pts[mid][dim] == pts[mid-1][dim] {
				mid--
			}
		}
		if mid == 0 || mid == len(pts) {
			n.Points = pts
			return n
		}
		left, right = pts[:mid], pts[mid:]
	}
	n.Left = t.build(left, depth+1)
	n.Right = t.build(right, depth+1)
	return n
}

// splitValue returns the coordinate to split at along dim.
func (t *Tree) splitValue(pts [][]float64, dim int) float64 {
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = p[dim]
	}
	sort.Float64s(vals)
	switch t.Opts.Split {
	case SplitMedian:
		return vals[len(vals)/2]
	default: // SplitEquiWidth
		p10 := vals[int(0.10*float64(len(vals)-1))]
		p90 := vals[int(0.90*float64(len(vals)-1))]
		return 0.5 * (p10 + p90)
	}
}

// partition splits pts into (< split) and (≥ split) along dim, reusing the
// underlying array.
func partition(pts [][]float64, dim int, split float64) (left, right [][]float64) {
	i, j := 0, len(pts)-1
	for i <= j {
		if pts[i][dim] < split {
			i++
		} else {
			pts[i], pts[j] = pts[j], pts[i]
			j--
		}
	}
	return pts[:i], pts[i:]
}

func boundingBox(pts [][]float64, d int) (lo, hi []float64) {
	lo = make([]float64, d)
	hi = make([]float64, d)
	copy(lo, pts[0])
	copy(hi, pts[0])
	for _, p := range pts[1:] {
		for j, v := range p {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	return lo, hi
}

// MinSqDist returns the minimum bandwidth-scaled squared distance from x
// to the node's bounding box: Σ_j clamp_j²·invH2_j where clamp_j is the
// distance from x_j to the interval [Min_j, Max_j] (0 inside).
func (n *Node) MinSqDist(x, invH2 []float64) float64 {
	s := 0.0
	for j, xj := range x {
		var d float64
		switch {
		case xj < n.Min[j]:
			d = n.Min[j] - xj
		case xj > n.Max[j]:
			d = xj - n.Max[j]
		default:
			continue
		}
		s += d * d * invH2[j]
	}
	return s
}

// MaxSqDist returns the maximum bandwidth-scaled squared distance from x
// to any point of the node's bounding box (the farthest corner).
func (n *Node) MaxSqDist(x, invH2 []float64) float64 {
	s := 0.0
	for j, xj := range x {
		d := math.Max(math.Abs(xj-n.Min[j]), math.Abs(xj-n.Max[j]))
		s += d * d * invH2[j]
	}
	return s
}

// ForEachInRange invokes fn for every indexed point whose bandwidth-scaled
// squared distance to x is at most sqRadius. It prunes subtrees whose
// bounding boxes lie entirely outside the radius, the classic range query
// the rkde baseline is built on (Section 4.1).
func (t *Tree) ForEachInRange(x, invH2 []float64, sqRadius float64, fn func(p []float64)) {
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.MinSqDist(x, invH2) > sqRadius {
			return
		}
		if n.IsLeaf() {
			for _, p := range n.Points {
				if sq := sqDist(x, p, invH2); sq <= sqRadius {
					fn(p)
				}
			}
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(t.Root)
}

func sqDist(a, b, invH2 []float64) float64 {
	s := 0.0
	for j, aj := range a {
		d := aj - b[j]
		s += d * d * invH2[j]
	}
	return s
}

// Height returns the height of the tree (a single leaf has height 1).
func (t *Tree) Height() int {
	var h func(n *Node) int
	h = func(n *Node) int {
		if n == nil {
			return 0
		}
		if n.IsLeaf() {
			return 1
		}
		l, r := h(n.Left), h(n.Right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return h(t.Root)
}

// NodeCount returns the total number of nodes.
func (t *Tree) NodeCount() int {
	var c func(n *Node) int
	c = func(n *Node) int {
		if n == nil {
			return 0
		}
		if n.IsLeaf() {
			return 1
		}
		return 1 + c(n.Left) + c(n.Right)
	}
	return c(t.Root)
}
