package baseline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tkdc/internal/kernel"
	"tkdc/internal/points"
)

func makeData(rng *rand.Rand, n, d int) (*points.Store, kernel.Kernel) {
	pts := points.New(n, d)
	for i := range pts.Data {
		pts.Data[i] = rng.NormFloat64() * 3
	}
	h, err := kernel.ScottBandwidths(pts, 1)
	if err != nil {
		panic(err)
	}
	kern, err := kernel.NewGaussian(h)
	if err != nil {
		panic(err)
	}
	return pts, kern
}

// exact computes the reference density by direct summation.
func exact(pts *points.Store, kern kernel.Kernel, x []float64) float64 {
	invH2 := kern.InvBandwidthsSq()
	sum := 0.0
	for i := 0; i < pts.Len(); i++ {
		sum += kern.FromScaledSqDist(kernel.ScaledSqDist(x, pts.Row(i), invH2))
	}
	return sum / float64(pts.Len())
}

func TestSimpleMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts, kern := makeData(rng, 500, 2)
	s := NewSimple(pts, kern)
	if s.Name() != "simple" || s.N() != 500 {
		t.Fatal("metadata wrong")
	}
	for trial := 0; trial < 30; trial++ {
		q := []float64{rng.NormFloat64() * 4, rng.NormFloat64() * 4}
		got := s.Density(q)
		want := exact(pts, kern, q)
		if math.Abs(got-want) > 1e-12*want+1e-300 {
			t.Fatalf("Density = %g, want %g", got, want)
		}
	}
	if s.Kernels() != 30*500 {
		t.Fatalf("kernel counter = %d, want %d", s.Kernels(), 30*500)
	}
}

func TestNoCutWithinTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts, kern := makeData(rng, 2000, 2)
	nc, err := NewNoCut(pts, kern, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if nc.Name() != "nocut" || nc.N() != 2000 {
		t.Fatal("metadata wrong")
	}
	for trial := 0; trial < 50; trial++ {
		q := []float64{rng.NormFloat64() * 4, rng.NormFloat64() * 4}
		fl, fu := nc.Bounds(q)
		want := exact(pts, kern, q)
		slack := 1e-9*want + 1e-300
		if fl > want+slack || fu < want-slack {
			t.Fatalf("bounds [%g, %g] miss exact %g", fl, fu, want)
		}
		if fu-fl > 0.01*fl*(1+1e-9)+1e-300 {
			t.Fatalf("bounds [%g, %g] exceed 1%% relative tolerance", fl, fu)
		}
		got := nc.Density(q)
		if math.Abs(got-want) > 0.01*want+1e-300 {
			t.Fatalf("Density = %g, want %g within 1%%", got, want)
		}
	}
	if nc.Kernels() == 0 {
		t.Fatal("kernel counter did not advance")
	}
}

func TestNoCutExactModeAndSavings(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts, kern := makeData(rng, 3000, 2)
	exactNC, err := NewNoCut(pts, kern, 0)
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{0.5, -0.5}
	got := exactNC.Density(q)
	want := exact(pts, kern, q)
	if math.Abs(got-want) > 1e-9*want {
		t.Fatalf("eps=0 Density = %g, want exact %g", got, want)
	}
	// A loose tolerance should cost far fewer kernels than exact.
	loose, err := NewNoCut(pts, kern, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	loose.Density(q)
	if loose.Kernels()*2 > exactNC.Kernels() {
		t.Fatalf("loose tolerance saved too little: %d vs %d", loose.Kernels(), exactNC.Kernels())
	}
}

func TestRKDEValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts, kern := makeData(rng, 100, 2)
	if _, err := NewRKDE(pts, kern, 0); err == nil {
		t.Fatal("radius 0 should error")
	}
	if _, err := NewRKDE(pts, kern, -1); err == nil {
		t.Fatal("negative radius should error")
	}
	if _, err := NewRKDE(pts, kern, math.NaN()); err == nil {
		t.Fatal("NaN radius should error")
	}
}

func TestRKDELowerBoundAndConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts, kern := makeData(rng, 1500, 2)
	prev := -1.0
	for _, radius := range []float64{0.5, 1, 2, 4, 8} {
		r, err := NewRKDE(pts, kern, radius)
		if err != nil {
			t.Fatal(err)
		}
		if r.Radius() != radius {
			t.Fatalf("Radius() = %v, want %v", r.Radius(), radius)
		}
		q := []float64{0.2, 0.4}
		got := r.Density(q)
		want := exact(pts, kern, q)
		if got > want*(1+1e-9) {
			t.Fatalf("radius %v: rkde %g exceeds exact %g", radius, got, want)
		}
		if got < prev-1e-12 {
			t.Fatalf("density decreased as radius grew: %g < %g", got, prev)
		}
		prev = got
		// At a generous radius the truncation error vanishes.
		if radius == 8 && math.Abs(got-want) > 1e-6*want {
			t.Fatalf("radius 8: rkde %g still far from exact %g", got, want)
		}
	}
}

func TestRadiusForError(t *testing.T) {
	h := []float64{1, 1}
	kern, _ := kernel.NewGaussian(h)
	if _, err := RadiusForError(kern, 0); err == nil {
		t.Fatal("zero error target should error")
	}
	// Huge target: any radius works.
	r, err := RadiusForError(kern, kern.AtZero()*2)
	if err != nil || r <= 0 {
		t.Fatalf("huge target: r=%v err=%v", r, err)
	}
	// The guarantee: K(r²) == errAbs exactly at the returned radius.
	errAbs := kern.AtZero() * 1e-4
	r, err = RadiusForError(kern, errAbs)
	if err != nil {
		t.Fatal(err)
	}
	if got := kern.FromScaledSqDist(r * r); math.Abs(got-errAbs) > 1e-12*errAbs {
		t.Fatalf("K(r²) = %g, want %g", got, errAbs)
	}
}

func TestBinnedValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts, kern := makeData(rng, 100, 2)
	if _, err := NewBinned(nil, kern); err == nil {
		t.Fatal("empty data should error")
	}
	if _, err := NewBinnedWithBins(pts, kern, 1); err == nil {
		t.Fatal("1 bin should error")
	}
	pts5, kern5 := makeData(rng, 100, 5)
	if _, err := NewBinned(pts5, kern5); err == nil {
		t.Fatal("d=5 should exceed the ks-style limit")
	}
}

func TestBinnedAccurateInLowDimensions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, d := range []int{1, 2} {
		pts, kern := makeData(rng, 2000, d)
		b, err := NewBinned(pts, kern)
		if err != nil {
			t.Fatal(err)
		}
		if b.Name() != "binned" || b.N() != 2000 {
			t.Fatal("metadata wrong")
		}
		for trial := 0; trial < 20; trial++ {
			q := make([]float64, d)
			for j := range q {
				q[j] = rng.NormFloat64() * 2
			}
			got := b.Density(q)
			want := exact(pts, kern, q)
			if want < 1e-12 {
				continue
			}
			if math.Abs(got-want) > 0.15*want {
				t.Fatalf("d=%d: binned %g vs exact %g (rel err %.3f)", d, got, want, math.Abs(got-want)/want)
			}
		}
		if b.Kernels() == 0 {
			t.Fatal("kernel counter did not advance")
		}
	}
}

func TestBinnedCoarserInFourDimensions(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts, kern := makeData(rng, 3000, 4)
	b, err := NewBinned(pts, kern)
	if err != nil {
		t.Fatal(err)
	}
	if b.GridNodes() != 21*21*21*21 {
		t.Fatalf("GridNodes = %d, want 21⁴", b.GridNodes())
	}
	// The estimate should still be in the right order of magnitude at the
	// mode, but the ks-style 21-node grid is too coarse for tight error.
	q := []float64{0, 0, 0, 0}
	got := b.Density(q)
	want := exact(pts, kern, q)
	if got <= 0 {
		t.Fatalf("binned density at mode = %g, want positive", got)
	}
	if got > 100*want || got < want/100 {
		t.Fatalf("binned %g not within two orders of exact %g", got, want)
	}
}

func TestBinnedMassConservation(t *testing.T) {
	// Linear binning distributes exactly unit mass per point.
	rng := rand.New(rand.NewSource(9))
	pts, kern := makeData(rng, 500, 2)
	b, err := NewBinned(pts, kern)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, w := range b.weights {
		total += w
	}
	if math.Abs(total-500) > 1e-6 {
		t.Fatalf("total binned mass = %v, want 500", total)
	}
}

func TestBinnedFarQueryIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pts, kern := makeData(rng, 300, 2)
	b, err := NewBinned(pts, kern)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Density([]float64{1e6, 1e6}); got != 0 {
		t.Fatalf("far query density = %g, want 0 (outside grid window)", got)
	}
}

// Property: all estimators are non-negative everywhere and agree on
// ordering between a dense and a sparse location.
func TestEstimatorsOrderingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts, kern := makeData(rng, 1000, 2)
	nc, err := NewNoCut(pts, kern, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	rk, err := NewRKDE(pts, kern, 6)
	if err != nil {
		t.Fatal(err)
	}
	bn, err := NewBinned(pts, kern)
	if err != nil {
		t.Fatal(err)
	}
	ests := []Estimator{NewSimple(pts, kern), nc, rk, bn}
	f := func(qx, qy float64) bool {
		q := []float64{math.Mod(qx, 10), math.Mod(qy, 10)}
		dense := []float64{0, 0}
		for _, e := range ests {
			dq := e.Density(q)
			dd := e.Density(dense)
			if dq < 0 || math.IsNaN(dq) {
				return false
			}
			// The mode must look at least as dense as a random point far
			// out; near the center ties are fine.
			if q[0]*q[0]+q[1]*q[1] > 36 && dq > dd {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSimpleDensity(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	pts, kern := makeData(rng, 10000, 2)
	s := NewSimple(pts, kern)
	q := []float64{0.1, 0.2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Density(q)
	}
}

func BenchmarkNoCutDensity(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	pts, kern := makeData(rng, 10000, 2)
	nc, err := NewNoCut(pts, kern, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	q := []float64{0.1, 0.2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nc.Density(q)
	}
}
