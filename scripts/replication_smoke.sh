#!/usr/bin/env bash
# Replication smoke test: a real trainer process and a real follower
# process over loopback HTTP. The follower must converge to the leader's
# generation and classify bit-for-bit identically, including across a
# retrain-driven generation bump. CI runs this; it is also handy locally:
#
#   ./scripts/replication_smoke.sh
set -euo pipefail

LEADER_ADDR=127.0.0.1:18080
FOLLOWER_ADDR=127.0.0.1:18081
LEADER=http://$LEADER_ADDR
FOLLOWER=http://$FOLLOWER_ADDR

workdir=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/tkdc" ./cmd/tkdc
go run ./cmd/tkdc-gen -dataset gauss -n 2000 -seed 7 -o "$workdir/data.csv"
go run ./cmd/tkdc-gen -dataset gauss -n 400 -seed 8 -o "$workdir/extra.csv"
head -50 "$workdir/data.csv" > "$workdir/queries.csv"

# json FILE KEY — extract one field from a JSON response body.
json() {
  python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))[sys.argv[2]])' "$1" "$2"
}

# wait_until DESCRIPTION CMD... — retry CMD up to 30s.
wait_until() {
  local what=$1; shift
  for _ in $(seq 1 150); do
    if "$@" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "timeout waiting for $what" >&2
  exit 1
}

echo "== start leader (trainer) on $LEADER_ADDR"
"$workdir/tkdc" -train "$workdir/data.csv" -serve "$LEADER_ADDR" \
  -stream -retrain-every 100 -save "$workdir/model.tkdc" &
pids+=($!)
wait_until "leader /healthz" curl -sf "$LEADER/healthz"

echo "== start follower on $FOLLOWER_ADDR"
"$workdir/tkdc" -follow "$LEADER" -serve "$FOLLOWER_ADDR" -poll-every 200ms &
pids+=($!)
wait_until "follower /healthz" curl -sf "$FOLLOWER/healthz"

echo "== compare answers (generation 1)"
curl -sf -X POST --data-binary "@$workdir/queries.csv" "$LEADER/classify?density=1" > "$workdir/leader1.json"
curl -sf -X POST --data-binary "@$workdir/queries.csv" "$FOLLOWER/classify?density=1" > "$workdir/follower1.json"
cmp "$workdir/leader1.json" "$workdir/follower1.json" || {
  echo "follower answers diverge from leader at generation 1" >&2; exit 1; }

curl -sf "$FOLLOWER/model" > "$workdir/fmodel.json"
[ "$(json "$workdir/fmodel.json" role)" = follower ] || {
  echo "follower /model does not report role=follower" >&2; exit 1; }
gen_before=$(json "$workdir/fmodel.json" applied_generation)

echo "== ingest to trigger a retrain (generation bump)"
curl -sf -X POST --data-binary "@$workdir/extra.csv" "$LEADER/ingest" > /dev/null

leader_advanced() {
  curl -sf "$LEADER/model" > "$workdir/lmodel.json" &&
    [ "$(json "$workdir/lmodel.json" generation)" -gt 1 ]
}
wait_until "leader retrain" leader_advanced

follower_advanced() {
  curl -sf "$FOLLOWER/model" > "$workdir/fmodel.json" &&
    [ "$(json "$workdir/fmodel.json" applied_generation)" -gt "$gen_before" ]
}
wait_until "follower sync of new generation" follower_advanced

echo "== compare answers (after generation bump)"
curl -sf -X POST --data-binary "@$workdir/queries.csv" "$LEADER/classify?density=1" > "$workdir/leader2.json"
curl -sf -X POST --data-binary "@$workdir/queries.csv" "$FOLLOWER/classify?density=1" > "$workdir/follower2.json"
cmp "$workdir/leader2.json" "$workdir/follower2.json" || {
  echo "follower answers diverge from leader after retrain" >&2; exit 1; }
cmp -s "$workdir/leader1.json" "$workdir/leader2.json" && {
  echo "retrain did not change the model; the bump proved nothing" >&2; exit 1; }

echo "== saved snapshot loads back"
"$workdir/tkdc" -load "$workdir/model.tkdc" -query "$workdir/queries.csv" > /dev/null

echo "replication smoke: OK (follower converged $gen_before -> $(json "$workdir/fmodel.json" applied_generation), answers bit-identical)"
