package core

import (
	"math/rand"
	"testing"

	"tkdc/internal/points"
)

// TestProbeThreshold checks the cheap drift probe is deterministic and
// lands in the neighborhood of the trained threshold — close enough that
// a relative-drift comparison against it is meaningful.
func TestProbeThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	data := make([][]float64, 2000)
	for i := range data {
		data[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	cfg := DefaultConfig()
	cfg.S0 = 2000
	clf, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	store, err := points.FromRows(data)
	if err != nil {
		t.Fatal(err)
	}

	p1, err := ProbeThreshold(store, cfg, 512, 256, 5)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ProbeThreshold(store, cfg, 512, 256, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatalf("probe not deterministic: %v vs %v", p1, p2)
	}
	trained := clf.Threshold()
	if p1 <= 0 || p1 < trained/5 || p1 > trained*5 {
		t.Fatalf("probe %v too far from trained threshold %v", p1, trained)
	}

	if _, err := ProbeThreshold(points.New(0, 2), cfg, 10, 10, 1); err == nil {
		t.Fatal("probe over empty store succeeded")
	}
}
