package core

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// TestSaveFileAtomic covers the crash-safe persistence helper: the model
// lands complete and loadable, the temp file is gone, and overwriting an
// existing model never passes through a truncated state (the rename is
// the commit point).
func TestSaveFileAtomic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([][]float64, 400)
	for i := range data {
		data[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	cfg := DefaultConfig()
	cfg.S0 = 2000
	clf, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "model.tkdc")
	for round := 0; round < 2; round++ { // second round overwrites
		if err := clf.SaveFile(path); err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
			t.Fatalf("round %d: temp file left behind: %v", round, err)
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(f)
		f.Close()
		if err != nil {
			t.Fatalf("round %d: load: %v", round, err)
		}
		if loaded.Threshold() != clf.Threshold() || loaded.N() != clf.N() {
			t.Fatalf("round %d: loaded model differs: t=%v n=%d, want t=%v n=%d",
				round, loaded.Threshold(), loaded.N(), clf.Threshold(), clf.N())
		}
	}

	if err := clf.SaveFile(filepath.Join(t.TempDir(), "missing", "model.tkdc")); err == nil {
		t.Fatal("SaveFile into a missing directory succeeded")
	}
}
