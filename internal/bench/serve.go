package bench

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"

	"tkdc/internal/core"
	"tkdc/internal/dataset"
	"tkdc/internal/server"
	"tkdc/internal/telemetry"
)

// serveRowsPerRequest is how many rows each benchmark /classify request
// carries. At 32 rows, eight concurrent requests coalescing in one
// window cross core.DualTreeMinBatch (256), so the coalesced legs
// exercise the regime the engine exists for: one dual-tree pass
// answering many requests' rows at once.
const serveRowsPerRequest = 32

// serveMeasureTime is the sustained-load window per table row: long
// enough that hundreds of coalescing windows open and close
// mid-measurement.
const serveMeasureTime = 700 * time.Millisecond

// Serve measures the batched query engine under concurrent /classify
// traffic over real HTTP: sustained row throughput and request latency
// across batch configurations (coalescing disabled, window=0 inline,
// and two coalescing windows) at rising client concurrency. The
// acceptance shape: at concurrency >= 8 the coalescing legs beat
// disabled on rows/s (window batches cross the dual-tree threshold),
// while at concurrency 1 a window only adds latency — the table shows
// both so the default (window=0) is justified.
func Serve(opts Options) ([]Table, error) {
	opts = opts.normalized()
	n := opts.scaled(100_000, 2000)
	data := dataset.Gauss(n, 2, opts.Seed)

	clf, err := core.Train(data, opts.config())
	if err != nil {
		return nil, err
	}

	// Request bodies cycle through clustered query batches drawn from the
	// data distribution — the workload where group certification can
	// amortize tree walks across a flush.
	queries := dataset.Gauss(4096, 2, opts.Seed+1)
	bodies := make([][]byte, 0, len(queries)/serveRowsPerRequest)
	for i := 0; i+serveRowsPerRequest <= len(queries); i += serveRowsPerRequest {
		var b strings.Builder
		for _, q := range queries[i : i+serveRowsPerRequest] {
			fmt.Fprintf(&b, "%.6f,%.6f\n", q[0], q[1])
		}
		bodies = append(bodies, []byte(b.String()))
	}

	configs := []struct {
		name  string
		batch server.BatchOptions
	}{
		{"disabled", server.BatchOptions{Disable: true}},
		{"window=0", server.BatchOptions{}},
		{"window=500us", server.BatchOptions{Window: 500 * time.Microsecond}},
		{"window=2ms", server.BatchOptions{Window: 2 * time.Millisecond}},
	}

	t := Table{
		Title:   "Batched query engine: sustained /classify throughput (CSV rows over HTTP)",
		Columns: []string{"Config", "Conc", "Rows/s", "Req/s", "p50 us", "p99 us", "Flushes", "Coalesced rows"},
	}

	for _, conc := range []int{1, 8, 32} {
		for _, cfg := range configs {
			reg := telemetry.NewRegistry()
			srv := server.New(clf, server.Options{Registry: reg, Batch: cfg.batch})
			ts := httptest.NewServer(srv)

			rows, reqs, lat, err := measureServe(ts.URL, conc, bodies)
			srv.Close()
			ts.Close()
			if err != nil {
				return nil, fmt.Errorf("bench: serve %s conc=%d: %w", cfg.name, conc, err)
			}

			snap := reg.Snapshot()
			t.AddRow(cfg.name, fmt.Sprintf("%d", conc),
				fmtRate(rows), fmtRate(reqs),
				fmtMicros(lat.p50), fmtMicros(lat.p99),
				fmtCount(float64(snap.Batches)), fmtCount(float64(snap.CoalescedQueries)))
		}
	}

	t.Notes = append(t.Notes,
		fmt.Sprintf("each request posts %d CSV rows; coalesced flushes at conc>=8 cross the dual-tree threshold (%d rows)",
			serveRowsPerRequest, core.DualTreeMinBatch),
		"'Flushes' counts batch executions, 'Coalesced rows' the rows that shared a flush with another request;",
		"  disabled and window=0 legs never coalesce, so their flush column counts per-request executions",
		"p50/p99 are request latencies: a coalescing window trades per-request latency for aggregate rows/s,",
		"  which is why the window legs only win once concurrent requests actually share windows")
	t.Fprint(opts.Out)
	return []Table{t}, nil
}

// measureServe drives conc goroutines posting bodies at url/classify for
// at least serveMeasureTime, returning aggregate row and request
// throughput plus request latency quantiles.
func measureServe(url string, conc int, bodies [][]byte) (rowsPerSec, reqPerSec float64, lat latencyStats, err error) {
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        conc * 2,
		MaxIdleConnsPerHost: conc * 2,
	}}
	defer client.CloseIdleConnections()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		allLat   []float64
		firstErr error
	)
	stop := make(chan struct{})
	time.AfterFunc(serveMeasureTime, func() { close(stop) })
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lats := make([]float64, 0, 1024)
			for i := w; ; i++ {
				select {
				case <-stop:
					mu.Lock()
					allLat = append(allLat, lats...)
					mu.Unlock()
					return
				default:
				}
				body := bodies[i%len(bodies)]
				qs := time.Now()
				resp, perr := client.Post(url+"/classify", "text/csv", bytes.NewReader(body))
				if perr == nil {
					// Drain so the keep-alive connection is reusable.
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						perr = fmt.Errorf("status %d", resp.StatusCode)
					}
				}
				if perr != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = perr
					}
					allLat = append(allLat, lats...)
					mu.Unlock()
					return
				}
				lats = append(lats, time.Since(qs).Seconds())
			}
		}(w)
	}
	wg.Wait()
	total := time.Since(start).Seconds()
	if firstErr != nil {
		return 0, 0, lat, firstErr
	}
	if len(allLat) == 0 {
		return 0, 0, lat, fmt.Errorf("no requests completed")
	}
	sort.Float64s(allLat)
	reqPerSec = float64(len(allLat)) / total
	rowsPerSec = reqPerSec * serveRowsPerRequest
	lat = latencyStats{
		p50: allLat[len(allLat)/2],
		p99: allLat[len(allLat)*99/100],
		qps: reqPerSec,
	}
	return rowsPerSec, reqPerSec, lat, nil
}
