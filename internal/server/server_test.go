package server

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"tkdc/internal/core"
	"tkdc/internal/telemetry"
)

// testServer trains a small 2-d classifier wired to a fresh registry and
// returns both behind an httptest server.
func testServer(t *testing.T) (*httptest.Server, *telemetry.Registry) {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	data := make([][]float64, 1200)
	for i := range data {
		data[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	reg := telemetry.NewRegistry()
	cfg := core.DefaultConfig()
	cfg.S0 = 2000
	cfg.Recorder = reg
	clf, err := core.Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(clf, Options{Registry: reg}))
	t.Cleanup(ts.Close)
	return ts, reg
}

func postJSON(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp, out
}

func TestHealthz(t *testing.T) {
	ts, _ := testServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" {
		t.Fatalf("status field = %v, want ok", body["status"])
	}
	if body["n"].(float64) != 1200 || body["dim"].(float64) != 2 {
		t.Fatalf("model shape = n=%v d=%v, want n=1200 d=2", body["n"], body["dim"])
	}
}

func TestClassifyJSON(t *testing.T) {
	ts, _ := testServer(t)
	resp, out := postJSON(t, ts.URL+"/classify", `{"points":[[0,0],[50,50]]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200: %v", resp.StatusCode, out)
	}
	labels := out["labels"].([]any)
	if len(labels) != 2 || labels[0] != "HIGH" || labels[1] != "LOW" {
		t.Fatalf("labels = %v, want [HIGH LOW]", labels)
	}
}

func TestClassifyBareJSONArray(t *testing.T) {
	ts, _ := testServer(t)
	resp, out := postJSON(t, ts.URL+"/classify", `[[0,0]]`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200: %v", resp.StatusCode, out)
	}
	if labels := out["labels"].([]any); labels[0] != "HIGH" {
		t.Fatalf("labels = %v, want [HIGH]", labels)
	}
}

func TestClassifyCSV(t *testing.T) {
	ts, _ := testServer(t)
	resp, err := http.Post(ts.URL+"/classify", "text/csv", strings.NewReader("0,0\n50,50\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var out struct {
		Labels []string `json:"labels"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if got := out.Labels; len(got) != 2 || got[0] != "HIGH" || got[1] != "LOW" {
		t.Fatalf("labels = %v, want [HIGH LOW]", got)
	}
}

func TestClassifyDensityMode(t *testing.T) {
	ts, _ := testServer(t)
	resp, out := postJSON(t, ts.URL+"/classify?density=1", `{"points":[[50,50]]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200: %v", resp.StatusCode, out)
	}
	results := out["results"].([]any)
	r := results[0].(map[string]any)
	if r["label"] != "LOW" {
		t.Fatalf("label = %v, want LOW", r["label"])
	}
	// A far-away outlier never grid-hits, so both finite bounds appear.
	if _, ok := r["lower"]; !ok {
		t.Fatal("density result missing lower bound")
	}
	if _, ok := r["estimate"]; !ok {
		t.Fatal("density result missing estimate")
	}
}

func TestClassifyErrors(t *testing.T) {
	ts, _ := testServer(t)

	resp, err := http.Get(ts.URL + "/classify")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d, want 405", resp.StatusCode)
	}

	resp, out := postJSON(t, ts.URL+"/classify", `{"points":[[1,2,3]]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-dimension status = %d, want 400: %v", resp.StatusCode, out)
	}
	if _, ok := out["error"]; !ok {
		t.Fatal("error response has no error field")
	}

	resp, out = postJSON(t, ts.URL+"/classify", `{"points":[]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty-body status = %d, want 400: %v", resp.StatusCode, out)
	}

	resp, out = postJSON(t, ts.URL+"/classify", `{"points":`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed-JSON status = %d, want 400: %v", resp.StatusCode, out)
	}

	// Empty and whitespace-only bodies with a JSON content type must
	// come back 400, not panic on trimmed[0] (regression).
	for _, body := range []string{"", "   \n\t "} {
		resp, out = postJSON(t, ts.URL+"/classify", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("empty JSON body %q status = %d, want 400: %v", body, resp.StatusCode, out)
		}
		if _, ok := out["error"]; !ok {
			t.Fatalf("empty JSON body %q: error response has no error field", body)
		}
	}
}

func TestClassifyBodyTooLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := make([][]float64, 200)
	for i := range data {
		data[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	cfg := core.DefaultConfig()
	cfg.S0 = 2000
	clf, err := core.Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(clf, Options{MaxBodyBytes: 64}))
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/classify", "text/csv", strings.NewReader(strings.Repeat("0,0\n", 100)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

// metricValue extracts the value of a single-valued metric line.
func metricValue(t *testing.T, exposition, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseInt(line[len(name)+1:], 10, 64)
			if err != nil {
				t.Fatalf("parse %s: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in exposition", name)
	return 0
}

func getMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q, want text/plain", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMetricsUpdateAcrossRequests is the acceptance check: the query
// histograms on /metrics move as classify requests arrive.
func TestMetricsUpdateAcrossRequests(t *testing.T) {
	ts, reg := testServer(t)
	reg.Reset()

	before := getMetrics(t, ts.URL)
	if got := metricValue(t, before, "tkdc_queries_total"); got != 0 {
		t.Fatalf("queries before = %d, want 0", got)
	}
	for _, name := range []string{"tkdc_query_latency_ns_count", "tkdc_query_kernels_count",
		"tkdc_query_nodes_count", "tkdc_model_points", "tkdc_tree_nodes", "tkdc_http_requests_total"} {
		metricValue(t, before, name) // presence check
	}

	if resp, out := postJSON(t, ts.URL+"/classify", `{"points":[[0,0],[1,1],[50,50]]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("classify status = %d: %v", resp.StatusCode, out)
	}

	after := getMetrics(t, ts.URL)
	if got := metricValue(t, after, "tkdc_queries_total"); got != 3 {
		t.Fatalf("queries after = %d, want 3", got)
	}
	if got := metricValue(t, after, "tkdc_query_latency_ns_count"); got != 3 {
		t.Fatalf("latency histogram count = %d, want 3", got)
	}
	if got := metricValue(t, after, "tkdc_query_kernels_count"); got != 3 {
		t.Fatalf("kernels histogram count = %d, want 3", got)
	}
	if hits, misses := metricValue(t, after, "tkdc_grid_hits_total"), metricValue(t, after, "tkdc_grid_misses_total"); hits+misses != 3 {
		t.Fatalf("grid hits+misses = %d+%d, want 3", hits, misses)
	}
	if before := metricValue(t, before, "tkdc_http_requests_total"); metricValue(t, after, "tkdc_http_requests_total") <= before {
		t.Fatal("http request counter did not advance")
	}
}

// TestModelReportsBackend checks the density backend shows up on every
// observability surface: the GET /model descriptor, the /metrics
// exposition (as a labeled gauge), and the expvar model map.
func TestModelReportsBackend(t *testing.T) {
	ts, _ := testServer(t)

	resp, err := http.Get(ts.URL + "/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var model map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&model); err != nil {
		t.Fatal(err)
	}
	if model["backend"] != core.BackendTree {
		t.Fatalf("GET /model backend = %v, want %q (d=2 resolves to tree)", model["backend"], core.BackendTree)
	}

	metrics := getMetrics(t, ts.URL)
	want := `tkdc_backend{name="` + core.BackendTree + `"} 1`
	if !strings.Contains(metrics, want) {
		t.Fatalf("/metrics missing %q", want)
	}

	vresp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer vresp.Body.Close()
	var vars struct {
		Tkdc struct {
			Model struct {
				Backend string `json:"backend"`
			} `json:"model"`
		} `json:"tkdc"`
	}
	if err := json.NewDecoder(vresp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if vars.Tkdc.Model.Backend != core.BackendTree {
		t.Fatalf("expvar model backend = %q, want %q", vars.Tkdc.Model.Backend, core.BackendTree)
	}
}

func TestPprofAndExpvar(t *testing.T) {
	ts, _ := testServer(t)

	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status = %d, want 200", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("expvar status = %d, want 200", resp.StatusCode)
	}
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	raw, ok := vars["tkdc"]
	if !ok {
		t.Fatal("expvar output missing tkdc key")
	}
	var tv struct {
		Model struct {
			N int `json:"n"`
		} `json:"model"`
	}
	if err := json.Unmarshal(raw, &tv); err != nil {
		t.Fatal(err)
	}
	if tv.Model.N != 1200 {
		t.Fatalf("expvar model n = %d, want 1200", tv.Model.N)
	}
}
