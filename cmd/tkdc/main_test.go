package main

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"tkdc"
	"tkdc/internal/server"
)

// TestHTTPServerTimeouts pins the serving-mode hardening: every tkdc
// server must carry header/read/idle deadlines so a slow or stalled
// client cannot pin a connection forever, while WriteTimeout stays zero
// so the streaming pprof endpoints (profile, trace) are not cut off.
func TestHTTPServerTimeouts(t *testing.T) {
	srv := newHTTPServer(":0", http.NewServeMux())
	if srv.ReadHeaderTimeout <= 0 {
		t.Fatal("ReadHeaderTimeout unset: slowloris protection missing")
	}
	if srv.ReadTimeout <= 0 {
		t.Fatal("ReadTimeout unset: a stalled body upload pins a connection")
	}
	if srv.IdleTimeout <= 0 {
		t.Fatal("IdleTimeout unset: idle keep-alive connections never reaped")
	}
	if srv.WriteTimeout != 0 {
		t.Fatal("WriteTimeout set: it would cut off streaming pprof profiles")
	}
	if srv.Addr != ":0" || srv.Handler == nil {
		t.Fatal("newHTTPServer dropped the address or handler")
	}
}

// TestValidateFlags pins the mode-combination contract: incoherent flag
// sets die with a clear error before any CSV is read or socket opened,
// and every error names the offending flags.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name                       string
		train, load, follow, serve string
		stream                     bool
		wantErr                    []string // substrings; nil = valid
	}{
		{name: "train batch", train: "d.csv"},
		{name: "load serve", load: "m.tkdc", serve: ":8080"},
		{name: "train stream serve", train: "d.csv", serve: ":8080", stream: true},
		{name: "follow serve", follow: "http://leader:8080", serve: ":8081"},

		{name: "neither train nor load", wantErr: []string{"-train", "-load"}},
		{name: "both train and load", train: "d.csv", load: "m.tkdc", wantErr: []string{"-train", "-load"}},
		{name: "follow plus train", follow: "http://l", serve: ":1", train: "d.csv", wantErr: []string{"-follow", "-train"}},
		{name: "follow plus load", follow: "http://l", serve: ":1", load: "m.tkdc", wantErr: []string{"-follow", "-load"}},
		{name: "follow plus stream", follow: "http://l", serve: ":1", stream: true, wantErr: []string{"-follow", "-stream"}},
		{name: "follow plus train and stream", follow: "http://l", serve: ":1", train: "d.csv", stream: true,
			wantErr: []string{"-follow", "-train", "-stream"}},
		{name: "follow without serve", follow: "http://l", wantErr: []string{"-follow", "-serve"}},
		{name: "stream without serve", train: "d.csv", stream: true, wantErr: []string{"-stream", "-serve"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.train, tc.load, tc.follow, tc.serve, tc.stream)
			if tc.wantErr == nil {
				if err != nil {
					t.Fatalf("valid combination rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("incoherent combination accepted")
			}
			for _, want := range tc.wantErr {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q does not mention %q", err, want)
				}
			}
		})
	}
}

// TestValidateBackend pins the fail-fast contract of -backend: every
// published name passes, anything else is rejected with an error that
// lists the valid set.
func TestValidateBackend(t *testing.T) {
	for _, name := range tkdc.Backends() {
		if err := validateBackend(name); err != nil {
			t.Errorf("validateBackend(%q) = %v, want nil", name, err)
		}
	}
	err := validateBackend("annoy")
	if err == nil {
		t.Fatal("unknown backend accepted")
	}
	for _, name := range tkdc.Backends() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list %q", err, name)
		}
	}
	// The empty string is the library's "unset" sentinel; the flag has a
	// real default, so the CLI treats empty as a user mistake.
	if validateBackend("") == nil {
		t.Error("empty -backend accepted")
	}
}

// TestValidateBatch pins the batch-flag guardrails: negative windows
// and non-positive row caps are rejected, and windows past 100ms are
// treated as a units mistake (the duration flag parses bare numbers as
// nanoseconds, so "-batch-window 2" silently means 2ns).
func TestValidateBatch(t *testing.T) {
	for _, w := range []time.Duration{0, 500 * time.Microsecond, 2 * time.Millisecond, 100 * time.Millisecond} {
		if err := validateBatch(w, server.DefaultBatchMaxRows); err != nil {
			t.Errorf("validateBatch(%v) = %v, want nil", w, err)
		}
	}
	if validateBatch(-time.Millisecond, 64) == nil {
		t.Error("negative window accepted")
	}
	if err := validateBatch(101*time.Millisecond, 64); err == nil {
		t.Error("window past the sanity cap accepted")
	} else if !strings.Contains(err.Error(), "100ms") {
		t.Errorf("cap error %q does not name the cap", err)
	}
	if validateBatch(0, 0) == nil {
		t.Error("zero -batch-max accepted")
	}
	if validateBatch(0, -1) == nil {
		t.Error("negative -batch-max accepted")
	}
}

// TestValidateShards pins the -ingest-shards guardrails and the 0=auto
// resolution.
func TestValidateShards(t *testing.T) {
	for _, k := range []int{0, 1, 4, 64} {
		if err := validateShards(k); err != nil {
			t.Errorf("validateShards(%d) = %v, want nil", k, err)
		}
	}
	if validateShards(-1) == nil {
		t.Error("negative shard count accepted")
	}
	if err := validateShards(65); err == nil {
		t.Error("shard count past the sanity cap accepted")
	} else if !strings.Contains(err.Error(), "64") {
		t.Errorf("cap error %q does not name the cap", err)
	}
	if got := resolveShards(0); got != tkdc.DefaultIngestShards() {
		t.Errorf("resolveShards(0) = %d, want DefaultIngestShards()=%d", got, tkdc.DefaultIngestShards())
	}
	if got := resolveShards(3); got != 3 {
		t.Errorf("resolveShards(3) = %d, want 3", got)
	}
}
