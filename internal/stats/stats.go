// Package stats provides the statistical primitives tKDC is built on:
// order statistics and quantiles, binomial/normal confidence intervals for
// sample quantiles (Section 3.5 of the paper), the inverse normal CDF,
// running moments, and classification scoring.
//
// Everything in this package operates on plain float64 slices and is free
// of external dependencies.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one observation.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by n, matching
// the convention used by Scott's rule in the paper), or 0 for fewer than
// one observation.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Moments accumulates a running mean and variance using Welford's
// algorithm. The zero value is ready to use.
type Moments struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (m *Moments) Add(x float64) {
	m.n++
	delta := x - m.mean
	m.mean += delta / float64(m.n)
	m.m2 += delta * (x - m.mean)
}

// Count returns the number of observations added so far.
func (m *Moments) Count() int { return m.n }

// Mean returns the running mean.
func (m *Moments) Mean() float64 { return m.mean }

// Variance returns the running population variance (divide by n).
func (m *Moments) Variance() float64 {
	if m.n == 0 {
		return 0
	}
	return m.m2 / float64(m.n)
}

// StdDev returns the running population standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// ColumnStdDevs returns the per-column population standard deviations of a
// row-major dataset. All rows must have the same length d; the result has
// length d. An empty dataset yields an empty result.
func ColumnStdDevs(rows [][]float64) []float64 {
	if len(rows) == 0 {
		return nil
	}
	d := len(rows[0])
	means := make([]float64, d)
	for _, row := range rows {
		for i, v := range row {
			means[i] += v
		}
	}
	inv := 1 / float64(len(rows))
	for i := range means {
		means[i] *= inv
	}
	vars := make([]float64, d)
	for _, row := range rows {
		for i, v := range row {
			dv := v - means[i]
			vars[i] += dv * dv
		}
	}
	out := make([]float64, d)
	for i := range vars {
		out[i] = math.Sqrt(vars[i] * inv)
	}
	return out
}

// ColumnStdDevsFlat is ColumnStdDevs over flat row-major storage: data
// holds rows of width dim back to back. The accumulation order matches
// ColumnStdDevs row for row, so results are bit-identical.
func ColumnStdDevsFlat(data []float64, dim int) []float64 {
	if len(data) == 0 || dim <= 0 {
		return nil
	}
	n := len(data) / dim
	means := make([]float64, dim)
	for off := 0; off < len(data); off += dim {
		for i := 0; i < dim; i++ {
			means[i] += data[off+i]
		}
	}
	inv := 1 / float64(n)
	for i := range means {
		means[i] *= inv
	}
	vars := make([]float64, dim)
	for off := 0; off < len(data); off += dim {
		for i := 0; i < dim; i++ {
			dv := data[off+i] - means[i]
			vars[i] += dv * dv
		}
	}
	out := make([]float64, dim)
	for i := range vars {
		out[i] = math.Sqrt(vars[i] * inv)
	}
	return out
}

// OrderStatistic returns the k-th smallest element (1-based) of xs without
// modifying xs. It copies and sorts; callers on hot paths should pre-sort
// and use SortedOrderStatistic.
func OrderStatistic(xs []float64, k int) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return SortedOrderStatistic(cp, k)
}

// SortedOrderStatistic returns the k-th smallest element (1-based) of an
// already-sorted slice. k is clamped into [1, len(xs)].
func SortedOrderStatistic(sorted []float64, k int) (float64, error) {
	if len(sorted) == 0 {
		return 0, ErrEmpty
	}
	if k < 1 {
		k = 1
	}
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[k-1], nil
}

// Quantile returns the p-quantile of xs using the paper's convention: the
// (n·p)-th smallest element (Section 2.3, Equation 1). p is clamped into
// [0, 1]. The slice is not modified.
func Quantile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return SortedQuantile(cp, p)
}

// SortedQuantile is Quantile for an already-sorted slice.
func SortedQuantile(sorted []float64, p float64) (float64, error) {
	if len(sorted) == 0 {
		return 0, ErrEmpty
	}
	p = math.Max(0, math.Min(1, p))
	k := int(math.Round(p * float64(len(sorted))))
	return SortedOrderStatistic(sorted, k)
}

// QuantileCIIndices returns 1-based order-statistic indices (l, u) such
// that, for a random sample of size s from a population, the l-th and u-th
// smallest sample values bound the population p-quantile with probability
// at least 1−δ. This is Equation 11 of the paper:
//
//	l = s·p − z·sqrt(s·p·(1−p)),  u = s·p + z·sqrt(s·p·(1−p))
//
// Because the interval is two-sided, z must be z_{1−δ/2} for total
// coverage 1−δ; this matches the paper's own worked example (s = 20000,
// δ = 0.01, p = 0.01 uses z = 2.576 = z_{0.995} and brackets the 164th
// and 236th order statistics). The indices are clamped into [1, s].
// s must be positive and p, δ must lie in (0, 1).
func QuantileCIIndices(s int, p, delta float64) (l, u int, err error) {
	if s <= 0 {
		return 0, 0, ErrEmpty
	}
	if p <= 0 || p >= 1 {
		return 0, 0, errors.New("stats: quantile p must be in (0,1)")
	}
	if delta <= 0 || delta >= 1 {
		return 0, 0, errors.New("stats: failure probability delta must be in (0,1)")
	}
	z := InvNormCDF(1 - delta/2)
	sp := float64(s) * p
	half := z * math.Sqrt(sp*(1-p))
	l = int(math.Floor(sp - half))
	u = int(math.Ceil(sp + half))
	if l < 1 {
		l = 1
	}
	if u > s {
		u = s
	}
	if u < l {
		u = l
	}
	return l, u, nil
}

// NormCDF returns the standard normal cumulative distribution function at x.
func NormCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// InvNormCDF returns the p-th quantile of the standard normal distribution
// (the value z with NormCDF(z) = p), using Peter Acklam's rational
// approximation refined by one Halley step, accurate to well below 1e-9
// across (0, 1). InvNormCDF(0) is -Inf and InvNormCDF(1) is +Inf; values
// outside [0, 1] yield NaN.
func InvNormCDF(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return math.Inf(-1)
	case p == 1:
		return math.Inf(1)
	}

	// Coefficients for Acklam's approximation.
	var (
		a = [6]float64{
			-3.969683028665376e+01, 2.209460984245205e+02,
			-2.759285104469687e+02, 1.383577518672690e+02,
			-3.066479806614716e+01, 2.506628277459239e+00,
		}
		b = [5]float64{
			-5.447609879822406e+01, 1.615858368580409e+02,
			-1.556989798598866e+02, 6.680131188771972e+01,
			-1.328068155288572e+01,
		}
		c = [6]float64{
			-7.784894002430293e-03, -3.223964580411365e-01,
			-2.400758277161838e+00, -2.549732539343734e+00,
			4.374664141464968e+00, 2.938163982698783e+00,
		}
		d = [4]float64{
			7.784695709041462e-03, 3.224671290700398e-01,
			2.445134137142996e+00, 3.754408661907416e+00,
		}
	)
	const plow, phigh = 0.02425, 1 - 0.02425

	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}

	// One Halley refinement step.
	e := NormCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}
