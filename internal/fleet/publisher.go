// Package fleet is the replication subsystem: one trainer, N stateless
// serving replicas, connected by pull-based snapshot distribution.
//
// The leader side is a Publisher wrapped around the trainer's live
// stream.Model handle. It serializes the current generation into the
// framed snapshot format (the same bytes SaveFile writes), caches the
// encoding per generation, and serves it over two HTTP endpoints:
// GET /snapshot (the bytes, with ETag/X-Tkdc-Generation headers and
// If-None-Match / ?after=GEN conditional fetches answering 304 when
// nothing changed) and GET /snapshot/meta (generation, size, SHA-256,
// backend, trained-at as JSON).
//
// The follower side is a Follower that polls a leader URL with jittered
// exponential backoff, validates the checksum, loads a fresh classifier,
// and publishes it through its own stream.Model handle so in-flight
// queries never block on a swap. It tolerates leader restarts (a leader
// epoch ID distinguishes a restarted leader from a generation
// regression), torn responses, checksum mismatches, and rollbacks: on
// any fault it keeps serving the last good model and retries, surfacing
// staleness through Stats and the server's /healthz.
package fleet

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tkdc/internal/stream"
)

// Snapshot is one serialized model generation as the leader serves it.
type Snapshot struct {
	// Generation is the model handle's generation number.
	Generation uint64
	// Data is the framed snapshot encoding — byte-identical to what
	// Classifier.SaveFile writes and core.Load accepts.
	Data []byte
	// SHA256 is the lowercase hex SHA-256 of Data (what `sha256sum`
	// reports on a saved snapshot file); it doubles as the ETag.
	SHA256 string
	// Backend, N, and Dim describe the encoded model; TrainedAt is when
	// its generation was published.
	Backend   string
	N, Dim    int
	TrainedAt time.Time
}

// Header names of the snapshot endpoints. X-Tkdc-Leader carries the
// leader epoch ID — a random token minted per Publisher — which is how a
// follower tells "the leader restarted and its generation counter reset"
// apart from "the leader served an older generation than I already have".
const (
	HeaderGeneration = "X-Tkdc-Generation"
	HeaderSHA256     = "X-Tkdc-Sha256"
	HeaderLeader     = "X-Tkdc-Leader"
	HeaderBackend    = "X-Tkdc-Backend"
)

// Publisher serves the live model's snapshot bytes to followers. It
// watches a stream.Model handle: every Current call compares the
// handle's generation against the cached encoding and re-serializes only
// when a publish (background retrain or manual) moved it, so steady-state
// fetches cost one atomic load plus a cache hit regardless of fleet size.
type Publisher struct {
	model *stream.Model
	epoch string

	mu  sync.Mutex
	cur *Snapshot

	fetches     atomic.Int64 // /snapshot requests answered with bytes
	notModified atomic.Int64 // /snapshot requests answered 304
}

// NewPublisher wraps the serving handle. The same handle the queries
// read through is the one replicated, so followers can never observe a
// generation the leader's own queries have not.
func NewPublisher(m *stream.Model) *Publisher {
	if m == nil {
		panic("fleet: NewPublisher with nil model")
	}
	return &Publisher{model: m, epoch: newEpoch()}
}

// newEpoch mints the leader epoch ID: 8 random bytes, hex-encoded.
func newEpoch() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; fall back to
		// a constant rather than take the process down for an ID.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// Epoch returns the leader epoch ID served in X-Tkdc-Leader.
func (p *Publisher) Epoch() string { return p.epoch }

// Current returns the snapshot of the live generation, re-encoding it if
// a publish landed since the last call. The returned Snapshot is
// immutable — handlers serve Data without copying.
func (p *Publisher) Current() (*Snapshot, error) {
	gen := p.model.Generation()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cur != nil && p.cur.Generation == gen {
		return p.cur, nil
	}
	// Re-read coherently under the lock: the generation may have advanced
	// again since the unlocked peek, and clf/gen/born must match.
	clf, gen, born := p.model.View()
	data, sum, err := clf.EncodeSnapshot()
	if err != nil {
		return nil, fmt.Errorf("fleet: encode snapshot: %w", err)
	}
	p.cur = &Snapshot{
		Generation: gen,
		Data:       data,
		SHA256:     hex.EncodeToString(sum[:]),
		Backend:    clf.Backend(),
		N:          clf.N(),
		Dim:        clf.Dim(),
		TrainedAt:  born,
	}
	return p.cur, nil
}

// Refresh eagerly re-encodes the live generation. The streaming
// lifecycle calls it from its publish hook so the serialization cost is
// paid once in the retrain goroutine instead of on the first follower
// fetch after a swap.
func (p *Publisher) Refresh() {
	_, _ = p.Current()
}

// Counters reports how many /snapshot requests were served with bytes
// and how many were answered 304 Not Modified.
func (p *Publisher) Counters() (fetches, notModified int64) {
	return p.fetches.Load(), p.notModified.Load()
}

// setHeaders writes the snapshot identity headers shared by 200 and 304
// responses, so a conditional fetch still tells the follower where the
// leader is.
func (p *Publisher) setHeaders(w http.ResponseWriter, snap *Snapshot) {
	h := w.Header()
	h.Set("ETag", `"`+snap.SHA256+`"`)
	h.Set(HeaderGeneration, strconv.FormatUint(snap.Generation, 10))
	h.Set(HeaderSHA256, snap.SHA256)
	h.Set(HeaderLeader, p.epoch)
	h.Set(HeaderBackend, snap.Backend)
}

// ServeSnapshot handles GET /snapshot: the current generation's framed
// bytes. Conditional forms answer 304 Not Modified with the identity
// headers but no body:
//
//   - If-None-Match: "<sha256>" — unchanged content (the usual follower
//     poll; ETag comparison is what survives leader restarts, since a
//     rebuilt-but-identical model re-serves the same bytes).
//   - ?after=GEN — the caller already holds generation GEN or newer.
func (p *Publisher) ServeSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "GET the current model snapshot", http.StatusMethodNotAllowed)
		return
	}
	snap, err := p.Current()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	p.setHeaders(w, snap)
	if notModified(r, snap) {
		p.notModified.Add(1)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(snap.Data)))
	w.WriteHeader(http.StatusOK)
	if r.Method == http.MethodHead {
		return
	}
	p.fetches.Add(1)
	w.Write(snap.Data)
}

// notModified reports whether the request's conditions say the caller is
// already current.
func notModified(r *http.Request, snap *Snapshot) bool {
	if match := r.Header.Get("If-None-Match"); match != "" {
		for _, part := range strings.Split(match, ",") {
			part = strings.TrimSpace(part)
			if part == `"`+snap.SHA256+`"` || part == snap.SHA256 || part == "*" {
				return true
			}
		}
	}
	if after := r.URL.Query().Get("after"); after != "" {
		if gen, err := strconv.ParseUint(after, 10, 64); err == nil && snap.Generation <= gen {
			return true
		}
	}
	return false
}

// Meta is the GET /snapshot/meta response body.
type Meta struct {
	Generation uint64    `json:"generation"`
	Bytes      int       `json:"bytes"`
	SHA256     string    `json:"sha256"`
	Backend    string    `json:"backend"`
	N          int       `json:"n"`
	Dim        int       `json:"dim"`
	TrainedAt  time.Time `json:"trained_at"`
	Leader     string    `json:"leader_epoch"`
}

// CurrentMeta describes the current generation without handing out the
// bytes — what /snapshot/meta serves and what /model embeds.
func (p *Publisher) CurrentMeta() (Meta, error) {
	snap, err := p.Current()
	if err != nil {
		return Meta{}, err
	}
	return Meta{
		Generation: snap.Generation,
		Bytes:      len(snap.Data),
		SHA256:     snap.SHA256,
		Backend:    snap.Backend,
		N:          snap.N,
		Dim:        snap.Dim,
		TrainedAt:  snap.TrainedAt,
		Leader:     p.epoch,
	}, nil
}
