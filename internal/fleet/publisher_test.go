package fleet

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"tkdc/internal/core"
)

// TestPublisherServesFramedSnapshot pins the /snapshot contract: the
// body is a loadable framed snapshot, the headers identify generation,
// checksum, leader epoch, and backend, and the checksum matches the
// bytes served.
func TestPublisherServesFramedSnapshot(t *testing.T) {
	model, pub := newLeaderModel(t, 300)

	rec := httptest.NewRecorder()
	pub.ServeSnapshot(rec, httptest.NewRequest(http.MethodGet, "/snapshot", nil))
	resp := rec.Result()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)

	sum := sha256.Sum256(body)
	if got := resp.Header.Get(HeaderSHA256); got != hex.EncodeToString(sum[:]) {
		t.Fatalf("checksum header %q does not hash the body (%s)", got, hex.EncodeToString(sum[:]))
	}
	if got := resp.Header.Get("ETag"); got != `"`+hex.EncodeToString(sum[:])+`"` {
		t.Fatalf("ETag %q is not the quoted checksum", got)
	}
	if got := resp.Header.Get(HeaderGeneration); got != "1" {
		t.Fatalf("generation header = %q, want 1", got)
	}
	if got := resp.Header.Get(HeaderLeader); got != pub.Epoch() || got == "" {
		t.Fatalf("leader header = %q, want epoch %q", got, pub.Epoch())
	}
	if got := resp.Header.Get(HeaderBackend); got != model.Current().Backend() {
		t.Fatalf("backend header = %q, want %q", got, model.Current().Backend())
	}

	loaded, err := core.Load(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("served snapshot does not load: %v", err)
	}
	if loaded.Threshold() != model.Current().Threshold() {
		t.Fatal("loaded snapshot differs from the live model")
	}
}

// TestPublisherConditionalFetch covers both 304 forms: If-None-Match
// with the current ETag, and ?after= with the current (or newer)
// generation — and that both still carry the identity headers.
func TestPublisherConditionalFetch(t *testing.T) {
	model, pub := newLeaderModel(t, 300)
	snap, err := pub.Current()
	if err != nil {
		t.Fatal(err)
	}

	get := func(target, etag string) *http.Response {
		t.Helper()
		req := httptest.NewRequest(http.MethodGet, target, nil)
		if etag != "" {
			req.Header.Set("If-None-Match", etag)
		}
		rec := httptest.NewRecorder()
		pub.ServeSnapshot(rec, req)
		return rec.Result()
	}

	if resp := get("/snapshot", `"`+snap.SHA256+`"`); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match match: status %d, want 304", resp.StatusCode)
	} else if resp.Header.Get(HeaderGeneration) != "1" {
		t.Fatal("304 dropped the generation header")
	}
	if resp := get("/snapshot", `"deadbeef"`); resp.StatusCode != http.StatusOK {
		t.Fatalf("If-None-Match mismatch: status %d, want 200", resp.StatusCode)
	}
	if resp := get("/snapshot?after=1", ""); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("?after=current: status %d, want 304", resp.StatusCode)
	}
	if resp := get("/snapshot?after=0", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("?after=older: status %d, want 200", resp.StatusCode)
	}

	// A publish invalidates both conditions.
	model.Publish(trainSmall(t, gauss2D(300, 8, 3)))
	if resp := get("/snapshot?after=1", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("?after=1 with gen 2 live: status %d, want 200", resp.StatusCode)
	}
	if resp := get("/snapshot", `"`+snap.SHA256+`"`); resp.StatusCode != http.StatusOK {
		t.Fatalf("stale ETag with gen 2 live: status %d, want 200", resp.StatusCode)
	} else if resp.Header.Get(HeaderGeneration) != "2" {
		t.Fatalf("generation header = %q, want 2", resp.Header.Get(HeaderGeneration))
	}

	fetches, notMod := pub.Counters()
	if fetches == 0 || notMod == 0 {
		t.Fatalf("counters = (%d, %d), want both nonzero", fetches, notMod)
	}
}

// TestPublisherCachesEncoding verifies the per-generation cache: two
// Current calls without a publish return the same Snapshot pointer; a
// publish produces a new one.
func TestPublisherCachesEncoding(t *testing.T) {
	model, pub := newLeaderModel(t, 300)
	a, err := pub.Current()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := pub.Current()
	if a != b {
		t.Fatal("Current re-encoded an unchanged generation")
	}
	model.Publish(trainSmall(t, gauss2D(300, 9, 2)))
	c, _ := pub.Current()
	if c == a || c.Generation != 2 {
		t.Fatalf("Current after publish: gen %d (same pointer: %v), want gen 2, fresh", c.Generation, c == a)
	}
}

// TestPublisherMeta pins the /snapshot/meta JSON shape.
func TestPublisherMeta(t *testing.T) {
	model, pub := newLeaderModel(t, 300)
	snap, err := pub.Current()
	if err != nil {
		t.Fatal(err)
	}
	meta, err := pub.CurrentMeta()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(meta)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m["sha256"] != snap.SHA256 || m["generation"] != float64(1) {
		t.Fatalf("meta = %v, want sha %s gen 1", m, snap.SHA256)
	}
	if int(m["bytes"].(float64)) != len(snap.Data) {
		t.Fatalf("meta bytes = %v, want %d", m["bytes"], len(snap.Data))
	}
	if m["backend"] != model.Current().Backend() || m["n"] != float64(model.Current().N()) {
		t.Fatalf("meta model fields wrong: %v", m)
	}
	if m["leader_epoch"] != pub.Epoch() {
		t.Fatalf("meta leader_epoch = %v, want %s", m["leader_epoch"], pub.Epoch())
	}
}

// TestPublisherMethodGuards rejects non-GET snapshot fetches.
func TestPublisherMethodGuards(t *testing.T) {
	_, pub := newLeaderModel(t, 300)
	rec := httptest.NewRecorder()
	pub.ServeSnapshot(rec, httptest.NewRequest(http.MethodPost, "/snapshot", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /snapshot = %d, want 405", rec.Code)
	}
}

// TestPublisherHeadOmitsBody: HEAD answers the headers (including
// Content-Length) with no body, so probes stay cheap.
func TestPublisherHeadOmitsBody(t *testing.T) {
	_, pub := newLeaderModel(t, 300)
	rec := httptest.NewRecorder()
	pub.ServeSnapshot(rec, httptest.NewRequest(http.MethodHead, "/snapshot", nil))
	resp := rec.Result()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD /snapshot = %d, want 200", resp.StatusCode)
	}
	if body, _ := io.ReadAll(resp.Body); len(body) != 0 {
		t.Fatalf("HEAD served %d body bytes", len(body))
	}
	if cl, _ := strconv.Atoi(resp.Header.Get("Content-Length")); cl == 0 {
		t.Fatal("HEAD dropped Content-Length")
	}
}
