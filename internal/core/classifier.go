package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tkdc/internal/grid"
	"tkdc/internal/kdtree"
	"tkdc/internal/kernel"
	"tkdc/internal/points"
	"tkdc/internal/stats"
	"tkdc/internal/telemetry"
)

// Label is a density classification outcome.
type Label int

const (
	// Low marks a point whose density is below the threshold (an outlier
	// for small p).
	Low Label = iota
	// High marks a point whose density is above the threshold.
	High
)

// String returns "LOW" or "HIGH", matching the paper's notation.
func (l Label) String() string {
	if l == High {
		return "HIGH"
	}
	return "LOW"
}

// Result carries a classification together with the density bounds it
// was derived from and the work performed.
type Result struct {
	Label Label
	// Lower and Upper bound the kernel density at the query point —
	// certified by the tree backend, probabilistic (≥ 1−δ) under the
	// sampling backend. When the grid cache answered, Lower is the grid
	// bound and Upper is +Inf.
	Lower, Upper float64
	// Density is the backend's point estimate of the density — the value
	// the label was decided on. The tree backend reports the bound
	// midpoint (fl+fu)/2; the sampling backend its unbiased split
	// estimate; grid hits report the grid's lower bound.
	Density float64
	Stats   QueryStats
}

// Estimate returns the density point estimate the classification used
// (see the Density field).
func (r Result) Estimate() float64 { return r.Density }

// Counters aggregates work across queries. Values are totals since Train.
type Counters struct {
	Queries      int64
	GridHits     int64
	PointKernels int64
	BoundKernels int64
	NodesVisited int64
	// SamplingRounds and SampledPoints total the sampling backend's
	// far-field rounds and sample draws (zero under the tree backend).
	SamplingRounds int64
	SampledPoints  int64
}

// Kernels returns total kernel evaluations, point and bound combined.
func (c Counters) Kernels() int64 { return c.PointKernels + c.BoundKernels }

// counterShards spreads commit traffic across this many locks; a power
// of two so the ticket counter selects a shard with a mask.
const counterShards = 16

// counterShard pads each mutex+totals pair past a cache line so
// neighboring shards don't false-share.
type counterShard struct {
	mu sync.Mutex
	c  Counters
	_  [64]byte
}

// workCounters aggregates per-query work with snapshot coherence: each
// query commits all of its counters inside one shard's critical
// section, so a reader can never observe a query counted without its
// work (or torn totals). Commits are spread round-robin over sharded
// locks by a wait-free ticket counter, so many concurrent Classify
// callers on many cores contend on a single atomic add rather than
// serializing through one process-wide mutex; batch paths (dual-tree)
// commit once per batch.
type workCounters struct {
	seq    atomic.Uint32
	shards [counterShards]counterShard
}

// add commits one or more queries' worth of counters atomically with
// respect to snapshot.
func (w *workCounters) add(queries, gridHits int64, qs QueryStats) {
	s := &w.shards[w.seq.Add(1)&(counterShards-1)]
	s.mu.Lock()
	s.c.Queries += queries
	s.c.GridHits += gridHits
	s.c.PointKernels += qs.PointKernels
	s.c.BoundKernels += qs.BoundKernels
	s.c.NodesVisited += qs.NodesVisited
	s.c.SamplingRounds += qs.SamplingRounds
	s.c.SampledPoints += qs.SampledPoints
	s.mu.Unlock()
}

// snapshot sums the shards, locking each in turn. Because every query
// commits whole within one shard, the sum never tears an individual
// query; queries committing concurrently in other shards may or may
// not be included, the same guarantee the single-lock version gave.
func (w *workCounters) snapshot() Counters {
	var total Counters
	for i := range w.shards {
		s := &w.shards[i]
		s.mu.Lock()
		c := s.c
		s.mu.Unlock()
		total.Queries += c.Queries
		total.GridHits += c.GridHits
		total.PointKernels += c.PointKernels
		total.BoundKernels += c.BoundKernels
		total.NodesVisited += c.NodesVisited
		total.SamplingRounds += c.SamplingRounds
		total.SampledPoints += c.SampledPoints
	}
	return total
}

// TrainStats describes the training phase.
type TrainStats struct {
	N, Dim          int
	Bandwidths      []float64
	ThresholdLow    float64 // t(p) lower bound from Algorithm 3
	ThresholdHigh   float64 // t(p) upper bound from Algorithm 3
	Threshold       float64 // refined estimate t̃(p)
	BootstrapRounds int
	// TrainKernels counts kernel evaluations spent in training (bootstrap
	// plus the full-dataset density pass).
	TrainKernels int64
	// Workers is the effective goroutine budget the training pipeline
	// fanned out to (1 = single-threaded): tree build, bootstrap
	// scoring, grid fill, and the refinement pass all share it.
	Workers     int
	GridEnabled bool
	GridCells   int
	// Phases is the training trace: one span per bootstrap round
	// ("bootstrap/round-NN"), the index/grid construction ("assemble"),
	// and one span per threshold-refinement pass ("refine/pass-N") —
	// the tolerance-tightening retries of §3.6 appear as extra refine
	// passes. Span kernel counts sum to TrainKernels.
	Phases []telemetry.Span
}

// Classifier is a trained tKDC model. It is immutable after Train and
// safe for concurrent queries.
type Classifier struct {
	cfg     Config
	dim     int
	data    *points.Store
	backend string // resolved backend tag (BackendTree or BackendSampling)

	kern        kernel.Kernel
	tree        *kdtree.Tree
	grid        *grid.Grid
	gridKDiag   float64
	tLow, tHigh float64
	threshold   float64
	selfContrib float64

	train TrainStats

	estPool sync.Pool

	counters workCounters
	rec      telemetry.Recorder
	// sink is the recorder's TraceSink view, type-asserted once at
	// attach time so the per-query gate is a direct interface call
	// rather than a per-query assertion. Nil when the recorder cannot
	// trace.
	sink telemetry.TraceSink
}

// Train fits a tKDC classifier to a slice-of-rows dataset. The rows are
// copied into flat storage up front, so the caller remains free to reuse
// or mutate them after Train returns. See TrainStore for the training
// pipeline.
func Train(data [][]float64, cfg Config) (*Classifier, error) {
	if len(data) == 0 {
		return nil, errors.New("core: empty training dataset")
	}
	store, err := points.FromRows(data)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return TrainStore(store, cfg)
}

// TrainFlat fits a tKDC classifier to data already in flat row-major
// form: flat holds n·dim coordinates with point i at
// flat[i*dim : (i+1)*dim]. The buffer is copied in, like Train.
func TrainFlat(flat []float64, dim int, cfg Config) (*Classifier, error) {
	store, err := points.FromFlat(flat, dim)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return TrainStore(store, cfg)
}

// TrainStore fits a tKDC classifier to flat storage: it bootstraps
// threshold bounds (Algorithm 3), builds the spatial index and grid
// cache, scores every training point to refine the threshold to t̃(p),
// and returns a classifier ready to serve queries (Algorithm 1).
//
// The store is referenced, not copied; it must not be mutated afterwards
// (the public tkdc entry points always pass a fresh copy).
func TrainStore(data *points.Store, cfg Config) (*Classifier, error) {
	cfg = cfg.normalized()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if data.Len() == 0 {
		return nil, errors.New("core: empty training dataset")
	}
	if data.Dim == 0 {
		return nil, errors.New("core: zero-dimensional training data")
	}
	if err := data.CheckFinite(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	workers := effectiveWorkers(cfg.Workers)
	if workers < 1 {
		workers = 1
	}

	// Phase 1: probabilistic threshold bounds (Algorithm 3). Each
	// bootstrap round contributes a trace span.
	tb, err := boundThreshold(data, cfg, rng)
	if err != nil {
		return nil, err
	}
	phases := tb.spans

	// Phase 2: full index, kernel, and grid.
	asmStart := time.Now()
	c, err := assemble(data, cfg)
	if err != nil {
		return nil, err
	}
	phases = append(phases, telemetry.Span{
		Name:     "assemble",
		Duration: time.Since(asmStart),
		Items:    int64(data.Len()),
		Workers:  workers,
	})
	c.tLow, c.tHigh = tb.lo, tb.hi

	// Phase 3: score all training points to refine t̃(p) (Algorithm 1).
	// If δ struck and the bootstrap bounds were invalid, detect it (t̃
	// escaping [t_low, t_high]) and retry with widened bounds (§3.6).
	trainKernels := tb.queries.Kernels()
	tl, tu := c.tLow, c.tHigh
	const maxAttempts = 4
	for attempt := 0; ; attempt++ {
		passStart := time.Now()
		densities, passStats := c.trainingDensities(tl, tu)
		trainKernels += passStats.Kernels()
		sort.Float64s(densities)
		phases = append(phases, telemetry.Span{
			Name:     fmt.Sprintf("refine/pass-%d", attempt+1),
			Duration: time.Since(passStart),
			Kernels:  passStats.Kernels(),
			Items:    int64(data.Len()),
			Workers:  workers,
		})
		t, qerr := stats.SortedQuantile(densities, cfg.P)
		if qerr != nil {
			return nil, qerr
		}
		hiOK := t <= tu || math.IsInf(tu, 1)
		loOK := t >= tl || tl <= 0
		if hiOK && loOK {
			c.threshold = t
			break
		}
		if attempt == maxAttempts {
			return nil, fmt.Errorf("core: threshold estimate %g escaped bootstrap bounds [%g, %g] after %d attempts", t, c.tLow, c.tHigh, attempt)
		}
		tl = scaleTowardZero(tl, cfg.HBackoff)
		tu = scaleTowardInf(tu, cfg.HBackoff)
		if tu <= 0 {
			tu = math.Inf(1)
		}
	}

	c.train = TrainStats{
		N:               data.Len(),
		Dim:             c.dim,
		Bandwidths:      c.kern.Bandwidths(),
		ThresholdLow:    c.tLow,
		ThresholdHigh:   c.tHigh,
		Threshold:       c.threshold,
		BootstrapRounds: tb.rounds,
		TrainKernels:    trainKernels,
		Workers:         workers,
		GridEnabled:     c.grid != nil,
		Phases:          phases,
	}
	if c.grid != nil {
		c.train.GridCells = c.grid.Cells()
	}
	if c.rec.Enabled() {
		for _, sp := range phases {
			c.rec.RecordSpan(sp)
		}
	}
	return c, nil
}

// assemble builds the deterministic serving machinery over a dataset —
// bandwidths, kernel, spatial index, grid cache, and estimator pool —
// shared by training and snapshot loading. Thresholds are left for the
// caller to fill in.
func assemble(data *points.Store, cfg Config) (*Classifier, error) {
	h, err := kernel.ScottBandwidths(data, cfg.BandwidthFactor)
	if err != nil {
		return nil, err
	}
	kern, err := newKernel(cfg.Kernel, h)
	if err != nil {
		return nil, err
	}
	tree, err := kdtree.Build(data, kdtree.Options{LeafSize: cfg.LeafSize, Split: cfg.Split, Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	rec := cfg.Recorder
	if rec == nil {
		rec = telemetry.Nop{}
	}
	c := &Classifier{
		cfg:         cfg,
		dim:         data.Dim,
		data:        data,
		backend:     resolveBackend(cfg.Backend, data.Dim),
		kern:        kern,
		tree:        tree,
		selfContrib: kern.AtZero() / float64(data.Len()),
		rec:         rec,
	}
	c.sink, _ = rec.(telemetry.TraceSink)
	c.estPool.New = func() any {
		return newQueryBackend(c.tree, c.kern, cfg)
	}
	if !cfg.DisableGrid && c.dim <= cfg.MaxGridDim {
		g, err := grid.NewWorkers(data, h, cfg.Workers)
		if err != nil {
			return nil, err
		}
		c.grid = g
		c.gridKDiag = kern.FromScaledSqDist(g.DiagSqScaled(kern.InvBandwidthsSq()))
	}
	return c, nil
}

// effectiveWorkers returns the worker count fan-out paths use: the
// configured value clamped to a small multiple of GOMAXPROCS so a
// misconfigured Workers can't spawn thousands of goroutines. Values
// below 2 mean single-threaded. It governs every parallel stage in the
// stack — ClassifyAll batches, the threshold-refinement density pass,
// bootstrap scoring, k-d tree construction, and the grid fill.
func effectiveWorkers(w int) int {
	if limit := runtime.GOMAXPROCS(0) * 4; w > limit {
		w = limit
	}
	return w
}

// effectiveWorkers is the classifier-side view of the package function,
// reading the trained configuration.
func (c *Classifier) effectiveWorkers() int {
	return effectiveWorkers(c.cfg.Workers)
}

// trainingDensities scores every training point against threshold bounds
// (tl, tu), returning self-contribution-corrected density estimates.
func (c *Classifier) trainingDensities(tl, tu float64) ([]float64, QueryStats) {
	n := c.data.Len()
	densities := make([]float64, n)
	workers := c.effectiveWorkers()
	if workers < 2 {
		est := c.getEstimator()
		defer c.putEstimator(est)
		var qs QueryStats
		for i := 0; i < n; i++ {
			densities[i] = c.trainingDensityOne(est, c.data.Row(i), tl, tu, &qs)
		}
		return densities, qs
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var total QueryStats
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			est := c.getEstimator()
			defer c.putEstimator(est)
			var qs QueryStats
			for i := lo; i < hi; i++ {
				densities[i] = c.trainingDensityOne(est, c.data.Row(i), tl, tu, &qs)
			}
			mu.Lock()
			total.add(qs)
			mu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	return densities, total
}

// trainingDensityOne scores one training point for the threshold pass.
// Grid-pruned points record their (certified) lower bound, which keeps
// their rank above any threshold inside the bootstrap bounds. The grid
// bound is corrected for the point's self-contribution before comparing,
// because the bootstrap bounds live in corrected-density space.
func (c *Classifier) trainingDensityOne(est DensityBackend, x []float64, tl, tu float64, qs *QueryStats) float64 {
	if c.grid != nil && !math.IsInf(tu, 1) {
		if lb := c.grid.LowerBoundDensity(x, c.gridKDiag) - c.selfContrib; lb > tu {
			qs.GridHit = true
			return lb
		}
	}
	// tl and tu bound the corrected quantile; pruning operates on plain
	// densities, so shift by the self-contribution.
	tolCut := c.cfg.Epsilon * math.Max(tl, 0)
	_, _, f := est.BoundDensity(x, tl+c.selfContrib, tu+c.selfContrib, tolCut, qs)
	return f - c.selfContrib
}

// Classify labels one query point against the trained threshold.
func (c *Classifier) Classify(x []float64) (Label, error) {
	r, err := c.Score(x)
	return r.Label, err
}

// Score labels one query point and returns the density bounds behind the
// decision (Algorithm 1's Classify with the Section 3.7 grid check).
func (c *Classifier) Score(x []float64) (Result, error) {
	if err := c.checkQuery(x); err != nil {
		return Result{}, err
	}
	return c.scoreChecked(x), nil
}

// scoreChecked is Score minus query validation, for batch paths that have
// already validated their inputs. Telemetry is gated on the recorder's
// atomic enabled flag: with the default no-op recorder the only extra
// work versus an untraced build is that one boolean load.
func (c *Classifier) scoreChecked(x []float64) Result {
	traced := c.rec.Enabled()
	var start time.Time
	var tr *telemetry.QueryTrace
	if traced {
		start = time.Now()
		// Per-query flight records ride on the aggregate-telemetry gate:
		// they exist only when the recorder is also a TraceSink with an
		// enabled flight recorder behind it.
		if c.sink != nil && c.sink.TraceEnabled() {
			tr = c.sink.StartTrace()
			if tr != nil {
				tr.Start = start
				tr.Kind = "score"
				tr.Query = append([]float64(nil), x...)
				tr.Threshold = c.threshold
			}
		}
	}

	gridChecked := c.grid != nil
	if gridChecked {
		if lb := c.grid.LowerBoundDensity(x, c.gridKDiag); lb > c.threshold {
			c.counters.add(1, 1, QueryStats{})
			if traced {
				c.grid.Observe(true)
				lat := time.Since(start)
				if tr != nil {
					tr.Latency = lat
					tr.Backend = "grid"
					tr.Label = High.String()
					tr.Lower = lb
					tr.Upper = math.Inf(1)
					tr.Estimate = lb
					tr.Margin = lb - c.threshold
					tr.Certified = true
					tr.GridHit = true
					tr.Items = 1
					c.sink.FinishTrace(tr)
				}
				c.rec.RecordQuery(telemetry.QuerySample{
					Latency:     lat,
					GridChecked: true,
					GridHit:     true,
				})
			}
			return Result{
				Label:   High,
				Lower:   lb,
				Upper:   math.Inf(1),
				Density: lb,
				Stats:   QueryStats{GridHit: true},
			}
		}
		if traced {
			c.grid.Observe(false)
		}
	}

	est := c.getEstimator()
	var qs QueryStats
	qs.Trace = tr
	fl, fu, f := est.BoundDensity(x, c.threshold, c.threshold, c.cfg.Epsilon*c.threshold, &qs)
	backendName, certified := est.Name(), est.Certified()
	c.putEstimator(est)
	qs.Trace = nil
	c.counters.add(1, 0, qs)

	label := Low
	if f > c.threshold {
		label = High
	}
	if traced {
		lat := time.Since(start)
		if tr != nil {
			tr.Latency = lat
			tr.Backend = backendName
			tr.Label = label.String()
			tr.Lower = fl
			tr.Upper = fu
			tr.Estimate = f
			tr.Margin = f - c.threshold
			tr.Straddle = fl <= c.threshold && c.threshold <= fu
			tr.Certified = certified
			tr.PointKernels = qs.PointKernels
			tr.BoundKernels = qs.BoundKernels
			tr.Nodes = qs.NodesVisited
			tr.Items = 1
			c.sink.FinishTrace(tr)
		}
		c.rec.RecordQuery(telemetry.QuerySample{
			Latency:        lat,
			PointKernels:   qs.PointKernels,
			BoundKernels:   qs.BoundKernels,
			Nodes:          qs.NodesVisited,
			GridChecked:    gridChecked,
			SamplingRounds: qs.SamplingRounds,
			SampledPoints:  qs.SampledPoints,
		})
	}
	return Result{Label: label, Lower: fl, Upper: fu, Density: f, Stats: qs}
}

// ClassifyAll labels a batch of query points, fanning out across
// Config.Workers goroutines when configured. Queries are validated once
// up front; the result order matches the input order.
func (c *Classifier) ClassifyAll(queries [][]float64) ([]Label, error) {
	for i, x := range queries {
		if err := c.checkQuery(x); err != nil {
			return nil, fmt.Errorf("core: query %d: %w", i, err)
		}
	}
	out := make([]Label, len(queries))
	workers := c.effectiveWorkers()
	if workers < 2 || len(queries) < 2*workers {
		for i, x := range queries {
			out[i] = c.scoreChecked(x).Label
		}
		return out, nil
	}
	var wg sync.WaitGroup
	chunk := (len(queries) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(queries) {
			break
		}
		hi := lo + chunk
		if hi > len(queries) {
			hi = len(queries)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = c.scoreChecked(queries[i]).Label
			}
		}(lo, hi)
	}
	wg.Wait()
	return out, nil
}

// DensityBounds estimates the density at x to relative precision rel
// (fu − fl ≤ rel·fl), ignoring the threshold. Use it when actual density
// values are needed (p-values, contour levels) rather than
// classifications. rel ≤ 0 computes the density exactly.
func (c *Classifier) DensityBounds(x []float64, rel float64) (fl, fu float64, err error) {
	if err := c.checkQuery(x); err != nil {
		return 0, 0, err
	}
	traced := c.rec.Enabled()
	var start time.Time
	var tr *telemetry.QueryTrace
	if traced {
		start = time.Now()
		if c.sink != nil && c.sink.TraceEnabled() {
			tr = c.sink.StartTrace()
			if tr != nil {
				tr.Start = start
				tr.Kind = "density"
				tr.Query = append([]float64(nil), x...)
			}
		}
	}
	est := c.getEstimator()
	var qs QueryStats
	qs.Trace = tr
	var f float64
	fl, fu, f = est.EstimateDensity(x, rel, &qs)
	backendName, certified := est.Name(), est.Certified()
	c.putEstimator(est)
	qs.Trace = nil
	c.counters.add(1, 0, qs)
	if traced {
		lat := time.Since(start)
		if tr != nil {
			tr.Latency = lat
			tr.Backend = backendName
			tr.Lower = fl
			tr.Upper = fu
			tr.Estimate = f
			tr.Certified = certified
			tr.PointKernels = qs.PointKernels
			tr.BoundKernels = qs.BoundKernels
			tr.Nodes = qs.NodesVisited
			tr.Items = 1
			c.sink.FinishTrace(tr)
		}
		c.rec.RecordQuery(telemetry.QuerySample{
			Latency:        lat,
			PointKernels:   qs.PointKernels,
			BoundKernels:   qs.BoundKernels,
			Nodes:          qs.NodesVisited,
			SamplingRounds: qs.SamplingRounds,
			SampledPoints:  qs.SampledPoints,
		})
	}
	return fl, fu, nil
}

// Threshold returns the refined classification threshold t̃(p).
func (c *Classifier) Threshold() float64 { return c.threshold }

// ThresholdBounds returns the probabilistic bounds (t_low, t_high) on
// t(p) computed by the bootstrap, valid with probability ≥ 1−δ.
func (c *Classifier) ThresholdBounds() (lo, hi float64) { return c.tLow, c.tHigh }

// SelfContribution returns K_H(0)/n, the density a training point
// contributes to itself (subtracted when estimating t(p), Section 2.3).
func (c *Classifier) SelfContribution() float64 { return c.selfContrib }

// Bandwidths returns the per-dimension kernel bandwidths in use.
func (c *Classifier) Bandwidths() []float64 { return c.kern.Bandwidths() }

// Dim returns the data dimensionality.
func (c *Classifier) Dim() int { return c.dim }

// Config returns the configuration the classifier was trained (or
// loaded) with, defaults filled in. The streaming lifecycle uses it to
// rebuild models with identical parameters.
func (c *Classifier) Config() Config { return c.cfg }

// Backend returns the resolved density backend tag (BackendTree or
// BackendSampling — never BackendAuto, which resolves at assembly).
func (c *Classifier) Backend() string { return c.backend }

// TrainingData returns the classifier's flat training storage. The store
// is shared, not copied — callers must treat it as read-only (the k-d
// tree and grid index into it). The streaming lifecycle reads it to seed
// a reservoir with the rows the initial model was trained on.
func (c *Classifier) TrainingData() *points.Store { return c.data }

// N returns the training set size.
func (c *Classifier) N() int { return c.data.Len() }

// TrainStats reports how training went.
func (c *Classifier) TrainStats() TrainStats { return c.train }

// Stats returns a snapshot of the work counters accumulated by queries
// since training (training work is in TrainStats). The snapshot is
// coherent under concurrent Classify callers: every query commits all
// of its counters in one critical section, so Stats never observes a
// query counted without its work.
func (c *Classifier) Stats() Counters {
	return c.counters.snapshot()
}

// Snapshot returns the telemetry collected by the classifier's
// recorder — latency and work histograms, grid counters, and the
// training phase trace — or a zero snapshot when telemetry is off or
// the recorder does not expose one.
func (c *Classifier) Snapshot() telemetry.Snapshot {
	if s, ok := c.rec.(interface{ Snapshot() telemetry.Snapshot }); ok {
		return s.Snapshot()
	}
	return telemetry.Snapshot{}
}

// SetRecorder replaces the classifier's telemetry recorder; nil
// restores the no-op. It exists to wire telemetry onto a model that was
// built without it (a Load-ed snapshot, a Train without Config.Recorder)
// and must not be called concurrently with queries — attach the
// recorder before serving begins.
func (c *Classifier) SetRecorder(r telemetry.Recorder) {
	if r == nil {
		r = telemetry.Nop{}
	}
	c.rec = r
	c.sink, _ = r.(telemetry.TraceSink)
}

// SetWorkers replaces the classifier's worker budget (Config.Workers):
// the fan-out of ClassifyAll and of any retrain that inherits this
// model's configuration. A Load-ed snapshot carries the training
// machine's Workers, so serving hosts call this to adopt their own
// parallelism. Like SetRecorder it is serving wiring, not model state,
// and must not be called concurrently with queries.
func (c *Classifier) SetWorkers(w int) { c.cfg.Workers = w }

// TreeStats reports the shape of the spatial index (node and leaf
// counts, maximum depth) — the denominator for interpreting the
// nodes-visited histogram.
func (c *Classifier) TreeStats() kdtree.Stats { return c.tree.Stats() }

// GridCounters returns the hypergrid cache's hit/miss lookup counters.
// They are populated only while telemetry is enabled (the grid lookup
// stays side-effect-free otherwise) and are zero when the grid is
// disabled.
func (c *Classifier) GridCounters() (hits, misses int64) {
	if c.grid == nil {
		return 0, 0
	}
	return c.grid.Counters()
}

func (c *Classifier) checkQuery(x []float64) error {
	if len(x) != c.dim {
		return fmt.Errorf("core: query has dimension %d, want %d", len(x), c.dim)
	}
	for j, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: query coordinate %d is %v", j, v)
		}
	}
	return nil
}

func (c *Classifier) getEstimator() DensityBackend {
	return c.estPool.Get().(DensityBackend)
}

// maxPooledHeapItems caps the refine-heap capacity a tree backend may
// carry back into the pool (see densityEstimator.Recycle).
const maxPooledHeapItems = 4096

func (c *Classifier) putEstimator(e DensityBackend) {
	e.Recycle()
	c.estPool.Put(e)
}

// newKernel builds the configured kernel family over bandwidths h.
func newKernel(family KernelFamily, h []float64) (kernel.Kernel, error) {
	switch family {
	case KernelGaussian:
		return kernel.NewGaussian(h)
	case KernelEpanechnikov:
		return kernel.NewEpanechnikov(h)
	default:
		return nil, fmt.Errorf("core: unknown kernel family %v", family)
	}
}
