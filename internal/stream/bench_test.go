package stream

import (
	"fmt"
	"math/rand"
	"testing"

	"tkdc/internal/core"
)

func benchClassifier(b *testing.B) (*core.Classifier, [][]float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	rows := make([][]float64, 20000)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	clf, err := core.Train(rows, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return clf, rows
}

// BenchmarkScoreDirect is the reference: queries straight at the
// classifier, no handle.
func BenchmarkScoreDirect(b *testing.B) {
	clf, rows := benchClassifier(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := clf.Score(rows[i%len(rows)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScoreModel measures the same queries through the live Model
// handle — the acceptance criterion is that the one extra atomic load is
// within noise of BenchmarkScoreDirect.
func BenchmarkScoreModel(b *testing.B) {
	clf, rows := benchClassifier(b)
	model := NewModel(clf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Score(rows[i%len(rows)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScoreModelParallel checks the handle does not serialize
// concurrent readers.
func BenchmarkScoreModelParallel(b *testing.B) {
	clf, rows := benchClassifier(b)
	model := NewModel(clf)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := model.Score(rows[i%len(rows)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkIngest measures reservoir ingestion throughput in rows/op
// (batches of 100).
func BenchmarkIngest(b *testing.B) {
	ing, err := NewIngestor(100_000, 2, 1, false)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	batch := make([][]float64, 100)
	for i := range batch {
		batch[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ing.Add(batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestBatch measures the per-batch cost of Add across batch
// sizes — the lock is taken once per batch, and validation now runs
// before it, so this watches the critical-section cost the ROADMAP's
// sharded-ingest work will shard. ns/row is reported alongside ns/op.
func BenchmarkIngestBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for _, batch := range []int{1, 64, 1024} {
		rows := make([][]float64, batch)
		for i := range rows {
			rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		}
		b.Run(fmt.Sprintf("rows=%d", batch), func(b *testing.B) {
			ing, err := NewIngestor(10_000, 2, 1, false)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ing.Add(rows); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/row")
		})
	}
}
