package core

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

var updateV1 = flag.Bool("update-persist-v1", false, "rewrite the v1 snapshot fixture from the current implementation (only meaningful while Save still emits format v1)")

// persistDataset is a fixed small dataset for snapshot-compatibility
// fixtures; independent of the code under test.
func persistDataset() [][]float64 {
	rng := rand.New(rand.NewSource(99))
	data := make([][]float64, 0, 300)
	for i := 0; i < 300; i++ {
		if i < 280 {
			data = append(data, []float64{rng.NormFloat64(), rng.NormFloat64() * 2})
		} else {
			data = append(data, []float64{rng.Float64()*30 - 15, rng.Float64()*30 - 15})
		}
	}
	return data
}

func persistConfig() Config {
	cfg := DefaultConfig()
	cfg.P = 0.05
	cfg.Seed = 99
	return cfg
}

type persistFixture struct {
	Threshold float64 `json:"threshold"`
	Labels    []int   `json:"labels"`
}

func classifyAllLabels(t *testing.T, clf *Classifier, data [][]float64) []int {
	t.Helper()
	labels := make([]int, len(data))
	for i, x := range data {
		l, err := clf.Classify(x)
		if err != nil {
			t.Fatalf("Classify: %v", err)
		}
		labels[i] = int(l)
	}
	return labels
}

// TestPersistV1Compat loads a checked-in format-v1 gob snapshot (written
// by the pre-flat-storage implementation) and verifies the loaded
// classifier reproduces the recorded threshold and labels exactly. This
// pins backward compatibility of Load across snapshot format revisions.
func TestPersistV1Compat(t *testing.T) {
	gobPath := filepath.Join("testdata", "model_v1.gob")
	jsonPath := filepath.Join("testdata", "model_v1.json")
	data := persistDataset()

	if *updateV1 {
		clf, err := Train(data, persistConfig())
		if err != nil {
			t.Fatalf("Train: %v", err)
		}
		var buf bytes.Buffer
		if err := clf.Save(&buf); err != nil {
			t.Fatalf("Save: %v", err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(gobPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		fix := persistFixture{Threshold: clf.Threshold(), Labels: classifyAllLabels(t, clf, data)}
		blob, err := json.MarshalIndent(fix, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s and %s", gobPath, jsonPath)
		return
	}

	raw, err := os.ReadFile(gobPath)
	if err != nil {
		t.Fatalf("read v1 fixture: %v", err)
	}
	clf, err := Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("Load v1 snapshot: %v", err)
	}
	blob, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var want persistFixture
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	if clf.Threshold() != want.Threshold {
		t.Errorf("threshold = %.17g, fixture %.17g", clf.Threshold(), want.Threshold)
	}
	got := classifyAllLabels(t, clf, data)
	compareLabels(t, "v1", got, want.Labels)
}

// TestPersistV2Compat decodes a format-v2 snapshot — the flat-buffer
// layout without a backend tag — synthesized from a freshly trained
// model. Load must accept it and resolve the backend from the dimension
// policy, exactly as pre-backend releases behaved.
func TestPersistV2Compat(t *testing.T) {
	data := persistDataset()
	clf, err := Train(data, persistConfig())
	if err != nil {
		t.Fatalf("Train: %v", err)
	}

	// The v2 writer's struct: every field of today's snapshot that
	// existed in format v2, and nothing else. Gob matches by field name,
	// so this encodes a byte stream indistinguishable from a real v2
	// artifact.
	type modelSnapshotV2 struct {
		Version   int
		Config    Config
		Flat      []float64
		Dim       int
		Threshold float64
		TLow      float64
		THigh     float64
		Train     TrainStats
	}
	cfg := clf.cfg
	cfg.Recorder = nil
	cfg.Backend = "" // the field postdates v2
	snap := modelSnapshotV2{
		Version:   2,
		Config:    cfg,
		Flat:      clf.data.Data,
		Dim:       clf.data.Dim,
		Threshold: clf.threshold,
		TLow:      clf.tLow,
		THigh:     clf.tHigh,
		Train:     clf.train,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
		t.Fatal(err)
	}

	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load v2 snapshot: %v", err)
	}
	if loaded.Threshold() != clf.Threshold() {
		t.Errorf("v2 threshold = %.17g, want %.17g", loaded.Threshold(), clf.Threshold())
	}
	if loaded.Backend() != BackendTree {
		t.Errorf("v2 snapshot (d=2) resolved backend %q, want %q", loaded.Backend(), BackendTree)
	}
	compareLabels(t, "v2", classifyAllLabels(t, loaded, data), classifyAllLabels(t, clf, data))
}

// TestPersistV3BackendPinned checks the v3 backend tag survives a
// round trip and overrides auto-selection: a d=2 model trained with the
// sampling backend forced must come back sampling, not tree.
func TestPersistV3BackendPinned(t *testing.T) {
	cfg := persistConfig()
	cfg.Backend = BackendSampling
	clf, err := Train(persistDataset(), cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	var buf bytes.Buffer
	if err := clf.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.Backend() != BackendSampling {
		t.Errorf("loaded backend = %q, want pinned %q", loaded.Backend(), BackendSampling)
	}
	// The loaded config must carry the pin too, so a further save/load
	// chain cannot lose it.
	if loaded.Config().Backend != BackendSampling {
		t.Errorf("loaded config backend = %q, want %q", loaded.Config().Backend, BackendSampling)
	}
}

// TestPersistRoundTrip saves a freshly trained classifier in the current
// snapshot format and verifies the loaded copy classifies identically.
func TestPersistRoundTrip(t *testing.T) {
	data := persistDataset()
	clf, err := Train(data, persistConfig())
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	var buf bytes.Buffer
	if err := clf.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.Threshold() != clf.Threshold() {
		t.Errorf("round-trip threshold = %.17g, want %.17g", loaded.Threshold(), clf.Threshold())
	}
	if loaded.N() != clf.N() || loaded.Dim() != clf.Dim() {
		t.Errorf("round-trip N/Dim = %d/%d, want %d/%d", loaded.N(), loaded.Dim(), clf.N(), clf.Dim())
	}
	want := classifyAllLabels(t, clf, data)
	got := classifyAllLabels(t, loaded, data)
	compareLabels(t, "round-trip", got, want)
}
