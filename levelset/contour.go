package levelset

import (
	"errors"
	"fmt"
	"math"

	"tkdc"
)

// Window is a 2-d axis-aligned evaluation window with raster resolution.
type Window struct {
	XMin, XMax float64
	YMin, YMax float64
	// W and H are the number of sample columns and rows (≥ 2 each).
	W, H int
}

func (w Window) validate() error {
	switch {
	case w.W < 2 || w.H < 2:
		return fmt.Errorf("levelset: window resolution %dx%d must be at least 2x2", w.W, w.H)
	case !(w.XMax > w.XMin) || !(w.YMax > w.YMin):
		return fmt.Errorf("levelset: degenerate window [%v,%v]x[%v,%v]", w.XMin, w.XMax, w.YMin, w.YMax)
	}
	return nil
}

// X returns the x coordinate of sample column i.
func (w Window) X(i int) float64 {
	return w.XMin + (w.XMax-w.XMin)*float64(i)/float64(w.W-1)
}

// Y returns the y coordinate of sample row j.
func (w Window) Y(j int) float64 {
	return w.YMin + (w.YMax-w.YMin)*float64(j)/float64(w.H-1)
}

// ClassifyWindow rasterizes HIGH/LOW classifications over the window
// using the classifier's dual-tree batch path (the grid workload it is
// built for). mask[j][i] is true where the density exceeds the
// classifier's threshold. The classifier must be 2-dimensional.
func ClassifyWindow(clf *tkdc.Classifier, w Window) ([][]bool, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	if clf.Dim() != 2 {
		return nil, fmt.Errorf("levelset: contour extraction needs a 2-d classifier, got d=%d", clf.Dim())
	}
	queries := make([][]float64, 0, w.W*w.H)
	for j := 0; j < w.H; j++ {
		for i := 0; i < w.W; i++ {
			queries = append(queries, []float64{w.X(i), w.Y(j)})
		}
	}
	labels, err := clf.ClassifyAllDualTree(queries)
	if err != nil {
		return nil, err
	}
	mask := make([][]bool, w.H)
	for j := 0; j < w.H; j++ {
		row := make([]bool, w.W)
		for i := 0; i < w.W; i++ {
			row[i] = labels[j*w.W+i] == tkdc.High
		}
		mask[j] = row
	}
	return mask, nil
}

// DensityWindow rasterizes density estimates over the window to relative
// precision rel (passed to Classifier.DensityBounds). Use it with
// ContourAt for smooth, interpolated contour lines.
func DensityWindow(clf *tkdc.Classifier, w Window, rel float64) ([][]float64, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	if clf.Dim() != 2 {
		return nil, fmt.Errorf("levelset: contour extraction needs a 2-d classifier, got d=%d", clf.Dim())
	}
	field := make([][]float64, w.H)
	for j := 0; j < w.H; j++ {
		row := make([]float64, w.W)
		for i := 0; i < w.W; i++ {
			fl, fu, err := clf.DensityBounds([]float64{w.X(i), w.Y(j)}, rel)
			if err != nil {
				return nil, err
			}
			row[i] = 0.5 * (fl + fu)
		}
		field[j] = row
	}
	return field, nil
}

// Segment is one straight piece of a contour polyline.
type Segment struct {
	X1, Y1 float64
	X2, Y2 float64
}

// ContourAt extracts the level-set curve field = level from a rasterized
// density field using marching squares with linear interpolation. The
// field must be a w.H × w.W raster as produced by DensityWindow.
func ContourAt(field [][]float64, w Window, level float64) ([]Segment, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	if len(field) != w.H {
		return nil, errors.New("levelset: field height does not match window")
	}
	for _, row := range field {
		if len(row) != w.W {
			return nil, errors.New("levelset: field width does not match window")
		}
	}
	if math.IsNaN(level) {
		return nil, errors.New("levelset: NaN contour level")
	}

	var segs []Segment
	// interp returns the crossing position between raster samples a and b
	// (at coordinates ca < cb) where the field hits the level.
	interp := func(a, b, ca, cb float64) float64 {
		if a == b {
			return 0.5 * (ca + cb)
		}
		t := (level - a) / (b - a)
		if t < 0 {
			t = 0
		}
		if t > 1 {
			t = 1
		}
		return ca + t*(cb-ca)
	}

	for j := 0; j < w.H-1; j++ {
		for i := 0; i < w.W-1; i++ {
			// Cell corners (counter-clockwise from bottom-left):
			// v0=(i,j) v1=(i+1,j) v2=(i+1,j+1) v3=(i,j+1).
			v0, v1 := field[j][i], field[j][i+1]
			v2, v3 := field[j+1][i+1], field[j+1][i]
			idx := 0
			if v0 > level {
				idx |= 1
			}
			if v1 > level {
				idx |= 2
			}
			if v2 > level {
				idx |= 4
			}
			if v3 > level {
				idx |= 8
			}
			if idx == 0 || idx == 15 {
				continue
			}

			x0, x1 := w.X(i), w.X(i+1)
			y0, y1 := w.Y(j), w.Y(j+1)
			// Edge crossing points (bottom, right, top, left).
			bottom := func() (float64, float64) { return interp(v0, v1, x0, x1), y0 }
			right := func() (float64, float64) { return x1, interp(v1, v2, y0, y1) }
			top := func() (float64, float64) { return interp(v3, v2, x0, x1), y1 }
			left := func() (float64, float64) { return x0, interp(v0, v3, y0, y1) }

			add := func(p1, p2 func() (float64, float64)) {
				ax, ay := p1()
				bx, by := p2()
				segs = append(segs, Segment{ax, ay, bx, by})
			}
			switch idx {
			case 1, 14:
				add(left, bottom)
			case 2, 13:
				add(bottom, right)
			case 3, 12:
				add(left, right)
			case 4, 11:
				add(right, top)
			case 6, 9:
				add(bottom, top)
			case 7, 8:
				add(left, top)
			case 5: // saddle: v0 and v2 high
				add(left, bottom)
				add(right, top)
			case 10: // saddle: v1 and v3 high
				add(bottom, right)
				add(left, top)
			}
		}
	}
	return segs, nil
}

// Contour runs DensityWindow + ContourAt at the classifier's own
// threshold: the decision boundary of the density classification task,
// i.e. exactly the curve Figure 1b colors.
func Contour(clf *tkdc.Classifier, w Window, rel float64) ([]Segment, error) {
	field, err := DensityWindow(clf, w, rel)
	if err != nil {
		return nil, err
	}
	return ContourAt(field, w, clf.Threshold())
}
