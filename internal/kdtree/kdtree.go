// Package kdtree implements the spatial index tKDC traverses (Sections
// 3.1–3.2 and 3.7 of the paper): a k-d tree whose every node tracks the
// bounding box and point count of its region, in the style of
// multi-resolution k-d trees (Deng & Moore).
//
// The tree is an index-permutation tree over flat storage: Build copies
// the input points.Store once and reorders the copy in place so that
// every node — leaf or interior — owns a contiguous row range [Lo, Hi)
// of the buffer. A leaf expansion is therefore a single contiguous sweep
// of Count()*Dim float64s, with no per-point pointer chase.
//
// Two split rules are provided. The paper's default for tKDC is the
// "equi-width" trimmed midpoint — split at (x⁽¹⁰⁾ + x⁽⁹⁰⁾)/2, the midpoint
// of the 10th and 90th percentiles along the cycling axis — which
// identifies tightly constrained regions faster than balanced median
// splits when the kernel decays exponentially (Section 3.7). Median
// splitting is retained for the ablation study (Figures 12 and 16).
package kdtree

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"tkdc/internal/points"
)

// SplitRule selects how Build partitions points at each node.
type SplitRule int

const (
	// SplitEquiWidth splits at the trimmed midpoint (x⁽¹⁰⁾+x⁽⁹⁰⁾)/2 of the
	// node's points along the split axis (the paper's default for tKDC).
	SplitEquiWidth SplitRule = iota
	// SplitMedian splits at the median, producing a balanced tree (the
	// classic construction, used as the ablation baseline).
	SplitMedian
)

// String returns the rule's name.
func (r SplitRule) String() string {
	switch r {
	case SplitEquiWidth:
		return "equiwidth"
	case SplitMedian:
		return "median"
	default:
		return fmt.Sprintf("SplitRule(%d)", int(r))
	}
}

// DefaultLeafSize is the maximum number of points kept in a leaf when
// Options.LeafSize is zero.
const DefaultLeafSize = 32

// Options configures Build.
type Options struct {
	// LeafSize caps the number of points per leaf (DefaultLeafSize if 0).
	LeafSize int
	// Split selects the partitioning rule.
	Split SplitRule
}

// Node is one region of the index. Every node owns the contiguous row
// range [Lo, Hi) of the tree's reordered flat buffer; interior nodes have
// both children set and the children partition the range. Min/Max give
// the tight bounding box of the points under the node (not the splitting
// hyperplanes), which is what makes the distance bounds of Equation 6
// tight.
type Node struct {
	Min, Max []float64
	Lo, Hi   int
	Left     *Node
	Right    *Node
}

// Count returns the number of points under the node.
func (n *Node) Count() int { return n.Hi - n.Lo }

// IsLeaf reports whether the node's range is scanned directly.
func (n *Node) IsLeaf() bool { return n.Left == nil }

// Tree is an immutable k-d tree over a point set. It is safe for
// concurrent readers once built.
type Tree struct {
	Root *Node
	Dim  int
	Size int
	Opts Options
	// Pts is the tree's private build-time-reordered copy of the point
	// set: node ranges index into it, and Pts.Slab(n.Lo, n.Hi) is the
	// contiguous leaf scan. Readers must treat it as immutable.
	Pts *points.Store

	stats Stats
}

// Stats describes the shape of a built tree — the structural context
// behind per-query node-visit telemetry (a query visiting close to
// Nodes has degenerated to a full scan; MaxDepth bounds traversal stack
// behaviour).
type Stats struct {
	// Nodes counts all nodes, interior and leaf.
	Nodes int
	// Leaves counts leaf nodes.
	Leaves int
	// MaxDepth is the deepest node's depth, counting the root as 1.
	MaxDepth int
}

// Stats returns the tree's shape, computed once at Build.
func (t *Tree) Stats() Stats { return t.stats }

// measure walks the subtree accumulating shape statistics.
func measure(n *Node, depth int, s *Stats) {
	s.Nodes++
	if depth > s.MaxDepth {
		s.MaxDepth = depth
	}
	if n.IsLeaf() {
		s.Leaves++
		return
	}
	measure(n.Left, depth+1, s)
	measure(n.Right, depth+1, s)
}

// Leaf returns the contiguous flat view of the node's points — the batch
// a leaf expansion hands to kernel evaluation.
func (t *Tree) Leaf(n *Node) []float64 { return t.Pts.Slab(n.Lo, n.Hi) }

// Build constructs a k-d tree over the given store. The store is copied
// once and the copy reordered in place, so the caller's buffer is never
// mutated or referenced. All coordinates must be finite.
func Build(pts *points.Store, opts Options) (*Tree, error) {
	if pts.Len() == 0 {
		return nil, errors.New("kdtree: no points")
	}
	if pts.Dim == 0 {
		return nil, errors.New("kdtree: zero-dimensional points")
	}
	if err := pts.CheckFinite(); err != nil {
		return nil, fmt.Errorf("kdtree: %w", err)
	}
	if opts.LeafSize <= 0 {
		opts.LeafSize = DefaultLeafSize
	}
	t := &Tree{Dim: pts.Dim, Size: pts.Len(), Opts: opts, Pts: pts.Clone()}
	t.Root = t.build(0, t.Size, 0)
	measure(t.Root, 1, &t.stats)
	return t, nil
}

func (t *Tree) build(lo, hi, depth int) *Node {
	n := &Node{Lo: lo, Hi: hi}
	n.Min, n.Max = t.boundingBox(lo, hi)

	if hi-lo <= t.Opts.LeafSize {
		return n
	}

	// Cycle through the dimensions one per level (Section 3.1), skipping
	// axes with zero extent. If every axis has zero extent the points are
	// all identical and further splitting is pointless.
	dim := -1
	for off := 0; off < t.Dim; off++ {
		cand := (depth + off) % t.Dim
		if n.Max[cand] > n.Min[cand] {
			dim = cand
			break
		}
	}
	if dim < 0 {
		return n
	}

	split := t.splitValue(lo, hi, dim)
	mid := t.partition(lo, hi, dim, split)
	if mid == lo || mid == hi {
		// Degenerate split (heavily duplicated coordinates): fall back to
		// a median partition by rank, which always separates a non-trivial
		// prefix because the axis has positive extent.
		sort.Sort(&rowSorter{pts: t.Pts, lo: lo, hi: hi, dim: dim})
		mid = lo + (hi-lo)/2
		// Move mid off a run of duplicates so left's max < right's min.
		for mid < hi && t.Pts.At(mid, dim) == t.Pts.At(mid-1, dim) {
			mid++
		}
		if mid == hi {
			mid = lo + (hi-lo)/2
			for mid > lo && t.Pts.At(mid, dim) == t.Pts.At(mid-1, dim) {
				mid--
			}
		}
		if mid == lo || mid == hi {
			return n
		}
	}
	n.Left = t.build(lo, mid, depth+1)
	n.Right = t.build(mid, hi, depth+1)
	return n
}

// rowSorter sorts the rows of [lo, hi) in place by their dim-th
// coordinate.
type rowSorter struct {
	pts    *points.Store
	lo, hi int
	dim    int
}

func (s *rowSorter) Len() int           { return s.hi - s.lo }
func (s *rowSorter) Less(i, j int) bool { return s.pts.At(s.lo+i, s.dim) < s.pts.At(s.lo+j, s.dim) }
func (s *rowSorter) Swap(i, j int)      { s.pts.Swap(s.lo+i, s.lo+j) }

// splitValue returns the coordinate to split at along dim for rows
// [lo, hi).
func (t *Tree) splitValue(lo, hi, dim int) float64 {
	vals := make([]float64, hi-lo)
	for i := range vals {
		vals[i] = t.Pts.At(lo+i, dim)
	}
	sort.Float64s(vals)
	switch t.Opts.Split {
	case SplitMedian:
		return vals[len(vals)/2]
	default: // SplitEquiWidth
		p10 := vals[int(0.10*float64(len(vals)-1))]
		p90 := vals[int(0.90*float64(len(vals)-1))]
		return 0.5 * (p10 + p90)
	}
}

// partition reorders rows [lo, hi) into (< split) then (≥ split) along
// dim and returns the boundary row.
func (t *Tree) partition(lo, hi, dim int, split float64) int {
	i, j := lo, hi-1
	for i <= j {
		if t.Pts.At(i, dim) < split {
			i++
		} else {
			t.Pts.Swap(i, j)
			j--
		}
	}
	return i
}

func (t *Tree) boundingBox(lo, hi int) (bmin, bmax []float64) {
	d := t.Dim
	bmin = make([]float64, d)
	bmax = make([]float64, d)
	copy(bmin, t.Pts.Row(lo))
	copy(bmax, t.Pts.Row(lo))
	flat := t.Pts.Slab(lo+1, hi)
	for off := 0; off < len(flat); off += d {
		for j := 0; j < d; j++ {
			v := flat[off+j]
			if v < bmin[j] {
				bmin[j] = v
			}
			if v > bmax[j] {
				bmax[j] = v
			}
		}
	}
	return bmin, bmax
}

// MinSqDist returns the minimum bandwidth-scaled squared distance from x
// to the node's bounding box: Σ_j clamp_j²·invH2_j where clamp_j is the
// distance from x_j to the interval [Min_j, Max_j] (0 inside).
func (n *Node) MinSqDist(x, invH2 []float64) float64 {
	s := 0.0
	for j, xj := range x {
		var d float64
		switch {
		case xj < n.Min[j]:
			d = n.Min[j] - xj
		case xj > n.Max[j]:
			d = xj - n.Max[j]
		default:
			continue
		}
		s += d * d * invH2[j]
	}
	return s
}

// MaxSqDist returns the maximum bandwidth-scaled squared distance from x
// to any point of the node's bounding box (the farthest corner).
func (n *Node) MaxSqDist(x, invH2 []float64) float64 {
	s := 0.0
	for j, xj := range x {
		d := math.Max(math.Abs(xj-n.Min[j]), math.Abs(xj-n.Max[j]))
		s += d * d * invH2[j]
	}
	return s
}

// ForEachInRange invokes fn for every indexed point whose bandwidth-scaled
// squared distance to x is at most sqRadius. It prunes subtrees whose
// bounding boxes lie entirely outside the radius, the classic range query
// the rkde baseline is built on (Section 4.1). fn receives a view into
// the tree's flat buffer, valid only for the duration of the call.
func (t *Tree) ForEachInRange(x, invH2 []float64, sqRadius float64, fn func(p []float64)) {
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.MinSqDist(x, invH2) > sqRadius {
			return
		}
		if n.IsLeaf() {
			for i := n.Lo; i < n.Hi; i++ {
				p := t.Pts.Row(i)
				if sq := sqDist(x, p, invH2); sq <= sqRadius {
					fn(p)
				}
			}
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(t.Root)
}

func sqDist(a, b, invH2 []float64) float64 {
	s := 0.0
	for j, aj := range a {
		d := aj - b[j]
		s += d * d * invH2[j]
	}
	return s
}

// Height returns the height of the tree (a single leaf has height 1).
func (t *Tree) Height() int {
	var h func(n *Node) int
	h = func(n *Node) int {
		if n == nil {
			return 0
		}
		if n.IsLeaf() {
			return 1
		}
		l, r := h(n.Left), h(n.Right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return h(t.Root)
}

// NodeCount returns the total number of nodes.
func (t *Tree) NodeCount() int {
	var c func(n *Node) int
	c = func(n *Node) int {
		if n == nil {
			return 0
		}
		if n.IsLeaf() {
			return 1
		}
		return 1 + c(n.Left) + c(n.Right)
	}
	return c(t.Root)
}
