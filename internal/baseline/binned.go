package baseline

import (
	"fmt"
	"math"

	"tkdc/internal/kernel"
	"tkdc/internal/points"
)

// defaultBinsPerDim mirrors the R "ks" package's default grid sizes for
// d = 1..4. Total grid size grows as binsᵈ, which is why binning-based
// KDE stops scaling past a few dimensions (Section 4.2: "its binning
// efficiency falls off exponentially with dimension").
var defaultBinsPerDim = [4]int{401, 151, 51, 21}

// MaxBinnedDim is the largest dimensionality the binned estimator
// supports, matching the ks package's d ≤ 4 limit.
const MaxBinnedDim = 4

// Binned is the binning-approximation baseline (the "ks" algorithm of
// Table 2): training points are spread onto a regular grid with linear
// binning; a density query sums kernel contributions from grid nodes
// within a truncation window. This computes the same estimate the ks
// package's FFT convolution would (the FFT only accelerates the same
// binned sum) and carries no accuracy guarantee — error grows with bin
// width, i.e. with dimension.
type Binned struct {
	kern    kernel.Kernel
	invH2   []float64
	n       int
	dim     int
	bins    []int     // nodes per dimension
	origin  []float64 // grid origin per dimension
	width   []float64 // bin width per dimension
	strides []int
	weights []float64
	trunc   float64 // truncation radius in bandwidth multiples
	kernels int64
}

// NewBinned builds a binned estimator with ks-style default grid sizes.
func NewBinned(data *points.Store, kern kernel.Kernel) (*Binned, error) {
	d := kern.Dim()
	if d > MaxBinnedDim {
		return nil, fmt.Errorf("baseline: binned estimator supports at most %d dimensions, got %d", MaxBinnedDim, d)
	}
	return NewBinnedWithBins(data, kern, defaultBinsPerDim[d-1])
}

// NewBinnedWithBins builds a binned estimator with binsPerDim grid nodes
// along every dimension.
func NewBinnedWithBins(data *points.Store, kern kernel.Kernel, binsPerDim int) (*Binned, error) {
	if data.Len() == 0 {
		return nil, fmt.Errorf("baseline: binned estimator needs data")
	}
	d := kern.Dim()
	if d > MaxBinnedDim {
		return nil, fmt.Errorf("baseline: binned estimator supports at most %d dimensions, got %d", MaxBinnedDim, d)
	}
	if binsPerDim < 2 {
		return nil, fmt.Errorf("baseline: binsPerDim = %d must be at least 2", binsPerDim)
	}
	if data.Dim != d {
		return nil, fmt.Errorf("baseline: data dimension %d, want %d", data.Dim, d)
	}

	b := &Binned{
		kern:   kern,
		invH2:  kern.InvBandwidthsSq(),
		n:      data.Len(),
		dim:    d,
		bins:   make([]int, d),
		origin: make([]float64, d),
		width:  make([]float64, d),
		trunc:  4,
	}
	h := kern.Bandwidths()

	// Grid range: data extent padded by 3 bandwidths per side.
	lo := make([]float64, d)
	hi := make([]float64, d)
	copy(lo, data.Row(0))
	copy(hi, data.Row(0))
	flat := data.Data
	for off := 0; off < len(flat); off += d {
		for j := 0; j < d; j++ {
			v := flat[off+j]
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	total := 1
	for j := 0; j < d; j++ {
		b.bins[j] = binsPerDim
		b.origin[j] = lo[j] - 3*h[j]
		span := (hi[j] + 3*h[j]) - b.origin[j]
		if span <= 0 {
			span = 6 * h[j]
		}
		b.width[j] = span / float64(binsPerDim-1)
		total *= binsPerDim
	}
	b.strides = make([]int, d)
	stride := 1
	for j := d - 1; j >= 0; j-- {
		b.strides[j] = stride
		stride *= b.bins[j]
	}
	b.weights = make([]float64, total)

	// Linear binning: each point distributes unit mass to the 2ᵈ grid
	// nodes of its enclosing cell, proportional to proximity.
	gpos := make([]float64, d)
	gidx := make([]int, d)
	for base := 0; base < len(flat); base += d {
		for j := 0; j < d; j++ {
			v := flat[base+j]
			g := (v - b.origin[j]) / b.width[j]
			i0 := int(math.Floor(g))
			if i0 < 0 {
				i0, g = 0, 0
			}
			if i0 >= b.bins[j]-1 {
				i0 = b.bins[j] - 2
				g = float64(b.bins[j] - 1)
			}
			gidx[j] = i0
			gpos[j] = g - float64(i0) // fraction toward the upper node
		}
		for corner := 0; corner < 1<<d; corner++ {
			w := 1.0
			off := 0
			for j := 0; j < d; j++ {
				if corner&(1<<j) != 0 {
					w *= gpos[j]
					off += (gidx[j] + 1) * b.strides[j]
				} else {
					w *= 1 - gpos[j]
					off += gidx[j] * b.strides[j]
				}
			}
			b.weights[off] += w
		}
	}
	return b, nil
}

// Name returns "binned".
func (b *Binned) Name() string { return "binned" }

// N returns the training set size.
func (b *Binned) N() int { return b.n }

// Kernels returns total kernel evaluations (one per grid node visited).
func (b *Binned) Kernels() int64 { return b.kernels }

// Density sums weighted kernel contributions from grid nodes within the
// truncation window around x.
func (b *Binned) Density(x []float64) float64 {
	h := b.kern.Bandwidths()
	loIdx := make([]int, b.dim)
	hiIdx := make([]int, b.dim)
	for j := 0; j < b.dim; j++ {
		lo := int(math.Ceil((x[j] - b.trunc*h[j] - b.origin[j]) / b.width[j]))
		hi := int(math.Floor((x[j] + b.trunc*h[j] - b.origin[j]) / b.width[j]))
		if lo < 0 {
			lo = 0
		}
		if hi > b.bins[j]-1 {
			hi = b.bins[j] - 1
		}
		if lo > hi {
			return 0
		}
		loIdx[j], hiIdx[j] = lo, hi
	}

	node := make([]float64, b.dim)
	idx := make([]int, b.dim)
	copy(idx, loIdx)
	sum := 0.0
	for {
		off := 0
		for j := 0; j < b.dim; j++ {
			off += idx[j] * b.strides[j]
			node[j] = b.origin[j] + float64(idx[j])*b.width[j]
		}
		if w := b.weights[off]; w != 0 {
			sum += w * b.kern.FromScaledSqDist(kernel.ScaledSqDist(x, node, b.invH2))
		}
		b.kernels++

		// Advance the multi-index.
		j := b.dim - 1
		for ; j >= 0; j-- {
			idx[j]++
			if idx[j] <= hiIdx[j] {
				break
			}
			idx[j] = loIdx[j]
		}
		if j < 0 {
			break
		}
	}
	return sum / float64(b.n)
}

// GridNodes returns the total number of grid nodes (reporting/debugging).
func (b *Binned) GridNodes() int { return len(b.weights) }
