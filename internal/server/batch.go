// The batched query engine: /classify rows from concurrent requests
// are briefly coalesced and executed as one batch pass against a
// single pinned model generation, then scattered back to the waiting
// requests. Large batches on the tree backend run the dual-tree group
// pass (core.ClassifyFlatAuto); everything else runs the bit-identical
// per-query parallel sweep, so coalescing changes latency shape and
// work amortization but never answers.
package server

import (
	"context"
	"sync"
	"time"

	"tkdc/internal/core"
	"tkdc/internal/stream"
	"tkdc/internal/telemetry"
)

// DefaultBatchMaxRows caps the rows one coalesced flush may carry when
// BatchOptions leaves MaxRows zero. Reaching the cap flushes
// immediately, bounding both queue memory and worst-case head-of-line
// latency for the rows that arrived first.
const DefaultBatchMaxRows = 4096

// BatchOptions configures the engine.
type BatchOptions struct {
	// Window is how long the first row of a forming batch waits for
	// co-travelers before the batch executes. Zero (the default) runs
	// every request inline on its own goroutine — no added latency, but
	// large request bodies still get batch execution (dual-tree or
	// parallel sweep, selected by size).
	Window time.Duration
	// MaxRows flushes a forming batch as soon as it holds this many rows
	// (DefaultBatchMaxRows if 0).
	MaxRows int
	// Disable bypasses the batch engine entirely: /classify executes
	// through the pre-batching per-request path. It exists as the
	// baseline leg for latency benchmarks, not for production use.
	Disable bool
}

// batchCall is one /classify request's slot in a batch: its rows (flat
// row-major), how it wants them answered, and the channel its handler
// waits on. The engine owns the call from submit until done is closed;
// the flat buffer must stay untouched in between.
type batchCall struct {
	ctx     context.Context
	flat    []float64
	n, dim  int
	density bool

	done    chan struct{}
	labels  []core.Label // label mode result
	results []core.Result
	gen     uint64
	err     error
}

// batchEngine coalesces classify calls into batches. State machine:
// idle (empty queue) → filling (first call arms a window timer) →
// flush (timer fires, MaxRows reached, or Close drains). Whoever
// flushes — timer goroutine, the submitter that crossed MaxRows, or
// Close — executes the batch and wakes every waiter; submits after
// Close run inline so shutdown never strands a request.
type batchEngine struct {
	model   *stream.Model
	reg     *telemetry.Registry
	window  time.Duration
	maxRows int

	mu     sync.Mutex
	queue  []*batchCall
	rows   int
	timer  *time.Timer
	closed bool
}

func newBatchEngine(model *stream.Model, reg *telemetry.Registry, opts BatchOptions) *batchEngine {
	maxRows := opts.MaxRows
	if maxRows <= 0 {
		maxRows = DefaultBatchMaxRows
	}
	return &batchEngine{model: model, reg: reg, window: opts.Window, maxRows: maxRows}
}

// do routes one request's rows through the engine and blocks until the
// batch they rode in has executed. The returned generation identifies
// the model that answered; with a window it is the generation pinned by
// the whole batch, so co-batched requests always agree.
func (e *batchEngine) do(ctx context.Context, flat []float64, n, dim int, density bool) *batchCall {
	c := &batchCall{ctx: ctx, flat: flat, n: n, dim: dim, density: density, done: make(chan struct{})}
	if e.window <= 0 {
		e.run([]*batchCall{c})
		return c
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.run([]*batchCall{c})
		return c
	}
	e.queue = append(e.queue, c)
	e.rows += n
	if e.rows >= e.maxRows {
		batch := e.takeLocked()
		e.mu.Unlock()
		e.run(batch)
	} else {
		if len(e.queue) == 1 {
			e.timer = time.AfterFunc(e.window, e.flush)
		}
		e.mu.Unlock()
	}
	<-c.done
	return c
}

// takeLocked claims the forming batch and resets the engine to idle.
// Callers hold e.mu.
func (e *batchEngine) takeLocked() []*batchCall {
	batch := e.queue
	e.queue = nil
	e.rows = 0
	if e.timer != nil {
		e.timer.Stop()
		e.timer = nil
	}
	return batch
}

// flush is the window timer's callback. It may lose the race with a
// MaxRows flush, in which case the queue is already empty.
func (e *batchEngine) flush() {
	e.mu.Lock()
	batch := e.takeLocked()
	e.mu.Unlock()
	e.run(batch)
}

// Close flushes the forming batch and marks the engine closed; calls
// submitted afterwards execute inline. Safe to call more than once.
func (e *batchEngine) Close() {
	e.mu.Lock()
	e.closed = true
	batch := e.takeLocked()
	e.mu.Unlock()
	e.run(batch)
}

// run executes one batch against a single pinned model generation and
// closes every call's done channel. Requests whose context was
// cancelled while queued are skipped (they error with the context's
// error and pay no classification work); a call whose rows fail
// validation errors alone without poisoning its batchmates.
func (e *batchEngine) run(batch []*batchCall) {
	if len(batch) == 0 {
		return
	}
	// One View pins one generation for the whole batch: a retrain
	// hot-swap landing mid-flush cannot split the batch's answers.
	clf, gen, _ := e.model.View()

	live := batch[:0]
	for _, c := range batch {
		c.gen = gen
		if err := c.ctx.Err(); err != nil {
			c.err = err
			close(c.done)
			continue
		}
		// Validate against the pinned classifier (not the one live at
		// parse time) so dimension mismatches surface per call even if a
		// swap landed while the call sat in the queue.
		c.err = clf.ValidateFlat(c.flat, c.n)
		if c.err != nil {
			close(c.done)
			continue
		}
		live = append(live, c)
	}
	if len(live) == 0 {
		return
	}

	coalesced := len(live) > 1
	var rows int64
	for _, c := range live {
		rows += int64(c.n)
	}
	traced := e.reg.TraceEnabled()
	var start time.Time
	if traced {
		start = time.Now()
	}

	e.runGroup(clf, filterMode(live, false), false)
	e.runGroup(clf, filterMode(live, true), true)

	e.reg.RecordBatch(rows, coalesced)
	if traced {
		e.reg.RecordSpan(telemetry.Span{
			Name:     "server/batch",
			Duration: time.Since(start),
			Items:    rows,
		})
	}
	for _, c := range live {
		close(c.done)
	}
}

// filterMode selects the calls answered in one execution mode.
func filterMode(calls []*batchCall, density bool) []*batchCall {
	out := calls[:0:0]
	for _, c := range calls {
		if c.density == density {
			out = append(out, c)
		}
	}
	return out
}

// runGroup executes all same-mode calls of a batch as one flat pass and
// scatters the answers back as subslices of the batch result. A single
// call executes on its own buffer with no copying.
func (e *batchEngine) runGroup(clf *core.Classifier, calls []*batchCall, density bool) {
	if len(calls) == 0 {
		return
	}
	var flat []float64
	var n int
	if len(calls) == 1 {
		flat, n = calls[0].flat, calls[0].n
	} else {
		n = 0
		for _, c := range calls {
			n += c.n
		}
		flat = getFlatBuf()
		for _, c := range calls {
			flat = append(flat, c.flat...)
		}
		defer putFlatBuf(flat)
	}

	if density {
		results, err := clf.ScoreFlat(flat, n)
		if err != nil {
			for _, c := range calls {
				c.err = err
			}
			return
		}
		off := 0
		for _, c := range calls {
			c.results = results[off : off+c.n : off+c.n]
			off += c.n
		}
		return
	}

	labels, err := clf.ClassifyFlatAuto(flat, n)
	if err != nil {
		for _, c := range calls {
			c.err = err
		}
		return
	}
	off := 0
	for _, c := range calls {
		c.labels = labels[off : off+c.n : off+c.n]
		off += c.n
	}
}
