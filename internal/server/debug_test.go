package server

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tkdc/internal/core"
	"tkdc/internal/telemetry"
)

// tracedServer builds a server whose registry carries a flight recorder,
// over a classifier with the requested backend (grid disabled so every
// query leaves a staged traversal trace).
func tracedServer(t *testing.T, backend string) (*httptest.Server, *telemetry.FlightRecorder) {
	t.Helper()
	reg := telemetry.NewRegistry()
	flight := telemetry.NewFlightRecorder(telemetry.FlightOptions{K: 16})
	reg.AttachFlightRecorder(flight)
	cfg := core.DefaultConfig()
	cfg.S0 = 2000
	cfg.Backend = backend
	cfg.DisableGrid = true
	cfg.Recorder = reg
	clf, err := core.Train(gaussRows(1000, 23), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// No explicit Options.Flight: New must find the recorder through the
	// registry fallback.
	ts := httptest.NewServer(New(clf, Options{Registry: reg}))
	t.Cleanup(ts.Close)
	return ts, flight
}

func TestDebugQueriesWithoutRecorder(t *testing.T) {
	ts, _ := testServer(t)
	resp, body := getJSON(t, ts.URL+"/debug/queries")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (probe-friendly, not 404)", resp.StatusCode)
	}
	if body["enabled"] != false {
		t.Fatalf("enabled = %v, want false", body["enabled"])
	}
}

func TestDebugQueriesMethodNotAllowed(t *testing.T) {
	ts, _ := testServer(t)
	resp, err := http.Post(ts.URL+"/debug/queries", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d, want 405", resp.StatusCode)
	}
}

// TestDebugQueriesServesTraces is the endpoint acceptance test, run for
// both density backends: classified queries appear as flight records
// with identity fields and per-stage breakdowns.
func TestDebugQueriesServesTraces(t *testing.T) {
	for _, backend := range []string{core.BackendTree, core.BackendSampling} {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			ts, _ := tracedServer(t, backend)
			resp, err := http.Post(ts.URL+"/classify", "application/json",
				strings.NewReader(`{"points": [[0.1, -0.2], [4.5, 4.5], [0.0, 0.3]]}`))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("classify status = %d", resp.StatusCode)
			}

			dresp, err := http.Get(ts.URL + "/debug/queries")
			if err != nil {
				t.Fatal(err)
			}
			defer dresp.Body.Close()
			if dresp.StatusCode != http.StatusOK {
				t.Fatalf("debug status = %d, want 200", dresp.StatusCode)
			}
			var snap struct {
				Enabled bool  `json:"enabled"`
				Traced  int64 `json:"traced"`
				Slowest []struct {
					Kind    string `json:"kind"`
					Backend string `json:"backend"`
					Label   string `json:"label"`
					Stages  []struct {
						Name string `json:"name"`
					} `json:"stages"`
				} `json:"slowest"`
				Recent []json.RawMessage `json:"recent"`
			}
			if err := json.NewDecoder(dresp.Body).Decode(&snap); err != nil {
				t.Fatal(err)
			}
			if !snap.Enabled || snap.Traced != 3 {
				t.Fatalf("enabled=%v traced=%d, want true/3", snap.Enabled, snap.Traced)
			}
			if len(snap.Slowest) != 3 || len(snap.Recent) != 3 {
				t.Fatalf("slowest=%d recent=%d, want 3/3", len(snap.Slowest), len(snap.Recent))
			}
			for _, tr := range snap.Slowest {
				if tr.Kind != "score" || tr.Backend != backend {
					t.Fatalf("trace kind/backend = %q/%q, want score/%s", tr.Kind, tr.Backend, backend)
				}
				if tr.Label == "" {
					t.Fatal("trace missing label")
				}
				if len(tr.Stages) == 0 {
					t.Fatalf("%s trace has no per-stage breakdown", backend)
				}
			}
		})
	}
}

// TestMetricsExpositionGolden pins the /metrics surface: the exact
// sequence of `# TYPE` declarations with a streaming service and flight
// recorder attached. Values change run to run; the metric roster and
// their declared types are the contract dashboards scrape against, so
// additions or renames must show up here.
func TestMetricsExpositionGolden(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.AttachFlightRecorder(telemetry.NewFlightRecorder(telemetry.FlightOptions{}))
	ts, _ := streamServer(t, Options{Registry: reg})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	var types []string
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			types = append(types, strings.TrimPrefix(line, "# TYPE "))
		}
	}
	want := []string{
		"tkdc_queries_total counter",
		"tkdc_grid_hits_total counter",
		"tkdc_grid_misses_total counter",
		"tkdc_sampling_rounds_total counter",
		"tkdc_sampling_points_total counter",
		"tkdc_kernels_near_total counter",
		"tkdc_kernels_far_total counter",
		"tkdc_batch_total counter",
		"tkdc_coalesced_queries_total counter",
		"tkdc_direct_queries_total counter",
		"tkdc_query_latency_ns histogram",
		"tkdc_query_kernels histogram",
		"tkdc_query_nodes histogram",
		"tkdc_batch_size histogram",
		"tkdc_model_points gauge",
		"tkdc_model_dim gauge",
		"tkdc_model_threshold gauge",
		"tkdc_model_generation gauge",
		"tkdc_model_age_seconds gauge",
		"tkdc_backend gauge",
		"tkdc_train_kernels_total gauge",
		"tkdc_train_bootstrap_rounds gauge",
		"tkdc_train_workers gauge",
		"tkdc_train_phase_workers gauge",
		"tkdc_tree_nodes gauge",
		"tkdc_tree_leaves gauge",
		"tkdc_tree_max_depth gauge",
		"tkdc_grid_cells gauge",
		"tkdc_grid_cache_hits_total counter",
		"tkdc_grid_cache_misses_total counter",
		"tkdc_http_requests_total counter",
		"tkdc_stream_ingested_total counter",
		"tkdc_stream_retrains_total counter",
		"tkdc_stream_sample_size gauge",
		"tkdc_stream_sample_capacity gauge",
		"tkdc_stream_pending_rows gauge",
		"tkdc_stream_sample_fill gauge",
		"tkdc_ingest_shards gauge",
		"tkdc_stream_shard_fill gauge",
		"tkdc_stream_drift_probes_total counter",
		"tkdc_stream_drift_score gauge",
		"tkdc_stream_last_retrain_seconds gauge",
		"tkdc_snapshot_bytes gauge",
		"tkdc_snapshot_fetches_total counter",
		"tkdc_snapshot_not_modified_total counter",
		"tkdc_traces_total counter",
		"tkdc_traces_straddling_total counter",
		"tkdc_slow_queries_total counter",
		"go_goroutines gauge",
	}
	if len(types) != len(want) {
		t.Fatalf("metric roster has %d TYPE declarations, want %d:\ngot %v", len(types), len(want), types)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("TYPE[%d] = %q, want %q", i, types[i], want[i])
		}
	}
	if resp.Header.Get("Content-Type") != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type = %q", resp.Header.Get("Content-Type"))
	}
}

// TestExpvarFlightCounters checks the expvar mirror exposes the flight
// block once a recorder is attached.
func TestExpvarFlightCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.AttachFlightRecorder(telemetry.NewFlightRecorder(telemetry.FlightOptions{}))
	ts, svc := streamServer(t, Options{Registry: reg})
	// streamServer trains its classifier without a recorder; wire the live
	// generation to ours so queries trace.
	clf, _, _ := svc.Model().View()
	clf.SetRecorder(reg)

	resp, err := http.Post(ts.URL+"/classify", "application/json",
		strings.NewReader(`{"points": [[0.5, 0.5]]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	_, body := getJSON(t, ts.URL+"/debug/vars")
	tk, ok := body["tkdc"].(map[string]any)
	if !ok {
		t.Fatalf("expvar missing tkdc key: %v", body)
	}
	flight, ok := tk["flight"].(map[string]any)
	if !ok {
		t.Fatalf("expvar tkdc block missing flight: %v", tk)
	}
	if flight["traced"].(float64) != 1 {
		t.Fatalf("flight.traced = %v, want 1", flight["traced"])
	}
	stream, ok := tk["stream"].(map[string]any)
	if !ok {
		t.Fatalf("expvar tkdc block missing stream: %v", tk)
	}
	for _, key := range []string{"pending", "drift_score", "drift_probes", "last_retrain_reason"} {
		if _, ok := stream[key]; !ok {
			t.Fatalf("expvar stream block missing %q: %v", key, stream)
		}
	}
}

// gaussRows generates n 2-d standard-normal rows.
func gaussRows(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	return rows
}
