// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (Section 4). Each experiment is a
// function that measures the relevant algorithms on the relevant
// (synthetic) datasets and renders a plain-text table whose rows mirror
// the series the paper plots.
//
// Absolute numbers differ from the paper's testbed; the deliverable is
// the shape — which algorithm wins, by roughly what factor, and where the
// crossovers fall. Experiment sizes are scaled by Options.Scale so the
// full suite runs on a laptop; Scale = 1 approaches paper-scale inputs.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"tkdc/internal/baseline"
	"tkdc/internal/core"
	"tkdc/internal/kernel"
	"tkdc/internal/points"
	"tkdc/internal/stats"
	"tkdc/internal/telemetry"
)

// Options configures an experiment run.
type Options struct {
	// Scale multiplies dataset sizes (1 = paper scale, default 0.01).
	Scale float64
	// MaxQueries caps the measured queries per algorithm; throughput for
	// the full dataset is extrapolated (0 = default 2000).
	MaxQueries int
	// Seed drives dataset generation and training.
	Seed int64
	// Out receives the rendered tables (io.Discard if nil).
	Out io.Writer
	// Recorder, when non-nil, is attached to every tKDC classifier the
	// experiments train, so a harness run can be profiled with the same
	// telemetry (phase traces, work histograms) as production serving.
	Recorder telemetry.Recorder
}

// config returns the experiments' base classifier configuration: the
// paper's Table 1 defaults with the run's seed and recorder attached.
func (o Options) config() core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = o.Seed
	cfg.Recorder = o.Recorder
	return cfg
}

func (o Options) normalized() Options {
	if o.Scale <= 0 {
		o.Scale = 0.01
	}
	if o.MaxQueries <= 0 {
		o.MaxQueries = 2000
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

// scaled returns max(n·Scale, floor) — dataset sizes honoring the scale
// factor without degenerating.
func (o Options) scaled(n, floor int) int {
	s := int(float64(n) * o.Scale)
	if s < floor {
		s = floor
	}
	if s > n {
		s = n
	}
	return s
}

// Table is a rendered experiment result.
type Table struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
			} else {
				parts[i] = cell
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// Measurement is one algorithm's performance on one workload.
type Measurement struct {
	Algo            string
	N, D            int
	TrainSeconds    float64
	QueriesMeasured int
	QuerySeconds    float64
	KernelsPerQuery float64
}

// EffectiveThroughput returns the paper's end-to-end metric: dataset
// size divided by (training time + extrapolated time to classify every
// point), in queries per second.
func (m Measurement) EffectiveThroughput() float64 {
	if m.QueriesMeasured == 0 {
		return 0
	}
	perQuery := m.QuerySeconds / float64(m.QueriesMeasured)
	total := m.TrainSeconds + perQuery*float64(m.N)
	if total <= 0 {
		return 0
	}
	return float64(m.N) / total
}

// QueryThroughput returns queries per second excluding training time
// (the metric of Figures 9 and 10).
func (m Measurement) QueryThroughput() float64 {
	if m.QuerySeconds <= 0 {
		return 0
	}
	return float64(m.QueriesMeasured) / m.QuerySeconds
}

// MeasureTKDC trains a tKDC classifier and measures classification of the
// training points themselves (the paper's outlier-detection setting).
func MeasureTKDC(data [][]float64, cfg core.Config, maxQueries int) (Measurement, error) {
	m := Measurement{Algo: "tkdc", N: len(data), D: len(data[0])}
	start := time.Now()
	clf, err := core.Train(data, cfg)
	if err != nil {
		return m, err
	}
	m.TrainSeconds = time.Since(start).Seconds()

	q := maxQueries
	if q > len(data) {
		q = len(data)
	}
	before := clf.Stats()
	start = time.Now()
	for i := 0; i < q; i++ {
		if _, err := clf.Score(data[i]); err != nil {
			return m, err
		}
	}
	m.QuerySeconds = time.Since(start).Seconds()
	m.QueriesMeasured = q
	after := clf.Stats()
	m.KernelsPerQuery = float64(after.Kernels()-before.Kernels()) / float64(q)
	return m, nil
}

// BaselineKind names a Table 2 comparison algorithm.
type BaselineKind string

// The Table 2 baselines.
const (
	Simple BaselineKind = "simple"
	NoCut  BaselineKind = "nocut"
	RKDE   BaselineKind = "rkde"
	Binned BaselineKind = "binned"
)

// BaselineParams tunes baseline construction.
type BaselineParams struct {
	// Epsilon is nocut's relative-error target (default 0.01).
	Epsilon float64
	// Radius is rkde's cutoff in bandwidth multiples (default derived
	// from the ε·t guarantee with t estimated from a density sample).
	Radius float64
	// BandwidthFactor scales Scott's rule (default 1).
	BandwidthFactor float64
}

func (p BaselineParams) normalized() BaselineParams {
	if p.Epsilon == 0 {
		p.Epsilon = 0.01
	}
	if p.BandwidthFactor == 0 {
		p.BandwidthFactor = 1
	}
	return p
}

// NewBaseline constructs a Table 2 estimator over data. The rows are
// copied into flat storage once, here at the harness boundary; every
// estimator below works on the contiguous buffer.
func NewBaseline(kind BaselineKind, data [][]float64, params BaselineParams) (baseline.Estimator, error) {
	params = params.normalized()
	pts, err := points.FromRows(data)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	h, err := kernel.ScottBandwidths(pts, params.BandwidthFactor)
	if err != nil {
		return nil, err
	}
	kern, err := kernel.NewGaussian(h)
	if err != nil {
		return nil, err
	}
	switch kind {
	case Simple:
		return baseline.NewSimple(pts, kern), nil
	case NoCut:
		return baseline.NewNoCut(pts, kern, params.Epsilon)
	case RKDE:
		radius := params.Radius
		if radius <= 0 {
			// Paper default: smallest radius guaranteeing error ε·t. We
			// estimate t cheaply from a small exact density sample.
			t := sampleThreshold(pts, kern, 200, 0.01)
			radius, err = baseline.RadiusForError(kern, params.Epsilon*t)
			if err != nil {
				return nil, err
			}
		}
		return baseline.NewRKDE(pts, kern, radius)
	case Binned:
		return baseline.NewBinned(pts, kern)
	default:
		return nil, fmt.Errorf("bench: unknown baseline %q", kind)
	}
}

// sampleThreshold estimates t(p) from exact densities of a small sample.
func sampleThreshold(pts *points.Store, kern kernel.Kernel, sample int, p float64) float64 {
	n := pts.Len()
	if sample > n {
		sample = n
	}
	ds := make([]float64, sample)
	stride := n / sample
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < sample; i++ {
		q := pts.Row(i * stride)
		ds[i] = kernel.Sum(kern, q, pts.Data) / float64(n)
	}
	sort.Float64s(ds)
	t, err := stats.SortedQuantile(ds, p)
	if err != nil || t <= 0 {
		return kern.AtZero() * 1e-6
	}
	return t
}

// MeasureBaseline builds a baseline estimator and measures density
// queries over the dataset's own points.
func MeasureBaseline(kind BaselineKind, data [][]float64, params BaselineParams, maxQueries int) (Measurement, error) {
	m := Measurement{Algo: string(kind), N: len(data), D: len(data[0])}
	start := time.Now()
	est, err := NewBaseline(kind, data, params)
	if err != nil {
		return m, err
	}
	m.TrainSeconds = time.Since(start).Seconds()

	q := maxQueries
	if q > len(data) {
		q = len(data)
	}
	before := est.Kernels()
	start = time.Now()
	for i := 0; i < q; i++ {
		est.Density(data[i])
	}
	m.QuerySeconds = time.Since(start).Seconds()
	m.QueriesMeasured = q
	m.KernelsPerQuery = float64(est.Kernels()-before) / float64(q)
	return m, nil
}

// fmtRate renders a throughput with SI-style compaction (like the paper's
// "55.2k", "6.36M" labels).
func fmtRate(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.3gk", v/1e3)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// fmtCount compacts large counts the same way.
func fmtCount(v float64) string { return fmtRate(v) }
