package stream

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tkdc/internal/core"
	"tkdc/internal/telemetry"
)

// TestHotSwapHammer is the zero-downtime acceptance check: readers call
// Classify/Score/DensityBounds in tight loops while generations swap
// underneath them. Run under -race it also proves the handle publishes
// safely. Each reader asserts generation numbers are monotone and every
// View is internally coherent (classifier paired with its own
// generation's threshold).
func TestHotSwapHammer(t *testing.T) {
	clfA := trainSmall(t, gauss2D(400, 1, 1))
	clfB := trainSmall(t, gauss2D(400, 2, 1.5))
	model := NewModel(clfA)

	probes := gauss2D(32, 3, 2)
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	fail := func(msg string) {
		select {
		case errs <- msg:
		default:
		}
	}

	const readers = 8
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var lastGen uint64
			for i := 0; !stop.Load(); i++ {
				q := probes[(r+i)%len(probes)]
				switch i % 3 {
				case 0:
					if _, err := model.Classify(q); err != nil {
						fail("Classify: " + err.Error())
						return
					}
				case 1:
					res, err := model.Score(q)
					if err != nil {
						fail("Score: " + err.Error())
						return
					}
					if res.Lower > res.Upper {
						fail("torn score: lower > upper")
						return
					}
				case 2:
					if _, _, err := model.DensityBounds(q, 0.1); err != nil {
						fail("DensityBounds: " + err.Error())
						return
					}
				}
				clf, gen, born := model.View()
				if gen < lastGen {
					fail("generation went backwards")
					return
				}
				lastGen = gen
				if clf == nil || born.IsZero() {
					fail("torn view: nil classifier or zero birth time")
					return
				}
			}
		}(r)
	}

	// Writer: swap between two prebuilt classifiers as fast as possible.
	const swaps = 2000
	var lastPub uint64
	for i := 0; i < swaps; i++ {
		next := clfA
		if i%2 == 0 {
			next = clfB
		}
		gen := model.Publish(next)
		if gen <= lastPub {
			t.Fatalf("publish generation %d not monotone after %d", gen, lastPub)
		}
		lastPub = gen
	}
	time.Sleep(10 * time.Millisecond) // let readers overlap the final state
	stop.Store(true)
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
	if got := model.Generation(); got != swaps+1 {
		t.Fatalf("final generation = %d, want %d", got, swaps+1)
	}
}

// TestServiceHammer drives the whole lifecycle under -race: concurrent
// ingest batches and queries while the background retrainer swaps real
// retrained generations.
func TestServiceHammer(t *testing.T) {
	initial := trainSmall(t, gauss2D(400, 1, 1))
	svc, err := NewService(initial, Config{
		Capacity:      800,
		Window:        true,
		RetrainEvery:  150,
		CheckInterval: time.Millisecond,
		Train:         testConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	model := svc.Model()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			probes := gauss2D(16, int64(100+r), 2)
			for i := 0; !stop.Load(); i++ {
				if _, err := model.Score(probes[i%len(probes)]); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	for b := 0; b < 12; b++ {
		if _, err := svc.Ingest(gauss2D(100, int64(200+b), 1)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	deadline := time.Now().Add(10 * time.Second)
	for model.Generation() < 3 {
		if time.Now().After(deadline) {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("retrainer advanced only to generation %d: %+v", model.Generation(), svc.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.LastError != "" {
		t.Fatalf("background retrains errored: %s", st.LastError)
	}
	if st.Generation < 3 || st.Retrains < 2 {
		t.Fatalf("lifecycle stats = %+v, want ≥ 2 retrains", st)
	}
}

// TestFlightRecorderHammer drives the flight recorder through the full
// streaming lifecycle under -race: readers trace every query through the
// live Model handle while retrains hot-swap generations underneath, and
// a snapshot reader serves /debug/queries-style reads throughout. Every
// generation shares the registry (and so the recorder), so traces keep
// flowing across swaps.
func TestFlightRecorderHammer(t *testing.T) {
	reg := telemetry.NewRegistry()
	flight := telemetry.NewFlightRecorder(telemetry.FlightOptions{K: 16})
	reg.AttachFlightRecorder(flight)

	cfg := testConfig()
	cfg.Recorder = reg
	initial, err := core.Train(gauss2D(400, 1, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(initial, Config{Capacity: 800, Train: cfg, Recorder: reg})
	if err != nil {
		t.Fatal(err)
	}
	model := svc.Model()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			probes := gauss2D(16, int64(100+r), 2)
			for i := 0; !stop.Load(); i++ {
				if _, err := model.Score(probes[i%len(probes)]); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() { // concurrent snapshot reader
		defer wg.Done()
		for !stop.Load() {
			snap := flight.Snapshot()
			if len(snap.Slowest) > snap.K || len(snap.Recent) > snap.K {
				t.Errorf("snapshot overflows K: %d slowest, %d recent", len(snap.Slowest), len(snap.Recent))
				return
			}
			for _, tr := range snap.Recent {
				if tr.Kind == "" || tr.Latency < 0 {
					t.Errorf("malformed retained trace: %+v", tr)
					return
				}
			}
		}
	}()

	// Writer: back-to-back retrain swaps with fresh rows in between.
	for i := 0; i < 6; i++ {
		if _, err := svc.Ingest(gauss2D(100, int64(200+i), 1)); err != nil {
			t.Fatal(err)
		}
		if err := svc.Retrain(); err != nil {
			t.Fatal(err)
		}
	}
	// At GOMAXPROCS=1 the six retrains can finish before the scheduler
	// ever runs a reader; yield until at least one query has traced so
	// the assertions below exercise a real interleaving.
	for deadline := time.Now().Add(10 * time.Second); flight.Snapshot().Traced == 0 && time.Now().Before(deadline); {
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	snap := flight.Snapshot()
	if snap.Traced == 0 {
		t.Fatal("no traces filed across the hammer run")
	}
	if model.Generation() != 7 {
		t.Fatalf("generation = %d, want 7 after 6 retrains", model.Generation())
	}
}
