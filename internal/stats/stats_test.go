package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
	if got := Variance(nil); got != 0 {
		t.Fatalf("Variance(nil) = %v, want 0", got)
	}
}

func TestMomentsMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var m Moments
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		m.Add(xs[i])
	}
	if m.Count() != len(xs) {
		t.Fatalf("Count = %d, want %d", m.Count(), len(xs))
	}
	if math.Abs(m.Mean()-Mean(xs)) > 1e-9 {
		t.Fatalf("running mean %v != batch mean %v", m.Mean(), Mean(xs))
	}
	if math.Abs(m.Variance()-Variance(xs)) > 1e-9 {
		t.Fatalf("running var %v != batch var %v", m.Variance(), Variance(xs))
	}
}

func TestMomentsZeroValue(t *testing.T) {
	var m Moments
	if m.Variance() != 0 || m.Mean() != 0 || m.StdDev() != 0 {
		t.Fatal("zero-value Moments must report zero statistics")
	}
}

func TestColumnStdDevs(t *testing.T) {
	rows := [][]float64{{1, 10}, {3, 10}, {5, 10}}
	got := ColumnStdDevs(rows)
	want0 := StdDev([]float64{1, 3, 5})
	if math.Abs(got[0]-want0) > 1e-12 {
		t.Fatalf("col 0 std = %v, want %v", got[0], want0)
	}
	if got[1] != 0 {
		t.Fatalf("constant column std = %v, want 0", got[1])
	}
	if ColumnStdDevs(nil) != nil {
		t.Fatal("empty dataset should yield nil")
	}
}

func TestOrderStatistic(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	for k, want := range map[int]float64{1: 1, 3: 3, 5: 5} {
		got, err := OrderStatistic(xs, k)
		if err != nil || got != want {
			t.Fatalf("OrderStatistic(%d) = %v, %v; want %v", k, got, err, want)
		}
	}
	// Clamping.
	if got, _ := OrderStatistic(xs, 0); got != 1 {
		t.Fatalf("k=0 should clamp to min, got %v", got)
	}
	if got, _ := OrderStatistic(xs, 99); got != 5 {
		t.Fatalf("k=99 should clamp to max, got %v", got)
	}
	if _, err := OrderStatistic(nil, 1); err != ErrEmpty {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("OrderStatistic mutated its input")
	}
}

func TestQuantile(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	got, err := Quantile(xs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 50 {
		t.Fatalf("median of 1..100 = %v, want 50", got)
	}
	if got, _ := Quantile(xs, 0.01); got != 1 {
		t.Fatalf("p=0.01 quantile = %v, want 1", got)
	}
	if got, _ := Quantile(xs, 1); got != 100 {
		t.Fatalf("p=1 quantile = %v, want 100", got)
	}
	if got, _ := Quantile(xs, -3); got != 1 {
		t.Fatalf("p<0 should clamp, got %v", got)
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
}

func TestQuantileCIIndicesPaperExample(t *testing.T) {
	// Section 3.5 worked example: s = 20000, δ = 0.01, p = 0.01 with
	// z = 2.576 brackets the 164th and 236th order statistics.
	l, u, err := QuantileCIIndices(20000, 0.01, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if l < 162 || l > 165 {
		t.Fatalf("lower index = %d, want ≈164", l)
	}
	if u < 235 || u > 238 {
		t.Fatalf("upper index = %d, want ≈236", u)
	}
	if l >= u {
		t.Fatalf("degenerate interval [%d, %d]", l, u)
	}
}

func TestQuantileCIIndicesValidation(t *testing.T) {
	if _, _, err := QuantileCIIndices(0, 0.5, 0.1); err == nil {
		t.Fatal("s=0 should error")
	}
	if _, _, err := QuantileCIIndices(10, 0, 0.1); err == nil {
		t.Fatal("p=0 should error")
	}
	if _, _, err := QuantileCIIndices(10, 0.5, 1); err == nil {
		t.Fatal("delta=1 should error")
	}
	// Tiny samples must clamp, not go out of range.
	l, u, err := QuantileCIIndices(3, 0.5, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if l < 1 || u > 3 || l > u {
		t.Fatalf("indices [%d, %d] out of range for s=3", l, u)
	}
}

// TestQuantileCICoverage checks the probabilistic guarantee of Equation 11:
// over repeated sampling, the true population quantile falls inside the
// sample order-statistic interval at least 1−δ of the time (within Monte
// Carlo noise).
func TestQuantileCICoverage(t *testing.T) {
	const (
		trials = 400
		s      = 2000
		p      = 0.05
		delta  = 0.05
	)
	rng := rand.New(rand.NewSource(42))
	// Population: standard normal; true p-quantile known analytically.
	trueQ := InvNormCDF(p)
	hits := 0
	sample := make([]float64, s)
	for trial := 0; trial < trials; trial++ {
		for i := range sample {
			sample[i] = rng.NormFloat64()
		}
		sort.Float64s(sample)
		l, u, err := QuantileCIIndices(s, p, delta)
		if err != nil {
			t.Fatal(err)
		}
		lo, _ := SortedOrderStatistic(sample, l)
		hi, _ := SortedOrderStatistic(sample, u)
		if lo <= trueQ && trueQ <= hi {
			hits++
		}
	}
	coverage := float64(hits) / trials
	if coverage < 1-delta-0.03 {
		t.Fatalf("coverage = %.3f, want ≥ %.3f", coverage, 1-delta-0.03)
	}
}

func TestNormCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{1.959963984540054, 0.975},
	}
	for _, c := range cases {
		if got := NormCDF(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("NormCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestInvNormCDFKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.99, 2.3263478740408408},
		{0.995, 2.5758293035489004},
		{0.01, -2.3263478740408408},
	}
	for _, c := range cases {
		if got := InvNormCDF(c.p); math.Abs(got-c.want) > 1e-8 {
			t.Errorf("InvNormCDF(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestInvNormCDFEdgeCases(t *testing.T) {
	if got := InvNormCDF(0); !math.IsInf(got, -1) {
		t.Fatalf("InvNormCDF(0) = %v, want -Inf", got)
	}
	if got := InvNormCDF(1); !math.IsInf(got, 1) {
		t.Fatalf("InvNormCDF(1) = %v, want +Inf", got)
	}
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		if got := InvNormCDF(p); !math.IsNaN(got) {
			t.Fatalf("InvNormCDF(%v) = %v, want NaN", p, got)
		}
	}
}

// Property: InvNormCDF is the inverse of NormCDF across (0, 1).
func TestInvNormCDFRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Abs(math.Mod(raw, 1))
		if p < 1e-10 || p > 1-1e-10 {
			return true
		}
		z := InvNormCDF(p)
		return math.Abs(NormCDF(z)-p) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are monotone in p and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.05 {
			q, err := Quantile(xs, p)
			if err != nil {
				return false
			}
			if q < prev || q < sorted[0] || q > sorted[n-1] {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConfusionScores(t *testing.T) {
	var c Confusion
	// 8 TP, 2 FP, 1 FN, 89 TN.
	for i := 0; i < 8; i++ {
		c.Add(true, true)
	}
	for i := 0; i < 2; i++ {
		c.Add(true, false)
	}
	c.Add(false, true)
	for i := 0; i < 89; i++ {
		c.Add(false, false)
	}
	if got := c.Precision(); got != 0.8 {
		t.Fatalf("Precision = %v, want 0.8", got)
	}
	if got := c.Recall(); math.Abs(got-8.0/9.0) > 1e-12 {
		t.Fatalf("Recall = %v, want %v", got, 8.0/9.0)
	}
	wantF1 := 2 * 0.8 * (8.0 / 9.0) / (0.8 + 8.0/9.0)
	if got := c.F1(); math.Abs(got-wantF1) > 1e-12 {
		t.Fatalf("F1 = %v, want %v", got, wantF1)
	}
	if got := c.Accuracy(); got != 0.97 {
		t.Fatalf("Accuracy = %v, want 0.97", got)
	}
}

func TestConfusionDegenerate(t *testing.T) {
	var c Confusion
	if c.Precision() != 1 || c.Recall() != 1 {
		t.Fatal("empty confusion should report perfect precision/recall")
	}
	if c.Accuracy() != 0 {
		t.Fatal("empty confusion accuracy should be 0")
	}
	var d Confusion
	d.Add(false, false)
	if d.F1() != 1 {
		t.Fatalf("all-negative F1 = %v, want 1 (vacuous)", d.F1())
	}
}

func BenchmarkInvNormCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		InvNormCDF(0.01 + 0.98*float64(i%100)/100)
	}
}

func BenchmarkQuantile(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Quantile(xs, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}
