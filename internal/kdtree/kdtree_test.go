package kdtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tkdc/internal/points"
)

func randomPoints(rng *rand.Rand, n, d int) *points.Store {
	pts := points.New(n, d)
	for i := 0; i < n*d; i++ {
		pts.Data[i] = rng.NormFloat64() * 10
	}
	return pts
}

func storeOf(rows [][]float64) *points.Store {
	s, err := points.FromRows(rows)
	if err != nil {
		panic(err)
	}
	return s
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Fatal("empty input should error")
	}
	if _, err := Build(&points.Store{}, Options{}); err == nil {
		t.Fatal("zero-dimensional input should error")
	}
	if _, err := Build(&points.Store{Dim: 1, Data: []float64{math.NaN()}}, Options{}); err == nil {
		t.Fatal("NaN coordinate should error")
	}
	if _, err := Build(&points.Store{Dim: 1, Data: []float64{math.Inf(1)}}, Options{}); err == nil {
		t.Fatal("Inf coordinate should error")
	}
}

func TestBuildDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 100, 2)
	before := append([]float64(nil), pts.Data...)
	if _, err := Build(pts, Options{LeafSize: 4}); err != nil {
		t.Fatal(err)
	}
	for i, v := range pts.Data {
		if v != before[i] {
			t.Fatal("Build mutated the caller's buffer")
		}
	}
}

func TestSingleLeafTree(t *testing.T) {
	pts := storeOf([][]float64{{1, 2}, {3, 4}})
	tr, err := Build(pts, Options{LeafSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Root().IsLeaf() || tr.Root().Count() != 2 {
		t.Fatal("two points with LeafSize 10 should be a single leaf")
	}
	if tr.Height() != 1 || tr.NodeCount() != 1 {
		t.Fatalf("Height=%d NodeCount=%d, want 1/1", tr.Height(), tr.NodeCount())
	}
}

func TestAllIdenticalPoints(t *testing.T) {
	pts := points.New(100, 3)
	for i := range pts.Data {
		pts.Data[i] = 7
	}
	tr, err := Build(pts, Options{LeafSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Root().IsLeaf() {
		t.Fatal("identical points cannot be split; root must be a leaf")
	}
	if tr.Root().Count() != 100 {
		t.Fatalf("count = %d, want 100", tr.Root().Count())
	}
	for j := 0; j < 3; j++ {
		if tr.Root().Min[j] != 7 || tr.Root().Max[j] != 7 {
			t.Fatal("degenerate bounding box expected")
		}
	}
}

func TestHeavyDuplicates(t *testing.T) {
	// Half the points at one location, half spread out: splits must still
	// terminate and preserve every point.
	rng := rand.New(rand.NewSource(2))
	pts := points.New(2000, 2)
	for i := 0; i < 1000; i++ {
		pts.Data[2*i], pts.Data[2*i+1] = 5, 5
	}
	for i := 2000; i < len(pts.Data); i++ {
		pts.Data[i] = rng.NormFloat64() * 10
	}
	tr, err := Build(pts, Options{LeafSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, tr)
}

// checkInvariants walks the tree verifying: counts sum, ranges partition,
// points inside boxes, child boxes inside parent boxes, and total point
// preservation.
func checkInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	total := 0
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Lo < 0 || n.Hi > tr.Size || n.Lo >= n.Hi {
			t.Fatalf("node range [%d, %d) out of bounds", n.Lo, n.Hi)
		}
		if n.IsLeaf() {
			total += n.Count()
			for i := n.Lo; i < n.Hi; i++ {
				p := tr.Pts.Row(i)
				for j, v := range p {
					if v < n.Min[j] || v > n.Max[j] {
						t.Fatalf("point %v outside box [%v, %v] dim %d", p, n.Min, n.Max, j)
					}
				}
			}
			return
		}
		if n.Left.Lo != n.Lo || n.Right.Hi != n.Hi || n.Left.Hi != n.Right.Lo {
			t.Fatalf("children [%d,%d)+[%d,%d) do not partition [%d,%d)",
				n.Left.Lo, n.Left.Hi, n.Right.Lo, n.Right.Hi, n.Lo, n.Hi)
		}
		if n.Left.Count()+n.Right.Count() != n.Count() {
			t.Fatalf("child counts %d+%d != %d", n.Left.Count(), n.Right.Count(), n.Count())
		}
		for _, c := range []*Node{n.Left, n.Right} {
			for j := range n.Min {
				if c.Min[j] < n.Min[j] || c.Max[j] > n.Max[j] {
					t.Fatalf("child box [%v, %v] escapes parent [%v, %v]", c.Min, c.Max, n.Min, n.Max)
				}
			}
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(tr.Root())
	if total != tr.Size {
		t.Fatalf("tree preserved %d of %d points", total, tr.Size)
	}
}

// Property: invariants hold for random datasets under both split rules.
func TestTreeInvariantsProperty(t *testing.T) {
	for _, rule := range []SplitRule{SplitEquiWidth, SplitMedian} {
		rule := rule
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			n := 1 + rng.Intn(500)
			d := 1 + rng.Intn(5)
			pts := randomPoints(rng, n, d)
			tr, err := Build(pts, Options{LeafSize: 1 + rng.Intn(16), Split: rule})
			if err != nil {
				return false
			}
			// Reuse checkInvariants via a sub-test-free walk: replicate
			// minimal checks inline to return bool.
			ok := true
			total := 0
			var walk func(nd *Node)
			walk = func(nd *Node) {
				if !ok {
					return
				}
				if nd.IsLeaf() {
					total += nd.Count()
					for i := nd.Lo; i < nd.Hi; i++ {
						for j, v := range tr.Pts.Row(i) {
							if v < nd.Min[j] || v > nd.Max[j] {
								ok = false
							}
						}
					}
					return
				}
				if nd.Left.Count()+nd.Right.Count() != nd.Count() {
					ok = false
					return
				}
				walk(nd.Left)
				walk(nd.Right)
			}
			walk(tr.Root())
			return ok && total == n
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("rule %v: %v", rule, err)
		}
	}
}

// Property: MinSqDist ≤ actual scaled distance ≤ MaxSqDist for every point
// under a node.
func TestDistanceBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := randomPoints(rng, 200, 3)
		tr, err := Build(pts, Options{LeafSize: 8})
		if err != nil {
			return false
		}
		invH2 := []float64{1, 0.25, 4}
		q := []float64{rng.NormFloat64() * 20, rng.NormFloat64() * 20, rng.NormFloat64() * 20}
		ok := true
		var walk func(n *Node)
		walk = func(n *Node) {
			if !ok {
				return
			}
			lo, hi := n.MinSqDist(q, invH2), n.MaxSqDist(q, invH2)
			if lo > hi {
				ok = false
				return
			}
			if n.IsLeaf() {
				for i := n.Lo; i < n.Hi; i++ {
					s := sqDist(q, tr.Pts.Row(i), invH2)
					if s < lo-1e-9 || s > hi+1e-9 {
						ok = false
						return
					}
				}
				return
			}
			walk(n.Left)
			walk(n.Right)
		}
		walk(tr.Root())
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMinSqDistInsideBoxIsZero(t *testing.T) {
	pts := storeOf([][]float64{{0, 0}, {10, 10}})
	tr, _ := Build(pts, Options{})
	invH2 := []float64{1, 1}
	if got := tr.Root().MinSqDist([]float64{5, 5}, invH2); got != 0 {
		t.Fatalf("inside-box MinSqDist = %v, want 0", got)
	}
	if got := tr.Root().MinSqDist([]float64{-3, 0}, invH2); got != 9 {
		t.Fatalf("MinSqDist = %v, want 9", got)
	}
	if got := tr.Root().MaxSqDist([]float64{0, 0}, invH2); got != 200 {
		t.Fatalf("MaxSqDist = %v, want 200", got)
	}
}

func TestForEachInRangeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randomPoints(rng, 1000, 2)
	tr, err := Build(pts, Options{LeafSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	invH2 := []float64{1, 1}
	for trial := 0; trial < 20; trial++ {
		q := []float64{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		sqR := rng.Float64() * 100
		want := 0
		for i := 0; i < pts.Len(); i++ {
			if sqDist(q, pts.Row(i), invH2) <= sqR {
				want++
			}
		}
		got := 0
		tr.ForEachInRange(q, invH2, sqR, func(p []float64) { got++ })
		if got != want {
			t.Fatalf("range query found %d points, brute force %d (r²=%v)", got, want, sqR)
		}
	}
}

func TestSplitRuleString(t *testing.T) {
	if SplitEquiWidth.String() != "equiwidth" || SplitMedian.String() != "median" {
		t.Fatal("SplitRule names wrong")
	}
	if SplitRule(9).String() == "" {
		t.Fatal("unknown rule should still render")
	}
}

func TestMedianSplitBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := randomPoints(rng, 1<<12, 2)
	tr, err := Build(pts, Options{LeafSize: 1, Split: SplitMedian})
	if err != nil {
		t.Fatal(err)
	}
	// A balanced tree over 4096 points with leaf size 1 has height ≈ 13;
	// allow slack for duplicate handling.
	if h := tr.Height(); h > 20 {
		t.Fatalf("median tree height = %d, want ≈13", h)
	}
	checkInvariants(t, tr)
}

func TestEquiWidthInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomPoints(rng, 5000, 4)
	tr, err := Build(pts, Options{LeafSize: 16, Split: SplitEquiWidth})
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, tr)
}

func BenchmarkBuild100k2D(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	pts := randomPoints(rng, 100_000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(pts, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRangeQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	pts := randomPoints(rng, 100_000, 2)
	tr, err := Build(pts, Options{})
	if err != nil {
		b.Fatal(err)
	}
	invH2 := []float64{1, 1}
	q := []float64{0, 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		tr.ForEachInRange(q, invH2, 4, func(p []float64) { count++ })
	}
}

func TestForEachInRangeZeroRadius(t *testing.T) {
	pts := storeOf([][]float64{{1, 1}, {2, 2}, {1, 1}})
	tr, err := Build(pts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	invH2 := []float64{1, 1}
	count := 0
	tr.ForEachInRange([]float64{1, 1}, invH2, 0, func(p []float64) { count++ })
	if count != 2 {
		t.Fatalf("zero radius matched %d points, want the 2 exact duplicates", count)
	}
}

func TestForEachInRangeHugeRadiusVisitsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := randomPoints(rng, 500, 3)
	tr, err := Build(pts, Options{LeafSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	invH2 := []float64{1, 1, 1}
	count := 0
	tr.ForEachInRange([]float64{0, 0, 0}, invH2, math.Inf(1), func(p []float64) { count++ })
	if count != 500 {
		t.Fatalf("infinite radius visited %d points, want 500", count)
	}
}

// TestEquiWidthSplitsAtTrimmedMidpoint checks the Section 3.7 rule
// directly: for a two-cluster axis, the first split must land between
// the clusters (the trimmed midpoint), not at the median inside the
// bigger cluster.
func TestEquiWidthSplitsAtTrimmedMidpoint(t *testing.T) {
	// 80 points near 0, 20 points near 100: the 90th percentile falls in
	// the far cluster, so the trimmed midpoint (≈50) separates the
	// clusters, while a median split would cut inside the big cluster.
	pts := points.New(100, 1)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 80; i++ {
		pts.Data[i] = rng.NormFloat64()
	}
	for i := 80; i < 100; i++ {
		pts.Data[i] = 100 + rng.NormFloat64()
	}
	tr, err := Build(pts, Options{LeafSize: 16, Split: SplitEquiWidth})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root().IsLeaf() {
		t.Fatal("root should split")
	}
	// The children should separate the clusters: one child entirely
	// below 50, the other entirely above.
	l, r := tr.Root().Left, tr.Root().Right
	if l.Max[0] > 50 || r.Min[0] < 50 {
		t.Fatalf("equi-width split failed to separate clusters: left max %v, right min %v", l.Max[0], r.Min[0])
	}
	if l.Count() != 80 || r.Count() != 20 {
		t.Fatalf("cluster counts %d/%d, want 80/20", l.Count(), r.Count())
	}

	med, err := Build(pts, Options{LeafSize: 16, Split: SplitMedian})
	if err != nil {
		t.Fatal(err)
	}
	if med.Root().Left.Count() != 50 && med.Root().Right.Count() != 50 {
		t.Fatalf("median split should balance: %d/%d", med.Root().Left.Count(), med.Root().Right.Count())
	}
}

// TestTreeStats checks the shape statistics computed at Build: a full
// binary tree has Nodes = 2*Leaves - 1, every point lives in exactly one
// leaf, and the depth is consistent with the leaf-size bound.
func TestTreeStats(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 7, 100, 1000} {
		pts := randomPoints(rng, n, 3)
		tr, err := Build(pts, Options{LeafSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		s := tr.Stats()
		if s.Nodes != 2*s.Leaves-1 {
			t.Fatalf("n=%d: Nodes = %d, Leaves = %d; want Nodes = 2*Leaves-1", n, s.Nodes, s.Leaves)
		}
		if s.MaxDepth < 1 {
			t.Fatalf("n=%d: MaxDepth = %d, want >= 1", n, s.MaxDepth)
		}
		// Every split halves at worst unevenly but strictly, so depth
		// cannot exceed the point count.
		if s.MaxDepth > n {
			t.Fatalf("n=%d: MaxDepth = %d exceeds point count", n, s.MaxDepth)
		}
		// Count points by walking leaves.
		var total int
		var walk func(node *Node)
		walk = func(node *Node) {
			if node.IsLeaf() {
				total += node.Count()
				return
			}
			walk(node.Left)
			walk(node.Right)
		}
		walk(tr.Root())
		if total != n {
			t.Fatalf("n=%d: leaves hold %d points", n, total)
		}
		if n <= 16 {
			if s.Leaves != 1 || s.MaxDepth != 1 {
				t.Fatalf("n=%d fits one leaf: stats %+v", n, s)
			}
		}
	}
}

// TestDepthMatchesTraversal cross-checks the level-table Depth lookup
// against an explicit walk from the root: every reachable node's Depth
// equals its traversal depth (root = 1, the Stats.MaxDepth convention),
// and the deepest node agrees with Stats.
func TestDepthMatchesTraversal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 2, 100, 3000} {
		pts := randomPoints(rng, n, 3)
		tr, err := Build(pts, Options{LeafSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		type entry struct {
			id int32
			d  int
		}
		queue := []entry{{0, 1}}
		maxDepth, visited := 0, 0
		for len(queue) > 0 {
			e := queue[0]
			queue = queue[1:]
			visited++
			if got := tr.Depth(e.id); got != e.d {
				t.Fatalf("n=%d: Depth(%d) = %d, want %d", n, e.id, got, e.d)
			}
			if e.d > maxDepth {
				maxDepth = e.d
			}
			if l, r := tr.Children(e.id); l >= 0 {
				queue = append(queue, entry{l, e.d + 1}, entry{r, e.d + 1})
			}
		}
		if maxDepth != tr.Stats().MaxDepth {
			t.Fatalf("n=%d: walked max depth %d, Stats().MaxDepth %d", n, maxDepth, tr.Stats().MaxDepth)
		}
		if visited != tr.NodeCount() {
			t.Fatalf("n=%d: walk visited %d nodes, arena holds %d", n, visited, tr.NodeCount())
		}
	}
}
