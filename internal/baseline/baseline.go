// Package baseline implements the comparison algorithms of Table 2:
//
//   - simple — the naive KDE that sums every kernel contribution;
//   - nocut  — tolerance-only k-d tree traversal (Gray & Moore), the
//     algorithmic equivalent of scikit-learn's tree-based KDE;
//   - rkde   — radial KDE summing only contributions from points within a
//     cutoff radius, found by a range query on the same k-d tree;
//   - binned — linear binning plus truncated kernel convolution, the
//     algorithmic equivalent of the R "ks" package (d ≤ 4 only).
//
// All estimators expose the same Density interface so the benchmark
// harness can drive them interchangeably, and all count their kernel
// evaluations for the factor analyses.
package baseline

import (
	"tkdc/internal/kernel"
	"tkdc/internal/points"
)

// Estimator is a kernel density estimator with a work counter. Estimators
// are not safe for concurrent use (they carry counters and scratch
// state); create one per goroutine.
type Estimator interface {
	// Name identifies the algorithm as in Table 2.
	Name() string
	// Density estimates f(x). The error contract varies per algorithm;
	// see each constructor.
	Density(x []float64) float64
	// Kernels returns total kernel evaluations performed so far.
	Kernels() int64
	// N returns the training set size.
	N() int
}

// Simple is the naive estimator: every density query sums the kernel
// contribution of every training point exactly, in one contiguous sweep
// of the flat buffer.
type Simple struct {
	data    *points.Store
	kern    kernel.Kernel
	kernels int64
}

// NewSimple builds the naive estimator over data with the given kernel.
func NewSimple(data *points.Store, kern kernel.Kernel) *Simple {
	return &Simple{data: data, kern: kern}
}

// Name returns "simple".
func (s *Simple) Name() string { return "simple" }

// N returns the training set size.
func (s *Simple) N() int { return s.data.Len() }

// Kernels returns total kernel evaluations.
func (s *Simple) Kernels() int64 { return s.kernels }

// Density computes the exact kernel density in Θ(n).
func (s *Simple) Density(x []float64) float64 {
	n := s.data.Len()
	s.kernels += int64(n)
	return kernel.Sum(s.kern, x, s.data.Data) / float64(n)
}
