package kernel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tkdc/internal/points"
)

func TestNewGaussianValidation(t *testing.T) {
	for _, h := range [][]float64{nil, {}, {0}, {-1}, {1, math.NaN()}, {math.Inf(1)}} {
		if _, err := NewGaussian(h); err == nil {
			t.Errorf("NewGaussian(%v) should error", h)
		}
	}
	if _, err := NewEpanechnikov([]float64{0, 1}); err == nil {
		t.Error("NewEpanechnikov with zero bandwidth should error")
	}
}

func TestGaussian1DKnownValues(t *testing.T) {
	g, err := NewGaussian([]float64{2})
	if err != nil {
		t.Fatal(err)
	}
	// K(0) = 1/(√(2π)·2).
	want0 := 1 / (math.Sqrt(2*math.Pi) * 2)
	if math.Abs(g.AtZero()-want0) > 1e-15 {
		t.Fatalf("AtZero = %v, want %v", g.AtZero(), want0)
	}
	// K at x=2 (one bandwidth): K(0)·exp(-1/2).
	got := At(g, []float64{2}, []float64{0})
	want := want0 * math.Exp(-0.5)
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("At(h) = %v, want %v", got, want)
	}
	if g.Dim() != 1 || g.Name() != "gaussian" {
		t.Fatal("metadata mismatch")
	}
	if g.SupportSqRadius() != 1488 {
		t.Fatalf("gaussian truncation = %v, want 1488", g.SupportSqRadius())
	}
	if g.FromScaledSqDist(1488) != 0 || g.FromScaledSqDist(2000) != 0 {
		t.Fatal("kernel must vanish beyond the truncation radius")
	}
	if g.FromScaledSqDist(1487.9) < 0 {
		t.Fatal("kernel must stay non-negative just inside the truncation radius")
	}
}

func TestGaussianMatchesDirectFormula(t *testing.T) {
	h := []float64{0.5, 1.5, 3}
	g, err := NewGaussian(h)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		// Direct product of 1-d normal densities.
		want := 1.0
		for i, hi := range h {
			want *= math.Exp(-0.5*x[i]*x[i]/(hi*hi)) / (math.Sqrt(2*math.Pi) * hi)
		}
		got := At(g, x, []float64{0, 0, 0})
		if math.Abs(got-want) > 1e-15*math.Max(1, want) {
			t.Fatalf("kernel mismatch at %v: got %v want %v", x, got, want)
		}
	}
}

func TestGaussianHighDimensionNoUnderflowInNorm(t *testing.T) {
	// 784 dimensions with bandwidth 1000 each: Π(√(2π)·1000) overflows a
	// float64 if computed naively; the log-space norm must stay finite.
	h := make([]float64, 784)
	for i := range h {
		h[i] = 1000
	}
	g, err := NewGaussian(h)
	if err != nil {
		t.Fatal(err)
	}
	if g.AtZero() < 0 || math.IsNaN(g.AtZero()) || math.IsInf(g.AtZero(), 0) {
		t.Fatalf("AtZero = %v, want finite non-negative", g.AtZero())
	}
}

func TestScaledSqDist(t *testing.T) {
	invH2 := []float64{1, 0.25} // h = (1, 2)
	got := ScaledSqDist([]float64{3, 4}, []float64{0, 0}, invH2)
	if got != 9+4 {
		t.Fatalf("ScaledSqDist = %v, want 13", got)
	}
}

// Property: the Gaussian kernel is positive, maximal at zero, symmetric,
// and monotone non-increasing in scaled distance.
func TestGaussianShapeProperties(t *testing.T) {
	g, err := NewGaussian([]float64{1.3, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	f := func(ax, ay, bx, by float64) bool {
		a := []float64{math.Mod(ax, 50), math.Mod(ay, 50)}
		b := []float64{math.Mod(bx, 50), math.Mod(by, 50)}
		v := At(g, a, b)
		if v < 0 || v > g.AtZero() {
			return false
		}
		if At(g, b, a) != v {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
	// Monotonicity in s.
	prev := g.FromScaledSqDist(0)
	for s := 0.1; s < 50; s += 0.1 {
		cur := g.FromScaledSqDist(s)
		if cur > prev {
			t.Fatalf("kernel increased at s=%v", s)
		}
		prev = cur
	}
}

// TestGaussianIntegratesToOne verifies unit mass by trapezoidal
// integration in 1 and 2 dimensions.
func TestGaussianIntegratesToOne(t *testing.T) {
	g1, _ := NewGaussian([]float64{0.8})
	sum := 0.0
	const step = 0.01
	for x := -10.0; x <= 10; x += step {
		sum += At(g1, []float64{x}, []float64{0}) * step
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Fatalf("1-d gaussian mass = %v, want 1", sum)
	}

	g2, _ := NewGaussian([]float64{1, 2})
	sum = 0.0
	const step2 = 0.05
	for x := -8.0; x <= 8; x += step2 {
		for y := -16.0; y <= 16; y += step2 {
			sum += At(g2, []float64{x, y}, []float64{0, 0}) * step2 * step2
		}
	}
	if math.Abs(sum-1) > 1e-2 {
		t.Fatalf("2-d gaussian mass = %v, want 1", sum)
	}
}

func TestEpanechnikovIntegratesToOne(t *testing.T) {
	e1, _ := NewEpanechnikov([]float64{1.5})
	sum := 0.0
	const step = 0.001
	for x := -2.0; x <= 2; x += step {
		sum += At(e1, []float64{x}, []float64{0}) * step
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Fatalf("1-d epanechnikov mass = %v, want 1", sum)
	}

	e2, _ := NewEpanechnikov([]float64{1, 1})
	sum = 0.0
	const step2 = 0.01
	for x := -1.2; x <= 1.2; x += step2 {
		for y := -1.2; y <= 1.2; y += step2 {
			sum += At(e2, []float64{x, y}, []float64{0, 0}) * step2 * step2
		}
	}
	if math.Abs(sum-1) > 1e-2 {
		t.Fatalf("2-d epanechnikov mass = %v, want 1", sum)
	}
}

func TestEpanechnikovSupport(t *testing.T) {
	e, _ := NewEpanechnikov([]float64{2})
	if e.SupportSqRadius() != 1 {
		t.Fatalf("SupportSqRadius = %v, want 1", e.SupportSqRadius())
	}
	if got := At(e, []float64{2.01}, []float64{0}); got != 0 {
		t.Fatalf("outside support = %v, want 0", got)
	}
	if got := At(e, []float64{1.9}, []float64{0}); got <= 0 {
		t.Fatalf("inside support = %v, want > 0", got)
	}
	if e.FromScaledSqDist(1) != 0 {
		t.Fatal("kernel must vanish exactly at the support boundary")
	}
	if e.Name() != "epanechnikov" {
		t.Fatal("name mismatch")
	}
}

func TestScottBandwidths(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n, d = 10000, 3
	rows := points.New(n, d)
	for i := 0; i < n; i++ {
		copy(rows.Row(i), []float64{rng.NormFloat64() * 1, rng.NormFloat64() * 5, rng.NormFloat64() * 0.2})
	}
	h, err := ScottBandwidths(rows, 1)
	if err != nil {
		t.Fatal(err)
	}
	factor := math.Pow(float64(n), -1.0/(d+4))
	// σ estimates should be near the true values; allow 10%.
	for i, sigma := range []float64{1, 5, 0.2} {
		want := factor * sigma
		if math.Abs(h[i]-want) > 0.1*want {
			t.Errorf("h[%d] = %v, want ≈%v", i, h[i], want)
		}
	}
	// Scale factor b multiplies through.
	h2, err := ScottBandwidths(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range h {
		if math.Abs(h2[i]-2*h[i]) > 1e-12 {
			t.Errorf("b=2 should double h[%d]", i)
		}
	}
}

func TestScottBandwidthsConstantColumn(t *testing.T) {
	rows, err := points.FromRows([][]float64{{1, 7}, {2, 7}, {3, 7}})
	if err != nil {
		t.Fatal(err)
	}
	h, err := ScottBandwidths(rows, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h[1] <= 0 || math.IsNaN(h[1]) {
		t.Fatalf("constant-column bandwidth = %v, want positive fallback", h[1])
	}
}

func TestScottBandwidthsErrors(t *testing.T) {
	one, err := points.FromRows([][]float64{{1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ScottBandwidths(nil, 1); err == nil {
		t.Fatal("empty dataset should error")
	}
	if _, err := ScottBandwidths(one, 0); err == nil {
		t.Fatal("b=0 should error")
	}
	if _, err := ScottBandwidths(one, -1); err == nil {
		t.Fatal("b<0 should error")
	}
}

func BenchmarkGaussianAt(b *testing.B) {
	g, _ := NewGaussian([]float64{1, 1, 1, 1})
	x := []float64{0.1, 0.2, 0.3, 0.4}
	zero := []float64{0, 0, 0, 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		At(g, x, zero)
	}
}
