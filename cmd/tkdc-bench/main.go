// Command tkdc-bench regenerates the tables and figures of the paper's
// evaluation section on synthetic stand-in datasets.
//
// Usage:
//
//	tkdc-bench -list
//	tkdc-bench -experiment fig7 -scale 0.01
//	tkdc-bench -experiment all -scale 0.005 -maxqueries 1000
//
// Scale 1 approaches paper-scale dataset sizes (hours of runtime); the
// default 0.01 finishes on a laptop while preserving the result shapes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"tkdc/internal/bench"
	"tkdc/internal/telemetry"
)

// jsonReport is the machine-readable envelope -json emits: enough run
// metadata to make a committed baseline (BENCH_core.json) reproducible.
type jsonReport struct {
	Experiment string        `json:"experiment"`
	Scale      float64       `json:"scale"`
	MaxQueries int           `json:"max_queries"`
	Seed       int64         `json:"seed"`
	GoVersion  string        `json:"go_version"`
	GOARCH     string        `json:"goarch"`
	Timestamp  string        `json:"timestamp"`
	Tables     []bench.Table `json:"tables"`
}

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (tab2, tab3, fig7..fig16, stream, or all)")
		scale      = flag.Float64("scale", 0.01, "dataset size multiplier relative to the paper (0 < scale <= 1)")
		maxQueries = flag.Int("maxqueries", 2000, "maximum measured queries per algorithm (throughput is extrapolated)")
		seed       = flag.Int64("seed", 42, "random seed for dataset generation and training")
		list       = flag.Bool("list", false, "list available experiments and exit")
		stats      = flag.Bool("stats", false, "print a post-run telemetry summary (tKDC phase traces, work histograms) to stderr")
		jsonOut    = flag.Bool("json", false, "emit results as a JSON report on stdout instead of rendered tables")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-6s %s\n", e.ID, e.Description)
		}
		return
	}

	opts := bench.Options{
		Scale:      *scale,
		MaxQueries: *maxQueries,
		Seed:       *seed,
		Out:        os.Stdout,
	}
	if *jsonOut {
		opts.Out = io.Discard
	}
	if *stats {
		opts.Recorder = telemetry.Default
	}
	tables, err := bench.Run(*experiment, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tkdc-bench:", err)
		os.Exit(1)
	}
	if *jsonOut {
		report := jsonReport{
			Experiment: *experiment,
			Scale:      *scale,
			MaxQueries: *maxQueries,
			Seed:       *seed,
			GoVersion:  runtime.Version(),
			GOARCH:     runtime.GOARCH,
			Timestamp:  time.Now().UTC().Format(time.RFC3339),
			Tables:     tables,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "tkdc-bench:", err)
			os.Exit(1)
		}
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "tkdc-bench: telemetry across all tKDC classifiers in the run\n%s",
			telemetry.Default.Snapshot())
	}
}
