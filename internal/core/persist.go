package core

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"

	"tkdc/internal/grid"
	"tkdc/internal/kdtree"
	"tkdc/internal/kernel"
)

// modelSnapshot is the serialized form of a trained classifier. The
// spatial index and grid are rebuilt deterministically from the data on
// load (they are pure functions of data + config), so only the training
// outcome — the threshold and its bounds — needs to persist alongside the
// data. Loading therefore skips the expensive phases of Train entirely.
type modelSnapshot struct {
	Version   int
	Config    Config
	Data      [][]float64
	Threshold float64
	TLow      float64
	THigh     float64
	Train     TrainStats
}

// modelVersion identifies the snapshot format.
const modelVersion = 1

// Save serializes the trained classifier (including its training data —
// a KDE *is* its data) so a later Load can serve queries without
// retraining. The format is Go-specific (encoding/gob) and versioned.
func (c *Classifier) Save(w io.Writer) error {
	snap := modelSnapshot{
		Version:   modelVersion,
		Config:    c.cfg,
		Data:      c.data,
		Threshold: c.threshold,
		TLow:      c.tLow,
		THigh:     c.tHigh,
		Train:     c.train,
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("core: save model: %w", err)
	}
	return nil
}

// Load reconstructs a classifier saved with Save: the k-d tree and grid
// are rebuilt from the stored data, and the persisted threshold is used
// directly, skipping the bootstrap and the full-dataset density pass.
func Load(r io.Reader) (*Classifier, error) {
	var snap modelSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: load model: %w", err)
	}
	if snap.Version != modelVersion {
		return nil, fmt.Errorf("core: unsupported model version %d (want %d)", snap.Version, modelVersion)
	}
	if len(snap.Data) == 0 {
		return nil, errors.New("core: model contains no data")
	}
	if math.IsNaN(snap.Threshold) {
		return nil, errors.New("core: model threshold is NaN")
	}
	cfg := snap.Config.normalized()
	if err := cfg.validate(); err != nil {
		return nil, err
	}

	h, err := kernel.ScottBandwidths(snap.Data, cfg.BandwidthFactor)
	if err != nil {
		return nil, err
	}
	kern, err := newKernel(cfg.Kernel, h)
	if err != nil {
		return nil, err
	}
	tree, err := kdtree.Build(snap.Data, kdtree.Options{LeafSize: cfg.LeafSize, Split: cfg.Split})
	if err != nil {
		return nil, err
	}

	c := &Classifier{
		cfg:         cfg,
		dim:         len(snap.Data[0]),
		data:        snap.Data,
		kern:        kern,
		tree:        tree,
		tLow:        snap.TLow,
		tHigh:       snap.THigh,
		threshold:   snap.Threshold,
		selfContrib: kern.AtZero() / float64(len(snap.Data)),
		train:       snap.Train,
	}
	c.estPool.New = func() any {
		return newDensityEstimator(c.tree, c.kern, cfg.DisableThresholdRule, cfg.DisableToleranceRule)
	}
	if !cfg.DisableGrid && c.dim <= cfg.MaxGridDim {
		g, err := grid.New(snap.Data, h)
		if err != nil {
			return nil, err
		}
		c.grid = g
		c.gridKDiag = kern.FromScaledSqDist(g.DiagSqScaled(kern.InvBandwidthsSq()))
	}
	return c, nil
}
