package bench

import (
	"fmt"
	"sort"

	"tkdc/internal/dataset"
)

// Experiment is a named, runnable reproduction of one paper table/figure.
type Experiment struct {
	ID          string
	Description string
	Run         func(Options) ([]Table, error)
}

// Experiments returns the registry of all reproducible tables and
// figures, sorted by ID.
func Experiments() []Experiment {
	exps := []Experiment{
		{"tab2", "Table 2: algorithm roster", Table2},
		{"tab3", "Table 3: dataset roster", Table3},
		{"fig7", "Figure 7: end-to-end throughput across datasets and algorithms", Figure7},
		{"fig8", "Figure 8: classification accuracy (F1) vs exact KDE ground truth", Figure8},
		{"fig9", "Figure 9: query throughput vs dataset size (gauss, d=2)", Figure9},
		{"fig10", "Figure 10: query throughput vs dataset size (hep, d=27)", Figure10},
		{"fig11", "Figure 11: throughput vs dimensionality (hep)", Figure11},
		{"fig12", "Figure 12: cumulative factor analysis of tKDC optimizations", Figure12},
		{"fig13", "Figure 13: rkde throughput vs radius cutoff", Figure13},
		{"fig14", "Figure 14: throughput vs dimensionality (mnist, PCA-reduced)", Figure14},
		{"fig15", "Figure 15: throughput vs quantile threshold p", Figure15},
		{"fig16", "Figure 16: lesion analysis of tKDC optimizations", Figure16},
		{"stream", "Streaming lifecycle: query latency under concurrent ingest + retrain churn", StreamLifecycle},
		{"trace", "Telemetry overhead: per-query cost of counters and flight tracing", TraceOverhead},
		{"fleet", "Replication fleet: aggregate throughput at 1/2/4 replicas under leader churn", Fleet},
		{"serve", "Batched query engine: /classify throughput vs coalescing window and concurrency", Serve},
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].ID < exps[j].ID })
	return exps
}

// Run executes the experiment with the given ID ("all" runs everything in
// registry order), printing each table to opts.Out.
func Run(id string, opts Options) ([]Table, error) {
	opts = opts.normalized()
	if id == "all" {
		var all []Table
		for _, e := range Experiments() {
			tables, err := e.Run(opts)
			if err != nil {
				return all, fmt.Errorf("bench: %s: %w", e.ID, err)
			}
			all = append(all, tables...)
		}
		return all, nil
	}
	for _, e := range Experiments() {
		if e.ID == id {
			tables, err := e.Run(opts)
			if err != nil {
				return tables, fmt.Errorf("bench: %s: %w", e.ID, err)
			}
			return tables, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown experiment %q (try: tab2, tab3, fig7..fig16, stream, trace, fleet, serve, all)", id)
}

// Table2 renders the algorithm roster.
func Table2(opts Options) ([]Table, error) {
	opts = opts.normalized()
	t := Table{
		Title:   "Table 2: Algorithms used in evaluation",
		Columns: []string{"Name", "Description"},
	}
	t.AddRow("tkdc", "density classification with threshold+tolerance pruning (this work)")
	t.AddRow("simple", "naive algorithm, iterates through every point")
	t.AddRow("nocut", "tKDC with threshold rule and grid disabled (emulates scikit-learn's k-d tree KDE)")
	t.AddRow("rkde", "contribution from only nearby points via range query")
	t.AddRow("binned", "linear binning approximation (emulates the R ks package, d<=4)")
	t.Fprint(opts.Out)
	return []Table{t}, nil
}

// Table3 renders the dataset roster with the shapes this run would use.
func Table3(opts Options) ([]Table, error) {
	opts = opts.normalized()
	t := Table{
		Title:   "Table 3: Datasets used in evaluation (synthetic stand-ins)",
		Columns: []string{"Name", "d", "paper n", "scaled n", "Description"},
	}
	for _, info := range dataset.Catalog() {
		d := info.Dim
		dStr := fmt.Sprintf("%d", d)
		if d == 0 {
			dStr = "any"
		}
		t.AddRow(info.Name, dStr,
			fmt.Sprintf("%d", info.DefaultN),
			fmt.Sprintf("%d", opts.scaled(info.DefaultN, 1000)),
			info.Description)
	}
	t.Fprint(opts.Out)
	return []Table{t}, nil
}
