// Package stream turns the batch-trained tKDC stack into a continuously
// learning service. It has three pieces:
//
//   - Ingestor: accepts point batches and maintains a bounded-memory
//     sample directly in flat row-major storage — a deterministic seeded
//     reservoir (Vitter's Algorithm R) for stationary streams, or a
//     sliding window for drifting ones. The paper's threshold bootstrap
//     (§3.5) already derives t(p) from samples, which is what makes a
//     maintained sample a principled substrate for retraining.
//   - Model: an atomic generation-numbered handle over *core.Classifier;
//     queries never block on a model swap (one atomic pointer load per
//     query on the read side).
//   - Service: the background retrainer. When a trigger fires (ingested
//     row count, model age, or threshold drift against a cheap bootstrap
//     probe) it rebuilds a classifier from the current sample off the hot
//     path, publishes it through the Model, records the retrain as a
//     telemetry phase span, and writes an atomic on-disk snapshot.
package stream

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"tkdc/internal/points"
)

// Ingestor maintains a bounded-memory sample of an unbounded point
// stream in flat row-major form. It is safe for concurrent use; Add
// batches are applied atomically with respect to Snapshot.
//
// In reservoir mode (the default) the sample is a uniform random subset
// of everything ever ingested, maintained with Vitter's Algorithm R over
// a seeded generator — two ingestors fed the same batches with the same
// seed hold bit-identical samples. While fewer rows than the capacity
// have arrived, the sample is exactly the rows in arrival order, which
// is what makes the batch-training determinism bridge exact.
//
// In window mode the sample is the most recent capacity rows, so old
// data ages out and retrains track distribution drift.
type Ingestor struct {
	mu       sync.Mutex
	window   bool
	capacity int
	// dim is 0 until the first row fixes it. It is atomic so the Add
	// fast path can read the expected row width for pre-lock validation
	// without acquiring (and immediately releasing) the ingest mutex;
	// the only writers run under mu.
	dim  atomic.Int64
	rng  *rand.Rand
	buf  *points.Store // allocated once the dimensionality is known
	n    int           // rows currently held (≤ capacity)
	seen int64         // rows ever ingested
}

// NewIngestor builds an ingestor holding at most capacity rows. dim
// fixes the expected row width; 0 infers it from the first row. seed
// drives reservoir eviction; window selects sliding-window mode (seed is
// then unused).
func NewIngestor(capacity, dim int, seed int64, window bool) (*Ingestor, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("stream: reservoir capacity %d must be at least 1", capacity)
	}
	if dim < 0 {
		return nil, fmt.Errorf("stream: dimension %d must be non-negative", dim)
	}
	ing := &Ingestor{
		window:   window,
		capacity: capacity,
		rng:      rand.New(rand.NewSource(seed)),
	}
	if dim > 0 {
		ing.dim.Store(int64(dim))
		ing.buf = points.New(capacity, dim)
	}
	return ing, nil
}

// Add ingests a batch of rows. The batch is validated in full first —
// consistent dimensionality, finite coordinates — and rejected whole on
// the first bad row, mirroring the /classify request semantics; nothing
// is ingested on error. Validation runs before the ingest lock is taken
// (the expected row width is one atomic load, not a mutex acquire), so a
// malformed (or merely large) batch never stalls concurrent ingesters
// while it is being checked. Returns the number of rows ingested.
func (i *Ingestor) Add(rows [][]float64) (int, error) {
	if len(rows) == 0 {
		return 0, nil
	}
	dim := i.Dim()
	if dim == 0 {
		dim = len(rows[0])
	}
	if err := validateRows(rows, dim); err != nil {
		return 0, err
	}
	return i.addPrevalidated(rows, dim)
}

// AddFlat ingests rows already in flat row-major form: flat holds
// len(flat)/dim rows of width dim. Validation and atomicity match Add.
func (i *Ingestor) AddFlat(flat []float64, dim int) (int, error) {
	want := i.Dim()
	if want == 0 {
		want = dim
	}
	if err := validateFlat(flat, dim, want); err != nil {
		return 0, err
	}
	return i.addFlatPrevalidated(flat, dim)
}

// addPrevalidated applies a batch whose rows have already passed
// validateRows against dim, taking the ingest lock once. checkDim
// re-verifies the width under the lock — a concurrent first batch may
// have fixed the dimensionality since validation ran.
func (i *Ingestor) addPrevalidated(rows [][]float64, dim int) (int, error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if err := i.checkDim(dim); err != nil {
		return 0, err
	}
	for _, row := range rows {
		i.ingestRow(row)
	}
	return len(rows), nil
}

// addFlatPrevalidated is addPrevalidated over a flat row-major buffer
// that already passed validateFlat.
func (i *Ingestor) addFlatPrevalidated(flat []float64, dim int) (int, error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if err := i.checkDim(dim); err != nil {
		return 0, err
	}
	n := len(flat) / dim
	for r := 0; r < n; r++ {
		i.ingestRow(flat[r*dim : (r+1)*dim])
	}
	return n, nil
}

// checkDim re-verifies, under i.mu, that a batch validated outside the
// lock still matches the ingestor's row width — a concurrent first batch
// may have fixed the dimensionality in between. Callers hold i.mu.
func (i *Ingestor) checkDim(dim int) error {
	if d := int(i.dim.Load()); d != 0 && d != dim {
		return fmt.Errorf("stream: batch has dimension %d, want %d", dim, d)
	}
	return nil
}

// validateRows checks every row for the expected width and finite
// coordinates, rejecting the batch whole on the first bad row.
func validateRows(rows [][]float64, dim int) error {
	for r, row := range rows {
		if err := checkRow(row, dim, r); err != nil {
			return err
		}
	}
	return nil
}

// validateFlat checks a flat row-major buffer: dim divides the length
// and every row of width dim matches the expected width want with
// finite coordinates.
func validateFlat(flat []float64, dim, want int) error {
	if dim <= 0 {
		return fmt.Errorf("stream: dimension %d must be positive", dim)
	}
	if len(flat)%dim != 0 {
		return fmt.Errorf("stream: buffer length %d is not a multiple of dimension %d", len(flat), dim)
	}
	n := len(flat) / dim
	for r := 0; r < n; r++ {
		if err := checkRow(flat[r*dim:(r+1)*dim], want, r); err != nil {
			return err
		}
	}
	return nil
}

func checkRow(row []float64, dim, idx int) error {
	if len(row) == 0 {
		return fmt.Errorf("stream: row %d is empty", idx)
	}
	if len(row) != dim {
		return fmt.Errorf("stream: row %d has dimension %d, want %d", idx, len(row), dim)
	}
	for j, v := range row {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("stream: row %d coordinate %d is %v", idx, j, v)
		}
	}
	return nil
}

// ingestRow applies one validated row. Callers hold i.mu.
func (i *Ingestor) ingestRow(row []float64) {
	if i.dim.Load() == 0 {
		i.dim.Store(int64(len(row)))
		i.buf = points.New(i.capacity, len(row))
	}
	i.seen++
	if i.n < i.capacity {
		copy(i.buf.Row(i.n), row)
		i.n++
		return
	}
	if i.window {
		// Ring overwrite: the slot of the oldest row is (seen-1) mod cap
		// once the buffer is full, because rows land in arrival order.
		copy(i.buf.Row(int((i.seen-1)%int64(i.capacity))), row)
		return
	}
	// Algorithm R: the new row replaces a uniformly random slot with
	// probability capacity/seen.
	if j := i.rng.Int63n(i.seen); j < int64(i.capacity) {
		copy(i.buf.Row(int(j)), row)
	}
}

// Snapshot copies the current sample into a fresh store — the input to a
// retrain, safe to index and keep while ingestion continues — and
// returns the total rows ingested at the moment of the copy. In window
// mode rows are ordered oldest to newest; in reservoir mode, by slot. A
// nil store is returned while the sample is empty.
func (i *Ingestor) Snapshot() (*points.Store, int64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.n == 0 {
		return nil, i.seen
	}
	dim := int(i.dim.Load())
	out := points.New(i.n, dim)
	i.copyNewestLocked(out.Data, i.n)
	return out, i.seen
}

// copyNewestLocked copies the newest m held rows into dst in arrival
// order (oldest of the m first). In reservoir mode slot order is the
// only order there is, so m must equal n; in window mode any suffix of
// the arrival order can be taken. Callers hold i.mu and size dst to
// m*dim.
func (i *Ingestor) copyNewestLocked(dst []float64, m int) {
	dim := int(i.dim.Load())
	if i.window && i.n == i.capacity {
		// Full ring: the slot of the oldest held row is seen mod cap, so
		// arrival rank r lives at slot (head+r) mod cap. The newest m rows
		// are ranks n-m .. n-1, a wrapped contiguous run.
		head := int(i.seen % int64(i.capacity))
		start := (head + i.n - m) % i.capacity
		if start+m <= i.capacity {
			copy(dst, i.buf.Data[start*dim:(start+m)*dim])
			return
		}
		k := copy(dst, i.buf.Data[start*dim:])
		copy(dst[k:], i.buf.Data[:(m-(i.capacity-start))*dim])
		return
	}
	copy(dst, i.buf.Data[(i.n-m)*dim:i.n*dim])
}

// Sample copies at most k uniformly drawn rows of the current sample
// into a fresh store, using a private generator seeded with seed so the
// draw is reproducible and does not perturb reservoir eviction. It is
// the cheap input to the drift probe. Returns nil while empty.
//
// The draw is a sparse Fisher–Yates: only the k displaced slots are
// tracked (in a map), so a k-row probe over an n-row sample allocates
// O(k) instead of the O(n) index permutation it used to materialize —
// see BenchmarkSample. The emitted rows are identical to the dense
// shuffle's for any given seed.
func (i *Ingestor) Sample(k int, seed int64) *points.Store {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.n == 0 || k < 1 {
		return nil
	}
	dim := int(i.dim.Load())
	if k >= i.n {
		out := points.New(i.n, dim)
		copy(out.Data, i.buf.Data[:i.n*dim])
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	out := points.New(k, dim)
	j := 0
	sampleSlots(rng, i.n, k, func(slot int) {
		copy(out.Row(j), i.buf.Row(slot))
		j++
	})
	return out
}

// sampleSlots visits k distinct uniformly drawn slots of [0, n), k ≤ n,
// in draw order. It runs the first k steps of a Fisher–Yates shuffle,
// tracking only displaced slots: a dense map of the whole index space
// is never built, so the allocation cost is O(k) however large n is.
// For draws dense enough that the map would cost more than the
// permutation it avoids, it falls back to the classic array shuffle.
// Both paths consume rng identically (one Intn per draw) and emit the
// same slots for the same seed.
func sampleSlots(rng *rand.Rand, n, k int, visit func(slot int)) {
	if k*4 >= n {
		idx := make([]int, n)
		for j := range idx {
			idx[j] = j
		}
		for j := 0; j < k; j++ {
			l := j + rng.Intn(n-j)
			idx[j], idx[l] = idx[l], idx[j]
			visit(idx[j])
		}
		return
	}
	displaced := make(map[int]int, 2*k)
	slotAt := func(pos int) int {
		if v, ok := displaced[pos]; ok {
			return v
		}
		return pos
	}
	for j := 0; j < k; j++ {
		l := j + rng.Intn(n-j)
		sj, sl := slotAt(j), slotAt(l)
		displaced[l] = sj
		delete(displaced, j) // position j is never probed again
		visit(sl)
	}
}

// Seen returns the total number of rows ever ingested.
func (i *Ingestor) Seen() int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.seen
}

// Len returns the number of rows currently held (≤ Capacity).
func (i *Ingestor) Len() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.n
}

// Dim returns the row width, or 0 before the first row arrives. It is
// one atomic load — the Add fast path reads it before validating a
// batch, so it must not (and does not) touch the ingest mutex.
func (i *Ingestor) Dim() int {
	return int(i.dim.Load())
}

// Capacity returns the sample bound.
func (i *Ingestor) Capacity() int { return i.capacity }

// WindowMode reports whether the ingestor keeps a sliding window rather
// than a reservoir.
func (i *Ingestor) WindowMode() bool { return i.window }

// errEmpty reports a retrain attempted before any rows arrived.
var errEmpty = errors.New("stream: no ingested rows to retrain on")
