// Package points provides the flat point-storage layer shared by every
// stage of the tKDC stack: a contiguous row-major []float64 buffer with a
// fixed row width. The hot loops of the system — per-point kernel
// evaluations during leaf expansion and per-node bound evaluations
// (Algorithm 2) — sweep rows sequentially, so storing the dataset as one
// contiguous allocation instead of a slice of per-row allocations removes
// a pointer chase per point and lets the hardware prefetcher do its job.
//
// A Store is immutable by convention once handed to an index or
// classifier; constructors copy their input, so callers remain free to
// reuse or mutate the source data afterwards.
package points

import (
	"errors"
	"fmt"
	"math"

	"tkdc/internal/matrix"
)

// Store is a flat, contiguous, row-major point set: row i occupies
// Data[i*Dim : (i+1)*Dim]. The zero value is an empty store; use the
// constructors to build populated ones.
type Store struct {
	// Dim is the row width (point dimensionality).
	Dim int
	// Data is the contiguous row-major buffer, len == Len()*Dim.
	Data []float64
}

// New allocates a zeroed store of n rows of width dim.
func New(n, dim int) *Store {
	if n < 0 || dim <= 0 {
		panic(fmt.Sprintf("points: invalid store shape %dx%d", n, dim))
	}
	return &Store{Dim: dim, Data: make([]float64, n*dim)}
}

// FromRows copies a slice-of-rows dataset into flat storage. All rows
// must share the same positive length.
func FromRows(rows [][]float64) (*Store, error) {
	if len(rows) == 0 {
		return nil, errors.New("points: no rows")
	}
	dim := len(rows[0])
	if dim == 0 {
		return nil, errors.New("points: zero-dimensional rows")
	}
	s := New(len(rows), dim)
	for i, row := range rows {
		if len(row) != dim {
			return nil, fmt.Errorf("points: row %d has dimension %d, want %d", i, len(row), dim)
		}
		copy(s.Data[i*dim:(i+1)*dim], row)
	}
	return s, nil
}

// FromFlat copies a pre-flattened row-major buffer into a new store.
// len(flat) must be a positive multiple of dim.
func FromFlat(flat []float64, dim int) (*Store, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("points: dimension %d must be positive", dim)
	}
	if len(flat) == 0 {
		return nil, errors.New("points: no data")
	}
	if len(flat)%dim != 0 {
		return nil, fmt.Errorf("points: buffer length %d is not a multiple of dimension %d", len(flat), dim)
	}
	return &Store{Dim: dim, Data: append([]float64(nil), flat...)}, nil
}

// FromDense copies a matrix.Dense (e.g. a PCA-reduced dataset) into a
// store, one matrix row per point.
func FromDense(m *matrix.Dense) (*Store, error) {
	if m == nil || m.Rows == 0 {
		return nil, errors.New("points: empty matrix")
	}
	if m.Cols == 0 {
		return nil, errors.New("points: zero-dimensional matrix")
	}
	return &Store{Dim: m.Cols, Data: append([]float64(nil), m.Data...)}, nil
}

// Len returns the number of rows.
func (s *Store) Len() int {
	if s == nil || s.Dim == 0 {
		return 0
	}
	return len(s.Data) / s.Dim
}

// Row returns a view (not a copy) of row i.
func (s *Store) Row(i int) []float64 {
	return s.Data[i*s.Dim : (i+1)*s.Dim : (i+1)*s.Dim]
}

// Slab returns the contiguous flat view of rows [lo, hi) — the unit of
// work for batch kernel evaluation over a k-d tree leaf.
func (s *Store) Slab(lo, hi int) []float64 {
	return s.Data[lo*s.Dim : hi*s.Dim]
}

// At returns coordinate j of row i.
func (s *Store) At(i, j int) float64 { return s.Data[i*s.Dim+j] }

// Swap exchanges rows i and j in place.
func (s *Store) Swap(i, j int) {
	if i == j {
		return
	}
	a := s.Row(i)
	b := s.Row(j)
	for k := range a {
		a[k], b[k] = b[k], a[k]
	}
}

// Clone returns a deep copy.
func (s *Store) Clone() *Store {
	return &Store{Dim: s.Dim, Data: append([]float64(nil), s.Data...)}
}

// Rows materializes per-row views (slice headers only, no data copy) for
// interoperating with row-oriented code outside the hot paths.
func (s *Store) Rows() [][]float64 {
	out := make([][]float64, s.Len())
	for i := range out {
		out[i] = s.Row(i)
	}
	return out
}

// CheckFinite scans for NaN or infinite coordinates, returning an error
// locating the first offender.
func (s *Store) CheckFinite() error {
	for i, v := range s.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("points: row %d coordinate %d is %v", i/s.Dim, i%s.Dim, v)
		}
	}
	return nil
}
