package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"tkdc/internal/kdtree"
	"tkdc/internal/kernel"
	"tkdc/internal/points"
	"tkdc/internal/stats"
	"tkdc/internal/telemetry"
)

// thresholdBound is the outcome of Algorithm 3: probabilistic bounds on
// t(p) for the full-dataset KDE, valid with probability ≥ 1−δ.
type thresholdBound struct {
	lo, hi  float64
	rounds  int // bootstrap rounds run (including retries)
	queries QueryStats
	// spans traces each round (including retries): duration, kernel
	// evaluations, and the subsample size it trained on.
	spans []telemetry.Span
}

// boundThreshold is Algorithm 3. It bootstraps bounds on the quantile
// threshold t(p) by training mini-KDEs on geometrically growing
// subsamples: quantile bounds estimated on a small subsample make density
// evaluation on the next, larger subsample cheap, because the pruning
// rules of Algorithm 2 can fire. Bounds that turn out invalid for the
// larger sample are multiplicatively backed off and the round retried.
//
// Each round's score loop fans the sample rows out across
// cfg.Workers goroutines with one private density backend per worker.
// Sampling (the only RNG consumer) stays sequential and each worker
// writes disjoint density slots, so the bounds are bit-identical to a
// single-threaded run; per-worker QueryStats are summed afterwards,
// which is order-independent because the counters are plain sums.
func boundThreshold(data *points.Store, cfg Config, rng *rand.Rand) (thresholdBound, error) {
	n := data.Len()
	res := thresholdBound{lo: 0, hi: math.Inf(1)}
	workers := effectiveWorkers(cfg.Workers)
	spanWorkers := workers
	if spanWorkers < 1 {
		spanWorkers = 1
	}

	r := cfg.R0
	if r > n {
		r = n
	}
	const maxRetriesPerRound = 25
	retries := 0
	// densities is reused across rounds: sEff only grows (up to S0), so
	// the buffer settles after a few rounds instead of reallocating per
	// round.
	var densities []float64
	for {
		res.rounds++
		roundStart := time.Now()
		kernelsBefore := res.queries.Kernels()
		xr := sampleRows(data, r, rng)

		h, err := kernel.ScottBandwidths(xr, cfg.BandwidthFactor)
		if err != nil {
			return res, fmt.Errorf("core: threshold bootstrap bandwidth: %w", err)
		}
		kern, err := newKernel(cfg.Kernel, h)
		if err != nil {
			return res, err
		}
		tree, err := kdtree.Build(xr, kdtree.Options{LeafSize: cfg.LeafSize, Split: cfg.Split, Workers: cfg.Workers})
		if err != nil {
			return res, fmt.Errorf("core: threshold bootstrap index: %w", err)
		}

		sEff := cfg.S0
		if sEff > r {
			sEff = r
		}
		xs := sampleRows(xr, sEff, rng)

		// The bounds live in corrected-density space (Equation 1) while
		// boundDensity prunes on plain densities: shift by the
		// self-contribution so the pruning thresholds and the validity
		// checks below refer to exactly the same quantity. The tolerance
		// target stays ε·t in corrected space.
		selfContrib := kern.AtZero() / float64(r)
		tolCut := cfg.Epsilon * math.Max(res.lo, 0)
		if cap(densities) < sEff {
			densities = make([]float64, sEff)
		}
		densities = densities[:sEff]
		newEst := func() DensityBackend {
			return newQueryBackend(tree, kern, cfg)
		}
		scoreRange := func(est DensityBackend, lo, hi int, qs *QueryStats) {
			for i := lo; i < hi; i++ {
				_, _, f := est.BoundDensity(xs.Row(i), res.lo+selfContrib, res.hi+selfContrib, tolCut, qs)
				densities[i] = f - selfContrib
			}
		}
		if workers < 2 || sEff < 2*workers {
			scoreRange(newEst(), 0, sEff, &res.queries)
		} else {
			var wg sync.WaitGroup
			var mu sync.Mutex
			chunk := (sEff + workers - 1) / workers
			for w := 0; w < workers; w++ {
				lo := w * chunk
				if lo >= sEff {
					break
				}
				hi := lo + chunk
				if hi > sEff {
					hi = sEff
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					var qs QueryStats
					scoreRange(newEst(), lo, hi, &qs)
					mu.Lock()
					res.queries.add(qs)
					mu.Unlock()
				}(lo, hi)
			}
			wg.Wait()
		}
		sort.Float64s(densities)

		res.spans = append(res.spans, telemetry.Span{
			Name:     fmt.Sprintf("bootstrap/round-%02d", res.rounds),
			Duration: time.Since(roundStart),
			Kernels:  res.queries.Kernels() - kernelsBefore,
			Items:    int64(r),
			Workers:  spanWorkers,
		})

		l, u, err := stats.QuantileCIIndices(sEff, cfg.P, cfg.Delta)
		if err != nil {
			return res, fmt.Errorf("core: threshold bootstrap quantile CI: %w", err)
		}
		dl, _ := stats.SortedOrderStatistic(densities, l)
		du, _ := stats.SortedOrderStatistic(densities, u)

		// An order statistic is imprecise only if it fell where a pruning
		// rule could have clipped it: above a finite hi, or below a
		// positive lo (densities are non-negative, so lo ≤ 0 never prunes
		// the low side).
		switch {
		case du > res.hi:
			// Upper bound was too tight for this sample size. Relax past
			// the (over-estimated) order statistic we observed and retry
			// the round — bounds carried between rounds can be off by
			// many orders of magnitude (Section 3.5), so pure
			// multiplicative backoff would need dozens of retries. A
			// non-positive bound cannot be grown multiplicatively; give
			// up on that side entirely.
			res.hi = scaleTowardInf(math.Max(res.hi, du), cfg.HBackoff)
			if res.hi <= 0 || math.IsNaN(res.hi) {
				res.hi = math.Inf(1)
			}
			retries++
		case res.lo > 0 && dl < res.lo:
			res.lo = scaleTowardZero(math.Min(res.lo, dl), cfg.HBackoff)
			retries++
		default:
			if r >= n {
				// Final round ran against the full dataset: dl and du are
				// the 1−δ bounds on t(p) (Section 3.5). In extreme
				// dimensionality the corrected densities can cancel to
				// zero; a non-positive upper bound cannot prune and would
				// poison later passes, so it degrades to +Inf.
				res.lo = dl
				res.hi = du
				if res.hi <= 0 {
					res.hi = math.Inf(1)
				}
				return res, nil
			}
			res.hi = scaleTowardInf(du, cfg.HBuffer)
			if res.hi <= 0 {
				res.hi = math.Inf(1)
			}
			res.lo = scaleTowardZero(dl, cfg.HBuffer)
			retries = 0
			r = int(float64(r) * cfg.HGrowth)
			if r > n {
				r = n
			}
			continue
		}
		if retries > maxRetriesPerRound {
			// Degenerate data can defeat multiplicative backoff (e.g. a
			// previous lo of exactly 0 never shrinks). Fall back to
			// unbounded, which makes the next pass exact but safe.
			res.lo, res.hi = 0, math.Inf(1)
			retries = 0
		}
	}
}

// scaleTowardInf multiplicatively loosens an upper bound (larger for
// positive values, closer to zero for negative ones).
func scaleTowardInf(x, factor float64) float64 {
	if x >= 0 {
		return x * factor
	}
	return x / factor
}

// scaleTowardZero multiplicatively loosens a lower bound (smaller for
// positive values, more negative for negative ones).
func scaleTowardZero(x, factor float64) float64 {
	if x >= 0 {
		return x / factor
	}
	return x * factor
}

// sampleRows draws k rows without replacement into a fresh store using a
// partial Fisher–Yates shuffle over an index array. k is clamped to the
// store's length. The RNG consumption order matches the historical
// slice-of-rows implementation, keeping trained models bit-identical
// across the storage refactor.
func sampleRows(s *points.Store, k int, rng *rand.Rand) *points.Store {
	n := s.Len()
	if k >= n {
		return s.Clone()
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	out := points.New(k, s.Dim)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
		copy(out.Row(i), s.Row(idx[i]))
	}
	return out
}
