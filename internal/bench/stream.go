package bench

import (
	"sort"
	"sync"
	"time"

	"tkdc/internal/core"
	"tkdc/internal/dataset"
	"tkdc/internal/stream"
)

// StreamLifecycle measures what the streaming subsystem promises: query
// latency through the hot-swap Model handle stays flat while ingest
// batches land and background retrains swap generations underneath the
// readers. It runs the same query workload in three regimes — the
// classifier queried directly, the Model handle with no churn, and the
// Model handle under concurrent ingest + continuous retrains — so both
// the handle's overhead (one atomic pointer load) and the cost of churn
// are visible side by side.
func StreamLifecycle(opts Options) ([]Table, error) {
	opts = opts.normalized()
	n := opts.scaled(100_000, 2000)
	data := dataset.Gauss(n, 2, opts.Seed)
	queries := data
	if len(queries) > opts.MaxQueries {
		queries = queries[:opts.MaxQueries]
	}

	clf, err := core.Train(data, opts.config())
	if err != nil {
		return nil, err
	}

	t := Table{
		Title:   "Streaming lifecycle: query latency under ingest + retrain churn",
		Columns: []string{"Regime", "Queries", "p50 us", "p99 us", "p999 us", "Queries/s", "Retrains"},
	}

	// Regime 1: the classifier queried directly — the floor.
	direct, err := measureLatency(queries, func(q []float64) error {
		_, err := clf.Score(q)
		return err
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("direct", fmtCount(float64(len(queries))),
		fmtMicros(direct.p50), fmtMicros(direct.p99), fmtMicros(direct.p999), fmtRate(direct.qps), "-")

	// Regime 2: through the Model handle, nothing churning.
	model := stream.NewModel(clf)
	quiet, err := measureLatency(queries, func(q []float64) error {
		_, err := model.Score(q)
		return err
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("handle/quiet", fmtCount(float64(len(queries))),
		fmtMicros(quiet.p50), fmtMicros(quiet.p99), fmtMicros(quiet.p999), fmtRate(quiet.qps), "-")

	// Regime 3: the full lifecycle — one goroutine feeds drifting batches,
	// another forces back-to-back retrains, and the measured reader
	// queries through the service's live handle the whole time.
	svc, err := stream.NewService(clf, stream.Config{
		Capacity: n,
		Seed:     opts.Seed,
		Prefill:  true,
	})
	if err != nil {
		return nil, err
	}
	defer svc.Close()

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(2)
	go func() { // drifting ingest
		defer churn.Done()
		drift := dataset.Gauss(2048, 2, opts.Seed+1)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			batch := make([][]float64, 64)
			for j := range batch {
				row := drift[(i*64+j)%len(drift)]
				batch[j] = []float64{row[0] + float64(i)*0.01, row[1]}
			}
			if _, err := svc.Ingest(batch); err != nil {
				return
			}
		}
	}()
	go func() { // continuous retrains
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := svc.Retrain(); err != nil {
					return
				}
			}
		}
	}()

	// At small scales the whole query pass can finish before the first
	// background retrain lands; force one so the churn row always reflects
	// at least one generation swap.
	if err := svc.Retrain(); err != nil {
		return nil, err
	}

	live := svc.Model()
	churned, err := measureLatency(queries, func(q []float64) error {
		_, err := live.Score(q)
		return err
	})
	close(stop)
	churn.Wait()
	if err != nil {
		return nil, err
	}
	st := svc.Stats()
	t.AddRow("handle/churn", fmtCount(float64(len(queries))),
		fmtMicros(churned.p50), fmtMicros(churned.p99), fmtMicros(churned.p999), fmtRate(churned.qps),
		fmtCount(float64(st.Retrains)))
	t.Notes = append(t.Notes,
		"churn regime: 64-row drifting batches ingested and retrains forced back-to-back while the reader queries",
		"handle regimes read through one atomic pointer load; a swap mid-run changes the answers, never the latency")

	t.Fprint(opts.Out)

	it, err := shardedIngestTable(opts)
	if err != nil {
		return nil, err
	}
	it.Fprint(opts.Out)
	return []Table{t, *it}, nil
}

// shardedIngestTable measures raw ingest throughput — 64-row batches of
// 2-d rows, no retrains — across concurrent ingester counts for the
// single-lock reservoir (shards=1) and the lock-striped one
// (shards=GOMAXPROCS). On a multi-core host the sharded rows should
// scale near-linearly with ingesters while the single lock stays flat;
// at GOMAXPROCS=1 the pairs should match, which is the no-regression
// floor the CI K=1 guard pins.
func shardedIngestTable(opts Options) (*Table, error) {
	const batchRows = 64
	totalRows := opts.scaled(2_000_000, 100_000)

	t := &Table{
		Title:   "Sharded ingest: concurrent Add throughput by shard count",
		Columns: []string{"Shards", "Ingesters", "Rows", "Rows/s", "ns/row"},
	}
	defaultShards := stream.DefaultShards()
	shardCounts := []int{1}
	if defaultShards > 1 {
		shardCounts = append(shardCounts, defaultShards)
	}
	for _, shards := range shardCounts {
		for _, workers := range []int{1, 4, 8} {
			ing, err := stream.NewShardedIngestor(100_000, 2, opts.Seed, false, shards)
			if err != nil {
				return nil, err
			}
			batches := totalRows / (batchRows * workers)
			if batches < 1 {
				batches = 1
			}
			var wg sync.WaitGroup
			var firstErr error
			var errOnce sync.Once
			start := time.Now()
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					batch := make([][]float64, batchRows)
					rows := dataset.Gauss(batchRows, 2, opts.Seed+int64(w))
					copy(batch, rows)
					for i := 0; i < batches; i++ {
						if _, err := ing.Add(batch); err != nil {
							errOnce.Do(func() { firstErr = err })
							return
						}
					}
				}(w)
			}
			wg.Wait()
			elapsed := time.Since(start).Seconds()
			if firstErr != nil {
				return nil, firstErr
			}
			rows := float64(ing.Seen())
			t.AddRow(fmtCount(float64(shards)), fmtCount(float64(workers)), fmtCount(rows),
				fmtRate(rows/elapsed), fmtRate(elapsed*1e9/rows))
		}
	}
	t.Notes = append(t.Notes,
		"single-process proxy for concurrent /ingest traffic: each ingester pushes 64-row batches as fast as the lock admits",
		"shards=1 is the pre-sharding single-mutex path; the sharded rows stripe batches round-robin over GOMAXPROCS reservoirs")
	return t, nil
}

// latencyStats summarizes one measured query pass.
type latencyStats struct {
	p50, p99, p999 float64 // seconds
	qps            float64
}

// measureLatency times score one query at a time, returning latency
// quantiles and throughput.
func measureLatency(queries [][]float64, score func([]float64) error) (latencyStats, error) {
	lat := make([]float64, len(queries))
	start := time.Now()
	for i, q := range queries {
		qs := time.Now()
		if err := score(q); err != nil {
			return latencyStats{}, err
		}
		lat[i] = time.Since(qs).Seconds()
	}
	total := time.Since(start).Seconds()
	sort.Float64s(lat)
	return latencyStats{
		p50:  lat[len(lat)/2],
		p99:  lat[len(lat)*99/100],
		p999: lat[len(lat)*999/1000],
		qps:  float64(len(lat)) / total,
	}, nil
}

// fmtMicros renders a latency in microseconds.
func fmtMicros(seconds float64) string {
	return fmtRate(seconds * 1e6)
}
