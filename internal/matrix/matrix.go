// Package matrix provides the small dense linear-algebra substrate tKDC's
// evaluation needs: row-major matrices, covariance, a Householder+QL
// eigensolver for symmetric matrices, and PCA.
//
// The paper reduces the 784-dimensional mnist dataset to 64 and 256
// dimensions via PCA before running tKDC (Section 4.1 and Appendix B);
// this package supplies that step without external dependencies.
package matrix

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewDense allocates a zeroed r×c matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %dx%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows copies a slice-of-rows into a Dense matrix. All rows must have
// equal length.
func FromRows(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 {
		return nil, errors.New("matrix: no rows")
	}
	c := len(rows[0])
	m := NewDense(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("matrix: ragged input: row %d has %d columns, want %d", i, len(row), c)
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (not a copy).
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// MulVec computes m·x into a new slice. len(x) must equal m.Cols.
func (m *Dense) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("matrix: MulVec dimension mismatch: %d vs %d", len(x), m.Cols))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		sum := 0.0
		for j, v := range row {
			sum += v * x[j]
		}
		out[i] = sum
	}
	return out
}

// Covariance returns the d×d sample covariance matrix (dividing by n) of a
// row-major dataset along with its column means.
func Covariance(rows [][]float64) (cov *Dense, means []float64, err error) {
	if len(rows) == 0 {
		return nil, nil, errors.New("matrix: covariance of empty dataset")
	}
	d := len(rows[0])
	means = make([]float64, d)
	for i, row := range rows {
		if len(row) != d {
			return nil, nil, fmt.Errorf("matrix: ragged input: row %d has %d columns, want %d", i, len(row), d)
		}
		for j, v := range row {
			means[j] += v
		}
	}
	n := float64(len(rows))
	for j := range means {
		means[j] /= n
	}
	cov = NewDense(d, d)
	centered := make([]float64, d)
	for _, row := range rows {
		for j, v := range row {
			centered[j] = v - means[j]
		}
		for a := 0; a < d; a++ {
			ca := centered[a]
			base := a * d
			for b := a; b < d; b++ {
				cov.Data[base+b] += ca * centered[b]
			}
		}
	}
	inv := 1 / n
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			v := cov.Data[a*d+b] * inv
			cov.Data[a*d+b] = v
			cov.Data[b*d+a] = v
		}
	}
	return cov, means, nil
}

// SymEigen computes the eigendecomposition of a symmetric matrix via
// Householder tridiagonalization followed by the implicit-shift QL
// algorithm (the classic tred2/tqli pair). It returns eigenvalues in
// descending order and the matching unit eigenvectors as the rows of the
// returned matrix.
//
// The input must be square and symmetric; asymmetry beyond a small
// tolerance is an error. The cost is O(d³) with a small constant,
// comfortably handling the d = 784 covariance matrices of the mnist PCA
// reduction.
func SymEigen(a *Dense) (values []float64, vectors *Dense, err error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("matrix: SymEigen of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	// Verify symmetry relative to the matrix scale.
	scale := 0.0
	for _, v := range a.Data {
		scale = math.Max(scale, math.Abs(v))
	}
	tol := 1e-9 * math.Max(scale, 1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a.At(i, j)-a.At(j, i)) > tol {
				return nil, nil, fmt.Errorf("matrix: SymEigen requires symmetry; a[%d,%d]=%g a[%d,%d]=%g", i, j, a.At(i, j), j, i, a.At(j, i))
			}
		}
	}

	// z starts as a copy of a; tred2 leaves the accumulated Householder
	// transform in it, and tqli rotates it into the eigenvector matrix
	// (column k = k-th eigenvector).
	z := NewDense(n, n)
	copy(z.Data, a.Data)
	d := make([]float64, n) // diagonal
	e := make([]float64, n) // off-diagonal
	tred2(z, d, e)
	if err := tqli(d, e, z); err != nil {
		return nil, nil, err
	}

	// Sort by descending eigenvalue, emitting eigenvectors as rows.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return d[idx[i]] > d[idx[j]] })
	values = make([]float64, n)
	vectors = NewDense(n, n)
	for k, src := range idx {
		values[k] = d[src]
		for row := 0; row < n; row++ {
			vectors.Set(k, row, z.At(row, src))
		}
	}
	return values, vectors, nil
}

// tred2 reduces the symmetric matrix held in z to tridiagonal form by
// Householder reflections, accumulating the orthogonal transform back
// into z. On return d holds the diagonal and e the sub-diagonal
// (e[0] = 0). Adapted from the standard tred2 routine.
func tred2(z *Dense, d, e []float64) {
	n := z.Rows
	for i := n - 1; i >= 1; i-- {
		l := i - 1
		h, sc := 0.0, 0.0
		if l > 0 {
			for k := 0; k <= l; k++ {
				sc += math.Abs(z.At(i, k))
			}
			if sc == 0 {
				e[i] = z.At(i, l)
			} else {
				for k := 0; k <= l; k++ {
					v := z.At(i, k) / sc
					z.Set(i, k, v)
					h += v * v
				}
				f := z.At(i, l)
				g := math.Sqrt(h)
				if f >= 0 {
					g = -g
				}
				e[i] = sc * g
				h -= f * g
				z.Set(i, l, f-g)
				f = 0
				for j := 0; j <= l; j++ {
					z.Set(j, i, z.At(i, j)/h)
					g = 0
					for k := 0; k <= j; k++ {
						g += z.At(j, k) * z.At(i, k)
					}
					for k := j + 1; k <= l; k++ {
						g += z.At(k, j) * z.At(i, k)
					}
					e[j] = g / h
					f += e[j] * z.At(i, j)
				}
				hh := f / (h + h)
				for j := 0; j <= l; j++ {
					f = z.At(i, j)
					g = e[j] - hh*f
					e[j] = g
					for k := 0; k <= j; k++ {
						z.Set(j, k, z.At(j, k)-f*e[k]-g*z.At(i, k))
					}
				}
			}
		} else {
			e[i] = z.At(i, l)
		}
		d[i] = h
	}
	d[0] = 0
	e[0] = 0
	for i := 0; i < n; i++ {
		l := i - 1
		if d[i] != 0 {
			for j := 0; j <= l; j++ {
				g := 0.0
				for k := 0; k <= l; k++ {
					g += z.At(i, k) * z.At(k, j)
				}
				for k := 0; k <= l; k++ {
					z.Set(k, j, z.At(k, j)-g*z.At(k, i))
				}
			}
		}
		d[i] = z.At(i, i)
		z.Set(i, i, 1)
		for j := 0; j <= l; j++ {
			z.Set(j, i, 0)
			z.Set(i, j, 0)
		}
	}
}

// tqli diagonalizes a symmetric tridiagonal matrix (diagonal d,
// sub-diagonal e) with implicit-shift QL iterations, rotating the
// eigenvector accumulator z alongside. Adapted from the standard tqli
// routine.
func tqli(d, e []float64, z *Dense) error {
	n := len(d)
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0
	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			if iter == 50 {
				return errors.New("matrix: tqli failed to converge in 50 iterations")
			}
			var m int
			for m = l; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m])+dd == dd {
					break
				}
			}
			if m == l {
				break
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				for k := 0; k < z.Rows; k++ {
					f := z.At(k, i+1)
					z.Set(k, i+1, s*z.At(k, i)+c*f)
					z.Set(k, i, c*z.At(k, i)-s*f)
				}
			}
			if r == 0 && m-1 >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	return nil
}
