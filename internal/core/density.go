package core

import (
	"time"

	"tkdc/internal/kdtree"
	"tkdc/internal/kernel"
	"tkdc/internal/points"
	"tkdc/internal/telemetry"
)

// QueryStats counts the work one density query performed.
type QueryStats struct {
	// PointKernels counts kernel evaluations against individual training
	// points (leaf expansion).
	PointKernels int64
	// BoundKernels counts kernel evaluations against bounding boxes (two
	// per node considered).
	BoundKernels int64
	// NodesVisited counts k-d tree nodes popped from the priority queue.
	NodesVisited int64
	// SamplingRounds and SampledPoints count the sampling backend's
	// far-field rounds and sample draws (zero on the tree backend).
	SamplingRounds int64
	SampledPoints  int64
	// GridHit records whether the hypergrid cache answered the query
	// before any tree traversal.
	GridHit bool
	// Trace, when non-nil, collects the query's typed stage records. The
	// backends only touch it behind nil checks, so the untraced path
	// carries a nil pointer and nothing else.
	Trace *telemetry.QueryTrace
}

// Kernels returns the total kernel evaluations, point and bound combined —
// the quantity Figures 12 and 16 report as "Kernel Evaluations / pt".
func (q QueryStats) Kernels() int64 { return q.PointKernels + q.BoundKernels }

func (q *QueryStats) add(o QueryStats) {
	q.PointKernels += o.PointKernels
	q.BoundKernels += o.BoundKernels
	q.NodesVisited += o.NodesVisited
	q.SamplingRounds += o.SamplingRounds
	q.SampledPoints += o.SampledPoints
	if o.GridHit {
		q.GridHit = true
	}
}

// heapItem is one k-d tree arena node awaiting refinement, with its
// current contribution to the density bounds. Nodes are referenced by
// int32 arena id — the heap is a dense slice of small value structs, no
// pointers for the collector to trace or the traversal to chase.
type heapItem struct {
	wlo float64 // minimum contribution: count/n · K(d_max)
	whi float64 // maximum contribution: count/n · K(d_min)
	pri float64 // whi − wlo, precomputed once at push
	id  int32   // arena node id
}

// refineHeap is a max-heap on whi−wlo (scaled by the node's count via the
// weights themselves), prioritizing the node with the largest potential to
// tighten the total bound (Section 3.4).
type refineHeap struct {
	items []heapItem
}

func (h *refineHeap) len() int { return len(h.items) }

func (h *refineHeap) push(it heapItem) {
	it.pri = it.whi - it.wlo
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].pri >= h.items[i].pri {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *refineHeap) pop() heapItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(h.items) && h.items[l].pri > h.items[largest].pri {
			largest = l
		}
		if r < len(h.items) && h.items[r].pri > h.items[largest].pri {
			largest = r
		}
		if largest == i {
			return top
		}
		h.items[i], h.items[largest] = h.items[largest], h.items[i]
		i = largest
	}
}

// densityEstimator bounds kernel densities over one index. It is the
// reusable engine behind both the classifier and the threshold bootstrap.
// Not safe for concurrent use: callers create one per goroutine (the
// underlying tree and kernel are shared and immutable).
type densityEstimator struct {
	tree  *kdtree.Tree
	kern  kernel.Kernel
	gauss *kernel.Gaussian // non-nil when kern is Gaussian: devirtualized hot path
	invH2 []float64
	n     float64
	heap  refineHeap

	disableThreshold bool
	disableTolerance bool
}

func newDensityEstimator(tree *kdtree.Tree, kern kernel.Kernel, disableThreshold, disableTolerance bool) *densityEstimator {
	g, _ := kern.(*kernel.Gaussian)
	return &densityEstimator{
		tree:             tree,
		kern:             kern,
		gauss:            g,
		invH2:            kern.InvBandwidthsSq(),
		n:                float64(tree.Size),
		disableThreshold: disableThreshold,
		disableTolerance: disableTolerance,
	}
}

// weights returns the minimum and maximum possible density contribution
// of an arena node's region to a query at x (Equation 6). One fused
// sweep over the node's box produces both distance bounds.
func (e *densityEstimator) weights(id int32, x []float64) (wlo, whi float64) {
	frac := float64(e.tree.Count(id)) / e.n
	dmin, dmax := e.tree.BoundsSqDist(id, x, e.invH2)
	// The default Gaussian gets a direct (inlinable) call: its truncation
	// and peak fast paths then cost a compare instead of an interface
	// dispatch, and this is the single hottest call site of a query.
	if g := e.gauss; g != nil {
		wlo = frac * g.FromScaledSqDist(dmax)
		whi = frac * g.FromScaledSqDist(dmin)
		return wlo, whi
	}
	wlo = frac * e.kern.FromScaledSqDist(dmax)
	whi = frac * e.kern.FromScaledSqDist(dmin)
	return wlo, whi
}

// boundDensity is Algorithm 2: it refines density bounds for x until a
// pruning rule fires or the tree is exhausted, returning certified bounds
// fl ≤ f(x) ≤ fu.
//
// The threshold rule stops once fl > tu or fu < tl — the classification
// is already decided. The tolerance rule stops once fu − fl < tolCut —
// the estimate is as precise as approximate classification requires
// (callers pass ε·t). With both rules disabled the traversal computes
// the density exactly (up to floating point), which is the
// factor-analysis baseline of Figure 12.
func (e *densityEstimator) boundDensity(x []float64, tl, tu, tolCut float64, stats *QueryStats) (fl, fu float64) {
	tr := stats.Trace
	var stageStart time.Time
	var nodes0, pts0, bounds0 int64
	var pushes int64
	var maxID int32
	if tr != nil {
		stageStart = time.Now()
		nodes0, pts0, bounds0 = stats.NodesVisited, stats.PointKernels, stats.BoundKernels
	}

	e.heap.items = e.heap.items[:0]
	t := e.tree

	wlo, whi := e.weights(0, x)
	stats.BoundKernels += 2
	fl, fu = wlo, whi
	e.heap.push(heapItem{id: 0, wlo: wlo, whi: whi})

	for e.heap.len() > 0 {
		if !e.disableThreshold {
			if fl > tu || fu < tl {
				break
			}
		}
		if !e.disableTolerance && fu-fl < tolCut {
			break
		}

		cur := e.heap.pop()
		stats.NodesVisited++
		fl -= cur.wlo
		fu -= cur.whi

		left, right := t.Children(cur.id)
		if left < 0 {
			// One contiguous sweep over the leaf's flat row range.
			sum := kernel.Sum(e.kern, x, t.LeafFlat(cur.id))
			stats.PointKernels += int64(t.Count(cur.id))
			sum /= e.n
			fl += sum
			fu += sum
			continue
		}
		for _, child := range [2]int32{left, right} {
			cwlo, cwhi := e.weights(child, x)
			stats.BoundKernels += 2
			if cwhi == 0 {
				// The whole subtree is beyond the kernel's truncation
				// radius: it can never contribute, so skip the heap.
				continue
			}
			fl += cwlo
			fu += cwhi
			e.heap.push(heapItem{id: child, wlo: cwlo, whi: cwhi})
			if tr != nil {
				pushes++
				if child > maxID {
					maxID = child
				}
			}
		}
	}
	// Guard against floating-point drift pushing the bounds negative or
	// inverting them.
	if fl < 0 {
		fl = 0
	}
	if fu < fl {
		fu = fl
	}
	if tr != nil {
		// BFS ids grow with depth, so the largest id pushed marks the
		// deepest level the refinement reached.
		tr.AddStage(telemetry.TraceStage{
			Name:     "tree/refine",
			Duration: time.Since(stageStart),
			Nodes:    stats.NodesVisited - nodes0,
			Pushes:   pushes,
			Points:   stats.PointKernels - pts0,
			Bounds:   stats.BoundKernels - bounds0,
			Depth:    t.Depth(maxID),
			Lower:    fl,
			Upper:    fu,
			Band:     fu - fl,
		})
	}
	return fl, fu
}

// estimateDensity computes the density with bounds tightened to a target
// relative precision (fu − fl ≤ rel·fl) regardless of any threshold,
// exhausting the tree if necessary. This is the tolerance-only traversal
// of Gray & Moore used by the nocut baseline and by callers that need
// density values rather than classifications.
func (e *densityEstimator) estimateDensity(x []float64, rel float64, stats *QueryStats) (fl, fu float64) {
	tr := stats.Trace
	var stageStart time.Time
	var nodes0, pts0, bounds0 int64
	var pushes int64
	var maxID int32
	if tr != nil {
		stageStart = time.Now()
		nodes0, pts0, bounds0 = stats.NodesVisited, stats.PointKernels, stats.BoundKernels
	}

	e.heap.items = e.heap.items[:0]
	t := e.tree

	wlo, whi := e.weights(0, x)
	stats.BoundKernels += 2
	fl, fu = wlo, whi
	e.heap.push(heapItem{id: 0, wlo: wlo, whi: whi})

	for e.heap.len() > 0 {
		if rel > 0 && fu-fl <= rel*fl {
			break
		}
		cur := e.heap.pop()
		stats.NodesVisited++
		fl -= cur.wlo
		fu -= cur.whi
		left, right := t.Children(cur.id)
		if left < 0 {
			// One contiguous sweep over the leaf's flat row range.
			sum := kernel.Sum(e.kern, x, t.LeafFlat(cur.id))
			stats.PointKernels += int64(t.Count(cur.id))
			sum /= e.n
			fl += sum
			fu += sum
			continue
		}
		for _, child := range [2]int32{left, right} {
			cwlo, cwhi := e.weights(child, x)
			stats.BoundKernels += 2
			if cwhi == 0 {
				// The whole subtree is beyond the kernel's truncation
				// radius: it can never contribute, so skip the heap.
				continue
			}
			fl += cwlo
			fu += cwhi
			e.heap.push(heapItem{id: child, wlo: cwlo, whi: cwhi})
			if tr != nil {
				pushes++
				if child > maxID {
					maxID = child
				}
			}
		}
	}
	if fl < 0 {
		fl = 0
	}
	if fu < fl {
		fu = fl
	}
	if tr != nil {
		tr.AddStage(telemetry.TraceStage{
			Name:     "tree/estimate",
			Duration: time.Since(stageStart),
			Nodes:    stats.NodesVisited - nodes0,
			Pushes:   pushes,
			Points:   stats.PointKernels - pts0,
			Bounds:   stats.BoundKernels - bounds0,
			Depth:    t.Depth(maxID),
			Lower:    fl,
			Upper:    fu,
			Band:     fu - fl,
		})
	}
	return fl, fu
}

// exactDensity sums every kernel contribution directly (the "simple"
// baseline's inner loop, also used by tests as ground truth).
func exactDensity(pts *points.Store, kern kernel.Kernel, x []float64) float64 {
	return kernel.Sum(kern, x, pts.Data) / float64(pts.Len())
}
