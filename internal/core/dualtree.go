package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"tkdc/internal/telemetry"
)

// ClassifyAllDualTree labels a batch of query points using a dual-tree
// strategy — the future-work direction the paper sketches in Section 5.
// Queries are grouped spatially; for each group, a single traversal of
// the data index computes density bounds that hold for every query in
// the group at once (using box-to-box distances). A group whose
// collective bounds clear the threshold is classified in one shot;
// groups that straddle it split recursively, with small groups falling
// back to per-query classification.
//
// The result is label-compatible with Score/ClassifyAll under the
// approximate-classification contract (Problem 1): points with densities
// farther than ε·t from the threshold receive identical labels. On dense
// evaluation grids — the rendering workloads of Figures 1 and 2 — the
// grouping removes ~25–35% of kernel evaluations; queries near the
// decision contour still require individual traversals, which bounds the
// achievable gain (and is why the paper lists dual-tree integration as
// future work rather than a core optimization).
func (c *Classifier) ClassifyAllDualTree(points [][]float64) ([]Label, error) {
	for i, x := range points {
		if err := c.checkQuery(x); err != nil {
			return nil, fmt.Errorf("core: query %d: %w", i, err)
		}
	}
	// The group pass works on flat row-major storage (the coalescer's
	// native format); slice-of-rows callers pay one copy here.
	flat := make([]float64, 0, len(points)*c.dim)
	for _, x := range points {
		flat = append(flat, x...)
	}
	return c.classifyDualTreeFlat(flat, len(points)), nil
}

// classifyDualTreeFlat is the dual-tree pass over a validated flat
// batch. Sampling-backend classifiers have no box-to-box bounds and
// serve the batch through the per-query sweep instead.
func (c *Classifier) classifyDualTreeFlat(flat []float64, n int) []Label {
	if n == 0 {
		return []Label{}
	}
	traced := c.rec.Enabled()
	var start time.Time
	if traced {
		start = time.Now()
	}
	be := c.getEstimator()
	est, ok := be.(*densityEstimator)
	if !ok {
		// Group certification is built on box-to-box distance bounds,
		// which only the tree backend provides; other backends serve the
		// batch through the per-query path.
		c.putEstimator(be)
		return c.classifyFlatChecked(flat, n)
	}
	defer c.putEstimator(est)
	out := make([]Label, n)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var tr *telemetry.QueryTrace
	if traced && c.sink != nil && c.sink.TraceEnabled() {
		tr = c.sink.StartTrace()
	}
	g := &groupClassifier{c: c, est: est, flat: flat, dim: c.dim, out: out}
	g.classify(idx, 0)
	c.counters.add(int64(n), g.gridHits, g.stats)
	if traced {
		lat := time.Since(start)
		if tr != nil {
			// One flight record covers the whole batch: per-query latency
			// is meaningless when a single traversal answers a group, so
			// the stages attribute queries to the certified-group and
			// per-query-fallback regimes instead.
			tr.Start = start
			tr.Latency = lat
			tr.Kind = "dualtree"
			tr.Backend = BackendTree
			tr.Threshold = c.threshold
			tr.Certified = true
			tr.PointKernels = g.stats.PointKernels
			tr.BoundKernels = g.stats.BoundKernels
			tr.Nodes = g.stats.NodesVisited
			tr.Items = int64(n)
			tr.AddStage(telemetry.TraceStage{
				Name:    "groups/certified",
				Groups:  g.certGroups,
				Queries: g.certQueries,
			})
			tr.AddStage(telemetry.TraceStage{
				Name:    "groups/fallback",
				Queries: g.fallbackQueries,
			})
			c.sink.FinishTrace(tr)
		}
		c.rec.RecordSpan(telemetry.Span{
			Name:     "dualtree/batch",
			Duration: lat,
			Kernels:  g.stats.Kernels(),
			Items:    int64(n),
		})
	}
	return out
}

// groupClassifier carries the shared state of one dual-tree pass.
// Queries live in flat row-major storage; row(i) views query i.
type groupClassifier struct {
	c        *Classifier
	est      *densityEstimator
	flat     []float64
	dim      int
	out      []Label
	stats    QueryStats
	gridHits int64
	// certGroups/certQueries count groups certified in one traversal and
	// the queries they answered; fallbackQueries counts individual
	// per-query traversals (flight-record attribution).
	certGroups      int64
	certQueries     int64
	fallbackQueries int64
}

// row returns query i as a dim-length view into the flat buffer.
func (g *groupClassifier) row(i int) []float64 {
	return g.flat[i*g.dim : (i+1)*g.dim]
}

// groupLeafSize is the group size at which the pass falls back to
// per-query traversal.
const groupLeafSize = 8

// groupNodeBudget caps the data nodes expanded per group attempt before
// splitting the group; generous enough to certify homogeneous regions,
// small enough not to waste work on straddling ones.
const groupNodeBudget = 16

func (g *groupClassifier) classify(idx []int, depth int) {
	if len(idx) == 0 {
		return
	}
	if len(idx) == 1 {
		g.out[idx[0]] = g.scoreOne(g.row(idx[0]))
		return
	}

	lo, hi := g.queryBox(idx)
	// Only attempt a group traversal once the box has shrunk to roughly
	// bandwidth scale: wider boxes straddle density levels by
	// construction, so certifying them wastes the traversal. The gate
	// compares the box diagonal to the kernel bandwidth per dimension.
	diagSq := 0.0
	for j := range lo {
		w := hi[j] - lo[j]
		diagSq += w * w * g.est.invH2[j]
	}
	if diagSq <= float64(len(lo)) {
		if label, ok := g.certify(lo, hi); ok {
			g.certGroups++
			g.certQueries += int64(len(idx))
			for _, i := range idx {
				g.out[i] = label
			}
			return
		}
	}
	if len(idx) <= groupLeafSize {
		g.fallback(idx)
		return
	}

	// Split the group along its widest extent at the median.
	dim := 0
	for j := 1; j < len(lo); j++ {
		if hi[j]-lo[j] > hi[dim]-lo[dim] {
			dim = j
		}
	}
	if hi[dim] == lo[dim] {
		// All queries identical: one traversal answers them all.
		label := g.scoreOne(g.row(idx[0]))
		g.certQueries += int64(len(idx) - 1)
		for _, i := range idx {
			g.out[i] = label
		}
		return
	}
	// Partition around the spatial midpoint in O(m): cheaper than a
	// median sort and yields better-shaped boxes.
	split := 0.5 * (lo[dim] + hi[dim])
	i, j := 0, len(idx)-1
	for i <= j {
		if g.row(idx[i])[dim] < split {
			i++
		} else {
			idx[i], idx[j] = idx[j], idx[i]
			j--
		}
	}
	if i == 0 || i == len(idx) {
		// Degenerate partition (duplicates piled at one end): fall back
		// to a rank split.
		sort.Slice(idx, func(a, b int) bool {
			return g.row(idx[a])[dim] < g.row(idx[b])[dim]
		})
		i = len(idx) / 2
	}
	g.classify(idx[:i], depth+1)
	g.classify(idx[i:], depth+1)
}

func (g *groupClassifier) fallback(idx []int) {
	for _, i := range idx {
		g.out[i] = g.scoreOne(g.row(i))
	}
}

// scoreOne mirrors Classifier.Score's decision using the shared estimator
// and aggregated stats.
func (g *groupClassifier) scoreOne(x []float64) Label {
	g.fallbackQueries++
	c := g.c
	if c.grid != nil {
		if lb := c.grid.LowerBoundDensity(x, c.gridKDiag); lb > c.threshold {
			g.stats.GridHit = true
			g.gridHits++
			return High
		}
	}
	fl, fu := g.est.boundDensity(x, c.threshold, c.threshold, c.cfg.Epsilon*c.threshold, &g.stats)
	if 0.5*(fl+fu) > c.threshold {
		return High
	}
	return Low
}

func (g *groupClassifier) queryBox(idx []int) (lo, hi []float64) {
	d := g.c.dim
	lo = append([]float64(nil), g.row(idx[0])...)
	hi = append([]float64(nil), g.row(idx[0])...)
	for _, i := range idx[1:] {
		p := g.row(i)
		for j := 0; j < d; j++ {
			if p[j] < lo[j] {
				lo[j] = p[j]
			}
			if p[j] > hi[j] {
				hi[j] = p[j]
			}
		}
	}
	return lo, hi
}

// certify attempts to classify every query inside box [lo, hi] with one
// traversal. It maintains bounds valid for all queries simultaneously:
// the lower bound uses the farthest box-to-box distance, the upper bound
// the nearest. Certification succeeds when the collective bounds clear
// the threshold.
func (g *groupClassifier) certify(lo, hi []float64) (Label, bool) {
	est := g.est
	// Problem 1 leaves labels unconstrained inside the ±ε·t band, so a
	// group may be certified HIGH once every member's density provably
	// exceeds t·(1−ε), and LOW once it is provably under t·(1+ε) — the
	// same latitude the per-query midpoint rule enjoys.
	tLo := g.c.threshold * (1 - g.c.cfg.Epsilon)
	tHi := g.c.threshold * (1 + g.c.cfg.Epsilon)
	est.heap.items = est.heap.items[:0]

	wlo, whi := g.groupWeights(lo, hi, est, 0)
	fl, fu := wlo, whi
	est.heap.push(heapItem{id: 0, wlo: wlo, whi: whi})

	for budget := groupNodeBudget; est.heap.len() > 0 && budget > 0; budget-- {
		if fl > tLo {
			return High, true
		}
		if fu < tHi {
			return Low, true
		}
		cur := est.heap.pop()
		g.stats.NodesVisited++
		fl -= cur.wlo
		fu -= cur.whi
		left, right := est.tree.Children(cur.id)
		if left < 0 {
			// Refine a leaf by scoring its points individually against
			// the query box (point-to-box distances) — the tightest bound
			// available while the query side stays a box. The leaf is one
			// contiguous flat sweep.
			var sumLo, sumHi float64
			leaf := est.tree.LeafFlat(cur.id)
			d := est.tree.Dim
			for off := 0; off < len(leaf); off += d {
				p := leaf[off : off+d]
				dminSq, dmaxSq := 0.0, 0.0
				for j := range p {
					inv := est.invH2[j]
					var gap float64
					switch {
					case p[j] > hi[j]:
						gap = p[j] - hi[j]
					case p[j] < lo[j]:
						gap = lo[j] - p[j]
					}
					dminSq += gap * gap * inv
					far := math.Max(p[j]-lo[j], hi[j]-p[j])
					dmaxSq += far * far * inv
				}
				sumLo += est.kern.FromScaledSqDist(dmaxSq)
				sumHi += est.kern.FromScaledSqDist(dminSq)
			}
			g.stats.PointKernels += 2 * int64(est.tree.Count(cur.id))
			fl += sumLo / est.n
			fu += sumHi / est.n
			continue
		}
		for _, child := range [2]int32{left, right} {
			cwlo, cwhi := g.groupWeights(lo, hi, est, child)
			if cwhi == 0 {
				continue
			}
			fl += cwlo
			fu += cwhi
			est.heap.push(heapItem{id: child, wlo: cwlo, whi: cwhi})
		}
	}
	switch {
	case fl > tLo:
		return High, true
	case fu < tHi:
		return Low, true
	default:
		return Low, false
	}
}

// groupWeights bounds a data node's density contribution for every query
// in box [qlo, qhi] at once. The node's box is read straight from the
// arena's box slab.
func (g *groupClassifier) groupWeights(qlo, qhi []float64, est *densityEstimator, id int32) (wlo, whi float64) {
	nlo, nhi := est.tree.Box(id)
	minSq, maxSq := 0.0, 0.0
	for j := range qlo {
		inv := est.invH2[j]
		// Nearest gap between the intervals [qlo, qhi] and [Min, Max].
		var gap float64
		switch {
		case nlo[j] > qhi[j]:
			gap = nlo[j] - qhi[j]
		case qlo[j] > nhi[j]:
			gap = qlo[j] - nhi[j]
		}
		minSq += gap * gap * inv
		// Farthest distance between the intervals.
		far := math.Max(nhi[j]-qlo[j], qhi[j]-nlo[j])
		maxSq += far * far * inv
	}
	g.stats.BoundKernels += 2
	frac := float64(est.tree.Count(id)) / est.n
	wlo = frac * est.kern.FromScaledSqDist(maxSq)
	whi = frac * est.kern.FromScaledSqDist(minSq)
	return wlo, whi
}
