package telemetry

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// fileTrace builds and files one synthetic trace through the recorder,
// returning it for assertions.
func fileTrace(f *FlightRecorder, lat time.Duration, straddle bool) *QueryTrace {
	t := f.StartTrace()
	t.Kind = "score"
	t.Backend = "tree"
	t.Latency = lat
	t.Straddle = straddle
	f.FinishTrace(t)
	return t
}

func TestFlightRecorderSlowestRetention(t *testing.T) {
	f := NewFlightRecorder(FlightOptions{K: 8})
	// File 100 traces with strictly increasing latency: the slowest 8 are
	// exactly the last 8 filed.
	for i := 1; i <= 100; i++ {
		fileTrace(f, time.Duration(i)*time.Microsecond, false)
	}
	snap := f.Snapshot()
	if snap.Traced != 100 {
		t.Fatalf("Traced = %d, want 100", snap.Traced)
	}
	if len(snap.Slowest) != 8 {
		t.Fatalf("Slowest holds %d traces, want 8", len(snap.Slowest))
	}
	for i, tr := range snap.Slowest {
		want := time.Duration(100-i) * time.Microsecond
		if tr.Latency != want {
			t.Fatalf("Slowest[%d].Latency = %v, want %v (slowest-first order)", i, tr.Latency, want)
		}
	}
}

func TestFlightRecorderRecentRetention(t *testing.T) {
	f := NewFlightRecorder(FlightOptions{K: 8})
	for i := 0; i < 50; i++ {
		fileTrace(f, time.Microsecond, false)
	}
	snap := f.Snapshot()
	if len(snap.Recent) != 8 {
		t.Fatalf("Recent holds %d traces, want 8", len(snap.Recent))
	}
	// Newest-first: IDs 50..43 (StartTrace issues IDs from 1).
	for i, tr := range snap.Recent {
		if want := uint64(50 - i); tr.ID != want {
			t.Fatalf("Recent[%d].ID = %d, want %d", i, tr.ID, want)
		}
	}
}

func TestFlightRecorderStraddleRing(t *testing.T) {
	f := NewFlightRecorder(FlightOptions{K: 8})
	for i := 0; i < 30; i++ {
		fileTrace(f, time.Microsecond, i%3 == 0) // 10 straddlers
	}
	snap := f.Snapshot()
	if snap.Straddled != 10 {
		t.Fatalf("Straddled = %d, want 10", snap.Straddled)
	}
	if len(snap.Straddling) != 8 {
		t.Fatalf("Straddling holds %d traces, want 8 (ring capacity)", len(snap.Straddling))
	}
	for i, tr := range snap.Straddling {
		if !tr.Straddle {
			t.Fatalf("Straddling[%d] is not a straddler", i)
		}
		if i > 0 && tr.ID >= snap.Straddling[i-1].ID {
			t.Fatalf("Straddling not newest-first at %d", i)
		}
	}
}

func TestFlightRecorderSlowLog(t *testing.T) {
	var buf bytes.Buffer
	f := NewFlightRecorder(FlightOptions{
		K:             8,
		SlowThreshold: time.Millisecond,
		Logger:        slog.New(slog.NewTextHandler(&buf, nil)),
	})
	fileTrace(f, 100*time.Microsecond, false) // fast: not logged
	fileTrace(f, 5*time.Millisecond, false)   // slow: logged
	snap := f.Snapshot()
	if snap.SlowLogged != 1 {
		t.Fatalf("SlowLogged = %d, want 1", snap.SlowLogged)
	}
	out := buf.String()
	if !strings.Contains(out, "slow query") || !strings.Contains(out, "trace_id=2") {
		t.Fatalf("slow log missing expected fields:\n%s", out)
	}
	if strings.Count(out, "slow query") != 1 {
		t.Fatalf("want exactly one slow-query line:\n%s", out)
	}
}

func TestFlightRecorderDisabled(t *testing.T) {
	f := NewFlightRecorder(FlightOptions{K: 8})
	f.SetEnabled(false)
	if f.TraceEnabled() {
		t.Fatal("TraceEnabled after SetEnabled(false)")
	}
	fileTrace(f, time.Microsecond, true)
	snap := f.Snapshot()
	if snap.Traced != 0 || len(snap.Recent) != 0 || len(snap.Straddling) != 0 {
		t.Fatalf("disabled recorder retained traces: %+v", snap)
	}
	// FinishTrace(nil) must be a no-op, not a panic.
	f.SetEnabled(true)
	f.FinishTrace(nil)
}

func TestFlightRecorderKRoundsUpToShardMultiple(t *testing.T) {
	f := NewFlightRecorder(FlightOptions{K: 5})
	if snap := f.Snapshot(); snap.K != 8 {
		t.Fatalf("K = %d, want 8 (rounded up to shard multiple)", snap.K)
	}
	if f := NewFlightRecorder(FlightOptions{}); f.Snapshot().K != DefaultTraceK {
		t.Fatalf("default K = %d, want %d", f.Snapshot().K, DefaultTraceK)
	}
}

func TestRegistryTraceSinkGating(t *testing.T) {
	r := NewRegistry()
	if r.TraceEnabled() {
		t.Fatal("TraceEnabled with no flight recorder attached")
	}
	if r.StartTrace() != nil {
		t.Fatal("StartTrace with no recorder should return nil")
	}
	r.FinishTrace(nil) // must not panic

	f := NewFlightRecorder(FlightOptions{K: 8})
	r.AttachFlightRecorder(f)
	if !r.TraceEnabled() {
		t.Fatal("TraceEnabled false with enabled recorder attached")
	}
	if r.Flight() != f {
		t.Fatal("Flight() did not return the attached recorder")
	}

	// Either switch kills tracing without detaching.
	f.SetEnabled(false)
	if r.TraceEnabled() {
		t.Fatal("TraceEnabled with recorder disabled")
	}
	f.SetEnabled(true)
	r.SetEnabled(false)
	if r.TraceEnabled() {
		t.Fatal("TraceEnabled with registry disabled")
	}
	r.SetEnabled(true)

	tr := r.StartTrace()
	if tr == nil {
		t.Fatal("StartTrace returned nil with recorder attached")
	}
	tr.Latency = time.Millisecond
	r.FinishTrace(tr)
	if got := f.Snapshot().Traced; got != 1 {
		t.Fatalf("Traced = %d after registry FinishTrace, want 1", got)
	}

	r.AttachFlightRecorder(nil)
	if r.TraceEnabled() {
		t.Fatal("TraceEnabled after detaching recorder")
	}
}

func TestFlightSnapshotJSONShape(t *testing.T) {
	f := NewFlightRecorder(FlightOptions{K: 8})
	tr := f.StartTrace()
	tr.Kind = "score"
	tr.Backend = "tree"
	tr.Latency = 3 * time.Millisecond
	tr.Straddle = true
	tr.AddStage(TraceStage{Name: "tree/refine", Nodes: 7, Depth: 4})
	f.FinishTrace(tr)

	raw, err := json.Marshal(f.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"enabled", "k", "traced", "straddled", "slow_logged", "slowest", "recent", "straddling"} {
		if _, ok := decoded[key]; !ok {
			t.Fatalf("snapshot JSON missing %q:\n%s", key, raw)
		}
	}
	slowest := decoded["slowest"].([]any)
	if len(slowest) != 1 {
		t.Fatalf("slowest has %d entries, want 1", len(slowest))
	}
	first := slowest[0].(map[string]any)
	stages := first["stages"].([]any)
	if len(stages) != 1 || stages[0].(map[string]any)["name"] != "tree/refine" {
		t.Fatalf("per-stage breakdown missing from trace JSON:\n%s", raw)
	}
}

// TestTraceJSONNonFiniteBounds pins the encoding of certified bounds
// that reach ±Inf (a query provably above threshold has no finite upper
// bound): encoding/json rejects non-finite numbers, so they marshal as
// strings instead of failing the whole /debug/queries response.
func TestTraceJSONNonFiniteBounds(t *testing.T) {
	f := NewFlightRecorder(FlightOptions{K: 8})
	tr := f.StartTrace()
	tr.Kind = "score"
	tr.Lower = 0.004
	tr.Upper = math.Inf(1)
	tr.Margin = math.Inf(1)
	tr.Estimate = math.Inf(1)
	tr.AddStage(TraceStage{Name: "tree/refine", Upper: math.Inf(1)})
	f.FinishTrace(tr)

	raw, err := json.Marshal(f.Snapshot())
	if err != nil {
		t.Fatalf("snapshot with +Inf bounds failed to marshal: %v", err)
	}
	var decoded FlightSnapshot
	if err := json.Unmarshal(raw, &decoded); err == nil {
		t.Fatal("want round-trip to fail on the string sentinel, proving it is a string")
	}
	var loose map[string]any
	if err := json.Unmarshal(raw, &loose); err != nil {
		t.Fatal(err)
	}
	first := loose["recent"].([]any)[0].(map[string]any)
	if first["upper"] != "+Inf" || first["lower"].(float64) != 0.004 {
		t.Fatalf("non-finite encoding wrong: upper=%v lower=%v", first["upper"], first["lower"])
	}
	stage := first["stages"].([]any)[0].(map[string]any)
	if stage["upper"] != "+Inf" {
		t.Fatalf("stage upper = %v, want \"+Inf\"", stage["upper"])
	}
	if _, present := first["threshold"]; present {
		t.Fatal("zero threshold should stay omitted")
	}
}

// TestFlightRecorderConcurrent hammers every insert path and Snapshot at
// once; run under -race this is the recorder's data-race certificate.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(FlightOptions{K: 16})
	const (
		writers   = 8
		perWriter = 500
	)
	var wg sync.WaitGroup
	wg.Add(writers + 2)
	for w := 0; w < writers; w++ {
		w := w
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				fileTrace(f, time.Duration(w*perWriter+i)*time.Nanosecond, i%7 == 0)
			}
		}()
	}
	go func() { // concurrent readers
		defer wg.Done()
		for i := 0; i < 200; i++ {
			snap := f.Snapshot()
			if len(snap.Slowest) > snap.K || len(snap.Recent) > snap.K {
				t.Errorf("snapshot overflows K: %d slowest, %d recent", len(snap.Slowest), len(snap.Recent))
				return
			}
		}
	}()
	go func() { // concurrent enable/disable flips
		defer wg.Done()
		for i := 0; i < 100; i++ {
			f.SetEnabled(i%2 == 0)
		}
	}()
	wg.Wait()
	// The flipper may have finished (disabled) before any writer ran, so a
	// zero count is legal; file one guaranteed trace to prove the recorder
	// still works after the hammering.
	f.SetEnabled(true)
	fileTrace(f, time.Millisecond, false)
	snap := f.Snapshot()
	if snap.Traced == 0 || snap.Traced > writers*perWriter+1 {
		t.Fatalf("Traced = %d, want in (0, %d]", snap.Traced, writers*perWriter+1)
	}
}
