package core

import (
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentQueries hammers one classifier from many goroutines; run
// with -race to verify the immutable-after-train contract.
func TestConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	data := gauss2D(rng, 1200)
	c, err := Train(data, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				q := []float64{r.NormFloat64() * 3, r.NormFloat64() * 3}
				if _, err := c.Score(q); err != nil {
					errs <- err
					return
				}
				if i%50 == 0 {
					if _, _, err := c.DensityBounds(q, 0.05); err != nil {
						errs <- err
						return
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := c.Stats().Queries; got != goroutines*(200+4) {
		t.Fatalf("Queries = %d, want %d", got, goroutines*(200+4))
	}
}
