package core

import (
	"math/rand"
	"strings"
	"testing"

	"tkdc/internal/telemetry"
)

// tracedClassifier trains a classifier with a registry + flight recorder
// attached, returning all three.
func tracedClassifier(t *testing.T, data [][]float64, mut func(*Config)) (*Classifier, *telemetry.Registry, *telemetry.FlightRecorder) {
	t.Helper()
	reg := telemetry.NewRegistry()
	flight := telemetry.NewFlightRecorder(telemetry.FlightOptions{K: 64})
	reg.AttachFlightRecorder(flight)
	cfg := testConfig()
	cfg.Recorder = reg
	if mut != nil {
		mut(&cfg)
	}
	c, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, reg, flight
}

// TestScoreTraceTreeBackend checks the full flight-record wiring on the
// certified tree traversal: every query files one trace whose identity
// fields, bounds, and per-stage breakdown describe the work done.
func TestScoreTraceTreeBackend(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	data := gauss2D(rng, 1200)
	c, _, flight := tracedClassifier(t, data, func(cfg *Config) {
		cfg.Backend = BackendTree
		cfg.DisableGrid = true // force traversal so every trace has stages
	})

	const queries = 40
	straddled := 0
	for i := 0; i < queries; i++ {
		q := []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		r, err := c.Score(q)
		if err != nil {
			t.Fatal(err)
		}
		if r.Lower <= c.Threshold() && c.Threshold() <= r.Upper {
			straddled++
		}
	}

	snap := flight.Snapshot()
	if snap.Traced != queries {
		t.Fatalf("Traced = %d, want %d", snap.Traced, queries)
	}
	if int(snap.Straddled) != straddled {
		t.Fatalf("Straddled = %d, want %d (queries whose bounds contained t)", snap.Straddled, straddled)
	}
	if len(snap.Recent) != queries {
		t.Fatalf("Recent holds %d traces, want %d (K=64 > queries)", len(snap.Recent), queries)
	}
	for _, tr := range snap.Recent {
		if tr.Kind != "score" || tr.Backend != BackendTree {
			t.Fatalf("trace kind/backend = %q/%q, want score/tree", tr.Kind, tr.Backend)
		}
		if !tr.Certified {
			t.Fatal("tree-backend trace not marked certified")
		}
		if tr.Latency <= 0 {
			t.Fatalf("trace latency = %v, want > 0", tr.Latency)
		}
		if tr.Threshold != c.Threshold() {
			t.Fatalf("trace threshold = %g, want %g", tr.Threshold, c.Threshold())
		}
		if tr.Lower > tr.Upper {
			t.Fatalf("trace bounds inverted: [%g, %g]", tr.Lower, tr.Upper)
		}
		if tr.Margin != tr.Estimate-tr.Threshold {
			t.Fatalf("margin = %g, want estimate-threshold = %g", tr.Margin, tr.Estimate-tr.Threshold)
		}
		if tr.Label != Low.String() && tr.Label != High.String() {
			t.Fatalf("trace label = %q", tr.Label)
		}
		if len(tr.Query) != 2 {
			t.Fatalf("trace query has %d coords, want 2", len(tr.Query))
		}
		if len(tr.Stages) == 0 {
			t.Fatal("tree trace has no stages")
		}
		st := tr.Stages[0]
		if st.Name != "tree/refine" {
			t.Fatalf("stage name = %q, want tree/refine", st.Name)
		}
		// A query whose root bounds already clear the threshold pops zero
		// nodes; otherwise the stage and trace totals must agree.
		if st.Nodes != tr.Nodes {
			t.Fatalf("stage nodes = %d, trace nodes = %d; want equal", st.Nodes, tr.Nodes)
		}
		if st.Depth < 1 {
			t.Fatalf("stage depth = %d, want >= 1 (root level)", st.Depth)
		}
		if st.Bounds != tr.BoundKernels {
			t.Fatalf("stage bound kernels = %d, trace = %d", st.Bounds, tr.BoundKernels)
		}
	}
}

// TestScoreTraceSamplingBackend checks traces from the sampled far-field
// estimator: the near phase always appears, and any sampling rounds
// report their running Bernstein band.
func TestScoreTraceSamplingBackend(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	data := gauss2D(rng, 1500)
	c, reg, flight := tracedClassifier(t, data, func(cfg *Config) {
		cfg.Backend = BackendSampling
		cfg.DisableGrid = true
	})

	const queries = 40
	for i := 0; i < queries; i++ {
		q := []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		if _, err := c.Score(q); err != nil {
			t.Fatal(err)
		}
	}

	snap := flight.Snapshot()
	if snap.Traced != queries {
		t.Fatalf("Traced = %d, want %d", snap.Traced, queries)
	}
	sawRound := false
	for _, tr := range snap.Recent {
		if tr.Backend != BackendSampling {
			t.Fatalf("trace backend = %q, want sampling", tr.Backend)
		}
		if tr.Certified {
			t.Fatal("sampling-backend trace marked certified; its bounds are probabilistic")
		}
		if len(tr.Stages) == 0 {
			t.Fatal("sampling trace has no stages")
		}
		names := make([]string, len(tr.Stages))
		for i, st := range tr.Stages {
			names[i] = st.Name
			if strings.HasPrefix(st.Name, "far/round-") {
				sawRound = true
				if st.Samples <= 0 {
					t.Fatalf("sampling round stage reports %d samples", st.Samples)
				}
				if st.Band != st.Upper-st.Lower {
					t.Fatalf("round band = %g, want upper-lower = %g", st.Band, st.Upper-st.Lower)
				}
			}
		}
		first := names[0]
		if first != "near" && first != "exact" {
			t.Fatalf("first sampling stage = %q, want near or exact (stages: %v)", first, names)
		}
	}
	// The registry's sampling counters and the trace-visible rounds come
	// from the same Work bookkeeping; with rounds seen, counters move.
	if sawRound {
		ms := reg.Snapshot()
		if ms.SamplingRounds <= 0 || ms.SampledPoints <= 0 {
			t.Fatalf("far rounds traced but registry counters empty: rounds=%d points=%d",
				ms.SamplingRounds, ms.SampledPoints)
		}
	}
}

// TestGridHitTrace checks the grid fast path leaves a minimal certified
// trace rather than escaping the recorder.
func TestGridHitTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	data := gauss2D(rng, 1500)
	c, _, flight := tracedClassifier(t, data, func(cfg *Config) {
		cfg.Backend = BackendTree
	})

	// Dense-core training points make grid hits likely; find one.
	found := false
	for i := 0; i < 500 && !found; i++ {
		if _, err := c.Score(data[i]); err != nil {
			t.Fatal(err)
		}
		for _, tr := range flight.Snapshot().Recent {
			if tr.GridHit {
				found = true
				if tr.Backend != "grid" || tr.Label != High.String() || !tr.Certified {
					t.Fatalf("grid-hit trace malformed: backend=%q label=%q certified=%v",
						tr.Backend, tr.Label, tr.Certified)
				}
				break
			}
		}
	}
	if !found {
		t.Skip("no grid hit among 500 training-point queries (grid disabled for this dimension?)")
	}
}

// TestDensityBoundsTrace checks the density-query path (no threshold,
// no label) also files traces.
func TestDensityBoundsTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	data := gauss2D(rng, 1000)
	c, _, flight := tracedClassifier(t, data, nil)

	fl, fu, err := c.DensityBounds([]float64{0.5, -0.5}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	snap := flight.Snapshot()
	if snap.Traced != 1 {
		t.Fatalf("Traced = %d, want 1", snap.Traced)
	}
	tr := snap.Recent[0]
	if tr.Kind != "density" {
		t.Fatalf("trace kind = %q, want density", tr.Kind)
	}
	if tr.Lower != fl || tr.Upper != fu {
		t.Fatalf("trace bounds [%g, %g] disagree with returned [%g, %g]", tr.Lower, tr.Upper, fl, fu)
	}
	if tr.Straddle || tr.Label != "" {
		t.Fatalf("density trace carries classification fields: straddle=%v label=%q", tr.Straddle, tr.Label)
	}
}

// TestDualTreeBatchTrace checks the batch path files one flight record
// attributing queries to the certified-group and fallback regimes.
func TestDualTreeBatchTrace(t *testing.T) {
	skipUnlessTreeEfficiency(t)
	rng := rand.New(rand.NewSource(89))
	data := gauss2D(rng, 1200)
	c, _, flight := tracedClassifier(t, data, nil)

	batch := data[:128]
	if _, err := c.ClassifyAllDualTree(batch); err != nil {
		t.Fatal(err)
	}
	snap := flight.Snapshot()
	if snap.Traced != 1 {
		t.Fatalf("Traced = %d, want 1 (one record per batch)", snap.Traced)
	}
	tr := snap.Recent[0]
	if tr.Kind != "dualtree" || tr.Items != int64(len(batch)) {
		t.Fatalf("batch trace kind=%q items=%d, want dualtree/%d", tr.Kind, tr.Items, len(batch))
	}
	if len(tr.Stages) != 2 || tr.Stages[0].Name != "groups/certified" || tr.Stages[1].Name != "groups/fallback" {
		t.Fatalf("batch stages = %+v, want groups/certified + groups/fallback", tr.Stages)
	}
	if got := tr.Stages[0].Queries + tr.Stages[1].Queries; got != int64(len(batch)) {
		t.Fatalf("stage query attribution sums to %d, want %d", got, len(batch))
	}
}

// TestTraceDisabledLeavesNoTraces pins the gating: with the flight
// recorder switched off (or absent) queries classify identically and the
// recorder stays empty.
func TestTraceDisabledLeavesNoTraces(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	data := gauss2D(rng, 1000)
	c, _, flight := tracedClassifier(t, data, nil)
	flight.SetEnabled(false)

	for i := 0; i < 20; i++ {
		if _, err := c.Score(data[i]); err != nil {
			t.Fatal(err)
		}
	}
	if snap := flight.Snapshot(); snap.Traced != 0 {
		t.Fatalf("disabled recorder filed %d traces", snap.Traced)
	}
	flight.SetEnabled(true)
	if _, err := c.Score(data[0]); err != nil {
		t.Fatal(err)
	}
	if snap := flight.Snapshot(); snap.Traced != 1 {
		t.Fatalf("re-enabled recorder filed %d traces, want 1", snap.Traced)
	}
}
