package estimator

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"tkdc/internal/kdtree"
	"tkdc/internal/kernel"
	"tkdc/internal/points"
	"tkdc/internal/telemetry"
)

// buildIndex constructs a store, tree, and Scott-bandwidth Gaussian
// kernel over n points of dimension d drawn N(0, 1).
func buildIndex(t *testing.T, seed int64, n, d int) (*kdtree.Tree, kernel.Kernel) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	store := points.New(n, d)
	for i := 0; i < n; i++ {
		row := store.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	}
	tree, err := kdtree.Build(store, kdtree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := kernel.ScottBandwidths(store, 1)
	if err != nil {
		t.Fatal(err)
	}
	kern, err := kernel.NewGaussian(h)
	if err != nil {
		t.Fatal(err)
	}
	return tree, kern
}

func exact(tree *kdtree.Tree, kern kernel.Kernel, x []float64) float64 {
	return kernel.Sum(kern, x, tree.Pts.Data) / float64(tree.Size)
}

// TestNearRadius checks the bisection finds the scaled distance where
// the kernel decays to NearCut·K(0): for the Gaussian that is
// −2·ln(cut).
func TestNearRadius(t *testing.T) {
	h := []float64{1, 1, 1}
	g, err := kernel.NewGaussian(h)
	if err != nil {
		t.Fatal(err)
	}
	got := nearRadiusSq(g, 1e-3)
	want := -2 * math.Log(1e-3)
	if math.Abs(got-want) > 1e-6*want {
		t.Fatalf("nearRadiusSq = %v, want %v", got, want)
	}
}

// TestDeterministicPerQuery checks two independent samplers agree
// bit-for-bit on every query, and that query order does not matter —
// the per-query seeding retrains and replicas rely on.
func TestDeterministicPerQuery(t *testing.T) {
	tree, kern := buildIndex(t, 11, 5000, 12)
	a := New(tree, kern, Options{Seed: 7})
	b := New(tree, kern, Options{Seed: 7})
	rng := rand.New(rand.NewSource(3))
	queries := make([][]float64, 32)
	for i := range queries {
		q := make([]float64, 12)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		queries[i] = q
	}
	var w Work
	type triple struct{ fl, fu, est float64 }
	got := make([]triple, len(queries))
	for i, q := range queries {
		fl, fu, est := a.BoundDensity(q, 0, math.Inf(1), 0, &w)
		got[i] = triple{fl, fu, est}
	}
	// b serves the queries in reverse order; results must still match.
	for i := len(queries) - 1; i >= 0; i-- {
		fl, fu, est := b.BoundDensity(queries[i], 0, math.Inf(1), 0, &w)
		if got[i] != (triple{fl, fu, est}) {
			t.Fatalf("query %d: (%v,%v,%v) != (%v,%v,%v)",
				i, fl, fu, est, got[i].fl, got[i].fu, got[i].est)
		}
	}
	// A different seed must actually change the sampling.
	c := New(tree, kern, Options{Seed: 8})
	same := 0
	for i, q := range queries {
		_, _, est := c.BoundDensity(q, 0, math.Inf(1), 0, &w)
		if est == got[i].est {
			same++
		}
	}
	if same == len(queries) {
		t.Fatal("seed change left every estimate identical")
	}
}

// TestBoundsBracketExact draws many queries and checks the probabilistic
// bounds bracket the exact density at well above the 1−δ rate, and that
// the point estimate stays inside the bounds.
func TestBoundsBracketExact(t *testing.T) {
	tree, kern := buildIndex(t, 5, 4000, 10)
	s := New(tree, kern, Options{Seed: 1, Delta: 0.05})
	rng := rand.New(rand.NewSource(9))
	misses := 0
	const trials = 300
	var w Work
	for i := 0; i < trials; i++ {
		q := make([]float64, 10)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		// tl=0, tu=∞ keeps every stopping rule from firing, so the full
		// sample budget is spent and the final band is tested.
		fl, fu, est := s.BoundDensity(q, 0, math.Inf(1), 0, &w)
		f := exact(tree, kern, q)
		// The exact-resolution path sums in tree order, the reference in
		// flat order; allow summation-order rounding at the interval ends.
		if tol := 1e-9 * f; fl > f+tol || f > fu+tol {
			misses++
		}
		if est < fl || est > fu {
			t.Fatalf("query %d: est %v outside [%v, %v]", i, est, fl, fu)
		}
	}
	// δ=0.05 permits ~15 misses in expectation; the empirical-Bernstein
	// band is conservative, so even 2δ·trials signals a real defect.
	if misses > trials/10 {
		t.Fatalf("bounds missed the exact density %d/%d times (δ=0.05)", misses, trials)
	}
}

// TestSmallDatasetExact checks the exact-sweep fallback: with n below
// the sampling break-even the bounds collapse to the exact density.
func TestSmallDatasetExact(t *testing.T) {
	tree, kern := buildIndex(t, 6, 100, 6)
	s := New(tree, kern, Options{Seed: 2})
	q := make([]float64, 6)
	var w Work
	fl, fu, est := s.BoundDensity(q, 0, math.Inf(1), 0, &w)
	f := exact(tree, kern, q)
	if fl != f || fu != f || est != f {
		t.Fatalf("small-n fallback: (%v, %v, %v) != exact %v", fl, fu, est, f)
	}
}

// TestEstimateDensityHonorsPrecision checks EstimateDensity's contract:
// the returned bounds satisfy fu − fl ≤ rel·fl even when that requires
// the exact fallback.
func TestEstimateDensityHonorsPrecision(t *testing.T) {
	tree, kern := buildIndex(t, 8, 3000, 8)
	s := New(tree, kern, Options{Seed: 3})
	rng := rand.New(rand.NewSource(4))
	var w Work
	for i := 0; i < 20; i++ {
		q := make([]float64, 8)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		rel := 0.01
		fl, fu, est := s.EstimateDensity(q, rel, &w)
		if fu-fl > rel*fl {
			t.Fatalf("query %d: width %v exceeds rel %v · fl %v", i, fu-fl, rel, fl)
		}
		if est < fl || est > fu {
			t.Fatalf("query %d: est %v outside [%v, %v]", i, est, fl, fu)
		}
	}
	// rel ≤ 0 demands exactness (up to summation order: the fallback
	// sums near and far ranges separately).
	q := make([]float64, 8)
	fl, fu, _ := s.EstimateDensity(q, 0, &w)
	f := exact(tree, kern, q)
	if fl != fu || math.Abs(fl-f) > 1e-9*f {
		t.Fatalf("rel=0: (%v, %v) != exact %v", fl, fu, f)
	}
}

// TestThresholdRuleStopsEarly checks the adaptive budget: a query whose
// band clears the threshold at the first check spends only the minimum
// sample batch, while the same query against an undecidable band runs to
// MaxSamples. The near phase is identical in both runs, so the saving is
// exactly the sample difference.
func TestThresholdRuleStopsEarly(t *testing.T) {
	tree, kern := buildIndex(t, 12, 20000, 10)
	s := New(tree, kern, Options{Seed: 5})

	// A central query has near-field mass, so fl > 0 ≥ tu fires the
	// threshold rule at the first band.
	var wEasy Work
	center := make([]float64, 10)
	flEasy, _, _ := s.BoundDensity(center, 1e-300, 1e-300, 0, &wEasy)
	if flEasy <= 1e-300 {
		t.Fatalf("central query fl = %v, expected positive near-field mass", flEasy)
	}

	// tl=0, tu=∞ makes both rules unreachable: the budget runs out.
	var wHard Work
	s.BoundDensity(center, 0, math.Inf(1), 0, &wHard)

	saved := wHard.PointKernels - wEasy.PointKernels
	if saved < int64(s.maxSamples-2*s.minSamples) {
		t.Fatalf("threshold rule saved only %d point kernels (easy %d, hard %d)",
			saved, wEasy.PointKernels, wHard.PointKernels)
	}

	// A far outlier is certified zero by support pruning alone: no
	// kernel evaluations at all.
	var wOut Work
	out := make([]float64, 10)
	for j := range out {
		out[j] = 50
	}
	fl, fu, est := s.BoundDensity(out, 1e-300, 1e-300, 0, &wOut)
	if fl != 0 || fu != 0 || est != 0 {
		t.Fatalf("outlier: (%v, %v, %v), want certified zero", fl, fu, est)
	}
	if wOut.PointKernels != 0 {
		t.Fatalf("outlier cost %d point kernels, want 0 (support pruning)", wOut.PointKernels)
	}
}

// TestWorkCountsSamples checks the work accounting covers all three
// effort kinds: near-field point sums plus far-field samples, bound
// evaluations for far ranges, and near-phase node visits.
func TestWorkCountsSamples(t *testing.T) {
	tree, kern := buildIndex(t, 13, 5000, 10)
	// A small node budget guarantees an unresolved far field even on a
	// tree this size.
	s := New(tree, kern, Options{Seed: 6, NearNodes: 16})
	var w Work
	q := make([]float64, 10)
	s.BoundDensity(q, 0, math.Inf(1), 0, &w)
	if w.PointKernels < int64(s.maxSamples) {
		t.Fatalf("PointKernels %d below the exhausted sample budget %d", w.PointKernels, s.maxSamples)
	}
	if w.NodesVisited == 0 {
		t.Fatal("near-field traversal recorded no node visits")
	}
	if w.BoundKernels == 0 {
		t.Fatal("no bound kernels recorded despite an unresolved far field")
	}
}

// TestNearPhasePartition cross-checks the budgeted near phase against
// brute force: the exact near sum plus the true kernel mass of the far
// ranges must reconstruct the exact density (rows in neither are
// support-pruned, contributing exactly zero), the certified value bound
// rmax must dominate every far row's kernel, and the range table must
// map population indices onto its own rows.
func TestNearPhasePartition(t *testing.T) {
	for _, tc := range []struct{ n, d int }{{2000, 4}, {2000, 16}} {
		tree, kern := buildIndex(t, 14, tc.n, tc.d)
		s := New(tree, kern, Options{Seed: 7})
		rng := rand.New(rand.NewSource(15))
		invH2 := kern.InvBandwidthsSq()
		for i := 0; i < 10; i++ {
			q := make([]float64, tc.d)
			for j := range q {
				q[j] = rng.NormFloat64()
			}
			var w Work
			sumNear := s.nearPhase(q, &w)

			farTrue := 0.0
			kmax := 0.0
			rows := 0
			for _, r := range s.far.ranges {
				if r.cum != rows {
					t.Fatalf("d=%d query %d: range cum %d != running count %d", tc.d, i, r.cum, rows)
				}
				rows += int(r.hi - r.lo)
				for row := int(r.lo); row < int(r.hi); row++ {
					k := kern.FromScaledSqDist(kernel.ScaledSqDist(q, tree.Pts.Row(row), invH2))
					farTrue += k
					if k > kmax {
						kmax = k
					}
				}
			}
			if rows != s.far.count {
				t.Fatalf("d=%d query %d: far count %d != range rows %d", tc.d, i, s.far.count, rows)
			}
			if kmax > s.far.rmax {
				t.Fatalf("d=%d query %d: far kernel %v exceeds certified bound %v", tc.d, i, kmax, s.far.rmax)
			}
			want := exact(tree, kern, q) * float64(tree.Size)
			got := sumNear + farTrue
			if math.Abs(got-want) > 1e-9*math.Max(want, 1e-300) {
				t.Fatalf("d=%d query %d: near %v + far %v = %v != exact mass %v",
					tc.d, i, sumNear, farTrue, got, want)
			}
			if s.far.count > 0 {
				for _, u := range []int{0, s.far.count / 2, s.far.count - 1} {
					row := s.farRow(u)
					ok := false
					for _, r := range s.far.ranges {
						if row >= int(r.lo) && row < int(r.hi) {
							ok = true
							break
						}
					}
					if !ok {
						t.Fatalf("d=%d query %d: farRow(%d) = %d outside every range", tc.d, i, u, row)
					}
				}
			}
		}
	}
}

// TestFarRoundAccountingAndTrace pins the observability contract of the
// sampling loop: FarRounds counts exactly the adaptive rounds, FarSamples
// the far-field draws (a subset of PointKernels), and a trace attached to
// the Work sees one "near" stage followed by one "far/round-N" stage per
// round with a shrinking-or-equal cumulative sample count. Accounting
// must not perturb the estimate: a traced and an untraced run of the same
// query agree bit-for-bit.
func TestFarRoundAccountingAndTrace(t *testing.T) {
	tree, kern := buildIndex(t, 16, 5000, 10)
	q := make([]float64, 10)

	s := New(tree, kern, Options{Seed: 9, NearNodes: 16})
	tr := &telemetry.QueryTrace{}
	w := Work{Trace: tr}
	// Unreachable threshold band + no tolerance: the loop runs until the
	// sample budget is exhausted, maximizing rounds.
	fl, fu, _ := s.BoundDensity(q, 0, math.Inf(1), 0, &w)

	if w.FarRounds == 0 {
		t.Fatal("no far rounds recorded despite exhausted budget")
	}
	if w.FarSamples <= 0 || w.FarSamples > w.PointKernels {
		t.Fatalf("FarSamples = %d, want in (0, PointKernels=%d]", w.FarSamples, w.PointKernels)
	}
	if len(tr.Stages) != int(w.FarRounds)+1 {
		t.Fatalf("%d stages for %d rounds, want rounds+1 (near stage first)", len(tr.Stages), w.FarRounds)
	}
	if tr.Stages[0].Name != "near" {
		t.Fatalf("first stage = %q, want near", tr.Stages[0].Name)
	}
	prev := int64(0)
	for i, st := range tr.Stages[1:] {
		if want := fmt.Sprintf("far/round-%d", i+1); st.Name != want {
			t.Fatalf("stage %d name = %q, want %q", i+1, st.Name, want)
		}
		if st.Samples < prev {
			t.Fatalf("round %d cumulative samples %d < previous %d", i+1, st.Samples, prev)
		}
		prev = st.Samples
		if st.Band != st.Upper-st.Lower {
			t.Fatalf("round %d band %g != upper-lower %g", i+1, st.Band, st.Upper-st.Lower)
		}
	}
	last := tr.Stages[len(tr.Stages)-1]
	if last.Samples != w.FarSamples {
		t.Fatalf("final round samples %d != FarSamples %d", last.Samples, w.FarSamples)
	}
	if last.Lower != fl || last.Upper != fu {
		t.Fatalf("final round bounds [%g, %g] != returned [%g, %g]", last.Lower, last.Upper, fl, fu)
	}

	// Bit-exactness: tracing must be purely observational.
	s2 := New(tree, kern, Options{Seed: 9, NearNodes: 16})
	var w2 Work
	fl2, fu2, _ := s2.BoundDensity(q, 0, math.Inf(1), 0, &w2)
	if fl2 != fl || fu2 != fu {
		t.Fatalf("untraced run differs: [%g, %g] vs [%g, %g]", fl2, fu2, fl, fu)
	}
	if w2.FarRounds != w.FarRounds || w2.FarSamples != w.FarSamples {
		t.Fatalf("untraced accounting differs: rounds %d vs %d, samples %d vs %d",
			w2.FarRounds, w.FarRounds, w2.FarSamples, w.FarSamples)
	}
}
