package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"tkdc/internal/core"
	"tkdc/internal/stream"
	"tkdc/internal/telemetry"
)

// trainBatchClf trains a small 2-d classifier for engine-level tests,
// honoring the CI backend matrix (TKDC_TEST_BACKEND).
func trainBatchClf(t *testing.T, seed int64) *core.Classifier {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([][]float64, 1200)
	for i := range data {
		data[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	cfg := core.DefaultConfig()
	cfg.S0 = 2000
	if b := os.Getenv("TKDC_TEST_BACKEND"); b != "" {
		cfg.Backend = b
	}
	clf, err := core.Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return clf
}

// probeRows builds n 2-d probes spanning the dense core and the tails,
// returned both as rows and in flat row-major form.
func probeRows(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	flat := make([]float64, 0, 2*n)
	for i := range rows {
		x := []float64{rng.NormFloat64() * 2, rng.NormFloat64() * 2}
		rows[i] = x
		flat = append(flat, x...)
	}
	return rows, flat
}

// TestBatchWindowZeroInline pins the window=0 contract: do() executes
// the call inline (no timer, no queue) and the answers are bit-identical
// to per-row Score.
func TestBatchWindowZeroInline(t *testing.T) {
	clf := trainBatchClf(t, 31)
	model := stream.NewModel(clf)
	e := newBatchEngine(model, telemetry.NewRegistry(), BatchOptions{Window: 0})

	rows, flat := probeRows(16, 32)
	c := e.do(context.Background(), flat, len(rows), 2, false)
	if c.err != nil {
		t.Fatal(c.err)
	}
	if c.gen != model.Generation() {
		t.Fatalf("gen = %d, want %d", c.gen, model.Generation())
	}
	for i, x := range rows {
		want, err := clf.Score(x)
		if err != nil {
			t.Fatal(err)
		}
		if c.labels[i] != want.Label {
			t.Fatalf("row %d: label %v, want %v", i, c.labels[i], want.Label)
		}
	}
}

// TestBatchCoalescedBitIdentical is the acceptance criterion for the
// per-query regime: several concurrent calls — mixed label and density
// mode — coalesce into one flush, and every row's answer is
// bit-identical to a direct per-row Score call. Runs under both density
// backends via TKDC_TEST_BACKEND.
func TestBatchCoalescedBitIdentical(t *testing.T) {
	clf := trainBatchClf(t, 33)
	model := stream.NewModel(clf)
	reg := telemetry.NewRegistry()

	const calls, perCall = 6, 5
	// MaxRows equals the total so the last submitter flushes the whole
	// queue deterministically; the hour-long window never fires.
	e := newBatchEngine(model, reg, BatchOptions{Window: time.Hour, MaxRows: calls * perCall})

	rows := make([][][]float64, calls)
	flats := make([][]float64, calls)
	for i := range rows {
		rows[i], flats[i] = probeRows(perCall, int64(100+i))
	}

	got := make([]*batchCall, calls)
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = e.do(context.Background(), flats[i], perCall, 2, i%2 == 1)
		}(i)
	}
	wg.Wait()

	for i, c := range got {
		if c.err != nil {
			t.Fatalf("call %d: %v", i, c.err)
		}
		for j, x := range rows[i] {
			want, err := clf.Score(x)
			if err != nil {
				t.Fatal(err)
			}
			if i%2 == 1 {
				r := c.results[j]
				if r.Label != want.Label || r.Lower != want.Lower || r.Upper != want.Upper {
					t.Fatalf("call %d row %d: result %+v, want %+v", i, j, r, want)
				}
			} else if c.labels[j] != want.Label {
				t.Fatalf("call %d row %d: label %v, want %v", i, j, c.labels[j], want.Label)
			}
		}
	}

	snap := reg.Snapshot()
	if snap.CoalescedQueries != calls*perCall {
		t.Fatalf("coalesced queries = %d, want %d", snap.CoalescedQueries, calls*perCall)
	}
	if snap.Batches != 1 {
		t.Fatalf("batches = %d, want 1", snap.Batches)
	}
}

// TestBatchDualTreeCoalescedMatchesDirect pins set-determinism of the
// dual-tree regime: a coalesced flush whose combined rows cross
// DualTreeMinBatch answers identically to one direct call carrying the
// same rows (both select the dual-tree pass from batch content alone).
func TestBatchDualTreeCoalescedMatchesDirect(t *testing.T) {
	if os.Getenv("TKDC_TEST_BACKEND") == core.BackendSampling {
		t.Skip("dual-tree regime: sampling backend always uses the per-query sweep")
	}
	clf := trainBatchClf(t, 35)
	model := stream.NewModel(clf)

	const calls = 4
	perCall := core.DualTreeMinBatch / calls
	total := calls * perCall
	e := newBatchEngine(model, telemetry.NewRegistry(), BatchOptions{Window: time.Hour, MaxRows: total})

	flats := make([][]float64, calls)
	all := make([]float64, 0, 2*total)
	for i := range flats {
		_, flats[i] = probeRows(perCall, int64(200+i))
		all = append(all, flats[i]...)
	}

	got := make([]*batchCall, calls)
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = e.do(context.Background(), flats[i], perCall, 2, false)
		}(i)
	}
	wg.Wait()

	direct := e.do(context.Background(), all, total, 2, false)
	if direct.err != nil {
		t.Fatal(direct.err)
	}
	// The coalesced flush concatenated the calls in queue order; compare
	// against the direct answer for the identical concatenation.
	off := 0
	for i, c := range got {
		if c.err != nil {
			t.Fatalf("call %d: %v", i, c.err)
		}
		for j, l := range c.labels {
			if l != direct.labels[off+j] {
				t.Fatalf("call %d row %d: coalesced %v != direct %v", i, j, l, direct.labels[off+j])
			}
		}
		off += c.n
	}
}

// TestBatchCloseFlushes pins shutdown semantics: Close wakes a queued
// call before its window expires, and calls submitted after Close
// execute inline instead of stranding.
func TestBatchCloseFlushes(t *testing.T) {
	clf := trainBatchClf(t, 37)
	model := stream.NewModel(clf)
	e := newBatchEngine(model, telemetry.NewRegistry(), BatchOptions{Window: time.Hour})

	_, flat := probeRows(3, 41)
	done := make(chan *batchCall, 1)
	go func() { done <- e.do(context.Background(), flat, 3, 2, false) }()

	// Wait for the call to queue, then close.
	for {
		e.mu.Lock()
		queued := len(e.queue) == 1
		e.mu.Unlock()
		if queued {
			break
		}
		time.Sleep(time.Millisecond)
	}
	e.Close()
	select {
	case c := <-done:
		if c.err != nil || len(c.labels) != 3 {
			t.Fatalf("flushed call: err=%v labels=%v", c.err, c.labels)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not flush the queued call")
	}

	_, flat2 := probeRows(2, 43)
	c := e.do(context.Background(), flat2, 2, 2, false)
	if c.err != nil || len(c.labels) != 2 {
		t.Fatalf("post-Close call: err=%v labels=%v", c.err, c.labels)
	}
	e.Close() // idempotent
}

// TestBatchContextCancelled pins cancellation: a call whose context died
// while queued errors with the context's error and pays no work, while
// its batchmates are answered normally.
func TestBatchContextCancelled(t *testing.T) {
	clf := trainBatchClf(t, 39)
	model := stream.NewModel(clf)
	e := newBatchEngine(model, telemetry.NewRegistry(), BatchOptions{Window: time.Hour, MaxRows: 4})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, deadFlat := probeRows(2, 51)
	_, liveFlat := probeRows(2, 53)

	var dead *batchCall
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		dead = e.do(ctx, deadFlat, 2, 2, false)
	}()
	// The second call crosses MaxRows and flushes both.
	live := e.do(context.Background(), liveFlat, 2, 2, false)
	wg.Wait()

	if dead.err != context.Canceled {
		t.Fatalf("cancelled call err = %v, want context.Canceled", dead.err)
	}
	if live.err != nil || len(live.labels) != 2 {
		t.Fatalf("live call: err=%v labels=%v", live.err, live.labels)
	}
}

// TestBatchErrorIsolation pins that one call's bad rows (wrong
// dimension here) error that call alone without poisoning batchmates.
func TestBatchErrorIsolation(t *testing.T) {
	clf := trainBatchClf(t, 43)
	model := stream.NewModel(clf)
	e := newBatchEngine(model, telemetry.NewRegistry(), BatchOptions{Window: time.Hour, MaxRows: 4})

	var bad *batchCall
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		bad = e.do(context.Background(), []float64{1, 2, 3}, 1, 3, false)
	}()
	_, liveFlat := probeRows(3, 61)
	live := e.do(context.Background(), liveFlat, 3, 2, false)
	wg.Wait()

	if bad.err == nil {
		t.Fatal("3-d rows against a 2-d model: want error")
	}
	if live.err != nil || len(live.labels) != 3 {
		t.Fatalf("live call: err=%v labels=%v", live.err, live.labels)
	}
}

// TestServerCoalescingHTTP drives coalescing end to end over HTTP:
// concurrent /classify requests flush as one batch (triggered by
// MaxRows so the test is deterministic), every response matches the
// batching-disabled baseline bit for bit, and the new /metrics counters
// account for the flush.
func TestServerCoalescingHTTP(t *testing.T) {
	clf := trainBatchClf(t, 47)
	reg := telemetry.NewRegistry()
	coal := httptest.NewServer(New(clf, Options{
		Registry: reg,
		Batch:    BatchOptions{Window: time.Hour, MaxRows: 8},
	}))
	defer coal.Close()
	base := httptest.NewServer(New(clf, Options{
		Registry: telemetry.NewRegistry(),
		Batch:    BatchOptions{Disable: true},
	}))
	defer base.Close()

	bodies := make([]string, 4)
	for i := range bodies {
		rows, _ := probeRows(2, int64(300+i))
		bodies[i] = fmt.Sprintf(`{"points":[[%v,%v],[%v,%v]]}`,
			rows[0][0], rows[0][1], rows[1][0], rows[1][1])
	}

	type labelled struct {
		Labels []string `json:"labels"`
	}
	got := make([]labelled, len(bodies))
	var wg sync.WaitGroup
	for i, body := range bodies {
		wg.Add(1)
		go func(i int, body string) {
			defer wg.Done()
			resp, err := http.Post(coal.URL+"/classify", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d", i, resp.StatusCode)
				return
			}
			if err := json.NewDecoder(resp.Body).Decode(&got[i]); err != nil {
				t.Error(err)
			}
		}(i, body)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for i, body := range bodies {
		resp, err := http.Post(base.URL+"/classify", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var want labelled
		err = json.NewDecoder(resp.Body).Decode(&want)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(got[i].Labels) != len(want.Labels) {
			t.Fatalf("request %d: %d labels, want %d", i, len(got[i].Labels), len(want.Labels))
		}
		for j := range want.Labels {
			if got[i].Labels[j] != want.Labels[j] {
				t.Fatalf("request %d row %d: coalesced %q != direct %q", i, j, got[i].Labels[j], want.Labels[j])
			}
		}
	}

	snap := reg.Snapshot()
	if snap.CoalescedQueries != 8 {
		t.Fatalf("coalesced queries = %d, want 8", snap.CoalescedQueries)
	}
	if snap.Batches != 1 {
		t.Fatalf("batches = %d, want 1", snap.Batches)
	}
	if snap.DirectQueries != 0 {
		t.Fatalf("direct queries = %d, want 0", snap.DirectQueries)
	}
}

// TestClassifyGenerationCoherenceUnderRetrain is the satellite -race
// hammer: concurrent /classify requests (each repeating one probe row
// several times) race against retrain hot-swaps through a short
// coalescing window. Every response must be internally coherent — one
// pinned generation answered all of its rows, so identical rows in one
// request always agree — even though different responses may land on
// different generations.
func TestClassifyGenerationCoherenceUnderRetrain(t *testing.T) {
	ts, svc := streamServer(t, Options{Batch: BatchOptions{Window: 200 * time.Microsecond}})

	const workers, repeats, perWorker = 4, 6, 10
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan string, workers)
	fail := func(msg string) {
		select {
		case errs <- msg:
		default:
		}
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(700 + w)))
			for i := 0; i < perWorker; i++ {
				select {
				case <-stop:
					return
				default:
				}
				x, y := rng.NormFloat64()*2, rng.NormFloat64()*2
				row := fmt.Sprintf("[%v,%v]", x, y)
				body := "[" + strings.Repeat(row+",", repeats-1) + row + "]"
				resp, err := http.Post(ts.URL+"/classify", "application/json", strings.NewReader(body))
				if err != nil {
					fail("post: " + err.Error())
					return
				}
				var out struct {
					Labels     []string `json:"labels"`
					Generation *uint64  `json:"generation"`
				}
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					fail("decode: " + err.Error())
					return
				}
				if resp.StatusCode != http.StatusOK {
					fail(fmt.Sprintf("status %d", resp.StatusCode))
					return
				}
				if len(out.Labels) != repeats {
					fail(fmt.Sprintf("%d labels, want %d", len(out.Labels), repeats))
					return
				}
				if out.Generation == nil {
					fail("response missing generation")
					return
				}
				for _, l := range out.Labels[1:] {
					if l != out.Labels[0] {
						fail(fmt.Sprintf("mixed generations in one response: %v (gen %d)", out.Labels, *out.Generation))
						return
					}
				}
			}
		}(w)
	}

	// Drive a few hot-swaps while the hammer runs.
	rng := rand.New(rand.NewSource(900))
	for i := 0; i < 3; i++ {
		rows := make([][]float64, 50)
		for j := range rows {
			rows[j] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		}
		if _, err := svc.Ingest(rows); err != nil {
			t.Error(err)
			break
		}
		if err := svc.Retrain(); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}

// BenchmarkServeHandler is the window=0 latency guard's instrument: the
// "off" leg runs the pre-batching per-request path (Batch.Disable), the
// "window0" leg runs the batch engine inline. CI gates window0's median
// ns/op against off — routing single requests through the engine at
// window=0 must stay within noise of the legacy handler.
func BenchmarkServeHandler(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	data := make([][]float64, 1200)
	for i := range data {
		data[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	cfg := core.DefaultConfig()
	cfg.S0 = 2000
	clf, err := core.Train(data, cfg)
	if err != nil {
		b.Fatal(err)
	}

	legs := []struct {
		name  string
		batch BatchOptions
	}{
		{"off", BatchOptions{Disable: true}},
		{"window0", BatchOptions{}},
	}
	body := `{"points":[[0.5,-0.25]]}`
	for _, leg := range legs {
		b.Run(leg.name, func(b *testing.B) {
			srv := New(clf, Options{Registry: telemetry.NewRegistry(), Batch: leg.batch})
			defer srv.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest(http.MethodPost, "/classify", strings.NewReader(body))
				req.Header.Set("Content-Type", "application/json")
				w := httptest.NewRecorder()
				srv.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					b.Fatalf("status %d: %s", w.Code, w.Body.String())
				}
			}
		})
	}
}
