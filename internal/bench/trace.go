package bench

import (
	"fmt"
	"io"
	"log/slog"

	"tkdc/internal/core"
	"tkdc/internal/dataset"
	"tkdc/internal/telemetry"
)

// TraceOverhead measures what observability costs at query time. One
// classifier answers the same workload under three regimes — telemetry
// fully off, the counter/histogram registry attached, and the registry
// with a flight recorder tracing every query — so the overhead of each
// layer is visible as a throughput delta against the bare floor. The
// contract being checked: attaching the registry with tracing disabled
// must be within noise of off (the hot path sees one atomic load), and
// full per-query tracing should cost single-digit percent on non-trivial
// workloads.
func TraceOverhead(opts Options) ([]Table, error) {
	opts = opts.normalized()
	n := opts.scaled(100_000, 2000)
	data := dataset.Gauss(n, 2, opts.Seed)
	queries := data
	if len(queries) > opts.MaxQueries {
		queries = queries[:opts.MaxQueries]
	}

	// Train without a recorder: regimes attach their own via SetRecorder.
	cfg := opts.config()
	cfg.Recorder = nil
	clf, err := core.Train(data, cfg)
	if err != nil {
		return nil, err
	}

	t := Table{
		Title:   "Telemetry overhead: per-query cost of counters and flight tracing",
		Columns: []string{"Regime", "Queries", "p50 us", "p99 us", "p999 us", "Queries/s", "Overhead"},
	}

	reg := telemetry.NewRegistry()
	flight := telemetry.NewFlightRecorder(telemetry.FlightOptions{
		// Discard the slow log: the regime measures trace capture, not
		// logging; a real deployment sets a threshold instead.
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})

	regimes := []struct {
		name  string
		setup func()
	}{
		{"off", func() { clf.SetRecorder(nil) }},
		{"registry", func() { clf.SetRecorder(reg) }},
		{"registry+flight", func() {
			reg.AttachFlightRecorder(flight)
			clf.SetRecorder(reg)
		}},
	}

	var floor float64
	for i, r := range regimes {
		r.setup()
		// One untimed warm pass per regime so pool and cache state is
		// steady before measurement.
		for _, q := range queries {
			if _, err := clf.Score(q); err != nil {
				return nil, err
			}
		}
		m, err := measureLatency(queries, func(q []float64) error {
			_, err := clf.Score(q)
			return err
		})
		if err != nil {
			return nil, err
		}
		overhead := "-"
		if i == 0 {
			floor = m.qps
		} else if floor > 0 && m.qps > 0 {
			overhead = fmt.Sprintf("%+.1f%%", (floor/m.qps-1)*100)
		}
		t.AddRow(r.name, fmtCount(float64(len(queries))),
			fmtMicros(m.p50), fmtMicros(m.p99), fmtMicros(m.p999),
			fmtRate(m.qps), overhead)
	}

	t.Notes = append(t.Notes,
		"overhead is relative throughput loss vs the off regime (positive = slower)",
		fmt.Sprintf("flight regime traces every query; recorder retained %d traces", len(flight.Snapshot().Recent)))

	t.Fprint(opts.Out)
	return []Table{t}, nil
}
