// Command tkdc-gen emits the synthetic stand-in datasets of Table 3 as
// CSV for use with cmd/tkdc or external tools.
//
// Usage:
//
//	tkdc-gen -list
//	tkdc-gen -dataset shuttle -n 43500 > shuttle.csv
//	tkdc-gen -dataset gauss -n 100000 -d 2 -o gauss2d.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"tkdc/internal/dataset"
)

func main() {
	var (
		name = flag.String("dataset", "", "dataset name (see -list)")
		n    = flag.Int("n", 10000, "number of rows")
		d    = flag.Int("d", 2, "dimensionality (gauss only; other datasets are fixed)")
		seed = flag.Int64("seed", 42, "random seed")
		out  = flag.String("o", "", "output file (default stdout)")
		list = flag.Bool("list", false, "list available datasets and exit")
	)
	flag.Parse()

	if *list {
		for _, info := range dataset.Catalog() {
			dim := fmt.Sprintf("%d", info.Dim)
			if info.Dim == 0 {
				dim = "-d flag"
			}
			fmt.Printf("%-8s d=%-7s paper n=%-10d %s\n", info.Name, dim, info.DefaultN, info.Description)
		}
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "tkdc-gen: -dataset is required (try -list)")
		os.Exit(2)
	}

	rows, err := dataset.Generate(*name, *n, *d, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tkdc-gen:", err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tkdc-gen:", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "tkdc-gen:", err)
				os.Exit(1)
			}
		}()
		w = f
	}
	if err := dataset.WriteCSV(w, rows); err != nil {
		fmt.Fprintln(os.Stderr, "tkdc-gen:", err)
		os.Exit(1)
	}
}
