module tkdc

go 1.22
