// Package telemetry provides the repo's stdlib-only observability
// primitives: atomic counters, fixed-bucket log-spaced histograms for
// query latency and per-query work, and a phase-trace recorder for
// training. The package has no dependencies on the rest of the stack;
// core, the serving mode, and the CLI all consume it through the
// Recorder interface, so the density-classification hot path pays
// nothing when telemetry is off (the no-op recorder) and two time reads
// plus a handful of atomic adds when it is on.
package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is an atomic monotonic counter. The zero value is ready to
// use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// QuerySample is the telemetry of one classification or density query:
// its wall-clock latency and the work its traversal performed.
type QuerySample struct {
	Latency time.Duration
	// PointKernels and BoundKernels mirror core.QueryStats: kernel
	// evaluations against individual points and against bounding boxes.
	PointKernels int64
	BoundKernels int64
	// Nodes counts k-d tree nodes expanded.
	Nodes int64
	// GridChecked reports whether the hypergrid cache was consulted;
	// GridHit whether it answered the query outright.
	GridChecked bool
	GridHit     bool
	// SamplingRounds counts far-field adaptive sampling rounds and
	// SampledPoints the kernel evaluations spent inside them (both zero
	// for tree-backend queries). SampledPoints is a subset of
	// PointKernels: the remainder is the exact near-phase work.
	SamplingRounds int64
	SampledPoints  int64
}

// Kernels returns total kernel evaluations, point and bound combined.
func (s QuerySample) Kernels() int64 { return s.PointKernels + s.BoundKernels }

// Span names one bounded phase of work — a bootstrap round, a training
// density pass, an index build — with its duration and the work it
// performed. Spans are the unit of the phase-level training trace.
type Span struct {
	Name     string
	Duration time.Duration
	// Kernels counts kernel evaluations spent in the phase (0 for pure
	// index/grid construction phases).
	Kernels int64
	// Items counts the phase's work items: sample rows scored, points
	// indexed.
	Items int64
	// Workers is the goroutine budget the phase ran with (1 when
	// single-threaded, 0 for phases that predate the field or have no
	// fan-out).
	Workers int
}

// String renders the span as one trace line.
func (s Span) String() string {
	line := fmt.Sprintf("%-22s %12v  kernels=%-10d items=%d", s.Name, s.Duration.Round(time.Microsecond), s.Kernels, s.Items)
	if s.Workers > 0 {
		line += fmt.Sprintf("  workers=%d", s.Workers)
	}
	return line
}

// Recorder receives telemetry from the classification stack. Hot-path
// call sites gate every sample behind Enabled(), so implementations
// must keep Enabled cheap (an atomic load); RecordQuery runs on the
// query path and must not block.
type Recorder interface {
	// Enabled reports whether the recorder wants samples. Call sites
	// skip timing and sample construction entirely when it is false.
	Enabled() bool
	// RecordQuery records one query's latency and work.
	RecordQuery(QuerySample)
	// RecordSpan records one named phase of batch work.
	RecordSpan(Span)
}

// Nop is the default recorder: permanently disabled, records nothing,
// allocates nothing.
type Nop struct{}

// Enabled always returns false.
func (Nop) Enabled() bool { return false }

// RecordQuery discards the sample.
func (Nop) RecordQuery(QuerySample) {}

// RecordSpan discards the span.
func (Nop) RecordSpan(Span) {}

// maxSpans bounds the trace a registry retains; spans beyond it are
// counted in Snapshot.SpansDropped rather than silently lost.
const maxSpans = 4096

// Registry is the standard Recorder: lock-free counters and histograms
// for the query path, a mutex-guarded span list for phase traces. Safe
// for concurrent use. Construct with NewRegistry.
type Registry struct {
	enabled atomic.Bool

	queries    Counter
	gridHits   Counter
	gridMisses Counter

	samplingRounds Counter
	samplingPoints Counter
	nearKernels    Counter
	farKernels     Counter

	// Batch-engine counters: batches counts flushes of the server's
	// coalescer (and direct large-body batch executions), and every query
	// routed through it lands in exactly one of coalescedQueries (flush
	// merged rows from >1 request) or directQueries (single-request
	// batch). batchSize observes rows per flush.
	batches          Counter
	coalescedQueries Counter
	directQueries    Counter
	batchSize        Histogram

	latencyNS Histogram
	kernels   Histogram
	nodes     Histogram

	// flight, when attached, extends the registry into a TraceSink: the
	// query path asks TraceEnabled() once per query and only builds a
	// QueryTrace when a recorder is present and switched on.
	flight atomic.Pointer[FlightRecorder]

	mu           sync.Mutex
	spans        []Span
	spansDropped int64
}

// NewRegistry returns an enabled registry.
func NewRegistry() *Registry {
	r := &Registry{}
	r.enabled.Store(true)
	return r
}

// Default is the process-wide registry: the CLI's -serve and -stats
// modes record into it, and tkdc.Metrics() snapshots it.
var Default = NewRegistry()

// Enabled reports whether the registry is accepting samples.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// SetEnabled toggles sample collection without detaching the recorder.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// AttachFlightRecorder wires a flight recorder into the registry so the
// query path sees it through the TraceSink interface. Pass nil to
// detach.
func (r *Registry) AttachFlightRecorder(f *FlightRecorder) { r.flight.Store(f) }

// Flight returns the attached flight recorder, or nil.
func (r *Registry) Flight() *FlightRecorder { return r.flight.Load() }

// TraceEnabled implements TraceSink: per-query tracing is on only when
// the registry itself is enabled and an enabled flight recorder is
// attached. Two atomic loads on the hot path.
func (r *Registry) TraceEnabled() bool {
	if !r.enabled.Load() {
		return false
	}
	f := r.flight.Load()
	return f != nil && f.Enabled()
}

// StartTrace implements TraceSink by delegating to the attached flight
// recorder (nil when none is attached — callers gate on TraceEnabled).
func (r *Registry) StartTrace() *QueryTrace {
	if f := r.flight.Load(); f != nil {
		return f.StartTrace()
	}
	return nil
}

// FinishTrace implements TraceSink.
func (r *Registry) FinishTrace(t *QueryTrace) {
	if f := r.flight.Load(); f != nil {
		f.FinishTrace(t)
	}
}

// RecordQuery folds one query into the counters and histograms.
func (r *Registry) RecordQuery(s QuerySample) {
	if !r.enabled.Load() {
		return
	}
	r.queries.Inc()
	if s.GridChecked {
		if s.GridHit {
			r.gridHits.Inc()
		} else {
			r.gridMisses.Inc()
		}
	}
	if s.SamplingRounds > 0 {
		r.samplingRounds.Add(s.SamplingRounds)
	}
	if s.SampledPoints > 0 {
		r.samplingPoints.Add(s.SampledPoints)
		r.farKernels.Add(s.SampledPoints)
		r.nearKernels.Add(s.PointKernels - s.SampledPoints)
	} else {
		r.nearKernels.Add(s.PointKernels)
	}
	r.latencyNS.Observe(int64(s.Latency))
	r.kernels.Observe(s.Kernels())
	r.nodes.Observe(s.Nodes)
}

// RecordBatch folds one batch-engine flush into the batch counters:
// rows is the number of query rows the flush executed, coalesced
// reports whether they were merged from more than one request. Like
// RecordQuery it is lock-free and safe on the serving hot path.
func (r *Registry) RecordBatch(rows int64, coalesced bool) {
	if !r.enabled.Load() {
		return
	}
	r.batches.Inc()
	r.batchSize.Observe(rows)
	if coalesced {
		r.coalescedQueries.Add(rows)
	} else {
		r.directQueries.Add(rows)
	}
}

// RecordSpan appends one phase span to the trace, keeping at most
// maxSpans.
func (r *Registry) RecordSpan(s Span) {
	if !r.enabled.Load() {
		return
	}
	r.mu.Lock()
	if len(r.spans) < maxSpans {
		r.spans = append(r.spans, s)
	} else {
		r.spansDropped++
	}
	r.mu.Unlock()
}

// Snapshot copies the registry's current state. It may be taken while
// queries are in flight; histograms and counters are read atomically
// per field.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Queries:        r.queries.Load(),
		GridHits:       r.gridHits.Load(),
		GridMisses:     r.gridMisses.Load(),
		SamplingRounds: r.samplingRounds.Load(),
		SampledPoints:  r.samplingPoints.Load(),
		NearKernels:    r.nearKernels.Load(),
		FarKernels:     r.farKernels.Load(),

		Batches:          r.batches.Load(),
		CoalescedQueries: r.coalescedQueries.Load(),
		DirectQueries:    r.directQueries.Load(),
		BatchSize:        r.batchSize.Snapshot(),

		LatencyNS: r.latencyNS.Snapshot(),
		Kernels:   r.kernels.Snapshot(),
		Nodes:     r.nodes.Snapshot(),
	}
	r.mu.Lock()
	s.Spans = append([]Span(nil), r.spans...)
	s.SpansDropped = r.spansDropped
	r.mu.Unlock()
	return s
}

// Reset zeroes every counter, histogram, and the span trace.
func (r *Registry) Reset() {
	r.queries.v.Store(0)
	r.gridHits.v.Store(0)
	r.gridMisses.v.Store(0)
	r.samplingRounds.v.Store(0)
	r.samplingPoints.v.Store(0)
	r.nearKernels.v.Store(0)
	r.farKernels.v.Store(0)
	r.batches.v.Store(0)
	r.coalescedQueries.v.Store(0)
	r.directQueries.v.Store(0)
	r.batchSize.reset()
	r.latencyNS.reset()
	r.kernels.reset()
	r.nodes.reset()
	r.mu.Lock()
	r.spans = nil
	r.spansDropped = 0
	r.mu.Unlock()
}

// Snapshot is a coherent copy of a registry: per-query histograms for
// latency and work, grid cache counters, and the phase trace.
type Snapshot struct {
	Queries    int64
	GridHits   int64
	GridMisses int64

	// SamplingRounds and SampledPoints aggregate the sampling backend's
	// far-field work; NearKernels/FarKernels split total point-kernel
	// evaluations into the exact near phase (all tree-backend work lands
	// here too) and the sampled far field.
	SamplingRounds int64
	SampledPoints  int64
	NearKernels    int64
	FarKernels     int64

	// Batches counts batch-engine flushes; CoalescedQueries and
	// DirectQueries split the rows those flushes executed by whether the
	// flush merged rows from more than one request. BatchSize observes
	// rows per flush.
	Batches          int64
	CoalescedQueries int64
	DirectQueries    int64
	BatchSize        HistogramSnapshot

	// LatencyNS holds query latencies in nanoseconds; Kernels and Nodes
	// hold kernel evaluations and tree nodes expanded per query.
	LatencyNS HistogramSnapshot
	Kernels   HistogramSnapshot
	Nodes     HistogramSnapshot

	Spans        []Span
	SpansDropped int64
}

// Merge adds another snapshot's counters, histograms, and spans into s.
func (s *Snapshot) Merge(o Snapshot) {
	s.Queries += o.Queries
	s.GridHits += o.GridHits
	s.GridMisses += o.GridMisses
	s.SamplingRounds += o.SamplingRounds
	s.SampledPoints += o.SampledPoints
	s.NearKernels += o.NearKernels
	s.FarKernels += o.FarKernels
	s.Batches += o.Batches
	s.CoalescedQueries += o.CoalescedQueries
	s.DirectQueries += o.DirectQueries
	s.BatchSize.Merge(o.BatchSize)
	s.LatencyNS.Merge(o.LatencyNS)
	s.Kernels.Merge(o.Kernels)
	s.Nodes.Merge(o.Nodes)
	s.Spans = append(s.Spans, o.Spans...)
	s.SpansDropped += o.SpansDropped
}

// String renders the snapshot as a human-readable summary: query
// counters, latency and work percentiles, and the phase trace.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "queries %d (grid hits %d, misses %d)\n", s.Queries, s.GridHits, s.GridMisses)
	if s.SamplingRounds > 0 || s.FarKernels > 0 {
		fmt.Fprintf(&b, "sampling: %d rounds, %d sampled points (near/far kernel split %d/%d)\n",
			s.SamplingRounds, s.SampledPoints, s.NearKernels, s.FarKernels)
	}
	if s.Batches > 0 {
		fmt.Fprintf(&b, "batches: %d flushes, %d coalesced / %d direct queries\n",
			s.Batches, s.CoalescedQueries, s.DirectQueries)
	}
	dur := func(v float64) string { return time.Duration(v).Round(10 * time.Nanosecond).String() }
	cnt := func(v float64) string { return fmt.Sprintf("%.0f", v) }
	fmt.Fprintf(&b, "query latency:  %s\n", s.LatencyNS.summary(dur))
	fmt.Fprintf(&b, "kernels/query:  %s\n", s.Kernels.summary(cnt))
	fmt.Fprintf(&b, "nodes/query:    %s\n", s.Nodes.summary(cnt))
	if len(s.Spans) > 0 {
		b.WriteString("phases:\n")
		for _, sp := range s.Spans {
			fmt.Fprintf(&b, "  %s\n", sp)
		}
	}
	if s.SpansDropped > 0 {
		fmt.Fprintf(&b, "  (+%d spans dropped)\n", s.SpansDropped)
	}
	return b.String()
}

// WriteMetrics renders the snapshot in the plain-text exposition format
// served at /metrics: `tkdc_*` counters and cumulative-bucket
// histograms.
func (s Snapshot) WriteMetrics(b *strings.Builder) {
	fmt.Fprintf(b, "# TYPE tkdc_queries_total counter\ntkdc_queries_total %d\n", s.Queries)
	fmt.Fprintf(b, "# TYPE tkdc_grid_hits_total counter\ntkdc_grid_hits_total %d\n", s.GridHits)
	fmt.Fprintf(b, "# TYPE tkdc_grid_misses_total counter\ntkdc_grid_misses_total %d\n", s.GridMisses)
	fmt.Fprintf(b, "# TYPE tkdc_sampling_rounds_total counter\ntkdc_sampling_rounds_total %d\n", s.SamplingRounds)
	fmt.Fprintf(b, "# TYPE tkdc_sampling_points_total counter\ntkdc_sampling_points_total %d\n", s.SampledPoints)
	fmt.Fprintf(b, "# TYPE tkdc_kernels_near_total counter\ntkdc_kernels_near_total %d\n", s.NearKernels)
	fmt.Fprintf(b, "# TYPE tkdc_kernels_far_total counter\ntkdc_kernels_far_total %d\n", s.FarKernels)
	fmt.Fprintf(b, "# TYPE tkdc_batch_total counter\ntkdc_batch_total %d\n", s.Batches)
	fmt.Fprintf(b, "# TYPE tkdc_coalesced_queries_total counter\ntkdc_coalesced_queries_total %d\n", s.CoalescedQueries)
	fmt.Fprintf(b, "# TYPE tkdc_direct_queries_total counter\ntkdc_direct_queries_total %d\n", s.DirectQueries)
	s.LatencyNS.writeExposition(b, "tkdc_query_latency_ns")
	s.Kernels.writeExposition(b, "tkdc_query_kernels")
	s.Nodes.writeExposition(b, "tkdc_query_nodes")
	s.BatchSize.writeExposition(b, "tkdc_batch_size")
}
