package bench

import (
	"fmt"
	"time"

	"tkdc/internal/core"
	"tkdc/internal/dataset"
	"tkdc/internal/kdtree"
)

// factorConfig is one optimization configuration of Figures 12/16.
type factorConfig struct {
	name string
	mut  func(*core.Config)
}

// factorData builds the 4-d tmy3-like workload both factor analyses use
// (the paper uses 500k rows of 4-d tmy3).
func factorData(opts Options) ([][]float64, error) {
	n := opts.scaled(500_000, 8_000)
	return dataset.TakeColumns(dataset.TMY3(n, opts.Seed), 4)
}

// measureFactor trains with the given config and measures the
// classification pass over the dataset (training excluded, matching the
// paper's Figure 12 methodology).
func measureFactor(data [][]float64, opts Options, mut func(*core.Config)) (pointsPerSec, kernelsPerPoint float64, err error) {
	cfg := opts.config()
	mut(&cfg)
	clf, err := core.Train(data, cfg)
	if err != nil {
		return 0, 0, err
	}
	q := opts.MaxQueries
	if q > len(data) {
		q = len(data)
	}
	// The no-pruning configurations are Θ(n) per query; cap harder.
	if cfg.DisableThresholdRule && q > 300 {
		q = 300
	}
	before := clf.Stats()
	start := time.Now()
	for i := 0; i < q; i++ {
		if _, err := clf.Score(data[i]); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start).Seconds()
	after := clf.Stats()
	// Grid hits perform no kernel evaluations; they still count as
	// classified points.
	kernels := float64(after.Kernels() - before.Kernels())
	return float64(q) / elapsed, kernels / float64(q), nil
}

// Figure12 is the cumulative factor analysis: optimizations are enabled
// one at a time on top of a tolerance-less tree-traversal baseline.
func Figure12(opts Options) ([]Table, error) {
	opts = opts.normalized()
	data, err := factorData(opts)
	if err != nil {
		return nil, err
	}
	configs := []factorConfig{
		{"Baseline", func(c *core.Config) {
			c.DisableThresholdRule = true
			c.DisableToleranceRule = true
			c.DisableGrid = true
			c.Split = kdtree.SplitMedian
		}},
		{"+Threshold", func(c *core.Config) {
			c.DisableToleranceRule = true
			c.DisableGrid = true
			c.Split = kdtree.SplitMedian
		}},
		{"+Tolerance", func(c *core.Config) {
			c.DisableGrid = true
			c.Split = kdtree.SplitMedian
		}},
		{"+Equiwidth", func(c *core.Config) {
			c.DisableGrid = true
		}},
		{"+Grid", func(c *core.Config) {}},
	}
	t := Table{
		Title:   "Figure 12: Cumulative factor analysis (tmy3-like, d=4, classification only)",
		Columns: []string{"configuration", "points/s", "kernels/pt"},
		Notes:   []string{"paper shape: +Threshold delivers the bulk (~500x); each later optimization adds an increment"},
	}
	for _, fc := range configs {
		pps, kpp, err := measureFactor(data, opts, fc.mut)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", fc.name, err)
		}
		t.AddRow(fc.name, fmtRate(pps), fmtCount(kpp))
	}
	t.Fprint(opts.Out)
	return []Table{t}, nil
}

// Figure16 is the lesion analysis: each optimization is removed
// individually from the complete implementation.
func Figure16(opts Options) ([]Table, error) {
	opts = opts.normalized()
	data, err := factorData(opts)
	if err != nil {
		return nil, err
	}
	configs := []factorConfig{
		{"Complete", func(c *core.Config) {}},
		{"-Threshold", func(c *core.Config) { c.DisableThresholdRule = true }},
		{"-Tolerance", func(c *core.Config) { c.DisableToleranceRule = true }},
		{"-Equiwidth", func(c *core.Config) { c.Split = kdtree.SplitMedian }},
		{"-Grid", func(c *core.Config) { c.DisableGrid = true }},
	}
	t := Table{
		Title:   "Figure 16: Lesion analysis (tmy3-like, d=4, classification only)",
		Columns: []string{"configuration", "points/s", "kernels/pt"},
		Notes:   []string{"paper shape: removing the threshold rule erases nearly all gains; every optimization contributes"},
	}
	for _, fc := range configs {
		pps, kpp, err := measureFactor(data, opts, fc.mut)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", fc.name, err)
		}
		t.AddRow(fc.name, fmtRate(pps), fmtCount(kpp))
	}
	t.Fprint(opts.Out)
	return []Table{t}, nil
}
