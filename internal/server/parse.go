// Flat request parsing: the serving hot path decodes CSV/JSON bodies
// straight into a pooled flat row-major buffer instead of allocating a
// []float64 per row. The fast scanners are deliberately conservative —
// anything outside plain machine-generated bodies (unicode whitespace,
// unusual JSON shapes, malformed numbers) falls back to the original
// parsePoints path, which keeps acceptance and error text identical to
// the pre-batching handler while the common case allocates almost
// nothing.
package server

import (
	"bytes"
	"errors"
	"strconv"
	"strings"
	"sync"
)

// errFallback routes a body the fast scanners will not vouch for to the
// slow, exact-compatibility parser.
var errFallback = errors.New("server: fall back to slow parse")

// Pooled scratch: request-body bytes and the flat coordinate buffer.
// Buffers past the retention caps are dropped rather than pooled so one
// huge request can't pin memory for the rest of the process.
const (
	maxPooledBodyBytes = 1 << 20
	maxPooledFlatLen   = 1 << 17
)

var (
	bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}
	flatPool = sync.Pool{New: func() any { return new([]float64) }}
)

func getBodyBuf() *bytes.Buffer {
	b := bodyPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

func putBodyBuf(b *bytes.Buffer) {
	if b.Cap() <= maxPooledBodyBytes {
		bodyPool.Put(b)
	}
}

func getFlatBuf() []float64 {
	return (*flatPool.Get().(*[]float64))[:0]
}

func putFlatBuf(f []float64) {
	if cap(f) <= maxPooledFlatLen {
		f = f[:0]
		flatPool.Put(&f)
	}
}

// parseRowsFlat decodes a CSV/JSON row body into flat row-major form,
// appending to dst (typically a pooled buffer) and returning the grown
// buffer plus the row count and width. It accepts exactly the bodies
// parsePoints accepts: the fast scanners cover clean numeric CSV and
// the two supported JSON shapes, and everything else — including every
// error case — is delegated to parsePoints so callers observe identical
// errors. Ragged JSON rows, which flat storage cannot represent, error
// here with the row index.
func parseRowsFlat(contentType string, body []byte, dst []float64) (flat []float64, n, dim int, err error) {
	trimmed := bytes.TrimSpace(body)
	if len(trimmed) == 0 {
		return dst, 0, 0, errors.New("empty request body")
	}
	isJSON := strings.Contains(contentType, "json") || trimmed[0] == '{' || trimmed[0] == '['
	if isJSON {
		flat, n, dim, err = parseJSONFlat(trimmed, dst)
	} else {
		flat, n, dim, err = parseCSVFlat(body, dst)
	}
	if err == errFallback {
		rows, perr := parsePoints(contentType, body)
		if perr != nil {
			return dst, 0, 0, perr
		}
		return packRows(rows, dst)
	}
	return flat, n, dim, err
}

// packRows flattens slice-of-rows output from the compatibility parser,
// enforcing the rectangularity flat storage needs.
func packRows(rows [][]float64, dst []float64) (flat []float64, n, dim int, err error) {
	if len(rows) == 0 {
		return dst, 0, 0, nil
	}
	dim = len(rows[0])
	for i, row := range rows {
		if len(row) != dim {
			return dst, 0, 0, errRowWidth(i, len(row), dim)
		}
		dst = append(dst, row...)
	}
	return dst, len(rows), dim, nil
}

func errRowWidth(i, got, want int) error {
	return errors.New("row " + strconv.Itoa(i) + " has " + strconv.Itoa(got) + " values, want " + strconv.Itoa(want))
}

// asciiTrim trims the ASCII whitespace bytes strings.TrimSpace would;
// fields containing other (unicode) whitespace fail ParseFloat and punt
// to the fallback parser.
func asciiTrim(b []byte) []byte {
	lo, hi := 0, len(b)
	for lo < hi && isASCIISpace(b[lo]) {
		lo++
	}
	for hi > lo && isASCIISpace(b[hi-1]) {
		hi--
	}
	return b[lo:hi]
}

func isASCIISpace(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\r', '\v', '\f':
		return true
	}
	return false
}

// parseCSVFlat scans clean numeric CSV straight into dst: blank lines
// skipped, consistent column counts, every field a plain decimal
// float. Anything else — a header line, unicode whitespace, a
// column-count mismatch, a line past dataset.ReadCSV's scanner limit —
// returns errFallback so the slow path rules on it with its exact
// acceptance and error text.
func parseCSVFlat(body []byte, dst []float64) (flat []float64, n, dim int, err error) {
	for len(body) > 0 {
		var line []byte
		if i := bytes.IndexByte(body, '\n'); i >= 0 {
			line, body = body[:i], body[i+1:]
		} else {
			line, body = body, nil
		}
		if len(line) > 1<<24 {
			// dataset.ReadCSV's scanner would reject this line.
			return dst, 0, 0, errFallback
		}
		line = asciiTrim(line)
		if len(line) == 0 {
			// Blank line (ReadCSV skips it too). Lines of pure unicode
			// whitespace survive asciiTrim, fail the field parse below,
			// and fall back to the exact-compatibility path.
			continue
		}
		cols := 0
		rowStart := len(dst)
		ok := true
		// Field split mirrors strings.Split: a trailing comma yields a
		// final empty field, which fails to parse just as it does there.
		rest := line
		for {
			var field []byte
			last := false
			if i := bytes.IndexByte(rest, ','); i >= 0 {
				field, rest = rest[:i], rest[i+1:]
			} else {
				field, last = rest, true
			}
			field = asciiTrim(field)
			if !plainNumber(field) {
				ok = false
				break
			}
			v, perr := strconv.ParseFloat(string(field), 64)
			if perr != nil {
				ok = false
				break
			}
			dst = append(dst, v)
			cols++
			if last {
				break
			}
		}
		if !ok {
			// Could be a header (ReadCSV skips a non-numeric physical
			// first line), could be garbage; the fast path can't always
			// tell them apart the way ReadCSV's more liberal ParseFloat
			// would, so it never guesses and defers the whole body.
			dst = dst[:rowStart]
			return dst, 0, 0, errFallback
		}
		if n == 0 {
			dim = cols
		} else if cols != dim {
			return dst, 0, 0, errFallback
		}
		n++
	}
	if n == 0 {
		return dst, 0, 0, errFallback // "no data rows" via the slow path
	}
	return dst, n, dim, nil
}

// plainNumber reports whether the field uses only the characters a CSV
// float may contain. ParseFloat is more liberal than the original
// parser in a few spots (hex floats, "Inf", "NaN"); restricting the
// alphabet keeps the fast path's acceptance a subset of the slow
// path's.
func plainNumber(b []byte) bool {
	for _, c := range b {
		switch {
		case c >= '0' && c <= '9':
		case c == '+' || c == '-' || c == '.' || c == 'e' || c == 'E':
		default:
			return false
		}
	}
	return len(b) > 0
}

// jsonFlatScanner walks the two supported JSON body shapes with zero
// allocation. Anything unexpected aborts with errFallback.
type jsonFlatScanner struct {
	b   []byte
	pos int
}

func (s *jsonFlatScanner) skipWS() {
	for s.pos < len(s.b) {
		switch s.b[s.pos] {
		case ' ', '\t', '\n', '\r':
			s.pos++
		default:
			return
		}
	}
}

func (s *jsonFlatScanner) peek() byte {
	if s.pos >= len(s.b) {
		return 0
	}
	return s.b[s.pos]
}

// expect consumes c or fails.
func (s *jsonFlatScanner) expect(c byte) bool {
	if s.pos < len(s.b) && s.b[s.pos] == c {
		s.pos++
		return true
	}
	return false
}

// literal consumes the exact bytes of lit.
func (s *jsonFlatScanner) literal(lit string) bool {
	if len(s.b)-s.pos < len(lit) || string(s.b[s.pos:s.pos+len(lit)]) != lit {
		return false
	}
	s.pos += len(lit)
	return true
}

// number consumes one strict JSON number and returns its value.
func (s *jsonFlatScanner) number() (float64, bool) {
	start := s.pos
	if s.peek() == '-' {
		s.pos++
	}
	// Integer part: 0 or [1-9][0-9]*.
	switch c := s.peek(); {
	case c == '0':
		s.pos++
	case c >= '1' && c <= '9':
		for c := s.peek(); c >= '0' && c <= '9'; c = s.peek() {
			s.pos++
		}
	default:
		return 0, false
	}
	if s.peek() == '.' {
		s.pos++
		digits := 0
		for c := s.peek(); c >= '0' && c <= '9'; c = s.peek() {
			s.pos++
			digits++
		}
		if digits == 0 {
			return 0, false
		}
	}
	if c := s.peek(); c == 'e' || c == 'E' {
		s.pos++
		if c := s.peek(); c == '+' || c == '-' {
			s.pos++
		}
		digits := 0
		for c := s.peek(); c >= '0' && c <= '9'; c = s.peek() {
			s.pos++
			digits++
		}
		if digits == 0 {
			return 0, false
		}
	}
	// string(...) of a small non-escaping byte slice stays on the stack.
	v, err := strconv.ParseFloat(string(s.b[start:s.pos]), 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// rows consumes `[ [n, n, ...], ... ]`, appending to dst.
func (s *jsonFlatScanner) rows(dst []float64) (flat []float64, n, dim int, ok bool) {
	if !s.expect('[') {
		return dst, 0, 0, false
	}
	s.skipWS()
	if s.expect(']') {
		return dst, 0, 0, true
	}
	for {
		s.skipWS()
		if !s.expect('[') {
			return dst, 0, 0, false
		}
		cols := 0
		s.skipWS()
		if !s.expect(']') {
			for {
				s.skipWS()
				v, numOK := s.number()
				if !numOK {
					return dst, 0, 0, false
				}
				dst = append(dst, v)
				cols++
				s.skipWS()
				if s.expect(']') {
					break
				}
				if !s.expect(',') {
					return dst, 0, 0, false
				}
			}
		}
		if n == 0 {
			dim = cols
		} else if cols != dim {
			// Ragged rows are valid JSON the old path accepted (the model
			// rejected them later); let the fallback produce that flow.
			return dst, 0, 0, false
		}
		n++
		s.skipWS()
		if s.expect(']') {
			return dst, n, dim, true
		}
		if !s.expect(',') {
			return dst, 0, 0, false
		}
	}
}

// parseJSONFlat scans the two shapes parsePoints accepts — a bare
// [[...]] array and {"points": [[...]]} — into dst.
func parseJSONFlat(trimmed []byte, dst []float64) (flat []float64, n, dim int, err error) {
	s := &jsonFlatScanner{b: trimmed}
	mark := len(dst)
	switch s.peek() {
	case '[':
		flat, n, dim, ok := s.rows(dst)
		s.skipWS()
		if !ok || s.pos != len(s.b) {
			return flat[:mark], 0, 0, errFallback
		}
		return flat, n, dim, nil
	case '{':
		s.pos++
		s.skipWS()
		if !s.literal(`"points"`) {
			return dst, 0, 0, errFallback
		}
		s.skipWS()
		if !s.expect(':') {
			return dst, 0, 0, errFallback
		}
		s.skipWS()
		flat, n, dim, ok := s.rows(dst)
		if !ok {
			return flat[:mark], 0, 0, errFallback
		}
		s.skipWS()
		if !s.expect('}') {
			return flat[:mark], 0, 0, errFallback
		}
		s.skipWS()
		if s.pos != len(s.b) {
			return flat[:mark], 0, 0, errFallback
		}
		return flat, n, dim, nil
	}
	return dst, 0, 0, errFallback
}
