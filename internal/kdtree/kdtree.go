// Package kdtree implements the spatial index tKDC traverses (Sections
// 3.1–3.2 and 3.7 of the paper): a k-d tree whose every node tracks the
// bounding box and point count of its region, in the style of
// multi-resolution k-d trees (Deng & Moore).
//
// The tree is an index-permutation tree over flat storage: Build copies
// the input points.Store once and reorders the copy in place so that
// every node — leaf or interior — owns a contiguous row range [Lo, Hi)
// of the buffer. A leaf expansion is therefore a single contiguous sweep
// of Count()*Dim float64s, with no per-point pointer chase.
//
// The nodes themselves are a structure-of-arrays arena rather than a
// pointer graph: one contiguous []NodeMeta slab holds every node's row
// range and child indices, and one flat []float64 slab holds every
// node's bounding box (Min then Max, 2·Dim values per node). Nodes are
// laid out in BFS order, so a parent and its two children — the three
// boxes every refinement step touches — are near each other in memory.
// Traversals address nodes by int32 id; BoundsSqDist computes the
// min and max scaled distances to a node's box in one fused sweep.
//
// A pointer-based Node view (Tree.Root) is materialized on demand for
// callers that prefer recursive traversal over index arithmetic; its
// Min/Max slices alias the arena's box slab.
//
// Construction is level-synchronized BFS: the nodes of one depth occupy
// a contiguous id range, and expanding a node — computing its bounding
// box and partitioning its rows — touches only that node's own row
// range, box slot, and result slot. With Options.Workers ≥ 2 the
// expansions of a level therefore run concurrently; only the child
// append, which assigns arena ids, is serialized in id order. Every
// split is a deterministic function of the node's row range, so the
// arena slabs and the reordered point buffer are bit-identical at any
// worker count.
//
// Two split rules are provided. The paper's default for tKDC is the
// "equi-width" trimmed midpoint — split at (x⁽¹⁰⁾ + x⁽⁹⁰⁾)/2, the midpoint
// of the 10th and 90th percentiles along the cycling axis — which
// identifies tightly constrained regions faster than balanced median
// splits when the kernel decays exponentially (Section 3.7). Median
// splitting is retained for the ablation study (Figures 12 and 16).
package kdtree

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"tkdc/internal/points"
)

// SplitRule selects how Build partitions points at each node.
type SplitRule int

const (
	// SplitEquiWidth splits at the trimmed midpoint (x⁽¹⁰⁾+x⁽⁹⁰⁾)/2 of the
	// node's points along the split axis (the paper's default for tKDC).
	SplitEquiWidth SplitRule = iota
	// SplitMedian splits at the median, producing a balanced tree (the
	// classic construction, used as the ablation baseline).
	SplitMedian
)

// String returns the rule's name.
func (r SplitRule) String() string {
	switch r {
	case SplitEquiWidth:
		return "equiwidth"
	case SplitMedian:
		return "median"
	default:
		return fmt.Sprintf("SplitRule(%d)", int(r))
	}
}

// DefaultLeafSize is the maximum number of points kept in a leaf when
// Options.LeafSize is zero.
const DefaultLeafSize = 32

// Options configures Build.
type Options struct {
	// LeafSize caps the number of points per leaf (DefaultLeafSize if 0).
	LeafSize int
	// Split selects the partitioning rule.
	Split SplitRule
	// Workers fans each BFS level's node expansions out across this many
	// goroutines. The built tree is bit-identical at any worker count;
	// values below 2 build single-threaded, and the count is clamped to
	// a small multiple of GOMAXPROCS.
	Workers int
}

// NoChild marks a leaf in NodeMeta.Left/Right.
const NoChild int32 = -1

// NodeMeta is one arena node: the contiguous row range [Lo, Hi) it owns
// in the tree's reordered flat buffer, and its children as arena ids
// (NoChild for leaves; interior nodes always have both children and the
// children partition the range). Sixteen bytes — four nodes per cache
// line.
type NodeMeta struct {
	Lo, Hi      int32
	Left, Right int32
}

// Tree is an immutable k-d tree over a point set. It is safe for
// concurrent readers once built.
type Tree struct {
	Dim  int
	Size int
	Opts Options
	// Pts is the tree's private build-time-reordered copy of the point
	// set: node ranges index into it, and Pts.Slab(lo, hi) is the
	// contiguous leaf scan. Readers must treat it as immutable.
	Pts *points.Store
	// Meta is the node arena in BFS order; id 0 is the root.
	Meta []NodeMeta
	// Boxes holds every node's bounding box in one slab: node id's Min
	// occupies Boxes[id·2d : id·2d+d] and its Max the following d values
	// (the tight box of the points under the node, not the splitting
	// hyperplanes — what makes the Equation 6 distance bounds tight).
	Boxes []float64

	// levels records the first arena id of each BFS level; because ids
	// are assigned breadth-first, a node's depth is the level whose id
	// range contains it (see Depth).
	levels []int32

	stats Stats

	rootOnce sync.Once
	root     *Node
}

// Node is the pointer view of one region of the index, materialized on
// demand by Tree.Root for callers that prefer recursive traversal.
// Min/Max alias the tree's box slab; Lo/Hi is the node's row range.
type Node struct {
	Min, Max []float64
	Lo, Hi   int
	Left     *Node
	Right    *Node
}

// Count returns the number of points under the node.
func (n *Node) Count() int { return n.Hi - n.Lo }

// IsLeaf reports whether the node's range is scanned directly.
func (n *Node) IsLeaf() bool { return n.Left == nil }

// Stats describes the shape of a built tree — the structural context
// behind per-query node-visit telemetry (a query visiting close to
// Nodes has degenerated to a full scan; MaxDepth bounds traversal stack
// behaviour).
type Stats struct {
	// Nodes counts all nodes, interior and leaf.
	Nodes int
	// Leaves counts leaf nodes.
	Leaves int
	// MaxDepth is the deepest node's depth, counting the root as 1.
	MaxDepth int
}

// Stats returns the tree's shape, computed once at Build.
func (t *Tree) Stats() Stats { return t.stats }

// IsLeaf reports whether arena node id is a leaf.
func (t *Tree) IsLeaf(id int32) bool { return t.Meta[id].Left < 0 }

// Count returns the number of points under arena node id.
func (t *Tree) Count(id int32) int {
	m := &t.Meta[id]
	return int(m.Hi - m.Lo)
}

// Children returns the child ids of arena node id (NoChild, NoChild for
// leaves).
func (t *Tree) Children(id int32) (left, right int32) {
	m := &t.Meta[id]
	return m.Left, m.Right
}

// Box returns views of arena node id's bounding box in the box slab.
// The slices alias the arena and must not be modified.
func (t *Tree) Box(id int32) (min, max []float64) {
	d := t.Dim
	off := int(id) * 2 * d
	return t.Boxes[off : off+d : off+d], t.Boxes[off+d : off+2*d : off+2*d]
}

// LeafFlat returns the contiguous flat view of arena node id's points —
// the batch a leaf expansion hands to kernel evaluation.
func (t *Tree) LeafFlat(id int32) []float64 {
	m := &t.Meta[id]
	return t.Pts.Slab(int(m.Lo), int(m.Hi))
}

// Leaf returns the contiguous flat view of the pointer-view node's
// points.
func (t *Tree) Leaf(n *Node) []float64 { return t.Pts.Slab(n.Lo, n.Hi) }

// BoundsSqDist returns the minimum and maximum bandwidth-scaled squared
// distances from x to arena node id's bounding box in one fused sweep:
// dmin = Σ_j clamp_j²·invH2_j (clamp_j the distance from x_j to
// [Min_j, Max_j], 0 inside) and dmax = Σ_j far_j²·invH2_j (far_j the
// distance to the farther face). One pass over the box slab produces
// both, where the pointer-era MinSqDist/MaxSqDist pair walked two
// slices twice; d=1 and d=2 (the paper's common low-dimensional case,
// Figures 7–9) are hand-unrolled.
func (t *Tree) BoundsSqDist(id int32, x, invH2 []float64) (dmin, dmax float64) {
	d := t.Dim
	off := int(id) * 2 * d
	switch d {
	case 1:
		lo, hi := t.Boxes[off], t.Boxes[off+1]
		return boundsDim(x[0], lo, hi, invH2[0])
	case 2:
		b := t.Boxes[off : off+4 : off+4]
		n0, f0 := boundsDim(x[0], b[0], b[2], invH2[0])
		n1, f1 := boundsDim(x[1], b[1], b[3], invH2[1])
		return n0 + n1, f0 + f1
	}
	lo := t.Boxes[off : off+d : off+d]
	hi := t.Boxes[off+d : off+2*d : off+2*d]
	x = x[:d]
	invH2 = invH2[:d]
	for j, xj := range x {
		n, f := boundsDim(xj, lo[j], hi[j], invH2[j])
		dmin += n
		dmax += f
	}
	return dmin, dmax
}

// boundsDim is the per-dimension term of BoundsSqDist: the scaled
// squared distances from coordinate x to the nearer and farther ends of
// [lo, hi]. The near clamp keeps the positional case analysis — a
// branchless max-of-differences variant measured ~10% slower at d=8
// (it trades the predictable inside/outside branches for two extra
// subtractions on every dimension).
func boundsDim(x, lo, hi, inv float64) (near, far float64) {
	var n float64
	switch {
	case x < lo:
		n = lo - x
	case x > hi:
		n = x - hi
	}
	f := x - lo
	if g := hi - x; g > f {
		f = g
	}
	return n * n * inv, f * f * inv
}

// MinSqDist returns the minimum bandwidth-scaled squared distance from x
// to the node's bounding box: Σ_j clamp_j²·invH2_j where clamp_j is the
// distance from x_j to the interval [Min_j, Max_j] (0 inside).
func (n *Node) MinSqDist(x, invH2 []float64) float64 {
	s := 0.0
	for j, xj := range x {
		var d float64
		switch {
		case xj < n.Min[j]:
			d = n.Min[j] - xj
		case xj > n.Max[j]:
			d = xj - n.Max[j]
		default:
			continue
		}
		s += d * d * invH2[j]
	}
	return s
}

// MaxSqDist returns the maximum bandwidth-scaled squared distance from x
// to any point of the node's bounding box (the farthest corner).
func (n *Node) MaxSqDist(x, invH2 []float64) float64 {
	s := 0.0
	for j, xj := range x {
		d := math.Max(math.Abs(xj-n.Min[j]), math.Abs(xj-n.Max[j]))
		s += d * d * invH2[j]
	}
	return s
}

// Root materializes (once) and returns the pointer view of the arena:
// a conventional linked Node tree whose Min/Max slices alias the box
// slab. External consumers and baselines traverse this view; the hot
// paths in internal/core address the arena directly by id.
func (t *Tree) Root() *Node {
	t.rootOnce.Do(func() {
		nodes := make([]Node, len(t.Meta))
		d := t.Dim
		for id := range t.Meta {
			m := &t.Meta[id]
			off := id * 2 * d
			n := &nodes[id]
			n.Min = t.Boxes[off : off+d : off+d]
			n.Max = t.Boxes[off+d : off+2*d : off+2*d]
			n.Lo, n.Hi = int(m.Lo), int(m.Hi)
			if m.Left >= 0 {
				n.Left = &nodes[m.Left]
				n.Right = &nodes[m.Right]
			}
		}
		t.root = &nodes[0]
	})
	return t.root
}

// Build constructs a k-d tree over the given store. The store is copied
// once and the copy reordered in place, so the caller's buffer is never
// mutated or referenced. All coordinates must be finite.
func Build(pts *points.Store, opts Options) (*Tree, error) {
	if pts.Len() == 0 {
		return nil, errors.New("kdtree: no points")
	}
	if pts.Dim == 0 {
		return nil, errors.New("kdtree: zero-dimensional points")
	}
	if pts.Len() > math.MaxInt32 {
		return nil, fmt.Errorf("kdtree: %d points exceed the int32 arena limit", pts.Len())
	}
	if err := pts.CheckFinite(); err != nil {
		return nil, fmt.Errorf("kdtree: %w", err)
	}
	if opts.LeafSize <= 0 {
		opts.LeafSize = DefaultLeafSize
	}
	t := &Tree{Dim: pts.Dim, Size: pts.Len(), Opts: opts, Pts: pts.Clone()}

	// Rough arena capacity: a tree with b-sized leaves over n points has
	// at most 2·ceil(n/b)−1 nodes when splits stay non-degenerate.
	capGuess := 2*((t.Size+opts.LeafSize-1)/opts.LeafSize) - 1
	if capGuess < 1 {
		capGuess = 1
	}
	t.Meta = make([]NodeMeta, 1, capGuess)
	t.Meta[0] = NodeMeta{Lo: 0, Hi: int32(t.Size), Left: NoChild, Right: NoChild}
	t.Boxes = make([]float64, 0, capGuess*2*t.Dim)

	// Level-synchronized BFS: nodes enter the arena in the order they
	// are created, so id order is breadth-first and each depth occupies
	// the contiguous id range [lvlStart, lvlEnd). Expanding the nodes of
	// a level (boxes + row partitions) touches disjoint state per node
	// and fans out across workers; appending the resulting children —
	// the only id-assigning step — happens afterwards in id order, which
	// reproduces the sequential arena exactly.
	workers := buildWorkers(opts.Workers)
	var mids []int32
	for lvlStart, depth := 0, 0; lvlStart < len(t.Meta); depth++ {
		lvlEnd := len(t.Meta)
		t.levels = append(t.levels, int32(lvlStart))
		t.stats.MaxDepth = depth + 1
		// Extend the box slab to cover the level up front: node id's box
		// lives at the fixed offset id·2d, so workers write disjoint
		// regions of the grown slab.
		t.Boxes = append(t.Boxes, make([]float64, (lvlEnd-lvlStart)*2*t.Dim)...)
		if cap(mids) < lvlEnd-lvlStart {
			mids = make([]int32, lvlEnd-lvlStart)
		}
		mids = mids[:lvlEnd-lvlStart]
		t.expandLevel(lvlStart, lvlEnd, depth, workers, mids)

		for id := lvlStart; id < lvlEnd; id++ {
			mid := mids[id-lvlStart]
			if mid < 0 {
				continue
			}
			left := int32(len(t.Meta))
			t.Meta = append(t.Meta,
				NodeMeta{Lo: t.Meta[id].Lo, Hi: mid, Left: NoChild, Right: NoChild},
				NodeMeta{Lo: mid, Hi: t.Meta[id].Hi, Left: NoChild, Right: NoChild},
			)
			t.Meta[id].Left = left
			t.Meta[id].Right = left + 1
		}
		lvlStart = lvlEnd
	}
	t.stats.Nodes = len(t.Meta)
	t.stats.Leaves = (len(t.Meta) + 1) / 2

	return t, nil
}

// buildWorkers clamps the configured build fan-out to a small multiple
// of GOMAXPROCS (a misconfigured Workers must not spawn thousands of
// goroutines per level); values below 2 mean single-threaded.
func buildWorkers(w int) int {
	if limit := runtime.GOMAXPROCS(0) * 4; w > limit {
		w = limit
	}
	if w < 1 {
		w = 1
	}
	return w
}

// expandLevel expands every node of one BFS level: mids[i] receives the
// partition boundary of node lvlStart+i, or -1 when it stays a leaf.
// Each expansion reads and writes only its node's row range, box slot,
// and mids slot, so the level fans out across workers with a shared
// atomic cursor (node costs are skewed — an equi-width level can pair a
// huge node with near-empty siblings — so static chunking would idle
// workers).
func (t *Tree) expandLevel(lvlStart, lvlEnd, depth, workers int, mids []int32) {
	n := lvlEnd - lvlStart
	if workers > n {
		workers = n
	}
	if workers < 2 {
		for i := 0; i < n; i++ {
			mids[i] = t.expandOne(lvlStart+i, depth)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				mids[i] = t.expandOne(lvlStart+i, depth)
			}
		}()
	}
	wg.Wait()
}

// expandOne computes node id's bounding box and, when the node splits,
// partitions its rows, returning the boundary row (-1 for a leaf).
func (t *Tree) expandOne(id, depth int) int32 {
	lo, hi := int(t.Meta[id].Lo), int(t.Meta[id].Hi)
	t.fillBox(id, lo, hi)
	if hi-lo <= t.Opts.LeafSize {
		return -1
	}
	mid, ok := t.splitRange(id, lo, hi, depth)
	if !ok {
		return -1
	}
	return int32(mid)
}

// splitRange selects the axis and partitions rows [lo, hi) for node id,
// returning the boundary row, or ok=false when the node cannot split
// (zero extent on every axis, or irreparably degenerate duplicates).
// The axis selection, split value, and duplicate fallbacks are the
// pointer-era build logic verbatim, so the reordered buffer is
// bit-identical across the arena refactor.
func (t *Tree) splitRange(id int, lo, hi, depth int) (mid int, ok bool) {
	// Cycle through the dimensions one per level (Section 3.1), skipping
	// axes with zero extent. If every axis has zero extent the points are
	// all identical and further splitting is pointless.
	off := id * 2 * t.Dim
	bmin := t.Boxes[off : off+t.Dim]
	bmax := t.Boxes[off+t.Dim : off+2*t.Dim]
	dim := -1
	for o := 0; o < t.Dim; o++ {
		cand := (depth + o) % t.Dim
		if bmax[cand] > bmin[cand] {
			dim = cand
			break
		}
	}
	if dim < 0 {
		return 0, false
	}

	split := t.splitValue(lo, hi, dim)
	mid = t.partition(lo, hi, dim, split)
	if mid == lo || mid == hi {
		// Degenerate split (heavily duplicated coordinates): fall back to
		// a median partition by rank, which always separates a non-trivial
		// prefix because the axis has positive extent.
		sort.Sort(&rowSorter{pts: t.Pts, lo: lo, hi: hi, dim: dim})
		mid = lo + (hi-lo)/2
		// Move mid off a run of duplicates so left's max < right's min.
		for mid < hi && t.Pts.At(mid, dim) == t.Pts.At(mid-1, dim) {
			mid++
		}
		if mid == hi {
			mid = lo + (hi-lo)/2
			for mid > lo && t.Pts.At(mid, dim) == t.Pts.At(mid-1, dim) {
				mid--
			}
		}
		if mid == lo || mid == hi {
			return 0, false
		}
	}
	return mid, true
}

// rowSorter sorts the rows of [lo, hi) in place by their dim-th
// coordinate.
type rowSorter struct {
	pts    *points.Store
	lo, hi int
	dim    int
}

func (s *rowSorter) Len() int           { return s.hi - s.lo }
func (s *rowSorter) Less(i, j int) bool { return s.pts.At(s.lo+i, s.dim) < s.pts.At(s.lo+j, s.dim) }
func (s *rowSorter) Swap(i, j int)      { s.pts.Swap(s.lo+i, s.lo+j) }

// splitValue returns the coordinate to split at along dim for rows
// [lo, hi).
func (t *Tree) splitValue(lo, hi, dim int) float64 {
	vals := make([]float64, hi-lo)
	for i := range vals {
		vals[i] = t.Pts.At(lo+i, dim)
	}
	sort.Float64s(vals)
	switch t.Opts.Split {
	case SplitMedian:
		return vals[len(vals)/2]
	default: // SplitEquiWidth
		p10 := vals[int(0.10*float64(len(vals)-1))]
		p90 := vals[int(0.90*float64(len(vals)-1))]
		return 0.5 * (p10 + p90)
	}
}

// partition reorders rows [lo, hi) into (< split) then (≥ split) along
// dim and returns the boundary row.
func (t *Tree) partition(lo, hi, dim int, split float64) int {
	i, j := lo, hi-1
	for i <= j {
		if t.Pts.At(i, dim) < split {
			i++
		} else {
			t.Pts.Swap(i, j)
			j--
		}
	}
	return i
}

// fillBox computes the tight bounding box of rows [lo, hi) and writes it
// (Min then Max) into node id's slot of the pre-extended box slab.
func (t *Tree) fillBox(id, lo, hi int) {
	d := t.Dim
	off := id * 2 * d
	bmin := t.Boxes[off : off+d]
	bmax := t.Boxes[off+d : off+2*d]
	copy(bmin, t.Pts.Row(lo))
	copy(bmax, t.Pts.Row(lo))
	flat := t.Pts.Slab(lo+1, hi)
	for o := 0; o < len(flat); o += d {
		for j := 0; j < d; j++ {
			v := flat[o+j]
			if v < bmin[j] {
				bmin[j] = v
			}
			if v > bmax[j] {
				bmax[j] = v
			}
		}
	}
}

// ForEachInRange invokes fn for every indexed point whose bandwidth-scaled
// squared distance to x is at most sqRadius. It prunes subtrees whose
// bounding boxes lie entirely outside the radius, the classic range query
// the rkde baseline is built on (Section 4.1). fn receives a view into
// the tree's flat buffer, valid only for the duration of the call.
func (t *Tree) ForEachInRange(x, invH2 []float64, sqRadius float64, fn func(p []float64)) {
	stack := make([]int32, 1, t.stats.MaxDepth+1)
	stack[0] = 0
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if dmin, _ := t.BoundsSqDist(id, x, invH2); dmin > sqRadius {
			continue
		}
		m := &t.Meta[id]
		if m.Left < 0 {
			for i := int(m.Lo); i < int(m.Hi); i++ {
				p := t.Pts.Row(i)
				if sq := sqDist(x, p, invH2); sq <= sqRadius {
					fn(p)
				}
			}
			continue
		}
		// Push right first so the left child is visited first, matching
		// the recursive pointer-era order.
		stack = append(stack, m.Right, m.Left)
	}
}

func sqDist(a, b, invH2 []float64) float64 {
	s := 0.0
	for j, aj := range a {
		d := aj - b[j]
		s += d * d * invH2[j]
	}
	return s
}

// Depth returns the depth of arena node id, counting the root as 1
// (the same convention as Stats.MaxDepth). BFS ids are contiguous per
// level, so the depth is a binary search over the level-start table —
// cheap enough for per-query trace annotation without storing a depth
// per node.
func (t *Tree) Depth(id int32) int {
	return sort.Search(len(t.levels), func(i int) bool { return t.levels[i] > id })
}

// Height returns the height of the tree (a single leaf has height 1).
func (t *Tree) Height() int { return t.stats.MaxDepth }

// NodeCount returns the total number of nodes.
func (t *Tree) NodeCount() int { return len(t.Meta) }
