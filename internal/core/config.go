// Package core implements tKDC, thresholded kernel density classification
// (Gan & Bailis, SIGMOD 2017): Algorithm 1 (training and classification),
// Algorithm 2 (BoundDensity with the threshold and tolerance pruning
// rules), and Algorithm 3 (the bootstrapped quantile-threshold bound),
// plus the grid and equi-width-tree optimizations of Section 3.7.
package core

import (
	"fmt"
	"math"

	"tkdc/internal/kdtree"
	"tkdc/internal/telemetry"
)

// KernelFamily selects the kernel used by the density estimate.
type KernelFamily int

const (
	// KernelGaussian is the paper's default (Equation 2).
	KernelGaussian KernelFamily = iota
	// KernelEpanechnikov is a finite-support alternative (extension).
	KernelEpanechnikov
)

// String returns the family name.
func (k KernelFamily) String() string {
	switch k {
	case KernelGaussian:
		return "gaussian"
	case KernelEpanechnikov:
		return "epanechnikov"
	default:
		return fmt.Sprintf("KernelFamily(%d)", int(k))
	}
}

// Config carries the density-classification task parameters of Table 1
// together with the implementation knobs of Sections 3.5 and 3.7. The
// zero value is not valid; start from DefaultConfig.
type Config struct {
	// P is the quantile classification rate p: the threshold t(p) is the
	// p-quantile of the (self-contribution-corrected) training densities.
	P float64
	// Epsilon is the multiplicative classification error ε: behaviour is
	// undefined only for densities within ±ε·t of the threshold.
	Epsilon float64
	// Delta is the acceptable failure probability δ of the sampled
	// threshold bound.
	Delta float64
	// BandwidthFactor is the scale factor b applied to Scott's rule.
	BandwidthFactor float64
	// Kernel selects the kernel family.
	Kernel KernelFamily

	// Backend selects the density-estimation engine: BackendAuto (pick
	// by dimension — tree for d ≤ AutoTreeMaxDim, sampling above),
	// BackendTree (the paper's certified k-d tree traversal), or
	// BackendSampling (exact near field + seeded far-field sampling with
	// probabilistic bounds). Empty means BackendAuto.
	Backend string

	// LeafSize caps k-d tree leaf occupancy (kdtree.DefaultLeafSize if 0).
	LeafSize int
	// Split selects the k-d tree split rule. The paper's tKDC default is
	// the trimmed-midpoint "equi-width" rule.
	Split kdtree.SplitRule

	// DisableThresholdRule turns off the threshold pruning rule
	// (Equation 9) — the heart of tKDC — for factor/lesion analysis.
	DisableThresholdRule bool
	// DisableToleranceRule turns off the tolerance pruning rule
	// (Equation 8) for factor/lesion analysis.
	DisableToleranceRule bool
	// DisableGrid turns off the hypergrid inlier cache.
	DisableGrid bool
	// MaxGridDim is the largest dimensionality at which the grid is kept
	// (the paper disables it above 4). Defaults to 4 if 0.
	MaxGridDim int

	// Bootstrap parameters of Algorithm 3. Zero values take the paper's
	// defaults: R0 = 200, S0 = 20000, HBackoff = 4, HBuffer = 1.5,
	// HGrowth = 4.
	R0       int
	S0       int
	HBackoff float64
	HBuffer  float64
	HGrowth  float64

	// Seed drives the sampling in threshold bootstrapping; training is
	// fully deterministic for a fixed seed.
	Seed int64

	// Workers sets the goroutine budget for every fan-out in the stack:
	// ClassifyAll batches on the serving side, and the whole training
	// pipeline — k-d tree construction, bootstrap scoring (Algorithm 3),
	// the hypergrid fill, and the threshold-refinement density pass.
	// Trained models are bit-identical at any worker count. Values below
	// 2 mean single-threaded, matching the paper's prototype; the count
	// is clamped to a small multiple of GOMAXPROCS.
	Workers int

	// Recorder receives per-query telemetry samples (latency, kernel
	// evaluations, nodes visited) and training phase spans. Nil means
	// telemetry is off: the no-op recorder is used and the query path
	// performs no timing calls. Point it at a *telemetry.Registry to
	// collect latency and work histograms. The recorder is runtime
	// wiring, not model state — Save does not persist it, and Load
	// starts with telemetry off (see Classifier.SetRecorder).
	Recorder telemetry.Recorder
}

// DefaultConfig returns the parameter defaults of Table 1: p = 0.01,
// ε = 0.01, δ = 0.01, b = 1, Gaussian kernel, equi-width tree, grid
// enabled up to 4 dimensions.
func DefaultConfig() Config {
	return Config{
		P:               0.01,
		Epsilon:         0.01,
		Delta:           0.01,
		BandwidthFactor: 1,
		Kernel:          KernelGaussian,
		Backend:         BackendAuto,
		Split:           kdtree.SplitEquiWidth,
		MaxGridDim:      4,
		R0:              200,
		S0:              20000,
		HBackoff:        4,
		HBuffer:         1.5,
		HGrowth:         4,
	}
}

// normalized returns a copy with zero-valued knobs replaced by defaults.
func (c Config) normalized() Config {
	d := DefaultConfig()
	if c.Backend == "" {
		c.Backend = BackendAuto
	}
	if c.MaxGridDim == 0 {
		c.MaxGridDim = d.MaxGridDim
	}
	if c.R0 == 0 {
		c.R0 = d.R0
	}
	if c.S0 == 0 {
		c.S0 = d.S0
	}
	if c.HBackoff == 0 {
		c.HBackoff = d.HBackoff
	}
	if c.HBuffer == 0 {
		c.HBuffer = d.HBuffer
	}
	if c.HGrowth == 0 {
		c.HGrowth = d.HGrowth
	}
	return c
}

// validate rejects out-of-range parameters.
func (c Config) validate() error {
	switch {
	case math.IsNaN(c.P) || c.P <= 0 || c.P >= 1:
		return fmt.Errorf("core: quantile P = %v must be in (0, 1)", c.P)
	case math.IsNaN(c.Epsilon) || c.Epsilon <= 0:
		return fmt.Errorf("core: Epsilon = %v must be positive", c.Epsilon)
	case math.IsNaN(c.Delta) || c.Delta <= 0 || c.Delta >= 1:
		return fmt.Errorf("core: Delta = %v must be in (0, 1)", c.Delta)
	case math.IsNaN(c.BandwidthFactor) || c.BandwidthFactor <= 0:
		return fmt.Errorf("core: BandwidthFactor = %v must be positive", c.BandwidthFactor)
	case c.R0 < 1:
		return fmt.Errorf("core: R0 = %d must be at least 1", c.R0)
	case c.S0 < 1:
		return fmt.Errorf("core: S0 = %d must be at least 1", c.S0)
	case c.HBackoff <= 1:
		return fmt.Errorf("core: HBackoff = %v must exceed 1", c.HBackoff)
	case c.HBuffer < 1:
		return fmt.Errorf("core: HBuffer = %v must be at least 1", c.HBuffer)
	case c.HGrowth <= 1:
		return fmt.Errorf("core: HGrowth = %v must exceed 1", c.HGrowth)
	}
	if !validBackend(c.Backend) {
		return backendError(c.Backend)
	}
	return nil
}
