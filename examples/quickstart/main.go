// Quickstart: train a tKDC classifier on a two-dimensional gaussian
// mixture and classify a handful of points as HIGH (dense region) or LOW
// (outlier). This is the minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tkdc"
)

func main() {
	// 1. Data: 20k points, 90% around the origin, 10% in a satellite
	// cluster at (6, 6).
	rng := rand.New(rand.NewSource(1))
	data := make([][]float64, 20000)
	for i := range data {
		if rng.Float64() < 0.9 {
			data[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		} else {
			data[i] = []float64{6 + rng.NormFloat64()*0.5, 6 + rng.NormFloat64()*0.5}
		}
	}

	// 2. Train with the paper's defaults: p = 0.01 (classify the bottom 1%
	// of densities as LOW), ε = δ = 0.01.
	clf, err := tkdc.TrainDefault(data)
	if err != nil {
		log.Fatal(err)
	}
	ts := clf.TrainStats()
	fmt.Printf("trained on n=%d d=%d\n", ts.N, ts.Dim)
	fmt.Printf("density threshold t(0.01) = %.3g (bounds [%.3g, %.3g], %d bootstrap rounds)\n",
		ts.Threshold, ts.ThresholdLow, ts.ThresholdHigh, ts.BootstrapRounds)

	// 3. Classify points. Score also returns the certified density bounds
	// behind each decision.
	queries := [][]float64{
		{0, 0},     // center of the main mode
		{6, 6},     // center of the satellite
		{3, 3},     // the sparse gap between modes
		{-10, -10}, // far outside everything
	}
	for _, q := range queries {
		r, err := clf.Score(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("point (%6.1f, %6.1f): %-4s  density in [%.3g, %.3g]\n",
			q[0], q[1], r.Label, r.Lower, r.Upper)
	}

	// 4. The pruning at work: how little of the dataset each query touched.
	st := clf.Stats()
	fmt.Printf("avg kernel evaluations per query: %.1f (naive KDE would need %d)\n",
		float64(st.Kernels())/float64(st.Queries), len(data))
}
