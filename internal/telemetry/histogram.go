package telemetry

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
	"sync/atomic"
)

// NumBuckets is the number of histogram buckets. Bucket i holds the
// non-negative int64 values of binary length i: bucket 0 holds exactly
// {0}, bucket 1 holds {1}, and bucket i ≥ 2 holds [2^(i−1), 2^i − 1].
// Boundaries are therefore powers of two, every value maps to a bucket
// in O(1) with no search, and the relative quantization error is at
// most 2×. Sixty-four buckets cover the full int64 range (MaxInt64 has
// binary length 63), which spans both nanosecond latencies (bucket 31 ≈
// 1–2 s) and per-query work counts.
const NumBuckets = 64

// Histogram is a fixed-bucket log-spaced histogram over non-negative
// int64 observations — query latencies in nanoseconds, kernel
// evaluations per query, tree nodes visited. The zero value is ready to
// use. Observe is two atomic adds and no allocation, so histograms sit
// directly on the query hot path; Snapshot may be taken concurrently
// with writers (individual buckets are never torn, though a snapshot
// racing an Observe can miss its increment).
type Histogram struct {
	counts [NumBuckets]atomic.Int64
	sum    atomic.Int64
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bits.Len64(uint64(v))].Add(1)
	h.sum.Add(v)
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Sum = h.sum.Load()
	return s
}

// reset zeroes every bucket.
func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.sum.Store(0)
}

// BucketBounds returns the inclusive value range [lo, hi] covered by
// bucket i.
func BucketBounds(i int) (lo, hi int64) {
	switch {
	case i <= 0:
		return 0, 0
	case i == 1:
		return 1, 1
	case i >= NumBuckets-1:
		return 1 << (NumBuckets - 2), math.MaxInt64
	}
	lo = 1 << (i - 1)
	return lo, 2*lo - 1
}

// HistogramSnapshot is an immutable copy of a Histogram, the unit the
// snapshot/exposition layer works with.
type HistogramSnapshot struct {
	Counts [NumBuckets]int64
	Sum    int64
}

// Count returns the total number of observations.
func (s HistogramSnapshot) Count() int64 {
	var n int64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Mean returns the average observed value, or 0 with no observations.
func (s HistogramSnapshot) Mean() float64 {
	n := s.Count()
	if n == 0 {
		return 0
	}
	return float64(s.Sum) / float64(n)
}

// Merge adds another snapshot's observations into s.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Sum += o.Sum
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by locating the bucket
// containing the target rank and interpolating linearly inside it. The
// estimate is exact for q's bucket boundary and within the bucket's 2×
// width otherwise. Returns 0 with no observations.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	total := s.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total-1)
	var cum int64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) > rank {
			lo, hi := BucketBounds(i)
			within := (rank - float64(cum)) / float64(c)
			return float64(lo) + within*float64(hi-lo)
		}
		cum += c
	}
	// Unreachable with a consistent snapshot; fall back to the top
	// occupied bucket's upper bound.
	for i := NumBuckets - 1; i >= 0; i-- {
		if s.Counts[i] > 0 {
			_, hi := BucketBounds(i)
			return float64(hi)
		}
	}
	return 0
}

// Max returns the upper bound of the highest occupied bucket — a ≤2×
// overestimate of the true maximum. Returns 0 with no observations.
func (s HistogramSnapshot) Max() int64 {
	for i := NumBuckets - 1; i >= 0; i-- {
		if s.Counts[i] > 0 {
			_, hi := BucketBounds(i)
			return hi
		}
	}
	return 0
}

// summary renders one line of percentiles using the given value
// formatter (durations for latency, plain counts for work).
func (s HistogramSnapshot) summary(format func(float64) string) string {
	if s.Count() == 0 {
		return "no observations"
	}
	return fmt.Sprintf("n=%d mean=%s p50=%s p90=%s p99=%s max≤%s",
		s.Count(), format(s.Mean()),
		format(s.Quantile(0.50)), format(s.Quantile(0.90)),
		format(s.Quantile(0.99)), format(float64(s.Max())))
}

// writeExposition emits the snapshot in the plain-text exposition format
// under the given metric name: cumulative `<name>_bucket{le="..."}`
// lines (upper bounds inclusive, Prometheus-style), then `<name>_sum`
// and `<name>_count`. Empty buckets above the highest occupied one are
// collapsed into the terminal le="+Inf" line.
func (s HistogramSnapshot) writeExposition(b *strings.Builder, name string) {
	top := -1
	for i, c := range s.Counts {
		if c > 0 {
			top = i
		}
	}
	fmt.Fprintf(b, "# TYPE %s histogram\n", name)
	var cum int64
	for i := 0; i <= top; i++ {
		cum += s.Counts[i]
		_, hi := BucketBounds(i)
		fmt.Fprintf(b, "%s_bucket{le=\"%d\"} %d\n", name, hi, cum)
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(b, "%s_sum %d\n", name, s.Sum)
	fmt.Fprintf(b, "%s_count %d\n", name, cum)
}
