package baseline

import (
	"fmt"
	"math"

	"tkdc/internal/kdtree"
	"tkdc/internal/kernel"
	"tkdc/internal/points"
)

// RKDE is the radial KDE baseline: a range query on the k-d tree collects
// every training point within a cutoff radius of the query (measured in
// bandwidth-scaled space), and only those contributions are summed
// (Section 4.1, Figure 13). Contributions of excluded points are dropped,
// so the estimate is a lower bound on the true density with error at most
// K(radius) in scaled space.
type RKDE struct {
	tree     *kdtree.Tree
	kern     kernel.Kernel
	invH2    []float64
	sqRadius float64
	kernels  int64
}

// NewRKDE builds a radial estimator with the given cutoff radius,
// expressed in bandwidth multiples (the x-axis of Figure 13). radius must
// be positive.
func NewRKDE(data *points.Store, kern kernel.Kernel, radius float64) (*RKDE, error) {
	if math.IsNaN(radius) || radius <= 0 {
		return nil, fmt.Errorf("baseline: rkde radius = %v must be positive", radius)
	}
	tree, err := kdtree.Build(data, kdtree.Options{})
	if err != nil {
		return nil, err
	}
	return &RKDE{
		tree:     tree,
		kern:     kern,
		invH2:    kern.InvBandwidthsSq(),
		sqRadius: radius * radius,
	}, nil
}

// RadiusForError returns the smallest scaled cutoff radius at which the
// density error from excluded points is guaranteed to be at most errAbs:
// excluded points contribute at most K(r) each, at most K(r) in total
// density, so K(r) ≤ errAbs suffices. The paper sets errAbs = ε·t
// ("the smallest possible radius with guaranteed error ε = 0.01t").
// Only defined for the Gaussian kernel (unbounded support); finite-support
// kernels should use their support radius.
func RadiusForError(kern kernel.Kernel, errAbs float64) (float64, error) {
	if errAbs <= 0 {
		return 0, fmt.Errorf("baseline: rkde error target %v must be positive", errAbs)
	}
	k0 := kern.AtZero()
	if errAbs >= k0 {
		// Even fully excluded points meet the target; any tiny radius works.
		return 1e-9, nil
	}
	// Gaussian: K(s) = K(0)·exp(−s/2) with s the scaled squared distance.
	s := -2 * math.Log(errAbs/k0)
	return math.Sqrt(s), nil
}

// Name returns "rkde".
func (r *RKDE) Name() string { return "rkde" }

// N returns the training set size.
func (r *RKDE) N() int { return r.tree.Size }

// Kernels returns total kernel evaluations.
func (r *RKDE) Kernels() int64 { return r.kernels }

// Radius returns the cutoff radius in bandwidth multiples.
func (r *RKDE) Radius() float64 { return math.Sqrt(r.sqRadius) }

// Density sums kernel contributions of points within the cutoff radius.
func (r *RKDE) Density(x []float64) float64 {
	sum := 0.0
	count := int64(0)
	r.tree.ForEachInRange(x, r.invH2, r.sqRadius, func(p []float64) {
		sum += r.kern.FromScaledSqDist(kernel.ScaledSqDist(x, p, r.invH2))
		count++
	})
	r.kernels += count
	return sum / float64(r.tree.Size)
}
