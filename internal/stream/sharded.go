package stream

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"

	"tkdc/internal/points"
)

// maxShards bounds the shard count: past this, per-shard sample memory
// (each shard holds a full-capacity buffer) dwarfs any contention win.
const maxShards = 64

// DefaultShards is the shard count used when a ShardedIngestor is built
// with shards == 0: one shard per scheduler thread, clamped to
// [1, maxShards]. One core means one shard — the single-lock fast path,
// bit-identical to the unsharded ingestor.
func DefaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > maxShards {
		n = maxShards
	}
	return n
}

// ShardedIngestor spreads ingest traffic over K independent Ingestors so
// batch ingestion scales past a single mutex: each Add/AddFlat call is
// assigned whole to one shard by a wait-free ticket counter (one atomic
// add — the same scheme the core work counters use), validates outside
// any lock, and contends only with the other batches that landed on the
// same shard. K is fixed at creation.
//
// Sampling semantics follow the distributed-reservoir merge argument
// (cf. Phillips & Tai on when compressed samples preserve KDE
// accuracy): each shard keeps a full-capacity seeded reservoir (seed ⊕
// shard id) over its own sub-stream, and Snapshot draws the merged
// sample by allocating slots across shards with the exact multivariate
// hypergeometric distribution over per-shard seen counts — a uniform
// sample of one shard's sub-stream, drawn proportionally to how much of
// the union stream that shard saw, is a uniform sample of the union.
// The merge uses its own generator seeded from the service seed and
// never perturbs shard reservoir state, so for a fixed batch→shard
// assignment (e.g. any single-threaded feed) ingest-then-snapshot is
// fully deterministic. Window mode merges by per-shard arrival order
// instead: the newest rows of each shard, allocated proportionally to
// occupancy, oldest-to-newest within each shard.
//
// With K == 1 every method delegates straight to the single shard — the
// exact pre-sharding code path, byte-identical samples included — which
// is what keeps the batch-training determinism bridge intact.
//
// Memory: K shards × capacity rows. Sharding buys ingest parallelism
// with sample memory, not accuracy.
type ShardedIngestor struct {
	shards   []*Ingestor
	seq      atomic.Uint32 // ticket counter behind shard assignment
	dim      atomic.Int64  // 0 until the first batch fixes it
	seed     int64
	capacity int // merged sample bound == each shard's capacity
	window   bool
}

// NewShardedIngestor builds a sharded ingestor whose merged sample holds
// at most capacity rows. shards == 0 picks DefaultShards (clamped from
// GOMAXPROCS); shards == 1 is the unsharded ingestor, bit-identical to
// NewIngestor with the same seed. Shard i's reservoir generator is
// seeded with seed ⊕ i, so shard 0 of any K matches the unsharded
// generator stream.
func NewShardedIngestor(capacity, dim int, seed int64, window bool, shards int) (*ShardedIngestor, error) {
	if shards < 0 {
		return nil, fmt.Errorf("stream: shard count %d must be non-negative", shards)
	}
	if shards == 0 {
		shards = DefaultShards()
	}
	if shards > maxShards {
		return nil, fmt.Errorf("stream: shard count %d exceeds the maximum %d", shards, maxShards)
	}
	s := &ShardedIngestor{
		shards:   make([]*Ingestor, shards),
		seed:     seed,
		capacity: capacity,
		window:   window,
	}
	if dim > 0 {
		s.dim.Store(int64(dim))
	}
	for i := range s.shards {
		ing, err := NewIngestor(capacity, dim, seed^int64(i), window)
		if err != nil {
			return nil, err
		}
		s.shards[i] = ing
	}
	return s, nil
}

// pick assigns the calling batch a shard round-robin off the ticket
// counter. Wait-free: one atomic add, no locks, no spinning.
func (s *ShardedIngestor) pick() *Ingestor {
	return s.shards[int(s.seq.Add(1)-1)%len(s.shards)]
}

// resolveDim fixes the ingestor-wide row width on first use and rejects
// batches that disagree with it. Per-shard checkDim cannot catch a
// cross-shard mismatch (two first batches of different widths would
// land on two empty shards and both be accepted), so the width is
// agreed here, once, with a CAS.
func (s *ShardedIngestor) resolveDim(batchDim int) (int, error) {
	d := int(s.dim.Load())
	if d == 0 {
		if s.dim.CompareAndSwap(0, int64(batchDim)) {
			return batchDim, nil
		}
		d = int(s.dim.Load()) // lost the race; someone else fixed it
	}
	if d != batchDim {
		return 0, fmt.Errorf("stream: batch has dimension %d, want %d", batchDim, d)
	}
	return d, nil
}

// Add ingests a batch of rows into one shard. Validation is
// all-or-nothing and runs before any lock, exactly as Ingestor.Add.
func (s *ShardedIngestor) Add(rows [][]float64) (int, error) {
	if len(s.shards) == 1 {
		return s.shards[0].Add(rows)
	}
	if len(rows) == 0 {
		return 0, nil
	}
	dim, err := s.resolveDim(len(rows[0]))
	if err != nil {
		return 0, err
	}
	if err := validateRows(rows, dim); err != nil {
		return 0, err
	}
	return s.pick().addPrevalidated(rows, dim)
}

// AddFlat is Add over rows already in flat row-major form.
func (s *ShardedIngestor) AddFlat(flat []float64, dim int) (int, error) {
	if len(s.shards) == 1 {
		return s.shards[0].AddFlat(flat, dim)
	}
	if dim <= 0 {
		return 0, fmt.Errorf("stream: dimension %d must be positive", dim)
	}
	want, err := s.resolveDim(dim)
	if err != nil {
		return 0, err
	}
	if err := validateFlat(flat, dim, want); err != nil {
		return 0, err
	}
	return s.pick().addFlatPrevalidated(flat, dim)
}

// lockAll acquires every shard lock in index order (the fixed order is
// what makes concurrent Snapshot calls deadlock-free) so the merge
// reads one atomic cut across all shards — a batch is either entirely
// in the merged sample or entirely absent, the same guarantee the
// single-lock Snapshot gave.
func (s *ShardedIngestor) lockAll() {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
}

func (s *ShardedIngestor) unlockAll() {
	for _, sh := range s.shards {
		sh.mu.Unlock()
	}
}

// Snapshot copies the merged sample — at most capacity rows drawn
// across all shards — into a fresh store and returns the total rows
// ever ingested at the moment of the copy. With one shard it is exactly
// Ingestor.Snapshot. The merge is seeded from the construction seed and
// leaves shard reservoir state untouched, so back-to-back Snapshots of
// an idle ingestor are identical.
func (s *ShardedIngestor) Snapshot() (*points.Store, int64) {
	if len(s.shards) == 1 {
		return s.shards[0].Snapshot()
	}
	s.lockAll()
	defer s.unlockAll()

	var seen int64
	held, dim := 0, 0
	for _, sh := range s.shards {
		seen += sh.seen
		held += sh.n
		if dim == 0 && sh.n > 0 {
			dim = int(sh.dim.Load())
		}
	}
	if held == 0 {
		return nil, seen
	}
	if s.window {
		return s.mergeWindowLocked(dim, held), seen
	}
	return s.mergeReservoirLocked(dim, seen), seen
}

// mergeReservoirLocked draws the merged reservoir: a uniform
// min(capacity, seen)-row sample of the union stream. Slot counts per
// shard follow the multivariate hypergeometric over per-shard seen
// totals (simulated draw by draw), then each shard contributes that
// many distinct uniformly chosen rows of its own reservoir via the same
// sparse Fisher–Yates the drift probe uses. Every shard's reservoir
// holds min(seen_i, capacity) rows and a shard's count can never exceed
// min(seen_i, target), so the allocation is always satisfiable.
// Callers hold all shard locks.
func (s *ShardedIngestor) mergeReservoirLocked(dim int, seen int64) *points.Store {
	target := s.capacity
	if seen < int64(target) {
		// Fill phase everywhere: no shard has evicted, so the merged
		// sample is every held row — no draw needed.
		target = int(seen)
	}
	out := points.New(target, dim)
	if int64(target) == seen {
		row := 0
		for _, sh := range s.shards {
			copy(out.Data[row*dim:], sh.buf.Data[:sh.n*dim])
			row += sh.n
		}
		return out
	}

	rng := rand.New(rand.NewSource(s.seed))
	counts := make([]int, len(s.shards))
	remaining := make([]int64, len(s.shards))
	for i, sh := range s.shards {
		remaining[i] = sh.seen
	}
	total := seen
	for t := 0; t < target; t++ {
		u := rng.Int63n(total)
		for i := range remaining {
			if u < remaining[i] {
				counts[i]++
				remaining[i]--
				break
			}
			u -= remaining[i]
		}
		total--
	}

	row := 0
	for i, sh := range s.shards {
		k := counts[i]
		switch {
		case k == 0:
		case k == sh.n:
			copy(out.Data[row*dim:], sh.buf.Data[:sh.n*dim])
			row += k
		default:
			sampleSlots(rng, sh.n, k, func(slot int) {
				copy(out.Data[row*dim:(row+1)*dim], sh.buf.Row(slot))
				row++
			})
		}
	}
	return out
}

// mergeWindowLocked merges sliding windows by per-shard arrival order:
// each shard contributes its newest rows, oldest-to-newest, with row
// counts allocated proportionally to shard occupancy by largest
// remainder (deterministic, no RNG — recency, not uniformity, is the
// window contract). With balanced round-robin traffic this is the
// newest ~capacity rows of the union stream. Callers hold all shard
// locks; held is the total occupancy (> 0).
func (s *ShardedIngestor) mergeWindowLocked(dim, held int) *points.Store {
	m := s.capacity
	if held < m {
		m = held
	}
	take := make([]int, len(s.shards))
	if m == held {
		for i, sh := range s.shards {
			take[i] = sh.n
		}
	} else {
		// Largest-remainder allocation of m over shard occupancies: floor
		// the proportional quotas, then hand the leftover rows to the
		// largest fractional parts (ties to the lower shard id). A quota
		// can only have a remainder when it is strictly below the shard's
		// occupancy, so no shard is ever asked for more than it holds.
		rem := make([]int64, len(s.shards))
		given := 0
		for i, sh := range s.shards {
			q := int64(m) * int64(sh.n)
			take[i] = int(q / int64(held))
			rem[i] = q % int64(held)
			given += take[i]
		}
		for ; given < m; given++ {
			best := -1
			for i := range rem {
				if rem[i] > 0 && (best == -1 || rem[i] > rem[best]) {
					best = i
				}
			}
			take[best]++
			rem[best] = 0
		}
	}
	out := points.New(m, dim)
	row := 0
	for i, sh := range s.shards {
		if take[i] == 0 {
			continue
		}
		sh.copyNewestLocked(out.Data[row*dim:(row+take[i])*dim], take[i])
		row += take[i]
	}
	return out
}

// Sample copies at most k uniformly drawn rows of the merged sample
// into a fresh store — the drift probe's input — using a private
// generator so the draw is reproducible and does not perturb any
// shard's reservoir. Slots are allocated across shards hypergeometrically
// over current occupancies (a uniform k-subset of the union of held
// rows), then drawn per shard by sparse Fisher–Yates. Returns nil while
// empty.
func (s *ShardedIngestor) Sample(k int, seed int64) *points.Store {
	if len(s.shards) == 1 {
		return s.shards[0].Sample(k, seed)
	}
	s.lockAll()
	defer s.unlockAll()

	held, dim := 0, 0
	for _, sh := range s.shards {
		held += sh.n
		if dim == 0 && sh.n > 0 {
			dim = int(sh.dim.Load())
		}
	}
	if held == 0 || k < 1 {
		return nil
	}
	if k > held {
		k = held
	}
	rng := rand.New(rand.NewSource(seed))
	counts := make([]int, len(s.shards))
	if k == held {
		for i, sh := range s.shards {
			counts[i] = sh.n
		}
	} else {
		remaining := make([]int64, len(s.shards))
		for i, sh := range s.shards {
			remaining[i] = int64(sh.n)
		}
		total := int64(held)
		for t := 0; t < k; t++ {
			u := rng.Int63n(total)
			for i := range remaining {
				if u < remaining[i] {
					counts[i]++
					remaining[i]--
					break
				}
				u -= remaining[i]
			}
			total--
		}
	}
	out := points.New(k, dim)
	row := 0
	for i, sh := range s.shards {
		c := counts[i]
		switch {
		case c == 0:
		case c == sh.n:
			copy(out.Data[row*dim:], sh.buf.Data[:sh.n*dim])
			row += c
		default:
			sampleSlots(rng, sh.n, c, func(slot int) {
				copy(out.Data[row*dim:(row+1)*dim], sh.buf.Row(slot))
				row++
			})
		}
	}
	return out
}

// Seen returns the total number of rows ever ingested across all
// shards.
func (s *ShardedIngestor) Seen() int64 {
	if len(s.shards) == 1 {
		return s.shards[0].Seen()
	}
	var total int64
	for _, sh := range s.shards {
		total += sh.Seen()
	}
	return total
}

// Len returns the merged sample's current size: min(Capacity, total
// rows held), the number of rows Snapshot would return.
func (s *ShardedIngestor) Len() int {
	if len(s.shards) == 1 {
		return s.shards[0].Len()
	}
	held := 0
	for _, sh := range s.shards {
		held += sh.Len()
	}
	if held > s.capacity {
		return s.capacity
	}
	return held
}

// Dim returns the row width, or 0 before the first batch arrives.
func (s *ShardedIngestor) Dim() int {
	if len(s.shards) == 1 {
		return s.shards[0].Dim()
	}
	return int(s.dim.Load())
}

// Capacity returns the merged sample bound.
func (s *ShardedIngestor) Capacity() int { return s.capacity }

// WindowMode reports whether the shards keep sliding windows rather
// than reservoirs.
func (s *ShardedIngestor) WindowMode() bool { return s.window }

// Shards returns the shard count K.
func (s *ShardedIngestor) Shards() int { return len(s.shards) }

// ShardFills reports each shard's occupancy as a fraction of its
// capacity — the per-shard fill gauges on /metrics. Shards are read one
// at a time; the vector is advisory, not an atomic cut.
func (s *ShardedIngestor) ShardFills() []float64 {
	fills := make([]float64, len(s.shards))
	for i, sh := range s.shards {
		fills[i] = float64(sh.Len()) / float64(s.capacity)
	}
	return fills
}
