package core

import (
	"fmt"
	"sync"
)

// DualTreeMinBatch is the batch size at which ClassifyFlatAuto switches
// from the per-query sweep to the dual-tree pass. Below it the grouping
// machinery (query boxes, group heap resets, recursive splits) costs
// more than the tree-walk overhead it amortizes; at and above it the
// batch carries enough spatial redundancy for group certification to
// win on the workloads BENCH_serve.json measures.
const DualTreeMinBatch = 256

// ValidateFlat checks a flat row-major batch of n queries: the buffer
// must hold exactly n·dim coordinates and every row must pass the same
// per-query validation Score applies. Error text mirrors ClassifyAll's
// per-index wrapping so callers can surface the offending row.
func (c *Classifier) ValidateFlat(flat []float64, n int) error {
	if n < 0 {
		return fmt.Errorf("core: negative batch size %d", n)
	}
	if len(flat) != n*c.dim {
		return fmt.Errorf("core: flat batch has %d coordinates, want %d (%d rows of dimension %d)", len(flat), n*c.dim, n, c.dim)
	}
	for i := 0; i < n; i++ {
		if err := c.checkQuery(flat[i*c.dim : (i+1)*c.dim]); err != nil {
			return fmt.Errorf("core: query %d: %w", i, err)
		}
	}
	return nil
}

// forEachRowChunk runs body over [0, n) in index chunks, fanning out
// across the classifier's effective worker budget under the same policy
// as ClassifyAll: single-threaded below two workers or when the batch is
// too small to amortize goroutine startup.
func (c *Classifier) forEachRowChunk(n int, body func(lo, hi int)) {
	workers := c.effectiveWorkers()
	if workers < 2 || n < 2*workers {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ClassifyFlat labels a batch of n queries stored in flat row-major
// form (query i at flat[i*dim : (i+1)*dim]) with the per-query sweep,
// chunked across Config.Workers goroutines. Each row goes through
// exactly the decision procedure Score applies, so results are
// bit-identical to per-row Score calls at every worker count and batch
// composition — under both density backends (the sampling backend
// derives its randomness per query point, not per goroutine).
func (c *Classifier) ClassifyFlat(flat []float64, n int) ([]Label, error) {
	if err := c.ValidateFlat(flat, n); err != nil {
		return nil, err
	}
	return c.classifyFlatChecked(flat, n), nil
}

func (c *Classifier) classifyFlatChecked(flat []float64, n int) []Label {
	out := make([]Label, n)
	c.forEachRowChunk(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = c.scoreChecked(flat[i*c.dim : (i+1)*c.dim]).Label
		}
	})
	return out
}

// ScoreFlat scores a flat row-major batch of n queries, returning the
// full per-query results (labels plus the density bounds behind them).
// Like ClassifyFlat it is a chunked parallel sweep over scoreChecked,
// bit-identical to per-row Score calls.
func (c *Classifier) ScoreFlat(flat []float64, n int) ([]Result, error) {
	if err := c.ValidateFlat(flat, n); err != nil {
		return nil, err
	}
	out := make([]Result, n)
	c.forEachRowChunk(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = c.scoreChecked(flat[i*c.dim : (i+1)*c.dim])
		}
	})
	return out, nil
}

// ClassifyFlatAuto labels a flat batch, selecting the execution
// strategy by batch size: batches of at least DualTreeMinBatch rows on
// the tree backend run the dual-tree group pass (one traversal can
// answer a whole spatial cluster of queries — label-compatible under
// the Problem 1 ε-contract, and deterministic for a given row set);
// smaller batches, and every batch on the sampling backend, run the
// bit-identical per-query parallel sweep. The selection depends only on
// the batch itself, so a coalesced flush and a direct large POST of the
// same rows execute identically.
func (c *Classifier) ClassifyFlatAuto(flat []float64, n int) ([]Label, error) {
	if err := c.ValidateFlat(flat, n); err != nil {
		return nil, err
	}
	if c.backend == BackendTree && n >= DualTreeMinBatch {
		return c.classifyDualTreeFlat(flat, n), nil
	}
	return c.classifyFlatChecked(flat, n), nil
}

// ClassifyFlatDualTree runs the dual-tree group pass over a flat
// row-major batch — the flat-storage twin of ClassifyAllDualTree. On
// the sampling backend (which has no box-to-box bounds) the batch falls
// back to the per-query sweep.
func (c *Classifier) ClassifyFlatDualTree(flat []float64, n int) ([]Label, error) {
	if err := c.ValidateFlat(flat, n); err != nil {
		return nil, err
	}
	return c.classifyDualTreeFlat(flat, n), nil
}
