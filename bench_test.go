// Benchmarks mirroring the paper's evaluation, one target per table and
// figure. Each benchmark measures the steady-state per-query cost of the
// relevant algorithm/configuration on a scaled-down version of the
// figure's workload; training and dataset generation happen outside the
// timed region and are cached across sub-benchmarks. The full sweeps with
// training amortization and table output live in cmd/tkdc-bench
// (internal/bench).
package tkdc_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"tkdc"
	"tkdc/internal/baseline"
	"tkdc/internal/bench"
	"tkdc/internal/core"
	"tkdc/internal/dataset"
	"tkdc/internal/kdtree"
	"tkdc/internal/kernel"
	"tkdc/internal/points"
)

// benchCache memoizes datasets and trained models across sub-benchmarks.
var benchCache sync.Map

func cached[T any](b *testing.B, key string, build func() (T, error)) T {
	b.Helper()
	if v, ok := benchCache.Load(key); ok {
		return v.(T)
	}
	v, err := build()
	if err != nil {
		b.Fatal(err)
	}
	benchCache.Store(key, v)
	return v
}

func benchData(b *testing.B, name string, n, d int) [][]float64 {
	key := fmt.Sprintf("data/%s/%d/%d", name, n, d)
	return cached(b, key, func() ([][]float64, error) {
		rows, err := dataset.Generate(name, n, d, 42)
		if err != nil {
			return nil, err
		}
		if d > 0 && name != "gauss" && d != len(rows[0]) {
			return dataset.TakeColumns(rows, d)
		}
		return rows, nil
	})
}

// benchStore memoizes the flat-storage copy of a cached dataset.
func benchStore(b *testing.B, key string, data [][]float64) *points.Store {
	return cached(b, "store/"+key, func() (*points.Store, error) {
		return points.FromRows(data)
	})
}

func benchClassifier(b *testing.B, key string, data [][]float64, mut func(*tkdc.Config)) *tkdc.Classifier {
	return cached(b, "clf/"+key, func() (*tkdc.Classifier, error) {
		cfg := tkdc.DefaultConfig()
		cfg.Seed = 42
		if mut != nil {
			mut(&cfg)
		}
		return tkdc.Train(data, cfg)
	})
}

func scoreLoop(b *testing.B, clf *tkdc.Classifier, data [][]float64) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := clf.Score(data[i%len(data)]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 1: default task parameters are exercised by every benchmark
// via DefaultConfig; Table 2/3 rosters below. ---

// BenchmarkTable2Algorithms measures one density query per Table 2
// algorithm on the same 2-d gaussian workload.
func BenchmarkTable2Algorithms(b *testing.B) {
	data := benchData(b, "gauss", 20000, 2)
	b.Run("tkdc", func(b *testing.B) {
		clf := benchClassifier(b, "tab2", data, nil)
		scoreLoop(b, clf, data)
	})
	pts := benchStore(b, "tab2", data)
	kern := cached(b, "tab2/kern", func() (kernel.Kernel, error) {
		h, err := kernel.ScottBandwidths(pts, 1)
		if err != nil {
			return nil, err
		}
		return kernel.NewGaussian(h)
	})
	b.Run("simple", func(b *testing.B) {
		s := baseline.NewSimple(pts, kern)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Density(data[i%len(data)])
		}
	})
	b.Run("nocut", func(b *testing.B) {
		nc := cached(b, "tab2/nocut", func() (*baseline.NoCut, error) {
			return baseline.NewNoCut(pts, kern, 0.01)
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nc.Density(data[i%len(data)])
		}
	})
	b.Run("rkde", func(b *testing.B) {
		rk := cached(b, "tab2/rkde", func() (*baseline.RKDE, error) {
			return baseline.NewRKDE(pts, kern, 4)
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rk.Density(data[i%len(data)])
		}
	})
	b.Run("binned", func(b *testing.B) {
		bn := cached(b, "tab2/binned", func() (*baseline.Binned, error) {
			return baseline.NewBinned(pts, kern)
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bn.Density(data[i%len(data)])
		}
	})
}

// BenchmarkTable3Generators measures dataset generation for every Table 3
// stand-in.
func BenchmarkTable3Generators(b *testing.B) {
	for _, info := range dataset.Catalog() {
		info := info
		b.Run(info.Name, func(b *testing.B) {
			d := info.Dim
			if d == 0 {
				d = 2
			}
			for i := 0; i < b.N; i++ {
				if _, err := dataset.Generate(info.Name, 1000, d, 42); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig1ShuttleClassify measures density classification on the
// 2-d shuttle-like measurements of Figure 1.
// BenchmarkScore measures steady-state Classifier.Score on 50k-point
// Gaussian datasets at low and moderate dimensionality — the reference
// numbers for storage-layout changes on the leaf-scan hot path.
func BenchmarkScore(b *testing.B) {
	const n = 50000
	for _, d := range []int{2, 8} {
		data := benchData(b, "gauss", n, d)
		clf := benchClassifier(b, fmt.Sprintf("score/%d/%d", n, d), data, nil)
		b.Run(fmt.Sprintf("d%d", d), func(b *testing.B) {
			scoreLoop(b, clf, data)
		})
	}
}

// BenchmarkScoreParallel hammers Score from GOMAXPROCS goroutines at
// once (raise with -cpu to push harder). It exists to watch the work
// counters under contention: every query commits its counters under a
// sharded lock, and this benchmark is where a regression to a single
// serializing lock would show up.
func BenchmarkScoreParallel(b *testing.B) {
	const n = 50000
	data := benchData(b, "gauss", n, 2)
	clf := benchClassifier(b, fmt.Sprintf("score/%d/%d", n, 2), data, nil)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := clf.Score(data[i%len(data)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkScoreTelemetry measures the recorder's hot-path cost: "off"
// is the default no-op recorder (one atomic bool load per query, the
// configuration BenchmarkScore runs under), "on" a live registry taking
// two time reads plus histogram updates per query, "flight-disabled" a
// registry with a flight recorder attached but tracing switched off
// (one extra atomic pointer load + bool check — must stay within noise
// of "on"), and "flight" full per-query trace capture into the
// recorder's rings. The off/on delta is the price of the observability
// layer; off must stay within noise of BenchmarkScore, and the CI
// telemetry-overhead guard compares off vs flight-disabled.
func BenchmarkScoreTelemetry(b *testing.B) {
	const n = 50000
	data := benchData(b, "gauss", n, 2)
	b.Run("off", func(b *testing.B) {
		clf := benchClassifier(b, "teleoff", data, nil)
		scoreLoop(b, clf, data)
	})
	b.Run("on", func(b *testing.B) {
		reg := tkdc.NewRegistry()
		clf := benchClassifier(b, "teleon", data, func(c *tkdc.Config) { c.Recorder = reg })
		scoreLoop(b, clf, data)
	})
	b.Run("flight-disabled", func(b *testing.B) {
		reg := tkdc.NewRegistry()
		flight := tkdc.NewFlightRecorder(tkdc.FlightOptions{})
		flight.SetEnabled(false)
		reg.AttachFlightRecorder(flight)
		clf := benchClassifier(b, "teleflightoff", data, func(c *tkdc.Config) { c.Recorder = reg })
		scoreLoop(b, clf, data)
	})
	b.Run("flight", func(b *testing.B) {
		reg := tkdc.NewRegistry()
		reg.AttachFlightRecorder(tkdc.NewFlightRecorder(tkdc.FlightOptions{}))
		clf := benchClassifier(b, "teleflight", data, func(c *tkdc.Config) { c.Recorder = reg })
		scoreLoop(b, clf, data)
	})
}

func BenchmarkFig1ShuttleClassify(b *testing.B) {
	data := benchData(b, "shuttle", 20000, 2)
	clf := benchClassifier(b, "fig1", data, nil)
	scoreLoop(b, clf, data)
}

// BenchmarkFig7Throughput measures per-query tKDC classification on every
// Figure 7 dataset panel.
func BenchmarkFig7Throughput(b *testing.B) {
	panels := []struct {
		name string
		data func(b *testing.B) [][]float64
		bw   float64
	}{
		{"gauss_d2", func(b *testing.B) [][]float64 { return benchData(b, "gauss", 20000, 2) }, 1},
		{"tmy3_d4", func(b *testing.B) [][]float64 { return benchData(b, "tmy3", 15000, 4) }, 1},
		{"tmy3_d8", func(b *testing.B) [][]float64 { return benchData(b, "tmy3", 15000, 8) }, 1},
		{"home_d10", func(b *testing.B) [][]float64 { return benchData(b, "home", 10000, 10) }, 1},
		{"hep_d27", func(b *testing.B) [][]float64 { return benchData(b, "hep", 8000, 27) }, 1},
		{"sift_d64", func(b *testing.B) [][]float64 { return benchData(b, "sift", 4000, 64) }, 1},
		{"mnist_d64", func(b *testing.B) [][]float64 {
			return cached(b, "data/mnist64", func() ([][]float64, error) {
				return dataset.PCAReduce(dataset.MNIST(3000, 42), 64, 2000, 42)
			})
		}, 3},
		{"mnist_d256", func(b *testing.B) [][]float64 {
			return cached(b, "data/mnist256", func() ([][]float64, error) {
				return dataset.PCAReduce(dataset.MNIST(3000, 42), 256, 2000, 42)
			})
		}, 3},
	}
	for _, p := range panels {
		p := p
		b.Run(p.name, func(b *testing.B) {
			data := p.data(b)
			clf := benchClassifier(b, "fig7/"+p.name, data, func(c *tkdc.Config) { c.BandwidthFactor = p.bw })
			scoreLoop(b, clf, data)
		})
	}
}

// BenchmarkFig8Accuracy measures the exact ground-truth pass that anchors
// the Figure 8 accuracy comparison.
func BenchmarkFig8Accuracy(b *testing.B) {
	data := benchData(b, "tmy3", 2000, 4)
	pts := benchStore(b, "fig8", data)
	kern := cached(b, "fig8/kern", func() (kernel.Kernel, error) {
		h, err := kernel.ScottBandwidths(pts, 1)
		if err != nil {
			return nil, err
		}
		return kernel.NewGaussian(h)
	})
	s := baseline.NewSimple(pts, kern)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Density(data[i%len(data)])
	}
}

// BenchmarkFig9ScaleN measures tKDC per-query cost as n grows on 2-d
// gauss data (the Figure 9 series).
func BenchmarkFig9ScaleN(b *testing.B) {
	for _, n := range []int{10000, 40000, 160000} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			data := benchData(b, "gauss", n, 2)
			clf := benchClassifier(b, fmt.Sprintf("fig9/%d", n), data, nil)
			scoreLoop(b, clf, data)
		})
	}
}

// BenchmarkFig10ScaleNHighDim measures tKDC per-query cost as n grows on
// 27-d hep data (the Figure 10 series).
func BenchmarkFig10ScaleNHighDim(b *testing.B) {
	for _, n := range []int{5000, 20000} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			data := benchData(b, "hep", n, 27)
			clf := benchClassifier(b, fmt.Sprintf("fig10/%d", n), data, nil)
			scoreLoop(b, clf, data)
		})
	}
}

// BenchmarkFig11ScaleDim measures tKDC per-query cost across hep column
// subsets (the Figure 11 series).
func BenchmarkFig11ScaleDim(b *testing.B) {
	full := benchData(b, "hep", 10000, 27)
	for _, d := range []int{1, 2, 4, 8, 16, 27} {
		d := d
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			data := cached(b, fmt.Sprintf("fig11/data/%d", d), func() ([][]float64, error) {
				return dataset.TakeColumns(full, d)
			})
			clf := benchClassifier(b, fmt.Sprintf("fig11/%d", d), data, nil)
			scoreLoop(b, clf, data)
		})
	}
}

// BenchmarkFig12FactorAnalysis measures per-query cost as the paper's
// optimizations are enabled cumulatively.
func BenchmarkFig12FactorAnalysis(b *testing.B) {
	data := benchData(b, "tmy3", 8000, 4)
	configs := []struct {
		name string
		mut  func(*tkdc.Config)
	}{
		{"Baseline", func(c *tkdc.Config) {
			c.DisableThresholdRule = true
			c.DisableToleranceRule = true
			c.DisableGrid = true
			c.Split = kdtree.SplitMedian
		}},
		{"+Threshold", func(c *tkdc.Config) {
			c.DisableToleranceRule = true
			c.DisableGrid = true
			c.Split = kdtree.SplitMedian
		}},
		{"+Tolerance", func(c *tkdc.Config) {
			c.DisableGrid = true
			c.Split = kdtree.SplitMedian
		}},
		{"+Equiwidth", func(c *tkdc.Config) { c.DisableGrid = true }},
		{"+Grid", func(c *tkdc.Config) {}},
	}
	for _, fc := range configs {
		fc := fc
		b.Run(fc.name, func(b *testing.B) {
			clf := benchClassifier(b, "fig12/"+fc.name, data, fc.mut)
			scoreLoop(b, clf, data)
		})
	}
}

// BenchmarkFig13RadiusSweep measures rkde per-query cost across cutoff
// radii (the Figure 13 series).
func BenchmarkFig13RadiusSweep(b *testing.B) {
	data := benchData(b, "tmy3", 15000, 4)
	pts := benchStore(b, "fig13", data)
	kern := cached(b, "fig13/kern", func() (kernel.Kernel, error) {
		h, err := kernel.ScottBandwidths(pts, 1)
		if err != nil {
			return nil, err
		}
		return kernel.NewGaussian(h)
	})
	for _, radius := range []float64{0.5, 1, 2, 4} {
		radius := radius
		b.Run(fmt.Sprintf("r=%.1f", radius), func(b *testing.B) {
			rk := cached(b, fmt.Sprintf("fig13/%v", radius), func() (*baseline.RKDE, error) {
				return baseline.NewRKDE(pts, kern, radius)
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rk.Density(data[i%len(data)])
			}
		})
	}
}

// BenchmarkFig14MnistDim measures tKDC per-query cost on PCA-reduced
// mnist across dimensionalities (the Figure 14 series).
func BenchmarkFig14MnistDim(b *testing.B) {
	reduced := cached(b, "fig14/data", func() ([][]float64, error) {
		return dataset.PCAReduce(dataset.MNIST(3000, 42), 128, 2000, 42)
	})
	for _, d := range []int{4, 16, 64, 128} {
		d := d
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			data := cached(b, fmt.Sprintf("fig14/data/%d", d), func() ([][]float64, error) {
				return dataset.TakeColumns(reduced, d)
			})
			clf := benchClassifier(b, fmt.Sprintf("fig14/%d", d), data, func(c *tkdc.Config) { c.BandwidthFactor = 3 })
			scoreLoop(b, clf, data)
		})
	}
}

// BenchmarkFig15ThresholdSweep measures tKDC per-query cost across
// quantile thresholds p (the Figure 15 series).
func BenchmarkFig15ThresholdSweep(b *testing.B) {
	data := benchData(b, "tmy3", 15000, 4)
	for _, p := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		p := p
		b.Run(fmt.Sprintf("p=%.2f", p), func(b *testing.B) {
			clf := benchClassifier(b, fmt.Sprintf("fig15/%v", p), data, func(c *tkdc.Config) { c.P = p })
			scoreLoop(b, clf, data)
		})
	}
}

// BenchmarkFig16Lesion measures per-query cost with each optimization
// removed individually.
func BenchmarkFig16Lesion(b *testing.B) {
	data := benchData(b, "tmy3", 8000, 4)
	configs := []struct {
		name string
		mut  func(*tkdc.Config)
	}{
		{"Complete", func(c *tkdc.Config) {}},
		{"-Threshold", func(c *tkdc.Config) { c.DisableThresholdRule = true }},
		{"-Tolerance", func(c *tkdc.Config) { c.DisableToleranceRule = true }},
		{"-Equiwidth", func(c *tkdc.Config) { c.Split = kdtree.SplitMedian }},
		{"-Grid", func(c *tkdc.Config) { c.DisableGrid = true }},
	}
	for _, fc := range configs {
		fc := fc
		b.Run(fc.name, func(b *testing.B) {
			clf := benchClassifier(b, "fig16/"+fc.name, data, fc.mut)
			scoreLoop(b, clf, data)
		})
	}
}

// BenchmarkTraining measures end-to-end Train (bootstrap + index + grid +
// threshold refinement), the amortized component of Figure 7.
func BenchmarkTraining(b *testing.B) {
	data := benchData(b, "gauss", 10000, 2)
	cfg := core.DefaultConfig()
	cfg.Seed = 42
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Train(data, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrain is the parallel-training baseline pinned in
// BENCH_train.json: end-to-end Train on 50k points at each worker
// count. Models are bit-identical across counts, so this isolates the
// wall-clock effect of the level-parallel tree build, concurrent
// bootstrap scoring, and parallel grid fill.
func BenchmarkTrain(b *testing.B) {
	data := benchData(b, "gauss", 50000, 2)
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Seed = 42
			cfg.Workers = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Train(data, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelClassify measures the Workers extension: batch
// classification across goroutines.
func BenchmarkParallelClassify(b *testing.B) {
	data := benchData(b, "gauss", 40000, 2)
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			clf := benchClassifier(b, fmt.Sprintf("par/%d", workers), data, func(c *tkdc.Config) { c.Workers = workers })
			batch := data[:2000]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := clf.ClassifyAll(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHarnessSmoke runs the cheapest full harness experiments to keep
// the cmd/tkdc-bench path exercised under `go test -bench`.
func BenchmarkHarnessSmoke(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Run("tab3", bench.Options{Scale: 0.001, MaxQueries: 10, Seed: 42}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDualTreeVsPerQuery is the ablation for the dual-tree batch
// extension on a dense evaluation-grid workload (the Figure 1/2
// rendering use case).
func BenchmarkDualTreeVsPerQuery(b *testing.B) {
	data := benchData(b, "gauss", 20000, 2)
	clf := benchClassifier(b, "dual", data, func(c *tkdc.Config) { c.DisableGrid = true })
	// Rendering-resolution grid: several queries per kernel bandwidth,
	// the regime group certification amortizes over.
	grid := cached(b, "dual/grid", func() ([][]float64, error) {
		var qs [][]float64
		for x := -4.0; x <= 4; x += 0.04 {
			for y := -4.0; y <= 4; y += 0.04 {
				qs = append(qs, []float64{x, y})
			}
		}
		return qs, nil
	})
	b.Run("per-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := clf.ClassifyAll(grid); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dual-tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := clf.ClassifyAllDualTree(grid); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkKernelFamilies is the kernel ablation: the finite-support
// Epanechnikov kernel lets the threshold rule prune subtrees to an exact
// zero contribution.
func BenchmarkKernelFamilies(b *testing.B) {
	data := benchData(b, "gauss", 20000, 2)
	for _, fam := range []tkdc.KernelFamily{tkdc.KernelGaussian, tkdc.KernelEpanechnikov} {
		fam := fam
		b.Run(fam.String(), func(b *testing.B) {
			clf := benchClassifier(b, "kern/"+fam.String(), data, func(c *tkdc.Config) { c.Kernel = fam })
			scoreLoop(b, clf, data)
		})
	}
}

// BenchmarkSplitRules is the index ablation behind the +Equiwidth step of
// Figure 12: trimmed-midpoint vs balanced median splitting.
func BenchmarkSplitRules(b *testing.B) {
	data := benchData(b, "tmy3", 15000, 4)
	for _, rule := range []tkdc.SplitRule{tkdc.SplitEquiWidth, tkdc.SplitMedian} {
		rule := rule
		b.Run(rule.String(), func(b *testing.B) {
			clf := benchClassifier(b, "split/"+rule.String(), data, func(c *tkdc.Config) {
				c.Split = rule
				c.DisableGrid = true
			})
			scoreLoop(b, clf, data)
		})
	}
}

// BenchmarkSaveLoad measures model persistence round trips.
func BenchmarkSaveLoad(b *testing.B) {
	data := benchData(b, "gauss", 10000, 2)
	clf := benchClassifier(b, "persist", data, nil)
	b.Run("save", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := clf.Save(&buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("load", func(b *testing.B) {
		var buf bytes.Buffer
		if err := clf.Save(&buf); err != nil {
			b.Fatal(err)
		}
		raw := buf.Bytes()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tkdc.Load(bytes.NewReader(raw)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
