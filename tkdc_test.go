package tkdc_test

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"tkdc"
)

// mixture draws from a two-mode 2-d distribution with a sparse satellite.
func mixture(rng *rand.Rand, n int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		if rng.Float64() < 0.9 {
			pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		} else {
			pts[i] = []float64{6 + rng.NormFloat64()*0.5, 6 + rng.NormFloat64()*0.5}
		}
	}
	return pts
}

func TestPublicAPIEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := mixture(rng, 2000)
	cfg := tkdc.DefaultConfig()
	cfg.S0 = 2000
	clf, err := tkdc.Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if clf.Threshold() <= 0 {
		t.Fatalf("threshold = %g, want positive", clf.Threshold())
	}
	center, err := clf.Classify([]float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if center != tkdc.High {
		t.Fatalf("dense center classified %v", center)
	}
	far, err := clf.Classify([]float64{30, -30})
	if err != nil {
		t.Fatal(err)
	}
	if far != tkdc.Low {
		t.Fatalf("distant outlier classified %v", far)
	}
	labels, err := clf.ClassifyAll([][]float64{{0, 0}, {30, -30}})
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != tkdc.High || labels[1] != tkdc.Low {
		t.Fatalf("batch labels = %v", labels)
	}
	fl, fu, err := clf.DensityBounds([]float64{0, 0}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if fl <= 0 || fu < fl {
		t.Fatalf("density bounds [%g, %g] invalid", fl, fu)
	}
}

func TestTrainDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := mixture(rng, 800)
	clf, err := tkdc.TrainDefault(data)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := clf.ThresholdBounds()
	if !(lo <= clf.Threshold() && clf.Threshold() <= hi) && !math.IsInf(hi, 1) {
		t.Fatalf("threshold %g outside its own bounds [%g, %g]", clf.Threshold(), lo, hi)
	}
	ts := clf.TrainStats()
	if ts.N != 800 || ts.Dim != 2 {
		t.Fatalf("train stats: %+v", ts)
	}
}

func ExampleTrain() {
	// Train on a small deterministic grid of points clustered at the
	// origin plus one distant straggler.
	rng := rand.New(rand.NewSource(7))
	data := make([][]float64, 0, 501)
	for i := 0; i < 500; i++ {
		data = append(data, []float64{rng.NormFloat64() * 0.5, rng.NormFloat64() * 0.5})
	}
	data = append(data, []float64{25, 25})

	cfg := tkdc.DefaultConfig()
	cfg.S0 = 500
	clf, err := tkdc.Train(data, cfg)
	if err != nil {
		panic(err)
	}
	center, _ := clf.Classify([]float64{0, 0})
	straggler, _ := clf.Classify([]float64{25, 25})
	fmt.Println("center:", center)
	fmt.Println("straggler:", straggler)
	// Output:
	// center: HIGH
	// straggler: LOW
}

func TestSaveLoadThroughFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := mixture(rng, 600)
	cfg := tkdc.DefaultConfig()
	cfg.S0 = 600
	clf, err := tkdc.Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := clf.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := tkdc.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Threshold() != clf.Threshold() {
		t.Fatalf("threshold drifted across save/load: %g vs %g", loaded.Threshold(), clf.Threshold())
	}
	a, _ := clf.Classify([]float64{0, 0})
	b, _ := loaded.Classify([]float64{0, 0})
	if a != b {
		t.Fatal("loaded model classifies differently")
	}
}

func TestDualTreeThroughFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := mixture(rng, 1000)
	cfg := tkdc.DefaultConfig()
	cfg.S0 = 1000
	clf, err := tkdc.Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries := [][]float64{{0, 0}, {30, 30}, {6, 6}}
	labels, err := clf.ClassifyAllDualTree(queries)
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != tkdc.High || labels[1] != tkdc.Low {
		t.Fatalf("dual-tree labels = %v", labels)
	}
}
