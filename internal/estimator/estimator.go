// Package estimator implements a sampled far-field kernel density
// estimator for high-dimensional data, in the style of DEANN (Karppa,
// Aumüller & Pagh): the density at a query splits into an exact sum over
// a near field resolved by a budgeted k-d tree descent, plus a
// random-sampling estimate of the unresolved far field.
//
// The near phase is a best-first traversal of the kdtree arena ordered
// by (minimum scaled distance, node count): nodes entirely within the
// near radius — the scaled distance where the kernel has decayed to
// NearCut·K(0) — and leaves touching it are summed exactly; nodes
// entirely beyond the kernel's support contribute an exact zero and are
// dropped. The traversal expands at most NearNodes interior nodes, so
// its cost stays bounded even in high dimensions, where distance bounds
// degenerate and an uncapped range query would scan every point. The
// frontier left when the traversal stops becomes the far field: a set of
// disjoint row ranges, each carrying the certified per-point value bound
// K(dmin) of its node.
//
// The far field is estimated by uniform with-replacement sampling over
// its rows (not the whole dataset, so near-field mass is never double
// counted). The estimate carries an empirical-Bernstein confidence band:
// with probability at least 1−δ the true far-field mean lies within
// sd·sqrt(2L/m) + 3·R·L/m of the sample mean, where m is the sample
// count, R the largest per-node value bound among far ranges, and
// L = ln(3/δ). The band is variance-derived, so it collapses quickly
// when the far field is homogeneous (the usual high-dimensional case)
// and still covers heavy skew through the R/m term. Unlike the tree
// traversal's bounds the band is probabilistic, not certified; the
// certified envelope [sumNear/n, sumNear/n + Σ count·K(dmin)/n] always
// holds and clamps the band.
//
// Sampling is deterministically seeded per query — the seed mixes the
// estimator's base seed with the query coordinates — so retrained models
// and serving replicas produce identical estimates for identical
// (data, config, query) triples.
//
// A Sampler is not safe for concurrent use; create one per goroutine
// (the underlying tree and kernel are shared and immutable).
package estimator

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"tkdc/internal/kdtree"
	"tkdc/internal/kernel"
	"tkdc/internal/telemetry"
)

// Default tuning parameters, used when Options leaves them zero.
const (
	// DefaultNearCut is the relative kernel value that bounds the near
	// field: the near radius is the scaled distance where the kernel
	// falls to NearCut·K(0).
	DefaultNearCut = 1e-3
	// DefaultNearNodes caps the interior-node expansions of the near
	// phase per query.
	DefaultNearNodes = 64
	// DefaultMinSamples is the initial far-field sample size.
	DefaultMinSamples = 256
	// DefaultMaxSamples caps the far-field sample budget per query; the
	// budget doubles from DefaultMinSamples while no stopping rule fires.
	DefaultMaxSamples = 4096
)

// Options configures New. Zero values take the package defaults.
type Options struct {
	// Seed is the base of the per-query deterministic sampling seed.
	Seed int64
	// Delta is the acceptable failure probability of the far-field
	// confidence band (default 0.01).
	Delta float64
	// NearCut bounds the near field: the near radius is the scaled
	// distance where the kernel falls to NearCut·K(0).
	NearCut float64
	// NearNodes caps interior-node expansions in the near phase.
	NearNodes int
	// MinSamples and MaxSamples bound the adaptive far-field sample
	// budget.
	MinSamples, MaxSamples int
	// DisableThreshold turns off the threshold stopping rule.
	DisableThreshold bool
	// DisableTolerance turns off the tolerance stopping rule.
	DisableTolerance bool
}

// Work counts the effort one query performed, in the same units the tree
// traversal reports: PointKernels are per-point kernel/distance
// evaluations (near-field sums plus far-field samples), BoundKernels are
// kernel evaluations at node distance bounds (one per far range
// candidate), and NodesVisited are arena nodes popped during the near
// phase.
type Work struct {
	PointKernels int64
	BoundKernels int64
	NodesVisited int64
	// FarRounds counts adaptive far-field sampling rounds (band
	// re-evaluations) and FarSamples the kernel evaluations drawn inside
	// them — a subset of PointKernels; the remainder is exact near-phase
	// (or exact-fallback) work.
	FarRounds  int64
	FarSamples int64
	// Trace, when non-nil, receives typed per-stage flight records: one
	// "near" stage for the budgeted descent, one "far/round-N" stage per
	// sampling round with the running Bernstein band, or an "exact"
	// stage when a fallback swept the data. Stage timing and bookkeeping
	// run only when Trace is set, keeping the untraced path unchanged.
	Trace *telemetry.QueryTrace
}

// nearItem is one arena node awaiting near-phase processing.
type nearItem struct {
	dmin, dmax float64
	id         int32
	count      int32
}

// nearHeap is a min-heap on (dmin, count): closest node first, smallest
// first among ties, which drives the traversal down the query's own
// containment path before spending budget on sibling regions.
type nearHeap struct {
	items []nearItem
}

func (h *nearHeap) len() int { return len(h.items) }

func nearLess(a, b nearItem) bool {
	if a.dmin != b.dmin {
		return a.dmin < b.dmin
	}
	return a.count < b.count
}

func (h *nearHeap) push(it nearItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !nearLess(h.items[i], h.items[parent]) {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *nearHeap) pop() nearItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.items) && nearLess(h.items[l], h.items[smallest]) {
			smallest = l
		}
		if r < len(h.items) && nearLess(h.items[r], h.items[smallest]) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}

// farRange is one unresolved node's row range in the far-field
// population. cum is the number of far rows preceding the range, so a
// uniform index into the population maps to a row by binary search.
type farRange struct {
	lo, hi int32
	cum    int
}

// farField is the sampling population one near phase leaves behind.
type farField struct {
	ranges []farRange
	count  int     // total far rows
	rmax   float64 // certified bound on any far point's kernel value
	uSum   float64 // Σ count·K(dmin): certified far-field upper mass
}

// Sampler estimates kernel densities over one immutable index by a
// budgeted exact near phase plus seeded far-field sampling.
type Sampler struct {
	tree  *kdtree.Tree
	kern  kernel.Kernel
	invH2 []float64
	n     float64

	nearSq  float64 // scaled squared radius of the exact near field
	logTerm float64 // ln(3/δ) of the empirical-Bernstein band

	seed                   int64
	nearNodes              int
	minSamples, maxSamples int
	disableThreshold       bool
	disableTolerance       bool

	src  rand.Source64
	rng  *rand.Rand
	heap nearHeap
	far  farField
}

// New builds a Sampler over a built tree and its kernel.
func New(tree *kdtree.Tree, kern kernel.Kernel, opts Options) *Sampler {
	if opts.Delta <= 0 || opts.Delta >= 1 {
		opts.Delta = 0.01
	}
	if opts.NearCut <= 0 || opts.NearCut >= 1 {
		opts.NearCut = DefaultNearCut
	}
	if opts.NearNodes <= 0 {
		opts.NearNodes = DefaultNearNodes
	}
	if opts.MinSamples <= 0 {
		opts.MinSamples = DefaultMinSamples
	}
	if opts.MaxSamples <= 0 {
		opts.MaxSamples = DefaultMaxSamples
	}
	if opts.MaxSamples < opts.MinSamples {
		opts.MaxSamples = opts.MinSamples
	}
	src := rand.NewSource(0).(rand.Source64)
	return &Sampler{
		tree:             tree,
		kern:             kern,
		invH2:            kern.InvBandwidthsSq(),
		n:                float64(tree.Size),
		nearSq:           nearRadiusSq(kern, opts.NearCut),
		logTerm:          math.Log(3 / opts.Delta),
		seed:             opts.Seed,
		nearNodes:        opts.NearNodes,
		minSamples:       opts.MinSamples,
		maxSamples:       opts.MaxSamples,
		disableThreshold: opts.DisableThreshold,
		disableTolerance: opts.DisableTolerance,
		src:              src,
		rng:              rand.New(src),
	}
}

// NearRadiusSq returns the bandwidth-scaled squared radius of the exact
// near field.
func (s *Sampler) NearRadiusSq() float64 { return s.nearSq }

// nearRadiusSq finds the smallest scaled squared distance at which the
// kernel has decayed to cut·K(0), by bisection on the monotone kernel.
func nearRadiusSq(kern kernel.Kernel, cut float64) float64 {
	target := cut * kern.AtZero()
	hi := kern.SupportSqRadius()
	if math.IsInf(hi, 1) {
		hi = 1
		for kern.FromScaledSqDist(hi) > target {
			hi *= 2
			if hi > 1e18 { // defensive: no real kernel gets here
				return hi
			}
		}
	}
	lo := 0.0
	for i := 0; i < 64 && hi-lo > 1e-9*(1+hi); i++ {
		mid := 0.5 * (lo + hi)
		if kern.FromScaledSqDist(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// querySeed mixes the base seed with the query coordinates (splitmix64
// finalization over the float bits) so sampling is deterministic per
// (seed, query) and decorrelated across queries.
func querySeed(seed int64, x []float64) int64 {
	h := uint64(seed) ^ 0x9e3779b97f4a7c15
	for _, v := range x {
		h ^= math.Float64bits(v)
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return int64(h)
}

// nearPhase runs the budgeted best-first traversal. It returns the exact
// kernel sum over every resolved row and leaves s.far describing the
// unresolved remainder. Rows in nodes wholly beyond the kernel's support
// contribute an exact zero and appear in neither.
func (s *Sampler) nearPhase(x []float64, w *Work) (sumNear float64) {
	var stageStart time.Time
	var nodes0, pts0, bounds0 int64
	if w.Trace != nil {
		stageStart = time.Now()
		nodes0, pts0, bounds0 = w.NodesVisited, w.PointKernels, w.BoundKernels
	}
	depth := 0

	t := s.tree
	s.heap.items = s.heap.items[:0]
	s.far.ranges = s.far.ranges[:0]
	s.far.count = 0
	s.far.rmax = 0
	s.far.uSum = 0

	// Greedy descent to the leaf nearest the query first, pushing the
	// off-path sibling at each level. Near the data's center the shallow
	// boxes all have dmin ≈ 0 and pure best-first order degenerates into
	// a breadth-first sweep of the tree's top, exhausting the budget
	// before any leaf resolves; the descent guarantees the query's own
	// leaf — and with it a training row's own kernel contribution — is
	// summed exactly for O(depth) extra bound evaluations, at any budget.
	dmin, dmax := t.BoundsSqDist(0, x, s.invH2)
	it := nearItem{dmin: dmin, dmax: dmax, id: 0, count: int32(t.Size)}
	for {
		w.NodesVisited++
		depth++
		if it.dmin > s.nearSq {
			s.addFar(it, w)
			break
		}
		m := &t.Meta[it.id]
		if it.dmax <= s.nearSq || m.Left < 0 {
			sumNear += kernel.Sum(s.kern, x, t.Pts.Slab(int(m.Lo), int(m.Hi)))
			w.PointKernels += int64(it.count)
			break
		}
		lmin, lmax := t.BoundsSqDist(m.Left, x, s.invH2)
		rmin, rmax := t.BoundsSqDist(m.Right, x, s.invH2)
		l := nearItem{dmin: lmin, dmax: lmax, id: m.Left, count: int32(t.Count(m.Left))}
		r := nearItem{dmin: rmin, dmax: rmax, id: m.Right, count: int32(t.Count(m.Right))}
		if nearLess(l, r) {
			s.heap.push(r)
			it = l
		} else {
			s.heap.push(l)
			it = r
		}
	}

	budget := s.nearNodes
	for s.heap.len() > 0 {
		it := s.heap.pop()
		w.NodesVisited++
		if it.dmin > s.nearSq {
			s.addFar(it, w)
			continue
		}
		m := &t.Meta[it.id]
		if it.dmax <= s.nearSq || m.Left < 0 {
			// Wholly inside the near radius, or a leaf touching it:
			// one contiguous exact sweep.
			sumNear += kernel.Sum(s.kern, x, t.Pts.Slab(int(m.Lo), int(m.Hi)))
			w.PointKernels += int64(it.count)
			continue
		}
		if budget == 0 {
			s.addFar(it, w)
			continue
		}
		budget--
		for _, child := range [2]int32{m.Left, m.Right} {
			cmin, cmax := t.BoundsSqDist(child, x, s.invH2)
			s.heap.push(nearItem{dmin: cmin, dmax: cmax, id: child, count: int32(t.Count(child))})
		}
	}
	if w.Trace != nil {
		w.Trace.AddStage(telemetry.TraceStage{
			Name:     "near",
			Duration: time.Since(stageStart),
			Nodes:    w.NodesVisited - nodes0,
			Points:   w.PointKernels - pts0,
			Bounds:   w.BoundKernels - bounds0,
			Depth:    depth,
			Budget:   s.nearNodes - budget,
		})
	}
	return sumNear
}

// addFar moves an unresolved node into the far-field population with its
// certified per-point value bound K(dmin). A zero bound means every
// point in the node lies beyond the kernel's support — an exact zero
// contribution, excluded from the population entirely.
func (s *Sampler) addFar(it nearItem, w *Work) {
	k := s.kern.FromScaledSqDist(it.dmin)
	w.BoundKernels++
	if k == 0 {
		return
	}
	if k > s.far.rmax {
		s.far.rmax = k
	}
	m := &s.tree.Meta[it.id]
	s.far.ranges = append(s.far.ranges, farRange{lo: m.Lo, hi: m.Hi, cum: s.far.count})
	s.far.count += int(it.count)
	s.far.uSum += float64(it.count) * k
}

// farRow maps a uniform index in [0, far.count) to a row index of the
// tree's reordered point buffer by binary search over the range table.
func (s *Sampler) farRow(u int) int {
	ranges := s.far.ranges
	lo, hi := 0, len(ranges)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if ranges[mid].cum <= u {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	r := ranges[lo]
	return int(r.lo) + (u - r.cum)
}

// exactFar sums the far-field kernel exactly over every range — the
// fallback when the population is too small for sampling to pay off, or
// when a caller demands precision the sample budget cannot deliver.
func (s *Sampler) exactFar(x []float64, w *Work) float64 {
	var stageStart time.Time
	var pts0 int64
	if w.Trace != nil {
		stageStart = time.Now()
		pts0 = w.PointKernels
	}
	t := s.tree
	sum := 0.0
	for _, r := range s.far.ranges {
		sum += kernel.Sum(s.kern, x, t.Pts.Slab(int(r.lo), int(r.hi)))
		w.PointKernels += int64(r.hi - r.lo)
	}
	if w.Trace != nil {
		w.Trace.AddStage(telemetry.TraceStage{
			Name:     "far/exact",
			Duration: time.Since(stageStart),
			Points:   w.PointKernels - pts0,
		})
	}
	return sum
}

// farState is the Welford accumulator of the far-field sample.
type farState struct {
	m    int
	mean float64
	m2   float64
}

// sampleTo draws far-field rows uniformly with replacement until the
// accumulator holds target values.
func (s *Sampler) sampleTo(st *farState, x []float64, target int, w *Work) {
	for st.m < target {
		row := s.tree.Pts.Row(s.farRow(s.rng.Intn(s.far.count)))
		v := s.kern.FromScaledSqDist(kernel.ScaledSqDist(x, row, s.invH2))
		w.PointKernels++
		st.m++
		d := v - st.mean
		st.mean += d / float64(st.m)
		st.m2 += d * (v - st.mean)
	}
}

// bounds converts the certified envelope and the far-field sample into
// density bounds and a point estimate. est is the unbiased split
// estimate; fl and fu are the empirical-Bernstein band around it,
// clamped into the certified envelope.
func (s *Sampler) bounds(sumNear float64, st *farState) (fl, fu, est float64) {
	flCert := sumNear / s.n
	fuCert := (sumNear + s.far.uSum) / s.n
	frac := float64(s.far.count) / s.n
	est = flCert + frac*st.mean
	variance := 0.0
	if st.m > 1 {
		variance = st.m2 / float64(st.m-1)
	}
	m := float64(st.m)
	band := frac * (math.Sqrt(2*variance*s.logTerm/m) + 3*s.far.rmax*s.logTerm/m)
	fl = est - band
	fu = est + band
	if fl < flCert {
		fl = flCert
	}
	if fu > fuCert {
		fu = fuCert
	}
	if fl > fu {
		mid := 0.5 * (fl + fu)
		fl, fu = mid, mid
	}
	if est < fl {
		est = fl
	}
	if est > fu {
		est = fu
	}
	return fl, fu, est
}

// exact computes the density by a full kernel sweep — the small-dataset
// fallback.
func (s *Sampler) exact(x []float64, w *Work) float64 {
	var stageStart time.Time
	if w.Trace != nil {
		stageStart = time.Now()
	}
	w.PointKernels += int64(s.tree.Size)
	v := kernel.Sum(s.kern, x, s.tree.Pts.Data) / s.n
	if w.Trace != nil {
		w.Trace.AddStage(telemetry.TraceStage{
			Name:     "exact",
			Duration: time.Since(stageStart),
			Points:   int64(s.tree.Size),
			Lower:    v,
			Upper:    v,
		})
	}
	return v
}

// BoundDensity estimates the density at x under the threshold/tolerance
// stopping rules of tKDC's Algorithm 2: the far-field sample budget
// doubles from MinSamples until the confidence band clears [tl, tu] on
// one side (the classification is decided), the band is narrower than
// tolCut, or MaxSamples is reached. The returned fl ≤ est ≤ fu satisfy
// fl ≤ f(x) ≤ fu with probability ≥ 1−δ (with certainty, when the near
// phase resolved the whole dataset); est is the unbiased split estimate.
func (s *Sampler) BoundDensity(x []float64, tl, tu, tolCut float64, w *Work) (fl, fu, est float64) {
	s.src.Seed(querySeed(s.seed, x))
	if s.tree.Size <= 2*s.minSamples {
		v := s.exact(x, w)
		return v, v, v
	}
	sumNear := s.nearPhase(x, w)
	if s.far.count == 0 {
		v := sumNear / s.n
		return v, v, v
	}
	if s.far.count <= s.minSamples {
		// Sampling with replacement from a population this small costs
		// more than exhausting it.
		v := (sumNear + s.exactFar(x, w)) / s.n
		return v, v, v
	}
	var st farState
	target := s.minSamples
	for {
		var roundStart time.Time
		if w.Trace != nil {
			roundStart = time.Now()
		}
		s.sampleTo(&st, x, target, w)
		fl, fu, est = s.bounds(sumNear, &st)
		w.FarRounds++
		if w.Trace != nil {
			w.Trace.AddStage(telemetry.TraceStage{
				Name:     fmt.Sprintf("far/round-%d", w.FarRounds),
				Duration: time.Since(roundStart),
				Samples:  int64(st.m),
				Lower:    fl,
				Upper:    fu,
				Band:     fu - fl,
			})
		}
		if !s.disableThreshold && (fl > tu || fu < tl) {
			break
		}
		if !s.disableTolerance && tolCut > 0 && fu-fl < tolCut {
			break
		}
		if target >= s.maxSamples {
			break
		}
		target *= 2
		if target > s.maxSamples {
			target = s.maxSamples
		}
	}
	w.FarSamples += int64(st.m)
	return fl, fu, est
}

// EstimateDensity estimates the density to relative precision rel
// (fu − fl ≤ rel·fl) regardless of any threshold. If the sample budget
// cannot tighten the band that far — or rel ≤ 0 demands exactness — it
// falls back to exhausting the far field exactly, so the returned
// precision always honors the contract.
func (s *Sampler) EstimateDensity(x []float64, rel float64, w *Work) (fl, fu, est float64) {
	s.src.Seed(querySeed(s.seed, x))
	if s.tree.Size <= 2*s.minSamples {
		v := s.exact(x, w)
		return v, v, v
	}
	sumNear := s.nearPhase(x, w)
	if s.far.count == 0 {
		v := sumNear / s.n
		return v, v, v
	}
	if rel > 0 && s.far.count > s.minSamples {
		var st farState
		target := s.minSamples
		for {
			var roundStart time.Time
			if w.Trace != nil {
				roundStart = time.Now()
			}
			s.sampleTo(&st, x, target, w)
			fl, fu, est = s.bounds(sumNear, &st)
			w.FarRounds++
			if w.Trace != nil {
				w.Trace.AddStage(telemetry.TraceStage{
					Name:     fmt.Sprintf("far/round-%d", w.FarRounds),
					Duration: time.Since(roundStart),
					Samples:  int64(st.m),
					Lower:    fl,
					Upper:    fu,
					Band:     fu - fl,
				})
			}
			if fu-fl <= rel*fl {
				w.FarSamples += int64(st.m)
				return fl, fu, est
			}
			if target >= s.maxSamples {
				break
			}
			target *= 2
			if target > s.maxSamples {
				target = s.maxSamples
			}
		}
		w.FarSamples += int64(st.m)
	}
	v := (sumNear + s.exactFar(x, w)) / s.n
	return v, v, v
}
