package baseline

import (
	"tkdc/internal/kdtree"
	"tkdc/internal/kernel"
	"tkdc/internal/points"
)

// NoCut is the tolerance-only tree traversal of Gray & Moore: it refines
// per-region density bounds until the relative gap satisfies
// fu − fl ≤ ε·fl, with no knowledge of any classification threshold. This
// reproduces the paper's "nocut" baseline, which in turn emulates
// scikit-learn's k-d tree KDE (Section 4.1).
type NoCut struct {
	tree    *kdtree.Tree
	kern    kernel.Kernel
	invH2   []float64
	eps     float64
	kernels int64
	heap    []nodeBound
}

type nodeBound struct {
	node     *kdtree.Node
	wlo, whi float64
}

// NewNoCut builds the tolerance-only estimator. eps is the relative error
// target (0.01 in the paper's experiments); eps ≤ 0 computes exactly.
func NewNoCut(data *points.Store, kern kernel.Kernel, eps float64) (*NoCut, error) {
	tree, err := kdtree.Build(data, kdtree.Options{})
	if err != nil {
		return nil, err
	}
	return &NoCut{tree: tree, kern: kern, invH2: kern.InvBandwidthsSq(), eps: eps}, nil
}

// Name returns "nocut".
func (nc *NoCut) Name() string { return "nocut" }

// N returns the training set size.
func (nc *NoCut) N() int { return nc.tree.Size }

// Kernels returns total kernel evaluations.
func (nc *NoCut) Kernels() int64 { return nc.kernels }

// Density estimates f(x) to relative precision eps, returning the bound
// midpoint.
func (nc *NoCut) Density(x []float64) float64 {
	fl, fu := nc.Bounds(x)
	return 0.5 * (fl + fu)
}

// Bounds returns certified density bounds with fu − fl ≤ ε·fl. It
// traverses the pointer view of the index (Tree.Root), exercising the
// compatibility surface the arena-based hot path no longer uses.
func (nc *NoCut) Bounds(x []float64) (fl, fu float64) {
	nc.heap = nc.heap[:0]
	n := float64(nc.tree.Size)

	weights := func(nd *kdtree.Node) (wlo, whi float64) {
		frac := float64(nd.Count()) / n
		wlo = frac * nc.kern.FromScaledSqDist(nd.MaxSqDist(x, nc.invH2))
		whi = frac * nc.kern.FromScaledSqDist(nd.MinSqDist(x, nc.invH2))
		nc.kernels += 2
		return wlo, whi
	}

	root := nc.tree.Root()
	wlo, whi := weights(root)
	fl, fu = wlo, whi
	nc.push(nodeBound{root, wlo, whi})

	for len(nc.heap) > 0 {
		if nc.eps > 0 && fu-fl <= nc.eps*fl {
			break
		}
		cur := nc.pop()
		fl -= cur.wlo
		fu -= cur.whi
		if cur.node.IsLeaf() {
			sum := kernel.Sum(nc.kern, x, nc.tree.Leaf(cur.node))
			nc.kernels += int64(cur.node.Count())
			sum /= n
			fl += sum
			fu += sum
			continue
		}
		for _, child := range []*kdtree.Node{cur.node.Left, cur.node.Right} {
			cwlo, cwhi := weights(child)
			if cwhi == 0 {
				continue
			}
			fl += cwlo
			fu += cwhi
			nc.push(nodeBound{child, cwlo, cwhi})
		}
	}
	if fl < 0 {
		fl = 0
	}
	if fu < fl {
		fu = fl
	}
	return fl, fu
}

func (nc *NoCut) push(it nodeBound) {
	nc.heap = append(nc.heap, it)
	i := len(nc.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if gap(nc.heap[parent]) >= gap(nc.heap[i]) {
			break
		}
		nc.heap[parent], nc.heap[i] = nc.heap[i], nc.heap[parent]
		i = parent
	}
}

func (nc *NoCut) pop() nodeBound {
	top := nc.heap[0]
	last := len(nc.heap) - 1
	nc.heap[0] = nc.heap[last]
	nc.heap = nc.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(nc.heap) && gap(nc.heap[l]) > gap(nc.heap[largest]) {
			largest = l
		}
		if r < len(nc.heap) && gap(nc.heap[r]) > gap(nc.heap[largest]) {
			largest = r
		}
		if largest == i {
			return top
		}
		nc.heap[i], nc.heap[largest] = nc.heap[largest], nc.heap[i]
		i = largest
	}
}

func gap(it nodeBound) float64 { return it.whi - it.wlo }
