package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"tkdc/internal/kernel"
	"tkdc/internal/points"
	"tkdc/internal/stats"
)

// bruteThreshold computes the exact self-contribution-corrected p-quantile
// of training densities — the definition of t(p) in Equation 1.
func bruteThreshold(data *points.Store, b, p float64) float64 {
	h, _ := kernel.ScottBandwidths(data, b)
	kern, _ := kernel.NewGaussian(h)
	n := data.Len()
	self := kern.AtZero() / float64(n)
	ds := make([]float64, n)
	for i := 0; i < n; i++ {
		ds[i] = exactDensity(data, kern, data.Row(i)) - self
	}
	sort.Float64s(ds)
	t, _ := stats.SortedQuantile(ds, p)
	return t
}

// TestBoundThresholdBracketsTrueThreshold verifies the bootstrap's core
// guarantee across seeds: the returned bounds contain the exact t(p) (the
// failure probability δ = 0.01 makes a miss across 8 seeds vanishingly
// unlikely; allow one).
func TestBoundThresholdBracketsTrueThreshold(t *testing.T) {
	misses := 0
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		data := mustStore(gauss2D(rng, 1500))
		cfg := testConfig().normalized()
		tb, err := boundThreshold(data, cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		trueT := bruteThreshold(data, cfg.BandwidthFactor, cfg.P)
		// Allow the ε precision the estimates carry.
		slack := 2 * cfg.Epsilon * trueT
		if trueT < tb.lo-slack || trueT > tb.hi+slack {
			misses++
			t.Logf("seed %d: true t(p)=%g outside [%g, %g]", seed, trueT, tb.lo, tb.hi)
		}
		if tb.lo > tb.hi {
			t.Fatalf("seed %d: inverted bounds [%g, %g]", seed, tb.lo, tb.hi)
		}
		if tb.rounds < 1 {
			t.Fatalf("seed %d: no bootstrap rounds recorded", seed)
		}
	}
	if misses > 1 {
		t.Fatalf("threshold bounds missed the true threshold %d/8 times", misses)
	}
}

// The bootstrap must be dramatically cheaper than scoring every training
// point exactly: its kernel evaluations should be well below n² even on a
// modest dataset.
func TestBoundThresholdCheaperThanExact(t *testing.T) {
	skipUnlessTreeEfficiency(t)
	rng := rand.New(rand.NewSource(40))
	data := mustStore(gauss2D(rng, 4000))
	cfg := testConfig().normalized()
	tb, err := boundThreshold(data, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	exactCost := int64(data.Len()) * int64(data.Len())
	if tb.queries.Kernels() > exactCost/4 {
		t.Fatalf("bootstrap used %d kernels; exact pass would be %d", tb.queries.Kernels(), exactCost)
	}
}

func TestBoundThresholdTinyData(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	data := mustStore([][]float64{{0}, {0.1}, {0.2}, {10}})
	cfg := testConfig().normalized()
	tb, err := boundThreshold(data, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(tb.hi, 1) || tb.lo > tb.hi {
		t.Fatalf("degenerate bounds for tiny data: [%g, %g]", tb.lo, tb.hi)
	}
}

func TestSampleRows(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	rows := mustStore([][]float64{{1}, {2}, {3}, {4}, {5}})
	got := sampleRows(rows, 3, rng)
	if got.Len() != 3 {
		t.Fatalf("sampled %d rows, want 3", got.Len())
	}
	seen := map[float64]bool{}
	for i := 0; i < got.Len(); i++ {
		if seen[got.At(i, 0)] {
			t.Fatal("sampleRows drew with replacement")
		}
		seen[got.At(i, 0)] = true
	}
	// k ≥ n returns all rows.
	all := sampleRows(rows, 10, rng)
	if all.Len() != 5 {
		t.Fatalf("k>n returned %d rows, want 5", all.Len())
	}
	// Original store unharmed.
	for i := 0; i < rows.Len(); i++ {
		if rows.At(i, 0) != float64(i+1) {
			t.Fatal("sampleRows mutated input")
		}
	}
}

func TestScaleHelpers(t *testing.T) {
	if scaleTowardInf(2, 4) != 8 {
		t.Fatal("positive upper bound should grow")
	}
	if scaleTowardInf(-2, 4) != -0.5 {
		t.Fatal("negative upper bound should move toward zero/inf")
	}
	if scaleTowardZero(2, 4) != 0.5 {
		t.Fatal("positive lower bound should shrink")
	}
	if scaleTowardZero(-2, 4) != -8 {
		t.Fatal("negative lower bound should fall")
	}
	if scaleTowardZero(0, 4) != 0 || scaleTowardInf(0, 4) != 0 {
		t.Fatal("zero is a fixed point")
	}
}
