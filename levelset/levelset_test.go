package levelset

import (
	"math"
	"math/rand"
	"testing"

	"tkdc"
)

// gaussData draws points from an isotropic 2-d standard normal, whose
// level sets are circles — easy to verify geometrically.
func gaussData(rng *rand.Rand, n int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	return pts
}

func testCfg() tkdc.Config {
	cfg := tkdc.DefaultConfig()
	cfg.S0 = 2000
	cfg.Seed = 5
	return cfg
}

func TestTrainLadderValidation(t *testing.T) {
	data := gaussData(rand.New(rand.NewSource(1)), 300)
	if _, err := TrainLadder(data, nil, testCfg()); err == nil {
		t.Error("no levels should error")
	}
	if _, err := TrainLadder(data, []float64{0.5, 0.1}, testCfg()); err == nil {
		t.Error("unsorted levels should error")
	}
	if _, err := TrainLadder(data, []float64{0.1, 0.1}, testCfg()); err == nil {
		t.Error("duplicate levels should error")
	}
	if _, err := TrainLadder(data, []float64{0, 0.5}, testCfg()); err == nil {
		t.Error("p=0 should error")
	}
	if _, err := TrainLadder(data, []float64{0.5, 1}, testCfg()); err == nil {
		t.Error("p=1 should error")
	}
}

func TestLadderThresholdsNested(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := gaussData(rng, 3000)
	levels := []float64{0.05, 0.25, 0.5, 0.75}
	l, err := TrainLadder(data, levels, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	ths := l.Thresholds()
	for i := 1; i < len(ths); i++ {
		if ths[i] <= ths[i-1] {
			t.Fatalf("thresholds not increasing: %v", ths)
		}
	}
	if len(l.Levels()) != 4 || l.Classifier(0) == nil {
		t.Fatal("accessors broken")
	}
}

func TestBracketMatchesGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := gaussData(rng, 5000)
	l, err := TrainLadder(data, []float64{0.05, 0.25, 0.5, 0.75}, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// The origin is the densest point: quantile near 1.
	lo, hi, err := l.Bracket([]float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0.75 || hi != 1 {
		t.Fatalf("origin bracket = (%v, %v], want (0.75, 1]", lo, hi)
	}
	// A far tail point: quantile near 0.
	lo, hi, err = l.Bracket([]float64{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0 || hi != 0.05 {
		t.Fatalf("tail bracket = (%v, %v], want (0, 0.05]", lo, hi)
	}
	// Brackets are consistent with the standard normal's radial quantile:
	// a point at radius r has density quantile P(R > r)... monotone in r,
	// so brackets must be monotone non-increasing with radius.
	prevHi := 1.0
	for _, r := range []float64{0.2, 1.0, 1.8, 2.6, 3.4} {
		_, hi, err := l.Bracket([]float64{r, 0})
		if err != nil {
			t.Fatal(err)
		}
		if hi > prevHi {
			t.Fatalf("bracket hi increased with radius at r=%v: %v > %v", r, hi, prevHi)
		}
		prevHi = hi
	}
}

func TestPValueAtMost(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := gaussData(rng, 3000)
	l, err := TrainLadder(data, []float64{0.01, 0.1}, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Far outlier is significant at alpha = 0.01.
	sig, err := l.PValueAtMost([]float64{10, 10}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !sig {
		t.Fatal("distant outlier should be significant at 0.01")
	}
	// The mode is not significant at alpha = 0.1.
	sig, err = l.PValueAtMost([]float64{0, 0}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if sig {
		t.Fatal("the mode should not be significant")
	}
	// No usable level below alpha.
	if _, err := l.PValueAtMost([]float64{0, 0}, 0.001); err == nil {
		t.Fatal("alpha below the smallest level should error")
	}
}

func TestClassifyWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := gaussData(rng, 4000)
	clf, err := tkdc.Train(data, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	w := Window{XMin: -5, XMax: 5, YMin: -5, YMax: 5, W: 41, H: 41}
	mask, err := ClassifyWindow(clf, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(mask) != 41 || len(mask[0]) != 41 {
		t.Fatalf("mask shape %dx%d", len(mask), len(mask[0]))
	}
	if !mask[20][20] {
		t.Fatal("window center (the mode) should be HIGH")
	}
	if mask[0][0] || mask[40][40] {
		t.Fatal("window corners (radius ~7σ) should be LOW")
	}
}

func TestClassifyWindowValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := gaussData(rng, 500)
	clf, err := tkdc.Train(data, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ClassifyWindow(clf, Window{W: 1, H: 5, XMax: 1, YMax: 1}); err == nil {
		t.Error("1-wide window should error")
	}
	if _, err := ClassifyWindow(clf, Window{W: 5, H: 5, XMin: 1, XMax: 1, YMax: 1}); err == nil {
		t.Error("degenerate extent should error")
	}
	// 3-d classifier rejected.
	data3 := make([][]float64, 300)
	for i := range data3 {
		data3[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	clf3, err := tkdc.Train(data3, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ClassifyWindow(clf3, Window{W: 5, H: 5, XMax: 1, YMax: 1}); err == nil {
		t.Error("3-d classifier should error")
	}
}

// TestContourIsACircle: for an isotropic gaussian, the decision boundary
// is a circle; every contour segment endpoint must sit at (nearly) the
// same radius.
func TestContourIsACircle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := gaussData(rng, 6000)
	clf, err := tkdc.Train(data, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	w := Window{XMin: -5, XMax: 5, YMin: -5, YMax: 5, W: 81, H: 81}
	segs, err := Contour(clf, w, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 20 {
		t.Fatalf("only %d contour segments; expected a full circle", len(segs))
	}
	var radii []float64
	for _, s := range segs {
		radii = append(radii, math.Hypot(s.X1, s.Y1), math.Hypot(s.X2, s.Y2))
	}
	mean := 0.0
	for _, r := range radii {
		mean += r
	}
	mean /= float64(len(radii))
	if mean < 1.5 || mean > 4.5 {
		t.Fatalf("contour radius %v implausible for a p=0.01 gaussian level set", mean)
	}
	for _, r := range radii {
		if math.Abs(r-mean) > 0.35*mean {
			t.Fatalf("contour not circular: radius %v vs mean %v", r, mean)
		}
	}
}

func TestContourAtValidation(t *testing.T) {
	w := Window{XMin: 0, XMax: 1, YMin: 0, YMax: 1, W: 3, H: 3}
	good := [][]float64{{0, 0, 0}, {0, 1, 0}, {0, 0, 0}}
	if _, err := ContourAt(good, w, math.NaN()); err == nil {
		t.Error("NaN level should error")
	}
	if _, err := ContourAt(good[:2], w, 0.5); err == nil {
		t.Error("wrong height should error")
	}
	bad := [][]float64{{0, 0}, {0, 1, 0}, {0, 0, 0}}
	if _, err := ContourAt(bad, w, 0.5); err == nil {
		t.Error("ragged field should error")
	}
}

// TestContourAtSinglePeak: a field with one interior peak must produce a
// closed loop around it (4 segments at 3x3 resolution).
func TestContourAtSinglePeak(t *testing.T) {
	w := Window{XMin: 0, XMax: 2, YMin: 0, YMax: 2, W: 3, H: 3}
	field := [][]float64{
		{0, 0, 0},
		{0, 1, 0},
		{0, 0, 0},
	}
	segs, err := ContourAt(field, w, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 4 {
		t.Fatalf("single peak at level 0.5 should yield 4 segments, got %d: %v", len(segs), segs)
	}
	// All segment endpoints must lie strictly inside the window and at
	// interpolated positions (0.5 or 1.5 on some axis).
	for _, s := range segs {
		for _, v := range []float64{s.X1, s.Y1, s.X2, s.Y2} {
			if v < 0 || v > 2 {
				t.Fatalf("segment endpoint %v outside window", s)
			}
		}
	}
}

func TestContourAtFlatFieldIsEmpty(t *testing.T) {
	w := Window{XMin: 0, XMax: 1, YMin: 0, YMax: 1, W: 4, H: 4}
	field := make([][]float64, 4)
	for j := range field {
		field[j] = []float64{3, 3, 3, 3}
	}
	segs, err := ContourAt(field, w, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 0 {
		t.Fatalf("uniform field above level should have no contours, got %d", len(segs))
	}
}

func TestDensityWindowMatchesClassification(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	data := gaussData(rng, 2000)
	clf, err := tkdc.Train(data, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	w := Window{XMin: -4, XMax: 4, YMin: -4, YMax: 4, W: 17, H: 17}
	field, err := DensityWindow(clf, w, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	mask, err := ClassifyWindow(clf, w)
	if err != nil {
		t.Fatal(err)
	}
	thr := clf.Threshold()
	for j := range field {
		for i := range field[j] {
			// Away from the ε band, the density field and the mask must
			// agree about which side of the threshold each cell is on.
			if math.Abs(field[j][i]-thr) < 0.2*thr {
				continue
			}
			if (field[j][i] > thr) != mask[j][i] {
				t.Fatalf("cell (%d,%d): density %g vs threshold %g disagrees with mask %v",
					i, j, field[j][i], thr, mask[j][i])
			}
		}
	}
}
