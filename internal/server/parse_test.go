package server

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// TestParseRowsFlatEquivalence is the fast-parse contract: for every
// input, parseRowsFlat must accept exactly what parsePoints accepts,
// produce the same rows, and fail with the same error text. The fast
// scanners achieve this by falling back to parsePoints for anything
// outside their conservative subset, so the table deliberately mixes
// clean inputs (fast path) with every tricky shape that must fall back.
func TestParseRowsFlatEquivalence(t *testing.T) {
	cases := []struct {
		name, contentType, body string
	}{
		{"csv simple", "text/csv", "1,2\n3,4\n"},
		{"csv no trailing newline", "text/csv", "1,2\n3,4"},
		{"csv negatives and exponents", "text/csv", "-1.5,2e3\n+0.25,-4E-2\n"},
		{"csv blank lines", "text/csv", "\n1,2\n\n3,4\n\n"},
		{"csv spaces around fields", "text/csv", " 1 , 2 \n 3 , 4 \n"},
		{"csv crlf", "text/csv", "1,2\r\n3,4\r\n"},
		{"csv header", "text/csv", "x,y\n1,2\n3,4\n"},
		{"csv header then bad row", "text/csv", "x,y\n1,2\nfoo,4\n"},
		{"csv trailing comma", "text/csv", "1,2,\n3,4,\n"},
		{"csv ragged", "text/csv", "1,2\n3,4,5\n"},
		{"csv inf", "text/csv", "Inf,2\n3,4\n"},
		{"csv nan", "text/csv", "NaN,2\n"},
		{"csv hex float", "text/csv", "0x1p3,2\n"},
		{"csv unicode space", "text/csv", " 1,2\n"},
		{"csv single column", "text/csv", "1\n2\n3\n"},
		{"csv empty", "text/csv", ""},
		{"csv only blank lines", "text/csv", "\n\n"},
		{"csv garbage", "text/csv", "hello world\nnot,numbers\n"},
		{"json bare array", "application/json", `[[1,2],[3,4]]`},
		{"json points object", "application/json", `{"points":[[1,2],[3,4]]}`},
		{"json whitespace", "application/json", " {\n\t\"points\": [ [1, 2] , [3, 4] ] }\n"},
		{"json exponents", "application/json", `[[1e-3,2.5E2],[-0.125,3]]`},
		{"json empty outer", "application/json", `[]`},
		{"json empty points", "application/json", `{"points":[]}`},
		{"json empty row", "application/json", `[[]]`},
		{"json ragged", "application/json", `[[1,2],[3]]`},
		{"json extra key", "application/json", `{"points":[[1,2]],"mode":"fast"}`},
		{"json trailing garbage", "application/json", `[[1,2]] extra`},
		{"json string element", "application/json", `[["1",2]]`},
		{"json nested too deep", "application/json", `[[[1]]]`},
		{"json null", "application/json", `null`},
		{"json not rows", "application/json", `{"points":"nope"}`},
		{"json plus sign", "application/json", `[[+1,2]]`},
		{"json sniffed from csv content type", "text/csv", `{"points":[[1,2]]}`},
		{"default content type csv", "", "1,2\n3,4\n"},
		{"empty body json", "application/json", ""},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantRows, wantErr := parsePoints(tc.contentType, []byte(tc.body))
			flat, n, dim, err := parseRowsFlat(tc.contentType, []byte(tc.body), nil)

			// parsePoints tolerates ragged rows (the legacy pipeline
			// rejects them one stage later, at classification), but a flat
			// buffer cannot represent them: the flat path must reject at
			// parse time instead. Either way the handler answers 400.
			ragged := false
			for _, row := range wantRows {
				if len(row) != len(wantRows[0]) {
					ragged = true
				}
			}
			if wantErr == nil && ragged {
				if err == nil {
					t.Fatal("ragged rows: flat parse succeeded, want error")
				}
				return
			}

			if (err == nil) != (wantErr == nil) {
				t.Fatalf("error mismatch: flat err=%v, parsePoints err=%v", err, wantErr)
			}
			if err != nil {
				if err.Error() != wantErr.Error() {
					t.Fatalf("error text: flat %q, parsePoints %q", err, wantErr)
				}
				return
			}
			if n != len(wantRows) {
				t.Fatalf("n = %d, want %d", n, len(wantRows))
			}
			if n > 0 && dim != len(wantRows[0]) {
				t.Fatalf("dim = %d, want %d", dim, len(wantRows[0]))
			}
			for i, row := range wantRows {
				for j, v := range row {
					got := flat[i*dim+j]
					if got != v && !(got != got && v != v) { // NaN == NaN here
						t.Fatalf("row %d col %d: flat %v, want %v", i, j, got, v)
					}
				}
			}
		})
	}
}

// TestParseRowsFlatReusesDst pins the pooling contract: a dst buffer
// with capacity is filled in place (no fresh allocation) and the
// returned flat aliases it.
func TestParseRowsFlatReusesDst(t *testing.T) {
	dst := make([]float64, 0, 64)
	flat, n, dim, err := parseRowsFlat("text/csv", []byte("1,2\n3,4\n"), dst)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || dim != 2 {
		t.Fatalf("n=%d dim=%d, want 2,2", n, dim)
	}
	if &flat[0] != &dst[:1][0] {
		t.Fatal("flat does not alias dst: fast path allocated a new buffer")
	}
}

func benchBody(rows int) (csv, jsonBody string) {
	rng := rand.New(rand.NewSource(5))
	var c, j strings.Builder
	j.WriteString(`{"points":[`)
	for i := 0; i < rows; i++ {
		x, y := rng.NormFloat64(), rng.NormFloat64()
		fmt.Fprintf(&c, "%.6f,%.6f\n", x, y)
		if i > 0 {
			j.WriteByte(',')
		}
		fmt.Fprintf(&j, "[%.6f,%.6f]", x, y)
	}
	j.WriteString(`]}`)
	return c.String(), j.String()
}

// BenchmarkParse measures the allocation savings of the flat fast path
// over the rows-of-slices parser — the satellite's allocs/op proof.
// Run with -benchmem: the flat legs amortize to near-zero allocs/op
// once the pooled dst has warmed, while the rows legs allocate one
// slice per row plus the decoder machinery.
func BenchmarkParse(b *testing.B) {
	csvBody, jsonBody := benchBody(256)
	legs := []struct {
		name, contentType, body string
	}{
		{"csv", "text/csv", csvBody},
		{"json", "application/json", jsonBody},
	}
	for _, leg := range legs {
		body := []byte(leg.body)
		b.Run(leg.name+"/rows", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := parsePoints(leg.contentType, body); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(leg.name+"/flat", func(b *testing.B) {
			b.ReportAllocs()
			dst := make([]float64, 0, 1024)
			for i := 0; i < b.N; i++ {
				if _, _, _, err := parseRowsFlat(leg.contentType, body, dst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
