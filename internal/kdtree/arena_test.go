package kdtree

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"tkdc/internal/points"
)

// --- Reference implementation -------------------------------------------
//
// refBuild is an independent pointer-based DFS construction implementing
// the pre-arena build algorithm verbatim: recursive node allocation, two
// separately-allocated Min/Max slices per node, the same split rules and
// duplicate fallbacks. The property tests below build both layouts over
// random point sets and demand bit-identical node ranges, boxes, and
// point (leaf) order — certifying the arena refactor as a pure layout
// change.

type refNode struct {
	min, max    []float64
	lo, hi      int
	left, right *refNode
}

type refTree struct {
	pts  *points.Store
	opts Options
}

func refBuild(pts *points.Store, opts Options) (*refTree, *refNode) {
	if opts.LeafSize <= 0 {
		opts.LeafSize = DefaultLeafSize
	}
	t := &refTree{pts: pts.Clone(), opts: opts}
	return t, t.build(0, t.pts.Len(), 0)
}

func (t *refTree) build(lo, hi, depth int) *refNode {
	n := &refNode{lo: lo, hi: hi}
	n.min, n.max = t.boundingBox(lo, hi)
	if hi-lo <= t.opts.LeafSize {
		return n
	}
	d := t.pts.Dim
	dim := -1
	for off := 0; off < d; off++ {
		cand := (depth + off) % d
		if n.max[cand] > n.min[cand] {
			dim = cand
			break
		}
	}
	if dim < 0 {
		return n
	}
	split := t.splitValue(lo, hi, dim)
	mid := t.partition(lo, hi, dim, split)
	if mid == lo || mid == hi {
		sort.Sort(&rowSorter{pts: t.pts, lo: lo, hi: hi, dim: dim})
		mid = lo + (hi-lo)/2
		for mid < hi && t.pts.At(mid, dim) == t.pts.At(mid-1, dim) {
			mid++
		}
		if mid == hi {
			mid = lo + (hi-lo)/2
			for mid > lo && t.pts.At(mid, dim) == t.pts.At(mid-1, dim) {
				mid--
			}
		}
		if mid == lo || mid == hi {
			return n
		}
	}
	n.left = t.build(lo, mid, depth+1)
	n.right = t.build(mid, hi, depth+1)
	return n
}

func (t *refTree) boundingBox(lo, hi int) (bmin, bmax []float64) {
	d := t.pts.Dim
	bmin = make([]float64, d)
	bmax = make([]float64, d)
	copy(bmin, t.pts.Row(lo))
	copy(bmax, t.pts.Row(lo))
	flat := t.pts.Slab(lo+1, hi)
	for off := 0; off < len(flat); off += d {
		for j := 0; j < d; j++ {
			v := flat[off+j]
			if v < bmin[j] {
				bmin[j] = v
			}
			if v > bmax[j] {
				bmax[j] = v
			}
		}
	}
	return bmin, bmax
}

func (t *refTree) splitValue(lo, hi, dim int) float64 {
	vals := make([]float64, hi-lo)
	for i := range vals {
		vals[i] = t.pts.At(lo+i, dim)
	}
	sort.Float64s(vals)
	switch t.opts.Split {
	case SplitMedian:
		return vals[len(vals)/2]
	default:
		p10 := vals[int(0.10*float64(len(vals)-1))]
		p90 := vals[int(0.90*float64(len(vals)-1))]
		return 0.5 * (p10 + p90)
	}
}

func (t *refTree) partition(lo, hi, dim int, split float64) int {
	i, j := lo, hi-1
	for i <= j {
		if t.pts.At(i, dim) < split {
			i++
		} else {
			t.pts.Swap(i, j)
			j--
		}
	}
	return i
}

// compareArenaToRef walks the arena and the reference tree in lockstep,
// asserting identical structure, ranges, and boxes.
func compareArenaToRef(t *testing.T, tr *Tree, ref *refNode, id int32) {
	t.Helper()
	m := tr.Meta[id]
	if int(m.Lo) != ref.lo || int(m.Hi) != ref.hi {
		t.Fatalf("node %d: range [%d, %d), reference [%d, %d)", id, m.Lo, m.Hi, ref.lo, ref.hi)
	}
	bmin, bmax := tr.Box(id)
	for j := 0; j < tr.Dim; j++ {
		if bmin[j] != ref.min[j] || bmax[j] != ref.max[j] {
			t.Fatalf("node %d dim %d: box [%v, %v], reference [%v, %v]",
				id, j, bmin[j], bmax[j], ref.min[j], ref.max[j])
		}
	}
	if (m.Left < 0) != (ref.left == nil) {
		t.Fatalf("node %d: leafness mismatch (arena leaf=%v, reference leaf=%v)", id, m.Left < 0, ref.left == nil)
	}
	if m.Left >= 0 {
		if m.Right != m.Left+1 {
			t.Fatalf("node %d: children %d, %d not adjacent in the BFS arena", id, m.Left, m.Right)
		}
		compareArenaToRef(t, tr, ref.left, m.Left)
		compareArenaToRef(t, tr, ref.right, m.Right)
	}
}

// TestArenaMatchesReferenceProperty is the layout-equivalence property:
// for random point sets, every split rule, and varied leaf sizes, the
// BFS arena and an independently built pointer tree agree on node
// ranges, bounding boxes, structure, and the reordered point buffer
// (leaf order) — all comparisons exact, no tolerance.
func TestArenaMatchesReferenceProperty(t *testing.T) {
	for _, rule := range []SplitRule{SplitEquiWidth, SplitMedian} {
		rule := rule
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			n := 1 + rng.Intn(600)
			d := 1 + rng.Intn(5)
			pts := randomPoints(rng, n, d)
			// Sprinkle duplicates to exercise the degenerate-split path.
			for k := 0; k < n/10; k++ {
				pts.Swap(rng.Intn(n), rng.Intn(n))
				copy(pts.Row(rng.Intn(n)), pts.Row(rng.Intn(n)))
			}
			opts := Options{LeafSize: 1 + rng.Intn(16), Split: rule}
			tr, err := Build(pts, opts)
			if err != nil {
				return false
			}
			refT, refRoot := refBuild(pts, opts)
			for i, v := range tr.Pts.Data {
				if v != refT.pts.Data[i] {
					t.Logf("seed %d: reordered buffers differ at %d", seed, i)
					return false
				}
			}
			compareArenaToRef(t, tr, refRoot, 0)
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatalf("rule %v: %v", rule, err)
		}
	}
}

// TestPointerViewAliasesArena checks the compat view: Root() must mirror
// the arena node-for-node, with Min/Max aliasing the box slab.
func TestPointerViewAliasesArena(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := randomPoints(rng, 700, 3)
	tr, err := Build(pts, Options{LeafSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	var walk func(n *Node, id int32)
	walk = func(n *Node, id int32) {
		m := tr.Meta[id]
		if n.Lo != int(m.Lo) || n.Hi != int(m.Hi) {
			t.Fatalf("node %d: view range [%d, %d) vs arena [%d, %d)", id, n.Lo, n.Hi, m.Lo, m.Hi)
		}
		bmin, bmax := tr.Box(id)
		if &n.Min[0] != &bmin[0] || &n.Max[0] != &bmax[0] {
			t.Fatalf("node %d: view Min/Max do not alias the box slab", id)
		}
		if n.IsLeaf() != tr.IsLeaf(id) {
			t.Fatalf("node %d: leafness mismatch", id)
		}
		if !n.IsLeaf() {
			walk(n.Left, m.Left)
			walk(n.Right, m.Right)
		}
	}
	walk(tr.Root(), 0)
	if tr.Root() != tr.Root() {
		t.Fatal("Root() must materialize the view exactly once")
	}
}

// TestFusedBoundsMatchPointerBounds: the fused single-sweep BoundsSqDist
// (including the d=1 and d=2 unrolled specializations) must be
// bit-identical to the pointer view's two-pass MinSqDist/MaxSqDist.
func TestFusedBoundsMatchPointerBounds(t *testing.T) {
	for _, d := range []int{1, 2, 3, 5} {
		rng := rand.New(rand.NewSource(int64(100 + d)))
		pts := randomPoints(rng, 400, d)
		tr, err := Build(pts, Options{LeafSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		invH2 := make([]float64, d)
		for j := range invH2 {
			invH2[j] = math.Exp(rng.NormFloat64())
		}
		nodes := make(map[int32]*Node)
		var index func(n *Node, id int32)
		index = func(n *Node, id int32) {
			nodes[id] = n
			if !n.IsLeaf() {
				index(n.Left, tr.Meta[id].Left)
				index(n.Right, tr.Meta[id].Right)
			}
		}
		index(tr.Root(), 0)
		for trial := 0; trial < 50; trial++ {
			q := make([]float64, d)
			for j := range q {
				q[j] = rng.NormFloat64() * 25
			}
			for id, n := range nodes {
				dmin, dmax := tr.BoundsSqDist(id, q, invH2)
				if want := n.MinSqDist(q, invH2); dmin != want {
					t.Fatalf("d=%d node %d: fused dmin %v != %v", d, id, dmin, want)
				}
				if want := n.MaxSqDist(q, invH2); dmax != want {
					t.Fatalf("d=%d node %d: fused dmax %v != %v", d, id, dmax, want)
				}
			}
		}
	}
}

// TestConcurrentTraversalHammer drives many goroutines over one shared
// arena — fused bounds, leaf scans, range queries, and concurrent lazy
// Root() materialization — so `go test -race` can observe any write to
// shared state after Build. The tree must be a pure read-only structure
// once built.
func TestConcurrentTraversalHammer(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pts := randomPoints(rng, 4000, 3)
	tr, err := Build(pts, Options{LeafSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	invH2 := []float64{1, 0.5, 2}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for iter := 0; iter < 300; iter++ {
				q := []float64{rng.NormFloat64() * 15, rng.NormFloat64() * 15, rng.NormFloat64() * 15}
				// Descend from the root by id, checking bounds sanity.
				id := int32(0)
				for !tr.IsLeaf(id) {
					dmin, dmax := tr.BoundsSqDist(id, q, invH2)
					if dmin > dmax {
						errs <- "dmin > dmax"
						return
					}
					left, right := tr.Children(id)
					if iter%2 == 0 {
						id = left
					} else {
						id = right
					}
				}
				if len(tr.LeafFlat(id)) != tr.Count(id)*tr.Dim {
					errs <- "leaf slab length mismatch"
					return
				}
				count := 0
				tr.ForEachInRange(q, invH2, 4, func(p []float64) { count++ })
				// Concurrent first-touch of the pointer view.
				if tr.Root().Count() != tr.Size {
					errs <- "root count mismatch"
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestBFSLayout pins the arena ordering contract: ids are assigned
// breadth-first, so every parent precedes its children, siblings are
// adjacent, and child ids increase monotonically with the parent id —
// the locality property the cache-conscious layout is built on.
func TestBFSLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := randomPoints(rng, 3000, 2)
	tr, err := Build(pts, Options{LeafSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	nextChild := int32(1)
	for id := range tr.Meta {
		m := tr.Meta[id]
		if m.Left < 0 {
			if m.Right >= 0 {
				t.Fatalf("node %d: half-leaf", id)
			}
			continue
		}
		if m.Left != nextChild || m.Right != nextChild+1 {
			t.Fatalf("node %d: children %d,%d break BFS order (want %d,%d)", id, m.Left, m.Right, nextChild, nextChild+1)
		}
		nextChild += 2
	}
	if int(nextChild) != len(tr.Meta) {
		t.Fatalf("arena has %d nodes but BFS order accounts for %d", len(tr.Meta), nextChild)
	}
	if len(tr.Boxes) != len(tr.Meta)*2*tr.Dim {
		t.Fatalf("box slab has %d values for %d nodes (dim %d)", len(tr.Boxes), len(tr.Meta), tr.Dim)
	}
	s := tr.Stats()
	if s.Nodes != len(tr.Meta) || s.Nodes != 2*s.Leaves-1 {
		t.Fatalf("stats %+v inconsistent with arena of %d nodes", s, len(tr.Meta))
	}
}
