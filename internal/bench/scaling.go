package bench

import (
	"fmt"

	"tkdc/internal/dataset"
)

// sweepSizes returns geometric dataset sizes up to the scaled maximum.
func sweepSizes(paperMax, floor int, opts Options) []int {
	max := opts.scaled(paperMax, floor*4)
	var sizes []int
	for n := floor; n <= max; n *= 4 {
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 || sizes[len(sizes)-1] != max {
		sizes = append(sizes, max)
	}
	return sizes
}

// scaleRunner measures query throughput (training excluded) for tkdc and
// the O(n)-ish baselines on one dataset at each size.
func scaleRunner(title, note string, sizes []int, load func(n int) ([][]float64, error), opts Options) (Table, error) {
	t := Table{
		Title:   title,
		Columns: []string{"n", "tkdc q/s", "simple q/s", "nocut q/s", "rkde q/s", "tkdc kernels/q"},
		Notes:   []string{note},
	}
	for _, n := range sizes {
		data, err := load(n)
		if err != nil {
			return t, err
		}
		cfg := opts.config()
		tk, err := MeasureTKDC(data, cfg, opts.MaxQueries)
		if err != nil {
			return t, err
		}
		cells := []string{fmt.Sprintf("%d", n), fmtRate(tk.QueryThroughput())}
		for _, kind := range []BaselineKind{Simple, NoCut, RKDE} {
			q := opts.MaxQueries
			if kind != NoCut && q > 300 {
				q = 300
			}
			m, err := MeasureBaseline(kind, data, BaselineParams{}, q)
			if err != nil {
				return t, err
			}
			cells = append(cells, fmtRate(m.QueryThroughput()))
		}
		cells = append(cells, fmtCount(tk.KernelsPerQuery))
		t.AddRow(cells...)
	}
	return t, nil
}

// Figure9 sweeps dataset size on 2-d gauss data. The paper's shape:
// tkdc's throughput decays ~n^{-1/2} while simple/rkde decay ~n^{-1}.
func Figure9(opts Options) ([]Table, error) {
	opts = opts.normalized()
	sizes := sweepSizes(100_000_000, 10_000, opts)
	t, err := scaleRunner(
		"Figure 9: Query throughput vs dataset size (gauss, d=2, training excluded)",
		"paper shape: tkdc decays ~n^-0.5, others ~n^-1; gap widens with n",
		sizes,
		func(n int) ([][]float64, error) { return dataset.Gauss(n, 2, opts.Seed), nil },
		opts)
	if err != nil {
		return nil, err
	}
	t.Fprint(opts.Out)
	return []Table{t}, nil
}

// Figure10 repeats the size sweep on the 27-dimensional hep data, where
// tkdc's asymptotic edge (n^{26/27}) is slimmer but still real.
func Figure10(opts Options) ([]Table, error) {
	opts = opts.normalized()
	sizes := sweepSizes(10_500_000, 5_000, opts)
	t, err := scaleRunner(
		"Figure 10: Query throughput vs dataset size (hep, d=27, training excluded)",
		"paper shape: advantage smaller than d=2 (O(n^{26/27})) but grows with n",
		sizes,
		func(n int) ([][]float64, error) { return dataset.HEP(n, opts.Seed), nil },
		opts)
	if err != nil {
		return nil, err
	}
	t.Fprint(opts.Out)
	return []Table{t}, nil
}

// Figure11 sweeps dimensionality on hep column subsets at fixed n.
func Figure11(opts Options) ([]Table, error) {
	opts = opts.normalized()
	n := opts.scaled(10_500_000, 15_000)
	full := dataset.HEP(n, opts.Seed)
	t := Table{
		Title:   "Figure 11: Throughput vs dimensionality (hep, training amortized)",
		Columns: []string{"d", "tkdc", "simple", "nocut(~sklearn)", "rkde"},
		Notes:   []string{"paper shape: all tree methods slow with d; tkdc stays >=1 order ahead; simple nearly flat"},
	}
	for _, d := range []int{1, 2, 4, 8, 16, 27} {
		data, err := dataset.TakeColumns(full, d)
		if err != nil {
			return nil, err
		}
		cfg := opts.config()
		tk, err := MeasureTKDC(data, cfg, opts.MaxQueries)
		if err != nil {
			return nil, err
		}
		cells := []string{fmt.Sprintf("%d", d), fmtRate(tk.EffectiveThroughput())}
		for _, kind := range []BaselineKind{Simple, NoCut, RKDE} {
			q := opts.MaxQueries
			if kind != NoCut && q > 300 {
				q = 300
			}
			m, err := MeasureBaseline(kind, data, BaselineParams{}, q)
			if err != nil {
				return nil, err
			}
			cells = append(cells, fmtRate(m.EffectiveThroughput()))
		}
		t.AddRow(cells...)
	}
	t.Fprint(opts.Out)
	return []Table{t}, nil
}

// Figure14 sweeps dimensionality on PCA-reduced mnist. The PCA is fitted
// once at the largest k; lower-dimensional panels reuse leading
// components (they are nested by construction).
func Figure14(opts Options) ([]Table, error) {
	opts = opts.normalized()
	n := opts.scaled(70_000, 3_000)
	raw := dataset.MNIST(n, opts.Seed)
	const kMax = 256
	reduced, err := dataset.PCAReduce(raw, kMax, 3000, opts.Seed)
	if err != nil {
		return nil, err
	}
	t := Table{
		Title:   "Figure 14: Throughput vs dimensionality (mnist, PCA-reduced, b=3, training amortized)",
		Columns: []string{"d", "tkdc", "simple", "nocut(~sklearn)", "rkde"},
		Notes:   []string{"paper shape: tkdc competitive but its edge fades past d~100 at this small n; never worse than simple"},
	}
	for _, d := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
		data, err := dataset.TakeColumns(reduced, d)
		if err != nil {
			return nil, err
		}
		cfg := opts.config()
		cfg.BandwidthFactor = 3 // the paper's underflow mitigation for mnist
		tk, err := MeasureTKDC(data, cfg, opts.MaxQueries)
		if err != nil {
			return nil, err
		}
		cells := []string{fmt.Sprintf("%d", d), fmtRate(tk.EffectiveThroughput())}
		params := BaselineParams{BandwidthFactor: 3}
		for _, kind := range []BaselineKind{Simple, NoCut, RKDE} {
			q := opts.MaxQueries
			if kind != NoCut && q > 300 {
				q = 300
			}
			m, err := MeasureBaseline(kind, data, params, q)
			if err != nil {
				return nil, err
			}
			cells = append(cells, fmtRate(m.EffectiveThroughput()))
		}
		t.AddRow(cells...)
	}
	t.Fprint(opts.Out)
	return []Table{t}, nil
}
