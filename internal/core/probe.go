package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"tkdc/internal/kernel"
	"tkdc/internal/points"
	"tkdc/internal/stats"
)

// ProbeThreshold cheaply re-estimates the classification threshold t(p)
// over data without training a classifier: it draws refRows reference
// rows and probes held-out probe rows (disjointly and seeded, so the
// probe is deterministic for a fixed seed), evaluates each probe's exact
// density under the reference mini-KDE with Scott's-rule bandwidths, and
// returns the p-quantile. Holding the probe rows out of the reference
// set plays the role of the self-contribution correction of Section 2.3:
// no probe contributes density to itself.
//
// The estimate is a rough, biased stand-in for the trained threshold
// (small-sample bandwidths differ from full-dataset ones), so it is
// meant for relative comparisons — detecting that the distribution under
// a live model has drifted — not as a serving threshold. Cost is
// O(refRows · probes) kernel evaluations, independent of data.Len().
func ProbeThreshold(data *points.Store, cfg Config, refRows, probes int, seed int64) (float64, error) {
	cfg = cfg.normalized()
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	n := data.Len()
	if n < 3 {
		return 0, errors.New("core: probe needs at least 3 rows")
	}
	if refRows < 2 {
		refRows = 2
	}
	if probes < 1 {
		probes = 1
	}
	if refRows+probes > n {
		// Shrink to fit, preserving the reference:probe ratio but keeping
		// both ends usable.
		refRows = n * refRows / (refRows + probes)
		if refRows < 2 {
			refRows = 2
		}
		probes = n - refRows
	}

	// One partial Fisher–Yates draw of refRows+probes distinct rows; the
	// first refRows become the mini-KDE, the rest the held-out probes.
	rng := rand.New(rand.NewSource(seed))
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	total := refRows + probes
	ref := points.New(refRows, data.Dim)
	held := points.New(probes, data.Dim)
	for i := 0; i < total; i++ {
		j := i + rng.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
		if i < refRows {
			copy(ref.Row(i), data.Row(idx[i]))
		} else {
			copy(held.Row(i-refRows), data.Row(idx[i]))
		}
	}

	h, err := kernel.ScottBandwidths(ref, cfg.BandwidthFactor)
	if err != nil {
		return 0, fmt.Errorf("core: probe bandwidth: %w", err)
	}
	kern, err := newKernel(cfg.Kernel, h)
	if err != nil {
		return 0, err
	}
	densities := make([]float64, probes)
	for i := range densities {
		densities[i] = kernel.Sum(kern, held.Row(i), ref.Data) / float64(refRows)
	}
	sort.Float64s(densities)
	return stats.SortedQuantile(densities, cfg.P)
}
