package bench

import (
	"fmt"
	"sort"

	"tkdc/internal/baseline"
	"tkdc/internal/core"
	"tkdc/internal/dataset"
	"tkdc/internal/kernel"
	"tkdc/internal/points"
	"tkdc/internal/stats"
)

// Figure8 evaluates classification accuracy against exact-KDE ground
// truth: every point is labelled by whether its exact (self-contribution
// corrected) density falls below the exact t(p); each algorithm estimates
// densities, derives its own threshold the same way, classifies, and is
// scored by F1 on the below-threshold class (p = 0.01, as in the paper).
func Figure8(opts Options) ([]Table, error) {
	opts = opts.normalized()
	const p = 0.01

	type panel struct {
		dataset string
		dims    []int
		load    func(n int, seed int64) [][]float64
	}
	panels := []panel{
		{"tmy3", []int{2, 4, 8}, func(n int, s int64) [][]float64 { return dataset.TMY3(n, s) }},
		{"home", []int{2, 4, 8}, func(n int, s int64) [][]float64 { return dataset.Home(n, s) }},
		{"shuttle", []int{2, 4, 7}, func(n int, s int64) [][]float64 { return dataset.Shuttle(n, s) }},
	}

	t := Table{
		Title:   "Figure 8: Classification accuracy (F1 on below-threshold class, p=0.01)",
		Columns: []string{"dataset", "d", "tkdc", "nocut(~sklearn)", "binned(~ks)"},
		Notes: []string{
			"ground truth: exact KDE densities + exact quantile threshold (paper uses 50k-row samples)",
			"paper shape: tkdc ~1.0 everywhere; nocut/sklearn high; binned/ks degrades sharply for d=4",
		},
	}

	n := opts.scaled(50_000, 4_000)
	for _, pn := range panels {
		full := pn.load(n, opts.Seed)
		for _, d := range pn.dims {
			data, err := dataset.TakeColumns(full, d)
			if err != nil {
				return nil, err
			}
			pts, err := points.FromRows(data)
			if err != nil {
				return nil, fmt.Errorf("bench: %w", err)
			}
			truth, _, err := exactGroundTruth(pts, p)
			if err != nil {
				return nil, err
			}

			tkdcF1, err := tkdcAccuracy(data, p, opts.Seed, truth)
			if err != nil {
				return nil, fmt.Errorf("tkdc %s d=%d: %w", pn.dataset, d, err)
			}

			h, err := kernel.ScottBandwidths(pts, 1)
			if err != nil {
				return nil, err
			}
			kern, err := kernel.NewGaussian(h)
			if err != nil {
				return nil, err
			}
			nc, err := baseline.NewNoCut(pts, kern, 0.01)
			if err != nil {
				return nil, err
			}
			nocutF1 := estimatorAccuracy(nc, pts, kern, p, truth)

			binnedCell := "-"
			if d <= baseline.MaxBinnedDim {
				bn, err := baseline.NewBinned(pts, kern)
				if err != nil {
					return nil, err
				}
				binnedCell = fmt.Sprintf("%.3f", estimatorAccuracy(bn, pts, kern, p, truth))
			}
			t.AddRow(pn.dataset, fmt.Sprintf("%d", d),
				fmt.Sprintf("%.3f", tkdcF1),
				fmt.Sprintf("%.3f", nocutF1),
				binnedCell)
		}
	}
	t.Fprint(opts.Out)
	return []Table{t}, nil
}

// exactGroundTruth labels every point exactly the way Algorithm 1 does,
// but with exact densities: the threshold t(p) is the p-quantile of the
// self-contribution-corrected densities (Equation 1), and each point is
// classified by comparing its plain density f(x) against that threshold.
// truth[i] is true when point i is below the threshold (the positive
// class).
func exactGroundTruth(pts *points.Store, p float64) (truth []bool, threshold float64, err error) {
	h, err := kernel.ScottBandwidths(pts, 1)
	if err != nil {
		return nil, 0, err
	}
	kern, err := kernel.NewGaussian(h)
	if err != nil {
		return nil, 0, err
	}
	s := baseline.NewSimple(pts, kern)
	n := pts.Len()
	self := kern.AtZero() / float64(n)
	ds := make([]float64, n)
	for i := 0; i < n; i++ {
		ds[i] = s.Density(pts.Row(i))
	}
	sorted := make([]float64, len(ds))
	for i, d := range ds {
		sorted[i] = d - self
	}
	sort.Float64s(sorted)
	threshold, err = stats.SortedQuantile(sorted, p)
	if err != nil {
		return nil, 0, err
	}
	truth = make([]bool, n)
	for i, d := range ds {
		truth[i] = d < threshold
	}
	return truth, threshold, nil
}

// tkdcAccuracy trains tKDC and scores its labels against the ground truth.
func tkdcAccuracy(data [][]float64, p float64, seed int64, truth []bool) (float64, error) {
	cfg := core.DefaultConfig()
	cfg.P = p
	cfg.Seed = seed
	clf, err := core.Train(data, cfg)
	if err != nil {
		return 0, err
	}
	var conf stats.Confusion
	for i, x := range data {
		label, err := clf.Classify(x)
		if err != nil {
			return 0, err
		}
		conf.Add(label == core.Low, truth[i])
	}
	return conf.F1(), nil
}

// estimatorAccuracy scores a baseline estimator with the same convention
// as exactGroundTruth: densities for all points, own corrected-quantile
// threshold, plain densities classified against it, F1 against ground
// truth.
func estimatorAccuracy(est baseline.Estimator, pts *points.Store, kern kernel.Kernel, p float64, truth []bool) float64 {
	n := pts.Len()
	self := kern.AtZero() / float64(n)
	ds := make([]float64, n)
	for i := 0; i < n; i++ {
		ds[i] = est.Density(pts.Row(i))
	}
	sorted := make([]float64, len(ds))
	for i, d := range ds {
		sorted[i] = d - self
	}
	sort.Float64s(sorted)
	threshold, err := stats.SortedQuantile(sorted, p)
	if err != nil {
		return 0
	}
	var conf stats.Confusion
	for i, d := range ds {
		conf.Add(d < threshold, truth[i])
	}
	return conf.F1()
}
