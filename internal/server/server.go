// Package server implements the tkdc -serve HTTP mode: classification
// over HTTP (CSV or JSON rows) with structured request logging, plus the
// observability surface — /metrics (plain-text exposition of the
// telemetry registry and model gauges), /healthz, expvar at /debug/vars,
// and the net/http/pprof profiling handlers at /debug/pprof/*.
//
// Every request reads the model through a stream.Model handle — one
// atomic pointer load — so the same handlers serve a static classifier
// and a live, continuously retrained one. With Options.Stream set, the
// server additionally accepts POST /ingest (CSV or JSON rows into the
// bounded sample, same parser and limits as /classify) and reports the
// lifecycle on GET /model and the /metrics stream gauges.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tkdc/internal/core"
	"tkdc/internal/dataset"
	"tkdc/internal/fleet"
	"tkdc/internal/stream"
	"tkdc/internal/telemetry"
)

// DefaultMaxBodyBytes caps classify request bodies when Options leaves
// MaxBodyBytes zero.
const DefaultMaxBodyBytes = 32 << 20

// Options configures New.
type Options struct {
	// Registry supplies the telemetry behind /metrics; nil falls back to
	// telemetry.Default. For the histograms to move, the classifier's
	// recorder must point at the same registry (the CLI wires both).
	Registry *telemetry.Registry
	// Logger receives one structured line per request; nil disables
	// request logging.
	Logger *slog.Logger
	// MaxBodyBytes caps classify request bodies (DefaultMaxBodyBytes
	// if 0).
	MaxBodyBytes int64
	// Stream, when non-nil, serves that streaming lifecycle: queries go
	// through its live Model handle (the initial classifier passed to New
	// is ignored), POST /ingest feeds its sample, and GET /model +
	// /metrics expose generation/age/ingest state. The caller owns the
	// service lifecycle (Start/Close).
	Stream *stream.Service
	// Flight, when non-nil, backs GET /debug/queries with the flight
	// recorder's retained traces. Nil falls back to the one attached to
	// Registry (if any); with neither, the endpoint reports tracing
	// disabled.
	Flight *telemetry.FlightRecorder
	// Follower, when non-nil, makes this a replication replica: queries
	// read the follower's live Model handle (clf and Stream are ignored),
	// /model reports leader URL and generation lag, and /healthz answers
	// 503 once the follower goes stale so load balancers drain it. The
	// follower must have completed its first Sync (Model() non-nil) and
	// the caller owns its lifecycle (Sync/Start/Close).
	Follower *fleet.Follower
	// Publisher overrides the snapshot publisher behind GET /snapshot
	// and /snapshot/meta. Nil builds one over the serving model handle —
	// every server is a valid replication leader (including a follower,
	// which makes fan-out chains possible).
	Publisher *fleet.Publisher
	// Batch configures the batched query engine behind /classify:
	// coalescing window, flush threshold, or full bypass. The zero value
	// enables the engine with no coalescing (window 0).
	Batch BatchOptions
}

// Server serves classification and observability endpoints over one
// trained classifier. It implements http.Handler; every request passes
// through the structured-logging middleware.
type Server struct {
	model    *stream.Model   // zero-downtime read handle; never nil
	svc      *stream.Service // nil when serving a static model
	follower *fleet.Follower // nil unless replicating a leader
	pub      *fleet.Publisher
	reg      *telemetry.Registry
	flight   *telemetry.FlightRecorder // nil when per-query tracing is off
	log      *slog.Logger
	max      int64
	mux      *http.ServeMux
	engine   *batchEngine // nil when BatchOptions.Disable bypasses it

	started  time.Time
	requests atomic.Int64
	ingested atomic.Int64 // rows accepted via /ingest on this server
}

// current is the server behind the process-wide expvar publication;
// expvar names are global and cannot be unpublished, so the variable is
// registered once and always reads through this pointer (tests may
// build several servers).
var (
	current    atomic.Pointer[Server]
	expvarOnce sync.Once
)

// New builds a Server over a trained classifier, wrapped in a
// generation-1 Model handle. With opts.Stream set, the server serves
// that lifecycle's live handle instead and clf may be nil.
func New(clf *core.Classifier, opts Options) *Server {
	s := &Server{
		svc:      opts.Stream,
		follower: opts.Follower,
		reg:      opts.Registry,
		flight:   opts.Flight,
		log:      opts.Logger,
		max:      opts.MaxBodyBytes,
		mux:      http.NewServeMux(),
		started:  time.Now(),
	}
	switch {
	case s.follower != nil:
		s.model = s.follower.Model()
		if s.model == nil {
			panic("server: New with an unsynced follower (call Follower.Sync first)")
		}
	case s.svc != nil:
		s.model = s.svc.Model()
	default:
		s.model = stream.NewModel(clf)
	}
	s.pub = opts.Publisher
	if s.pub == nil {
		s.pub = fleet.NewPublisher(s.model)
	}
	if s.reg == nil {
		s.reg = telemetry.Default
	}
	if s.flight == nil {
		s.flight = s.reg.Flight()
	}
	if s.max <= 0 {
		s.max = DefaultMaxBodyBytes
	}
	if !opts.Batch.Disable {
		s.engine = newBatchEngine(s.model, s.reg, opts.Batch)
	}

	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/classify", s.handleClassify)
	s.mux.HandleFunc("/ingest", s.handleIngest)
	s.mux.HandleFunc("/model", s.handleModel)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/snapshot", s.pub.ServeSnapshot)
	s.mux.HandleFunc("/snapshot/meta", s.handleSnapshotMeta)
	s.mux.HandleFunc("/debug/queries", s.handleDebugQueries)
	s.mux.Handle("/debug/vars", expvar.Handler())
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	current.Store(s)
	expvarOnce.Do(func() {
		expvar.Publish("tkdc", expvar.Func(func() any {
			srv := current.Load()
			if srv == nil {
				return nil
			}
			return srv.expvarSnapshot()
		}))
	})
	return s
}

// Close flushes the batch engine's forming batch (no request waits out
// a window that will never fill) and directs later classify traffic to
// inline execution. Call it after the HTTP server has stopped accepting
// connections; safe to call more than once.
func (s *Server) Close() {
	if s.engine != nil {
		s.engine.Close()
	}
}

// ServeHTTP dispatches through the logging middleware.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if s.log == nil {
		s.mux.ServeHTTP(w, r)
		return
	}
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(sw, r)
	s.log.Info("request",
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", sw.status),
		slog.Int64("bytes", sw.bytes),
		slog.Duration("duration", time.Since(start)),
		slog.String("remote", r.RemoteAddr),
	)
}

// statusWriter captures the status code and body size for the request
// log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so pprof's streaming
// endpoints (profile, trace) keep working through the middleware.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// handleHealthz answers 200 while the replica is fit to serve. A
// follower past its staleness threshold answers 503 ("stale") so load
// balancers drain it — it still serves /classify from the last good
// model; the health flip is advisory draining, not a hard stop.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	clf, gen, _ := s.model.View()
	resp := map[string]any{
		"status":         "ok",
		"n":              clf.N(),
		"dim":            clf.Dim(),
		"threshold":      clf.Threshold(),
		"generation":     gen,
		"uptime_seconds": time.Since(s.started).Seconds(),
	}
	code := http.StatusOK
	if s.follower != nil {
		fs := s.follower.Stats()
		resp["role"] = "follower"
		resp["generation_lag"] = fs.GenerationLag
		resp["last_sync_seconds"] = fs.SinceSync.Seconds()
		if fs.Stale {
			resp["status"] = "stale"
			code = http.StatusServiceUnavailable
		}
	}
	writeJSON(w, code, resp)
}

// handleSnapshotMeta serves GET /snapshot/meta: the current generation's
// descriptor (generation, byte size, SHA-256, backend, trained-at)
// without the bytes, so `curl /snapshot/meta` answers "is the fleet
// converged" cheaply.
func (s *Server) handleSnapshotMeta(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET the current snapshot descriptor")
		return
	}
	meta, err := s.pub.CurrentMeta()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, meta)
}

// classifyRequest is the JSON request body: {"points": [[x, y], ...]}.
// A bare top-level array of rows is also accepted.
type classifyRequest struct {
	Points [][]float64 `json:"points"`
}

// classifyResult is one per-point response entry in density mode.
type classifyResult struct {
	Label    string  `json:"label"`
	Lower    float64 `json:"lower"`
	Upper    float64 `json:"upper,omitempty"` // omitted when +Inf (grid hit)
	Estimate float64 `json:"estimate"`
}

// readRows reads and parses a CSV/JSON row body, writing the error
// response (413 oversized, 400 malformed or empty) itself. The nil, false
// return means the response is already written.
func (s *Server) readRows(w http.ResponseWriter, r *http.Request) ([][]float64, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.max+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: "+err.Error())
		return nil, false
	}
	if int64(len(body)) > s.max {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("body exceeds %d bytes", s.max))
		return nil, false
	}
	points, err := parsePoints(r.Header.Get("Content-Type"), body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return nil, false
	}
	if len(points) == 0 {
		writeError(w, http.StatusBadRequest, "no rows in body")
		return nil, false
	}
	return points, true
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST a CSV or JSON body of query rows")
		return
	}
	if s.engine == nil {
		s.classifyLegacy(w, r)
		return
	}
	flat, n, dim, ok := s.readRowsFlat(w, r)
	if !ok {
		return
	}
	// The engine answers the whole request against one pinned model
	// generation; with a coalescing window, against the generation its
	// batch pinned. The flat buffer belongs to the engine until done.
	call := s.engine.do(r.Context(), flat, n, dim, wantDensity(r))
	if call.err != nil {
		putFlatBuf(flat)
		writeError(w, http.StatusBadRequest, call.err.Error())
		return
	}

	if call.results != nil {
		results := make([]classifyResult, n)
		for i, res := range call.results {
			cr := classifyResult{Label: res.Label.String(), Lower: res.Lower, Estimate: res.Estimate()}
			if !math.IsInf(res.Upper, 1) {
				cr.Upper = res.Upper
			}
			results[i] = cr
		}
		putFlatBuf(flat)
		writeJSON(w, http.StatusOK, map[string]any{"results": results, "generation": call.gen})
		return
	}

	out := make([]string, n)
	for i, l := range call.labels {
		out[i] = l.String()
	}
	putFlatBuf(flat)
	writeJSON(w, http.StatusOK, map[string]any{"labels": out, "generation": call.gen})
}

// classifyLegacy is the pre-batching handler path, kept verbatim behind
// BatchOptions.Disable as the baseline for latency comparisons.
func (s *Server) classifyLegacy(w http.ResponseWriter, r *http.Request) {
	points, ok := s.readRows(w, r)
	if !ok {
		return
	}
	// One coherent generation serves the whole request, even if a retrain
	// swaps mid-flight.
	clf := s.model.Current()

	if wantDensity(r) {
		results := make([]classifyResult, len(points))
		for i, x := range points {
			res, err := clf.Score(x)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("row %d: %v", i, err))
				return
			}
			cr := classifyResult{Label: res.Label.String(), Lower: res.Lower, Estimate: res.Estimate()}
			if !math.IsInf(res.Upper, 1) {
				cr.Upper = res.Upper
			}
			results[i] = cr
		}
		writeJSON(w, http.StatusOK, map[string]any{"results": results})
		return
	}

	labels, err := clf.ClassifyAll(points)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	out := make([]string, len(labels))
	for i, l := range labels {
		out[i] = l.String()
	}
	writeJSON(w, http.StatusOK, map[string]any{"labels": out})
}

// readRowsFlat reads and parses a CSV/JSON row body into a pooled flat
// row-major buffer, writing the error response itself (nil, false means
// the response is written). On success the caller owns the buffer and
// must release it with putFlatBuf once the engine is done with it.
func (s *Server) readRowsFlat(w http.ResponseWriter, r *http.Request) (flat []float64, n, dim int, ok bool) {
	body := getBodyBuf()
	defer putBodyBuf(body)
	if _, err := body.ReadFrom(io.LimitReader(r.Body, s.max+1)); err != nil {
		writeError(w, http.StatusBadRequest, "read body: "+err.Error())
		return nil, 0, 0, false
	}
	if int64(body.Len()) > s.max {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("body exceeds %d bytes", s.max))
		return nil, 0, 0, false
	}
	flat, n, dim, err := parseRowsFlat(r.Header.Get("Content-Type"), body.Bytes(), getFlatBuf())
	if err != nil {
		putFlatBuf(flat)
		writeError(w, http.StatusBadRequest, err.Error())
		return nil, 0, 0, false
	}
	if n == 0 {
		putFlatBuf(flat)
		writeError(w, http.StatusBadRequest, "no rows in body")
		return nil, 0, 0, false
	}
	return flat, n, dim, true
}

// parsePoints decodes the request body: JSON ({"points": [[...]]} or a
// bare [[...]] array) when the content type says JSON or the body looks
// like it, CSV rows otherwise.
func parsePoints(contentType string, body []byte) ([][]float64, error) {
	trimmed := bytes.TrimSpace(body)
	if len(trimmed) == 0 {
		return nil, errors.New("empty request body")
	}
	isJSON := strings.Contains(contentType, "json") ||
		(len(trimmed) > 0 && (trimmed[0] == '{' || trimmed[0] == '['))
	if isJSON {
		if trimmed[0] == '[' {
			var rows [][]float64
			if err := json.Unmarshal(trimmed, &rows); err != nil {
				return nil, fmt.Errorf("parse JSON rows: %w", err)
			}
			return rows, nil
		}
		var req classifyRequest
		if err := json.Unmarshal(trimmed, &req); err != nil {
			return nil, fmt.Errorf("parse JSON body: %w", err)
		}
		return req.Points, nil
	}
	rows, err := dataset.ReadCSV(bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("parse CSV body: %w", err)
	}
	return rows, nil
}

// handleIngest feeds a batch of rows into the streaming sample. It
// mirrors /classify's request semantics exactly: CSV or JSON body, 413
// past the body cap, 400 on malformed or empty rows (a bad row rejects
// the whole batch). Returns 409 when the server is not in streaming
// mode.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.svc == nil {
		writeError(w, http.StatusConflict, "streaming disabled: start the server with -stream to accept ingest")
		return
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST a CSV or JSON body of data rows")
		return
	}
	flat, _, dim, ok := s.readRowsFlat(w, r)
	if !ok {
		return
	}
	accepted, err := s.svc.IngestFlat(flat, dim)
	putFlatBuf(flat)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.ingested.Add(int64(accepted))
	st := s.svc.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"accepted":       accepted,
		"ingested_total": st.Ingested,
		"sample_size":    st.SampleSize,
		"generation":     st.Generation,
	})
}

// handleModel reports the live model and, in streaming mode, the
// lifecycle around it.
func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET the live model descriptor")
		return
	}
	clf, gen, born := s.model.View()
	resp := map[string]any{
		"generation":  gen,
		"age_seconds": time.Since(born).Seconds(),
		"n":           clf.N(),
		"dim":         clf.Dim(),
		"threshold":   clf.Threshold(),
		"bandwidths":  clf.Bandwidths(),
		"backend":     clf.Backend(),
		"streaming":   s.svc != nil,
	}
	// Fleet state, debuggable with curl: what bytes this process would
	// hand a follower, and (as a follower) how far behind the leader it
	// is. CurrentMeta is cached per generation, so this stays cheap.
	if meta, err := s.pub.CurrentMeta(); err == nil {
		resp["snapshot_sha256"] = meta.SHA256
		resp["snapshot_bytes"] = meta.Bytes
	}
	if s.follower != nil {
		fs := s.follower.Stats()
		resp["role"] = "follower"
		resp["leader_url"] = fs.LeaderURL
		resp["leader_generation"] = fs.LeaderGeneration
		resp["applied_generation"] = fs.AppliedGeneration
		resp["generation_lag"] = fs.GenerationLag
		resp["last_sync_seconds"] = fs.SinceSync.Seconds()
		resp["stale"] = fs.Stale
		resp["syncs"] = fs.Applied
		resp["poll_failures"] = fs.Failures
		resp["rejected_snapshots"] = fs.Rejected
		if fs.LastError != "" {
			resp["last_error"] = fs.LastError
		}
	} else {
		resp["role"] = "leader"
	}
	if s.svc != nil {
		st := s.svc.Stats()
		resp["ingested_total"] = st.Ingested
		resp["sample_size"] = st.SampleSize
		resp["sample_capacity"] = st.Capacity
		resp["ingest_shards"] = st.Shards
		resp["window"] = st.Window
		resp["retrains"] = st.Retrains
		resp["pending"] = st.Pending
		resp["drift_score"] = st.DriftScore
		resp["drift_probes"] = st.DriftProbes
		if st.LastRetrainReason != "" {
			resp["last_retrain_reason"] = st.LastRetrainReason
			resp["last_retrain_seconds"] = st.LastRetrainDuration.Seconds()
		}
		if st.LastError != "" {
			resp["last_error"] = st.LastError
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleDebugQueries serves the flight recorder's retained traces as
// JSON: the K slowest queries, the K most recent, and the K most recent
// whose density bounds straddled the classification threshold, each
// with its per-stage breakdown. Without a flight recorder it reports
// {"enabled": false} rather than 404, so dashboards can probe for the
// feature.
func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET the retained query traces")
		return
	}
	if s.flight == nil {
		writeJSON(w, http.StatusOK, telemetry.FlightSnapshot{})
		return
	}
	writeJSON(w, http.StatusOK, s.flight.Snapshot())
}

// wantDensity reports whether the request asked for density bounds
// alongside labels (?density=1).
func wantDensity(r *http.Request) bool {
	switch strings.ToLower(r.URL.Query().Get("density")) {
	case "1", "true", "yes":
		return true
	}
	return false
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	clf, gen, born := s.model.View()
	ts := clf.TrainStats()
	tree := clf.TreeStats()
	gridHits, gridMisses := clf.GridCounters()

	var b strings.Builder
	snap.WriteMetrics(&b)
	writeGauge := func(name string, v any) {
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %v\n", name, name, v)
	}
	writeGauge("tkdc_model_points", clf.N())
	writeGauge("tkdc_model_dim", clf.Dim())
	writeGauge("tkdc_model_threshold", clf.Threshold())
	writeGauge("tkdc_model_generation", gen)
	writeGauge("tkdc_model_age_seconds", time.Since(born).Seconds())
	fmt.Fprintf(&b, "# TYPE tkdc_backend gauge\ntkdc_backend{name=%q} 1\n", clf.Backend())
	writeGauge("tkdc_train_kernels_total", ts.TrainKernels)
	writeGauge("tkdc_train_bootstrap_rounds", ts.BootstrapRounds)
	writeGauge("tkdc_train_workers", ts.Workers)
	if len(ts.Phases) > 0 {
		fmt.Fprintf(&b, "# TYPE tkdc_train_phase_workers gauge\n")
		for _, sp := range ts.Phases {
			fmt.Fprintf(&b, "tkdc_train_phase_workers{phase=%q} %d\n", sp.Name, sp.Workers)
		}
	}
	writeGauge("tkdc_tree_nodes", tree.Nodes)
	writeGauge("tkdc_tree_leaves", tree.Leaves)
	writeGauge("tkdc_tree_max_depth", tree.MaxDepth)
	writeGauge("tkdc_grid_cells", ts.GridCells)
	fmt.Fprintf(&b, "# TYPE tkdc_grid_cache_hits_total counter\ntkdc_grid_cache_hits_total %d\n", gridHits)
	fmt.Fprintf(&b, "# TYPE tkdc_grid_cache_misses_total counter\ntkdc_grid_cache_misses_total %d\n", gridMisses)
	fmt.Fprintf(&b, "# TYPE tkdc_http_requests_total counter\ntkdc_http_requests_total %d\n", s.requests.Load())
	if s.svc != nil {
		st := s.svc.Stats()
		fmt.Fprintf(&b, "# TYPE tkdc_stream_ingested_total counter\ntkdc_stream_ingested_total %d\n", st.Ingested)
		fmt.Fprintf(&b, "# TYPE tkdc_stream_retrains_total counter\ntkdc_stream_retrains_total %d\n", st.Retrains)
		writeGauge("tkdc_stream_sample_size", st.SampleSize)
		writeGauge("tkdc_stream_sample_capacity", st.Capacity)
		writeGauge("tkdc_stream_pending_rows", st.Pending)
		if st.Capacity > 0 {
			writeGauge("tkdc_stream_sample_fill", float64(st.SampleSize)/float64(st.Capacity))
		}
		writeGauge("tkdc_ingest_shards", st.Shards)
		if len(st.ShardFill) > 0 {
			fmt.Fprintf(&b, "# TYPE tkdc_stream_shard_fill gauge\n")
			for i, fill := range st.ShardFill {
				fmt.Fprintf(&b, "tkdc_stream_shard_fill{shard=\"%d\"} %v\n", i, fill)
			}
		}
		fmt.Fprintf(&b, "# TYPE tkdc_stream_drift_probes_total counter\ntkdc_stream_drift_probes_total %d\n", st.DriftProbes)
		writeGauge("tkdc_stream_drift_score", st.DriftScore)
		writeGauge("tkdc_stream_last_retrain_seconds", st.LastRetrainDuration.Seconds())
	}
	if meta, err := s.pub.CurrentMeta(); err == nil {
		writeGauge("tkdc_snapshot_bytes", meta.Bytes)
	}
	fetches, notMod := s.pub.Counters()
	fmt.Fprintf(&b, "# TYPE tkdc_snapshot_fetches_total counter\ntkdc_snapshot_fetches_total %d\n", fetches)
	fmt.Fprintf(&b, "# TYPE tkdc_snapshot_not_modified_total counter\ntkdc_snapshot_not_modified_total %d\n", notMod)
	if s.follower != nil {
		fs := s.follower.Stats()
		writeGauge("tkdc_fleet_generation_lag", fs.GenerationLag)
		writeGauge("tkdc_fleet_last_sync_seconds", fs.SinceSync.Seconds())
		stale := 0
		if fs.Stale {
			stale = 1
		}
		writeGauge("tkdc_fleet_stale", stale)
		fmt.Fprintf(&b, "# TYPE tkdc_fleet_polls_total counter\ntkdc_fleet_polls_total %d\n", fs.Polls)
		fmt.Fprintf(&b, "# TYPE tkdc_fleet_syncs_total counter\ntkdc_fleet_syncs_total %d\n", fs.Applied)
		fmt.Fprintf(&b, "# TYPE tkdc_fleet_failures_total counter\ntkdc_fleet_failures_total %d\n", fs.Failures)
		fmt.Fprintf(&b, "# TYPE tkdc_fleet_rejected_total counter\ntkdc_fleet_rejected_total %d\n", fs.Rejected)
	}
	if s.flight != nil {
		fs := s.flight.Snapshot()
		fmt.Fprintf(&b, "# TYPE tkdc_traces_total counter\ntkdc_traces_total %d\n", fs.Traced)
		fmt.Fprintf(&b, "# TYPE tkdc_traces_straddling_total counter\ntkdc_traces_straddling_total %d\n", fs.Straddled)
		fmt.Fprintf(&b, "# TYPE tkdc_slow_queries_total counter\ntkdc_slow_queries_total %d\n", fs.SlowLogged)
	}
	writeGauge("go_goroutines", runtime.NumGoroutine())

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, b.String())
}

// expvarSnapshot is the structured value published under the "tkdc"
// expvar key.
func (s *Server) expvarSnapshot() map[string]any {
	snap := s.reg.Snapshot()
	clf, gen, _ := s.model.View()
	out := map[string]any{
		"queries":        snap.Queries,
		"grid_hits":      snap.GridHits,
		"grid_misses":    snap.GridMisses,
		"latency_ns_sum": snap.LatencyNS.Sum,
		"kernels_sum":    snap.Kernels.Sum,
		"model": map[string]any{
			"n":          clf.N(),
			"dim":        clf.Dim(),
			"threshold":  clf.Threshold(),
			"generation": gen,
			"backend":    clf.Backend(),
		},
		"http_requests": s.requests.Load(),
	}
	if s.svc != nil {
		st := s.svc.Stats()
		out["stream"] = map[string]any{
			"ingested":            st.Ingested,
			"sample_size":         st.SampleSize,
			"shards":              st.Shards,
			"retrains":            st.Retrains,
			"pending":             st.Pending,
			"drift_score":         st.DriftScore,
			"drift_probes":        st.DriftProbes,
			"last_retrain_reason": st.LastRetrainReason,
			"last_retrain_ns":     int64(st.LastRetrainDuration),
		}
	}
	if s.follower != nil {
		fs := s.follower.Stats()
		out["fleet"] = map[string]any{
			"leader_url":         fs.LeaderURL,
			"leader_generation":  fs.LeaderGeneration,
			"applied_generation": fs.AppliedGeneration,
			"generation_lag":     fs.GenerationLag,
			"last_sync_seconds":  fs.SinceSync.Seconds(),
			"stale":              fs.Stale,
			"syncs":              fs.Applied,
			"failures":           fs.Failures,
			"rejected":           fs.Rejected,
		}
	}
	if s.flight != nil {
		fs := s.flight.Snapshot()
		out["flight"] = map[string]any{
			"traced":      fs.Traced,
			"straddled":   fs.Straddled,
			"slow_logged": fs.SlowLogged,
		}
	}
	return out
}

// writeJSON encodes v to a buffer before touching the ResponseWriter so
// an encode failure surfaces as a 500 instead of a truncated 200.
func writeJSON(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, `{"error":%q}`, "encode response: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(buf.Bytes())
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
