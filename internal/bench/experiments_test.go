package bench

import (
	"strconv"
	"strings"
	"testing"
)

// TestAllFigureRunnersTinyScale exercises every experiment runner end to
// end at the smallest sizes their floors allow, verifying row counts and
// that every measured throughput cell parses as a positive number. The
// full-scale record runs live in cmd/tkdc-bench.
func TestAllFigureRunnersTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests skipped in -short mode")
	}
	opts := Options{Scale: 0.0001, MaxQueries: 100, Seed: 7}

	cases := []struct {
		id      string
		run     func(Options) ([]Table, error)
		minRows int
	}{
		{"fig9", Figure9, 2},
		{"fig11", Figure11, 6},
		{"fig13", Figure13, 7},
		{"fig15", Figure15, 7},
		// stream: 3 lifecycle regimes + ≥3 sharded-ingest rows (more on
		// multi-core hosts, where the shards=GOMAXPROCS rows appear).
		{"stream", StreamLifecycle, 6},
		{"trace", TraceOverhead, 3},
		{"fleet", Fleet, 4},
	}
	for _, c := range cases {
		c := c
		t.Run(c.id, func(t *testing.T) {
			tables, err := c.run(opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s: no tables", c.id)
			}
			rows := 0
			for _, tbl := range tables {
				rows += len(tbl.Rows)
				for _, row := range tbl.Rows {
					for ci, cell := range row {
						if ci == 0 || cell == "-" {
							continue
						}
						// Overhead cells are signed percentages and may
						// legitimately be negative (measurement noise).
						if strings.HasSuffix(cell, "%") {
							continue
						}
						if v := parseRate(cell); v <= 0 {
							t.Fatalf("%s: non-positive cell %q in row %v", c.id, cell, row)
						}
					}
				}
			}
			if rows < c.minRows {
				t.Fatalf("%s: %d rows across %d tables, want ≥ %d", c.id, rows, len(tables), c.minRows)
			}
		})
	}
}

// parseRate reverses fmtRate's compaction.
func parseRate(s string) float64 {
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "M"):
		mult, s = 1e6, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "k"):
		mult, s = 1e3, strings.TrimSuffix(s, "k")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return -1
	}
	return v * mult
}

func TestFmtRate(t *testing.T) {
	cases := map[float64]string{
		6_360_000: "6.36M",
		55_200:    "55.2k",
		86.34:     "86.3",
		2.64:      "2.64",
		0.12:      "0.12",
	}
	for v, want := range cases {
		if got := fmtRate(v); got != want {
			t.Errorf("fmtRate(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestParseRateRoundTrip(t *testing.T) {
	for _, v := range []float64{1, 55.2, 1234, 55_200, 6_360_000} {
		got := parseRate(fmtRate(v))
		if got < v*0.95 || got > v*1.05 {
			t.Errorf("round trip %v -> %q -> %v", v, fmtRate(v), got)
		}
	}
}
