package core

import (
	"math"
	"math/rand"
	"testing"
)

// latentData draws n points near a k-dimensional linear manifold embedded
// in d dimensions — the regime where high-dimensional KDE still carries
// signal (mirrors the hep generator's structure).
func latentData(rng *rand.Rand, n, d, k int) [][]float64 {
	load := make([][]float64, d)
	for j := range load {
		row := make([]float64, k)
		for i := range row {
			row[i] = rng.NormFloat64()
		}
		load[j] = row
	}
	rows := make([][]float64, n)
	z := make([]float64, k)
	for i := range rows {
		for t := range z {
			z[t] = rng.NormFloat64()
		}
		row := make([]float64, d)
		for j := 0; j < d; j++ {
			v := rng.NormFloat64() * 0.2
			for t := 0; t < k; t++ {
				v += load[j][t] * z[t]
			}
			row[j] = v
		}
		rows[i] = row
	}
	return rows
}

// TestTrainHighDimensionalLatent is the regression test for the
// bootstrap-recovery bugs found on hep-like data: bounds carried between
// rounds can be off by many orders of magnitude in d = 27, and the old
// multiplicative backoff either looped or accepted corrupted rounds.
func TestTrainHighDimensionalLatent(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	data := latentData(rng, 4000, 27, 5)
	cfg := testConfig()
	c, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Threshold() <= 0 || math.IsNaN(c.Threshold()) {
		t.Fatalf("threshold = %g, want positive", c.Threshold())
	}
	// Classifications must still work end to end.
	labels, err := c.ClassifyAll(data[:500])
	if err != nil {
		t.Fatal(err)
	}
	lows := 0
	for _, l := range labels {
		if l == Low {
			lows++
		}
	}
	// p = 0.01 ⇒ roughly 1% of training points are LOW; allow wide slack
	// but reject degenerate all-LOW / all-HIGH outcomes.
	if lows > 100 {
		t.Fatalf("%d of 500 training points LOW; threshold degenerate (t=%g)", lows, c.Threshold())
	}
}

// TestTrainNearIIDHighDim covers the truly degenerate regime: 20
// near-independent dimensions where corrected densities can cancel to
// zero. Training must not loop or error; thresholds may be tiny but the
// classifier must answer queries.
func TestTrainNearIIDHighDim(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	n, d := 1500, 20
	data := make([][]float64, n)
	for i := range data {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		data[i] = row
	}
	cfg := testConfig()
	c, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(c.Threshold()) {
		t.Fatal("threshold is NaN")
	}
	if _, err := c.Classify(data[0]); err != nil {
		t.Fatal(err)
	}
	far := make([]float64, d)
	for j := range far {
		far[j] = 50
	}
	label, err := c.Classify(far)
	if err != nil {
		t.Fatal(err)
	}
	if label != Low {
		t.Fatalf("distant point classified %v, want LOW", label)
	}
}
