package tkdc

import (
	"tkdc/internal/core"
	"tkdc/internal/points"
	"tkdc/internal/stream"
)

// Model is a zero-downtime handle over a classifier: queries go through
// one atomic pointer load, and Publish swaps in a retrained classifier
// without ever blocking readers. Each swap bumps a generation number.
type Model = stream.Model

// Ingestor maintains a bounded-memory sample of a point stream — a
// deterministic seeded reservoir, or a sliding window of the newest rows.
type Ingestor = stream.Ingestor

// ShardedIngestor lock-stripes ingest over K independent per-shard
// reservoirs and merges them into one uniform sample at snapshot time.
// K=1 is the unsharded Ingestor code path, bit-identical samples
// included.
type ShardedIngestor = stream.ShardedIngestor

// StreamService owns the streaming model lifecycle: ingest batches into
// the bounded sample, background retrains on count/age/drift triggers,
// atomic swaps through a Model handle, and optional on-disk snapshots.
type StreamService = stream.Service

// StreamConfig tunes a StreamService; its zero value is usable.
type StreamConfig = stream.Config

// StreamStats is a coherent view of a StreamService's lifecycle.
type StreamStats = stream.Stats

// NewModel wraps a trained classifier in a generation-1 Model handle.
func NewModel(clf *Classifier) *Model { return stream.NewModel(clf) }

// NewIngestor builds a bounded sample for dim-dimensional rows. With
// window set it keeps the newest capacity rows; otherwise a seeded
// uniform reservoir over everything ever ingested.
func NewIngestor(capacity, dim int, seed int64, window bool) (*Ingestor, error) {
	return stream.NewIngestor(capacity, dim, seed, window)
}

// NewShardedIngestor builds a lock-striped sample: shards independent
// reservoirs (seed ⊕ shard id each) merged deterministically at
// Snapshot. shards == 0 picks DefaultIngestShards(); shards == 1 is
// bit-identical to NewIngestor.
func NewShardedIngestor(capacity, dim int, seed int64, window bool, shards int) (*ShardedIngestor, error) {
	return stream.NewShardedIngestor(capacity, dim, seed, window, shards)
}

// DefaultIngestShards is the shard count a ShardedIngestor uses when
// built with shards == 0: GOMAXPROCS clamped to a sane range.
func DefaultIngestShards() int { return stream.DefaultShards() }

// NewStreamService wraps an initial trained classifier in a streaming
// lifecycle. Call Start to begin background retraining and Close on
// shutdown; queries read through Model().
func NewStreamService(initial *Classifier, cfg StreamConfig) (*StreamService, error) {
	return stream.NewService(initial, cfg)
}

// ProbeThreshold cheaply re-estimates the threshold t(p) over data in
// flat row-major form without training: a seeded held-out mini-KDE
// quantile. Meant for relative drift checks against a live threshold,
// not for serving.
func ProbeThreshold(flat []float64, dim int, cfg Config, refRows, probes int, seed int64) (float64, error) {
	store, err := points.FromFlat(flat, dim)
	if err != nil {
		return 0, err
	}
	return core.ProbeThreshold(store, cfg, refRows, probes, seed)
}
