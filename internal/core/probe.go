package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"tkdc/internal/kdtree"
	"tkdc/internal/kernel"
	"tkdc/internal/points"
	"tkdc/internal/stats"
)

// probeRelPrecision is the relative density precision the probe asks of
// its backend: tight enough (1%) that drift comparisons — which look for
// tens-of-percent threshold movement — are unaffected by estimation
// error.
const probeRelPrecision = 0.01

// ProbeThreshold cheaply re-estimates the classification threshold t(p)
// over data without training a classifier: it draws refRows reference
// rows and probes held-out probe rows (disjointly and seeded, so the
// probe is deterministic for a fixed seed), estimates each probe's
// density under the reference mini-KDE with Scott's-rule bandwidths to
// 1% relative precision via the configured density backend, and returns
// the p-quantile. Holding the probe rows out of the reference set plays
// the role of the self-contribution correction of Section 2.3: no probe
// contributes density to itself.
//
// The estimate is a rough, biased stand-in for the trained threshold
// (small-sample bandwidths differ from full-dataset ones), so it is
// meant for relative comparisons — detecting that the distribution under
// a live model has drifted — not as a serving threshold. Cost is at most
// O(refRows · probes) kernel evaluations, independent of data.Len(), and
// lower when the backend's pruning or sampling bites.
func ProbeThreshold(data *points.Store, cfg Config, refRows, probes int, seed int64) (float64, error) {
	cfg = cfg.normalized()
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	n := data.Len()
	if n < 3 {
		return 0, errors.New("core: probe needs at least 3 rows")
	}
	if refRows < 2 {
		refRows = 2
	}
	if probes < 1 {
		probes = 1
	}
	if refRows+probes > n {
		// Shrink to fit, preserving the reference:probe ratio but keeping
		// both ends usable.
		refRows = n * refRows / (refRows + probes)
		if refRows < 2 {
			refRows = 2
		}
		probes = n - refRows
	}

	// One partial Fisher–Yates draw of refRows+probes distinct rows; the
	// first refRows become the mini-KDE, the rest the held-out probes.
	rng := rand.New(rand.NewSource(seed))
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	total := refRows + probes
	ref := points.New(refRows, data.Dim)
	held := points.New(probes, data.Dim)
	for i := 0; i < total; i++ {
		j := i + rng.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
		if i < refRows {
			copy(ref.Row(i), data.Row(idx[i]))
		} else {
			copy(held.Row(i-refRows), data.Row(idx[i]))
		}
	}

	h, err := kernel.ScottBandwidths(ref, cfg.BandwidthFactor)
	if err != nil {
		return 0, fmt.Errorf("core: probe bandwidth: %w", err)
	}
	kern, err := newKernel(cfg.Kernel, h)
	if err != nil {
		return 0, err
	}
	tree, err := kdtree.Build(ref, kdtree.Options{LeafSize: cfg.LeafSize, Split: cfg.Split, Workers: cfg.Workers})
	if err != nil {
		return 0, fmt.Errorf("core: probe index: %w", err)
	}
	// The probe's own seed drives the backend so repeated probes with the
	// same seed stay bit-identical regardless of the training seed.
	beCfg := cfg
	beCfg.Seed = seed
	be := newQueryBackend(tree, kern, beCfg)
	var qs QueryStats
	densities := make([]float64, probes)
	for i := range densities {
		_, _, densities[i] = be.EstimateDensity(held.Row(i), probeRelPrecision, &qs)
	}
	sort.Float64s(densities)
	return stats.SortedQuantile(densities, cfg.P)
}
