package core

import (
	"bytes"
	"crypto/sha256"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// frameClassifier trains a small model for the integrity-frame tests.
func frameClassifier(t *testing.T) *Classifier {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	clf, err := Train(gauss2D(rng, 300), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return clf
}

// TestEncodeSnapshotRoundTrip pins the framed wire format: magic prefix,
// checksum over the whole encoding, and a Load that reproduces the model.
func TestEncodeSnapshotRoundTrip(t *testing.T) {
	clf := frameClassifier(t)
	data, sum, err := clf.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte(frameMagic)) {
		t.Fatalf("framed snapshot does not start with %q: % x", frameMagic, data[:8])
	}
	if want := sha256.Sum256(data); want != sum {
		t.Fatal("EncodeSnapshot checksum is not the SHA-256 of the returned bytes")
	}
	loaded, err := Load(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Threshold() != clf.Threshold() || loaded.N() != clf.N() {
		t.Fatalf("framed round trip differs: t=%v n=%d, want t=%v n=%d",
			loaded.Threshold(), loaded.N(), clf.Threshold(), clf.N())
	}
}

// TestLoadFileRejectsCorruption is the torn-snapshot regression test: a
// SaveFile artifact with a flipped payload byte or a truncated tail must
// fail with a loud checksum error, never deserialize garbage.
func TestLoadFileRejectsCorruption(t *testing.T) {
	clf := frameClassifier(t)
	path := filepath.Join(t.TempDir(), "model.tkdc")
	if err := clf.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatalf("clean snapshot rejected: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, []byte(frameMagic)) {
		t.Fatal("SaveFile output is not framed")
	}

	corrupt := func(name string, mutate func([]byte) []byte, wantErr string) {
		t.Helper()
		mutated := mutate(append([]byte(nil), raw...))
		p := filepath.Join(t.TempDir(), name)
		if err := os.WriteFile(p, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := LoadFile(p)
		if err == nil {
			t.Fatalf("%s: corrupted snapshot loaded successfully", name)
		}
		if !strings.Contains(err.Error(), wantErr) {
			t.Fatalf("%s: error %q does not mention %q", name, err, wantErr)
		}
		if !strings.Contains(err.Error(), p) {
			t.Fatalf("%s: error %q does not name the file", name, err)
		}
	}

	corrupt("bitflip.tkdc", func(b []byte) []byte {
		b[len(b)/2] ^= 0x40 // flip one payload bit past the header
		return b
	}, "checksum mismatch")
	corrupt("torn.tkdc", func(b []byte) []byte {
		return b[:len(b)-len(b)/3] // tail lost mid-write
	}, "checksum mismatch")
	corrupt("header.tkdc", func(b []byte) []byte {
		return b[:frameHdrLen-5] // died inside the frame header
	}, "truncated snapshot frame")
	corrupt("version.tkdc", func(b []byte) []byte {
		b[len(frameMagic)] = 99
		return b
	}, "frame version")
}

// TestLoadBareGobStillAccepted keeps the legacy unframed stream loadable:
// Save writes bare gob and pre-frame snapshot files exist in the wild.
func TestLoadBareGobStillAccepted(t *testing.T) {
	clf := frameClassifier(t)
	var buf bytes.Buffer
	if err := clf.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.HasPrefix(buf.Bytes(), []byte(frameMagic)) {
		t.Fatal("Save unexpectedly emits the frame; update this test and the Load sniffing doc")
	}
	if _, err := Load(&buf); err != nil {
		t.Fatalf("bare gob stream rejected: %v", err)
	}
}

// TestLoadFileMissing surfaces the open error rather than a nil model.
func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.tkdc")); err == nil {
		t.Fatal("missing file loaded")
	}
}
