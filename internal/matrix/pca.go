package matrix

import (
	"errors"
	"fmt"
)

// PCA is a fitted principal-component projection. Fit with FitPCA, then
// Transform rows into the reduced space.
type PCA struct {
	// Components holds the top-k principal directions as rows (k×d).
	Components *Dense
	// Means holds the per-column means subtracted before projection.
	Means []float64
	// ExplainedVariance holds the eigenvalue associated with each
	// component, in descending order.
	ExplainedVariance []float64
}

// FitPCA fits a k-component PCA to a row-major dataset. k must be in
// [1, d] where d is the input dimensionality.
func FitPCA(rows [][]float64, k int) (*PCA, error) {
	if len(rows) == 0 {
		return nil, errors.New("matrix: PCA of empty dataset")
	}
	d := len(rows[0])
	if k < 1 || k > d {
		return nil, fmt.Errorf("matrix: PCA components k=%d out of range [1, %d]", k, d)
	}
	cov, means, err := Covariance(rows)
	if err != nil {
		return nil, err
	}
	vals, vecs, err := SymEigen(cov)
	if err != nil {
		return nil, err
	}
	comp := NewDense(k, d)
	for i := 0; i < k; i++ {
		copy(comp.Row(i), vecs.Row(i))
	}
	return &PCA{
		Components:        comp,
		Means:             means,
		ExplainedVariance: vals[:k],
	}, nil
}

// Transform projects one point into the principal subspace.
func (p *PCA) Transform(x []float64) []float64 {
	d := p.Components.Cols
	if len(x) != d {
		panic(fmt.Sprintf("matrix: PCA.Transform dimension mismatch: %d vs %d", len(x), d))
	}
	centered := make([]float64, d)
	for j, v := range x {
		centered[j] = v - p.Means[j]
	}
	return p.Components.MulVec(centered)
}

// TransformAll projects every row, returning a new dataset.
func (p *PCA) TransformAll(rows [][]float64) [][]float64 {
	out := make([][]float64, len(rows))
	for i, row := range rows {
		out[i] = p.Transform(row)
	}
	return out
}

// InverseTransform maps a reduced point back into the original space
// (lossy when k < d): x ≈ meansᵀ + Σ_i z_i · component_i.
func (p *PCA) InverseTransform(z []float64) []float64 {
	k, d := p.Components.Rows, p.Components.Cols
	if len(z) != k {
		panic(fmt.Sprintf("matrix: PCA.InverseTransform dimension mismatch: %d vs %d", len(z), k))
	}
	out := make([]float64, d)
	copy(out, p.Means)
	for i := 0; i < k; i++ {
		comp := p.Components.Row(i)
		zi := z[i]
		for j := 0; j < d; j++ {
			out[j] += zi * comp[j]
		}
	}
	return out
}
