package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"tkdc/internal/kdtree"
	"tkdc/internal/kernel"
	"tkdc/internal/points"
	"tkdc/internal/stats"
)

// boundBenchState is one per-dimension benchmark fixture: an index over
// 50k Gaussian points and a threshold at the paper's default p=0.01
// quantile, so the backends run under realistic pruning pressure.
type boundBenchState struct {
	tree    *kdtree.Tree
	kern    kernel.Kernel
	est     *densityEstimator
	pts     *points.Store
	t       float64
	queries []float64 // flat row-major query block
	dim     int
}

func newBoundBenchState(b *testing.B, d int) *boundBenchState {
	b.Helper()
	const n = 50000
	rng := rand.New(rand.NewSource(int64(40 + d)))
	pts := points.New(n, d)
	for i := range pts.Data {
		pts.Data[i] = rng.NormFloat64() * 3
	}
	h, err := kernel.ScottBandwidths(pts, 1)
	if err != nil {
		b.Fatal(err)
	}
	kern, err := kernel.NewGaussian(h)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := kdtree.Build(pts, kdtree.Options{})
	if err != nil {
		b.Fatal(err)
	}
	est := newDensityEstimator(tree, kern, false, false)

	// Estimate the p=0.01 threshold from a small exact-density sample —
	// enough precision to put the traversal in its production regime.
	const sample = 256
	ds := make([]float64, sample)
	for i := 0; i < sample; i++ {
		ds[i] = exactDensity(pts, kern, pts.Row(i*(n/sample)))
	}
	sort.Float64s(ds)
	t, err := stats.SortedQuantile(ds, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	return &boundBenchState{tree: tree, kern: kern, est: est, pts: pts, t: t, queries: pts.Data, dim: d}
}

// BenchmarkBoundDensity measures the Algorithm 2 traversal in isolation
// — no grid cache, no validation, no telemetry — across and beyond the
// paper's dimensionality range. d=16 and d=32 sit past the tree's
// pruning horizon (the traversal degenerates toward a full scan there);
// they pin the cost the sampling backend exists to avoid. This is the
// direct probe for tree-layout and bound-computation changes: each
// iteration is one priority-queue traversal with fused box-distance
// bounds.
func BenchmarkBoundDensity(b *testing.B) {
	for _, d := range []int{1, 2, 4, 8, 16, 32} {
		d := d
		b.Run(fmt.Sprintf("d%d", d), func(b *testing.B) {
			st := newBoundBenchState(b, d)
			n := st.pts.Len()
			tolCut := 0.01 * st.t
			var qs QueryStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x := st.queries[(i%n)*d : (i%n)*d+d]
				st.est.boundDensity(x, st.t, st.t, tolCut, &qs)
			}
			b.ReportMetric(float64(qs.NodesVisited)/float64(b.N), "nodes/op")
		})
	}
}

// BenchmarkBackendHeadToHead runs the tree and sampling backends over
// the same fixtures, thresholds, and stopping rules, through the same
// DensityBackend interface the classifier serves with. The crossover —
// where sampling's bounded near phase plus O(maxSamples) far field
// undercuts the tree's degenerating traversal — is recorded in
// BENCH_core.json.
func BenchmarkBackendHeadToHead(b *testing.B) {
	for _, d := range []int{4, 8, 16, 32} {
		d := d
		var st *boundBenchState // shared by both backend runs at this d
		for _, backend := range []string{BackendTree, BackendSampling} {
			backend := backend
			b.Run(fmt.Sprintf("d%d/%s", d, backend), func(b *testing.B) {
				if st == nil || st.dim != d {
					st = newBoundBenchState(b, d)
				}
				cfg := DefaultConfig()
				cfg.Backend = backend
				be := newQueryBackend(st.tree, st.kern, cfg)
				n := st.pts.Len()
				tolCut := 0.01 * st.t
				var qs QueryStats
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					x := st.queries[(i%n)*d : (i%n)*d+d]
					be.BoundDensity(x, st.t, st.t, tolCut, &qs)
				}
				b.ReportMetric(float64(qs.PointKernels)/float64(b.N), "pointkernels/op")
			})
		}
	}
}
