// Streaming: feed a drifting 2-D gaussian mixture through the streaming
// lifecycle and watch the model follow it. An initial classifier trained
// on the mixture's starting position is wrapped in a StreamService with
// a sliding window; as ingest batches arrive from the drifted
// distribution, the count trigger retrains in the background and each
// retrain hot-swaps the served model — queries through the Model handle
// never block, they just start seeing the new generation's answers.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"tkdc"
)

// mixture draws n points from a 90/10 two-mode gaussian mixture whose
// main mode sits at (center, center).
func mixture(rng *rand.Rand, n int, center float64) [][]float64 {
	data := make([][]float64, n)
	for i := range data {
		if rng.Float64() < 0.9 {
			data[i] = []float64{center + rng.NormFloat64(), center + rng.NormFloat64()}
		} else {
			data[i] = []float64{center + 6 + rng.NormFloat64()*0.5, center + 6 + rng.NormFloat64()*0.5}
		}
	}
	return data
}

func main() {
	rng := rand.New(rand.NewSource(1))

	// 1. Train an initial model on the mixture at its starting position.
	initial := mixture(rng, 10000, 0)
	clf, err := tkdc.TrainDefault(initial)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial model: n=%d, threshold %.3g\n", clf.N(), clf.Threshold())

	// 2. Wrap it in a streaming lifecycle: a sliding window of the newest
	// 10k rows, retraining every 5k ingested rows. Start launches the
	// background retrainer; the Model handle is the query surface.
	svc, err := tkdc.NewStreamService(clf, tkdc.StreamConfig{
		Capacity:      10000,
		Window:        true,
		Seed:          1,
		RetrainEvery:  5000,
		CheckInterval: 10 * time.Millisecond,
		Prefill:       true,
	})
	if err != nil {
		log.Fatal(err)
	}
	svc.Start()
	defer svc.Close()
	model := svc.Model()

	// 3. Drift: the mixture walks from (0,0) to (8,8) in batches. The old
	// center becomes an outlier region, the new center becomes dense.
	probeOld, probeNew := []float64{0, 0}, []float64{8, 8}
	for step := 0; step <= 8; step++ {
		center := float64(step)
		if _, err := svc.Ingest(mixture(rng, 2000, center)); err != nil {
			log.Fatal(err)
		}
		// Queries keep flowing mid-retrain; each reads one coherent
		// generation via a single atomic load.
		oldLabel, _ := model.Classify(probeOld)
		newLabel, _ := model.Classify(probeNew)
		st := svc.Stats()
		fmt.Printf("drift %d: gen %-2d  (0,0)=%-4s  (8,8)=%-4s  ingested %d, retrains %d\n",
			step, st.Generation, oldLabel, newLabel, st.Ingested, st.Retrains)
		time.Sleep(50 * time.Millisecond) // give the background retrainer a beat
	}

	// 4. One synchronous retrain so the final model reflects the fully
	// drifted window (background retrains lag a fast producer), then the
	// labels have traded places: the old center is now the outlier.
	if err := svc.Retrain(); err != nil {
		log.Fatal(err)
	}
	oldLabel, _ := model.Classify(probeOld)
	newLabel, _ := model.Classify(probeNew)
	st := svc.Stats()
	fmt.Printf("final: gen %d after %d retrains over %d rows: (0,0)=%s  (8,8)=%s\n",
		st.Generation, st.Retrains, st.Ingested, oldLabel, newLabel)
}
