package telemetry

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TraceStage is one typed step of a query's execution — the unit of the
// per-query flight record. Every backend populates the fields that are
// meaningful for it and leaves the rest zero (omitted from JSON):
//
//   - the tree backend emits one "tree/refine" stage with Nodes (heap
//     pops), Pushes, Depth (deepest arena node touched), the kernel
//     split, and the bounds at stop time;
//   - the sampling backend emits a "near" stage (descent Depth, interior
//     Budget consumed, exact Points) and one "far/round-N" stage per
//     adaptive doubling with the running sample count and
//     empirical-Bernstein band (Lower, Upper, Band);
//   - the grid cache answers queries outright with a stage-free trace
//     (Backend "grid", GridHit set);
//   - the dual-tree batch path emits "groups/certified" and
//     "groups/fallback" stages attributing queries to the two regimes.
type TraceStage struct {
	Name     string        `json:"name"`
	Duration time.Duration `json:"duration_ns"`
	// Nodes counts arena nodes popped during the stage; Pushes counts
	// heap pushes (tree backend frontier growth).
	Nodes  int64 `json:"nodes,omitempty"`
	Pushes int64 `json:"pushes,omitempty"`
	// Points and Bounds are kernel evaluations against points and
	// bounding boxes performed in the stage.
	Points int64 `json:"point_kernels,omitempty"`
	Bounds int64 `json:"bound_kernels,omitempty"`
	// Depth is the deepest tree level the stage reached (1 = root).
	Depth int `json:"depth,omitempty"`
	// Budget is the interior-node expansion budget the stage consumed
	// (sampling backend's near phase).
	Budget int `json:"budget_used,omitempty"`
	// Samples is the cumulative far-field sample count at stage end.
	Samples int64 `json:"samples,omitempty"`
	// Groups and Queries attribute batch work: query groups processed
	// and queries answered in the stage (dual-tree batch traces).
	Groups  int64 `json:"groups,omitempty"`
	Queries int64 `json:"queries,omitempty"`
	// Lower and Upper are the running density bounds at stage end; Band
	// is the confidence band width (fu−fl before envelope clamping is
	// not retained — Band records the clamped width).
	Lower float64 `json:"lower,omitempty"`
	Upper float64 `json:"upper,omitempty"`
	Band  float64 `json:"band,omitempty"`
}

// QueryTrace is the flight record of one density query: which backend
// served it, the typed stages it went through, the work it performed,
// and how close the decision came to the threshold. Traces are
// allocated by a TraceSink only while tracing is enabled; the disabled
// path never sees one.
type QueryTrace struct {
	// ID is a process-unique sequence number (assigned by the sink).
	ID    uint64    `json:"id"`
	Start time.Time `json:"start"`
	// Latency is the query's wall-clock duration, set just before the
	// trace is handed back to the sink.
	Latency time.Duration `json:"latency_ns"`
	// Kind is the query type: "score" (threshold classification),
	// "density" (DensityBounds), or "dualtree" (one batch pass).
	Kind string `json:"kind"`
	// Backend names the engine that answered: "tree", "sampling", or
	// "grid" when the hypergrid cache short-circuited the query.
	Backend string `json:"backend"`
	// Label is the classification outcome ("HIGH"/"LOW"), empty for
	// density-only queries and batch traces.
	Label string `json:"label,omitempty"`
	// Query is a copy of the query point (empty for batch traces).
	Query []float64 `json:"query,omitempty"`
	// Threshold, bounds, and the point estimate behind the decision.
	Threshold float64 `json:"threshold,omitempty"`
	Lower     float64 `json:"lower"`
	Upper     float64 `json:"upper"`
	Estimate  float64 `json:"estimate"`
	// Margin is Estimate − Threshold: how far the decision sat from the
	// classification boundary.
	Margin float64 `json:"margin"`
	// Straddle reports that the density bounds still contained the
	// threshold at decision time — the ε-band "uncertain" cases whose
	// label the approximation contract leaves free. The flight recorder
	// retains these unconditionally.
	Straddle bool `json:"straddle"`
	// Certified reports whether the bounds are deterministic
	// certificates (tree) rather than ≥ 1−δ confidence bands (sampling).
	Certified bool `json:"certified"`
	// GridHit marks queries the hypergrid cache answered outright.
	GridHit bool `json:"grid_hit,omitempty"`
	// Totals across all stages, in QueryStats units.
	PointKernels int64 `json:"point_kernels"`
	BoundKernels int64 `json:"bound_kernels"`
	Nodes        int64 `json:"nodes"`
	// Items counts the queries a batch trace covered (1 for per-query
	// traces).
	Items int64 `json:"items,omitempty"`

	Stages []TraceStage `json:"stages"`
}

// AddStage appends one typed stage to the trace.
func (t *QueryTrace) AddStage(s TraceStage) { t.Stages = append(t.Stages, s) }

// jsonFloat renders a possibly non-finite float for JSON: encoding/json
// rejects ±Inf and NaN as numbers, and certified bounds legitimately
// reach +Inf (a query provably above threshold needs no finite upper
// bound). Non-finite values become the strings Prometheus also uses.
func jsonFloat(v float64) any {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return v
}

// jsonFloatOmit is jsonFloat for omitempty fields: exact zero marshals
// as a nil interface so the key is omitted, matching float64 omitempty.
func jsonFloatOmit(v float64) any {
	if v == 0 {
		return nil
	}
	return jsonFloat(v)
}

// MarshalJSON shadows the float fields that can hold non-finite bounds.
func (t QueryTrace) MarshalJSON() ([]byte, error) {
	type plain QueryTrace // method-free: avoids marshal recursion
	return json.Marshal(struct {
		plain
		Threshold any `json:"threshold,omitempty"`
		Lower     any `json:"lower"`
		Upper     any `json:"upper"`
		Estimate  any `json:"estimate"`
		Margin    any `json:"margin"`
	}{
		plain:     plain(t),
		Threshold: jsonFloatOmit(t.Threshold),
		Lower:     jsonFloat(t.Lower),
		Upper:     jsonFloat(t.Upper),
		Estimate:  jsonFloat(t.Estimate),
		Margin:    jsonFloat(t.Margin),
	})
}

// MarshalJSON shadows the running-bound fields the same way.
func (s TraceStage) MarshalJSON() ([]byte, error) {
	type plain TraceStage
	return json.Marshal(struct {
		plain
		Lower any `json:"lower,omitempty"`
		Upper any `json:"upper,omitempty"`
		Band  any `json:"band,omitempty"`
	}{
		plain: plain(s),
		Lower: jsonFloatOmit(s.Lower),
		Upper: jsonFloatOmit(s.Upper),
		Band:  jsonFloatOmit(s.Band),
	})
}

// String renders the trace as one human-readable block (the -stats and
// slow-query-log format).
func (t *QueryTrace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d %s %s/%s %v", t.ID, t.Start.Format("15:04:05.000"), t.Kind, t.Backend, t.Latency.Round(time.Microsecond))
	if t.Label != "" {
		fmt.Fprintf(&b, " label=%s margin=%.3g", t.Label, t.Margin)
	}
	if t.Straddle {
		b.WriteString(" STRADDLE")
	}
	fmt.Fprintf(&b, " kernels=%d nodes=%d", t.PointKernels+t.BoundKernels, t.Nodes)
	for _, s := range t.Stages {
		fmt.Fprintf(&b, "\n    %-16s %10v", s.Name, s.Duration.Round(time.Microsecond))
		if s.Nodes > 0 || s.Pushes > 0 {
			fmt.Fprintf(&b, " nodes=%d pushes=%d", s.Nodes, s.Pushes)
		}
		if s.Points > 0 || s.Bounds > 0 {
			fmt.Fprintf(&b, " kernels=%d+%d", s.Points, s.Bounds)
		}
		if s.Depth > 0 {
			fmt.Fprintf(&b, " depth=%d", s.Depth)
		}
		if s.Budget > 0 {
			fmt.Fprintf(&b, " budget=%d", s.Budget)
		}
		if s.Samples > 0 {
			fmt.Fprintf(&b, " samples=%d band=%.3g", s.Samples, s.Band)
		}
	}
	return b.String()
}

// TraceSink receives per-query flight records. The query path gates
// every trace behind TraceEnabled(), which must stay as cheap as an
// atomic load: with tracing disabled a query performs that single check
// and allocates nothing. StartTrace hands out a trace to populate;
// FinishTrace takes ownership back (the caller must not touch the trace
// afterwards — it may be retained, rendered, and served concurrently).
type TraceSink interface {
	TraceEnabled() bool
	StartTrace() *QueryTrace
	FinishTrace(*QueryTrace)
}

// DefaultTraceK is the per-category retention (slowest / most recent /
// straddling) when FlightOptions leaves K zero.
const DefaultTraceK = 32

// traceShards spreads recent-trace inserts over this many locks; a
// power of two so the sequence counter selects a shard with a mask.
const traceShards = 8

// traceShard is one lock-sharded slot ring of the most-recent buffer,
// padded past a cache line so neighboring shards don't false-share.
type traceShard struct {
	mu   sync.Mutex
	ring []*QueryTrace
	next int
	_    [64]byte
}

// FlightOptions configures NewFlightRecorder.
type FlightOptions struct {
	// K is the retention per category: the K slowest traces, the K most
	// recent, and the K most recent threshold-straddling ones (default
	// DefaultTraceK; rounded up to a multiple of the shard count for the
	// recent ring).
	K int
	// SlowThreshold, when positive, additionally logs every trace at
	// least this slow through Logger and counts it in SlowLogged.
	SlowThreshold time.Duration
	// Logger receives the slow-query log lines (nil disables the log
	// even with SlowThreshold set).
	Logger *slog.Logger
}

// FlightRecorder is the standard TraceSink: a lock-sharded ring buffer
// that retains the K slowest traces, the K most recent, and the K most
// recent whose density bounds straddled the classification threshold
// (the ε-band "uncertain" cases), plus a structured slow-query log.
// Inserts are designed for many concurrent query goroutines: recent
// traces spread round-robin over sharded locks, and the slowest-K heap
// is guarded by an atomic floor so queries faster than the current
// K-th-slowest never touch its lock. Safe for concurrent use.
type FlightRecorder struct {
	enabled atomic.Bool
	k       int
	slowNS  int64
	log     *slog.Logger

	seq atomic.Uint64

	shards [traceShards]traceShard

	slowMu    sync.Mutex
	slowHeap  []*QueryTrace // min-heap on latency, ≤ k entries
	slowFloor atomic.Int64  // latency of the heap minimum once full

	straddleMu   sync.Mutex
	straddleRing []*QueryTrace
	straddleNext int

	traced     Counter
	straddled  Counter
	slowLogged Counter
}

// NewFlightRecorder returns an enabled flight recorder.
func NewFlightRecorder(opts FlightOptions) *FlightRecorder {
	k := opts.K
	if k <= 0 {
		k = DefaultTraceK
	}
	perShard := (k + traceShards - 1) / traceShards
	f := &FlightRecorder{
		k:      perShard * traceShards,
		slowNS: int64(opts.SlowThreshold),
		log:    opts.Logger,
	}
	for i := range f.shards {
		f.shards[i].ring = make([]*QueryTrace, perShard)
	}
	f.straddleRing = make([]*QueryTrace, f.k)
	f.enabled.Store(true)
	return f
}

// Enabled reports whether the recorder is accepting traces.
func (f *FlightRecorder) Enabled() bool { return f.enabled.Load() }

// SetEnabled toggles trace collection. Disabling stops StartTrace calls
// at the TraceEnabled gate; retained traces stay readable.
func (f *FlightRecorder) SetEnabled(on bool) { f.enabled.Store(on) }

// SlowThreshold returns the slow-query log threshold (0 = log off).
func (f *FlightRecorder) SlowThreshold() time.Duration { return time.Duration(f.slowNS) }

// TraceEnabled implements TraceSink.
func (f *FlightRecorder) TraceEnabled() bool { return f.enabled.Load() }

// StartTrace allocates a fresh trace with the next sequence number.
// Traces are not pooled: a finished trace is retained by the rings and
// may be served concurrently, so recycling would race readers.
func (f *FlightRecorder) StartTrace() *QueryTrace {
	return &QueryTrace{ID: f.seq.Add(1)}
}

// FinishTrace files a completed trace into the recent ring, the
// slowest-K heap, and — when its bounds straddled the threshold — the
// straddle ring, then feeds the slow-query log. It takes ownership of
// the trace.
func (f *FlightRecorder) FinishTrace(t *QueryTrace) {
	if t == nil || !f.enabled.Load() {
		return
	}
	f.traced.Inc()

	// Most-recent ring: strict round-robin over the shards, so the union
	// of the shard rings is exactly the last k traces (modulo in-flight
	// races, which can reorder neighbors but never lose a slot).
	s := &f.shards[t.ID&(traceShards-1)]
	s.mu.Lock()
	s.ring[s.next] = t
	s.next = (s.next + 1) % len(s.ring)
	s.mu.Unlock()

	// Slowest-K: the atomic floor keeps fast queries (the overwhelming
	// majority) off the heap lock entirely.
	lat := int64(t.Latency)
	if lat > f.slowFloor.Load() {
		f.slowMu.Lock()
		if len(f.slowHeap) < f.k {
			f.slowPush(t)
			if len(f.slowHeap) == f.k {
				f.slowFloor.Store(int64(f.slowHeap[0].Latency))
			}
		} else if lat > int64(f.slowHeap[0].Latency) {
			f.slowPop()
			f.slowPush(t)
			f.slowFloor.Store(int64(f.slowHeap[0].Latency))
		}
		f.slowMu.Unlock()
	}

	if t.Straddle {
		f.straddled.Inc()
		f.straddleMu.Lock()
		f.straddleRing[f.straddleNext] = t
		f.straddleNext = (f.straddleNext + 1) % len(f.straddleRing)
		f.straddleMu.Unlock()
	}

	if f.slowNS > 0 && lat >= f.slowNS && f.log != nil {
		f.slowLogged.Inc()
		f.log.Warn("slow query",
			slog.Uint64("trace_id", t.ID),
			slog.String("kind", t.Kind),
			slog.String("backend", t.Backend),
			slog.Duration("latency", t.Latency),
			slog.Int64("point_kernels", t.PointKernels),
			slog.Int64("bound_kernels", t.BoundKernels),
			slog.Int64("nodes", t.Nodes),
			slog.String("label", t.Label),
			slog.Float64("margin", t.Margin),
			slog.Bool("straddle", t.Straddle),
			slog.Int("stages", len(t.Stages)),
		)
	}
}

// slowPush and slowPop maintain the min-heap on latency under slowMu.
func (f *FlightRecorder) slowPush(t *QueryTrace) {
	h := append(f.slowHeap, t)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].Latency <= h[i].Latency {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	f.slowHeap = h
}

func (f *FlightRecorder) slowPop() {
	h := f.slowHeap
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h) && h[l].Latency < h[smallest].Latency {
			smallest = l
		}
		if r < len(h) && h[r].Latency < h[smallest].Latency {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	f.slowHeap = h
}

// FlightSnapshot is a coherent copy of a flight recorder's retained
// traces and counters, ready for JSON rendering (/debug/queries).
type FlightSnapshot struct {
	Enabled bool `json:"enabled"`
	// K is the per-category retention limit.
	K int `json:"k"`
	// Traced counts every trace ever filed; Straddled the subset whose
	// bounds contained the threshold at decision time; SlowLogged those
	// at or above the slow threshold.
	Traced     int64 `json:"traced"`
	Straddled  int64 `json:"straddled"`
	SlowLogged int64 `json:"slow_logged"`
	// SlowThresholdNS is the slow-query log threshold (0 = off).
	SlowThresholdNS int64 `json:"slow_threshold_ns"`
	// Slowest is ordered slowest-first; Recent and Straddling
	// newest-first.
	Slowest    []*QueryTrace `json:"slowest"`
	Recent     []*QueryTrace `json:"recent"`
	Straddling []*QueryTrace `json:"straddling"`
}

// Snapshot copies the recorder's retained traces. Traces are immutable
// once filed, so the snapshot shares them with the rings; only the
// containing slices are fresh.
func (f *FlightRecorder) Snapshot() FlightSnapshot {
	snap := FlightSnapshot{
		Enabled:         f.enabled.Load(),
		K:               f.k,
		Traced:          f.traced.Load(),
		Straddled:       f.straddled.Load(),
		SlowLogged:      f.slowLogged.Load(),
		SlowThresholdNS: f.slowNS,
	}

	for i := range f.shards {
		s := &f.shards[i]
		s.mu.Lock()
		for _, t := range s.ring {
			if t != nil {
				snap.Recent = append(snap.Recent, t)
			}
		}
		s.mu.Unlock()
	}
	sort.Slice(snap.Recent, func(i, j int) bool { return snap.Recent[i].ID > snap.Recent[j].ID })

	f.slowMu.Lock()
	snap.Slowest = append(snap.Slowest, f.slowHeap...)
	f.slowMu.Unlock()
	sort.Slice(snap.Slowest, func(i, j int) bool { return snap.Slowest[i].Latency > snap.Slowest[j].Latency })

	f.straddleMu.Lock()
	for _, t := range f.straddleRing {
		if t != nil {
			snap.Straddling = append(snap.Straddling, t)
		}
	}
	f.straddleMu.Unlock()
	sort.Slice(snap.Straddling, func(i, j int) bool { return snap.Straddling[i].ID > snap.Straddling[j].ID })

	return snap
}

// String renders the flight-recorder summary for -stats: counters plus
// the slowest and straddling traces.
func (s FlightSnapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "flight recorder: %d traced, %d straddled, %d slow-logged", s.Traced, s.Straddled, s.SlowLogged)
	if s.SlowThresholdNS > 0 {
		fmt.Fprintf(&b, " (slow ≥ %v)", time.Duration(s.SlowThresholdNS))
	}
	b.WriteString("\n")
	if len(s.Slowest) > 0 {
		b.WriteString("slowest:\n")
		for _, t := range s.Slowest {
			fmt.Fprintf(&b, "  %s\n", t)
		}
	}
	if len(s.Straddling) > 0 {
		b.WriteString("threshold-straddling:\n")
		for _, t := range s.Straddling {
			fmt.Fprintf(&b, "  %s\n", t)
		}
	}
	return b.String()
}
