package core

import (
	"math"
	"math/rand"
	"os"
	"sort"
	"testing"

	"tkdc/internal/kdtree"
	"tkdc/internal/kernel"
	"tkdc/internal/points"
	"tkdc/internal/stats"
)

// mustStore copies rows into flat storage, panicking on malformed input
// (test data is always well-formed).
func mustStore(rows [][]float64) *points.Store {
	s, err := points.FromRows(rows)
	if err != nil {
		panic(err)
	}
	return s
}

// gauss2D draws n points from a 2-d mixture with a dominant mode and a
// sparse satellite, giving the threshold something non-trivial to find.
func gauss2D(rng *rand.Rand, n int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		if rng.Float64() < 0.9 {
			pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		} else {
			pts[i] = []float64{6 + rng.NormFloat64()*0.5, 6 + rng.NormFloat64()*0.5}
		}
	}
	return pts
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.S0 = 2000 // keep test-sized bootstraps quick
	// CI forces each density backend through the whole suite.
	if b := os.Getenv("TKDC_TEST_BACKEND"); b != "" {
		cfg.Backend = b
	}
	return cfg
}

// skipUnlessTreeEfficiency skips tests that pin efficiency properties of
// the certified tree traversal (dual-tree savings, bootstrap
// prunability) when CI forces the sampling backend: at the low
// dimensions these fixtures use, sampling is the off-policy backend and
// its flat per-query cost makes the assertions meaningless.
func skipUnlessTreeEfficiency(t *testing.T) {
	t.Helper()
	if os.Getenv("TKDC_TEST_BACKEND") == BackendSampling {
		t.Skip("tree-efficiency pin: not meaningful with the sampling backend forced")
	}
}

func TestDefaultConfigMatchesPaperTable1(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.P != 0.01 {
		t.Errorf("P = %v, want 0.01", cfg.P)
	}
	if cfg.Epsilon != 0.01 {
		t.Errorf("Epsilon = %v, want 0.01", cfg.Epsilon)
	}
	if cfg.Delta != 0.01 {
		t.Errorf("Delta = %v, want 0.01", cfg.Delta)
	}
	if cfg.BandwidthFactor != 1 {
		t.Errorf("BandwidthFactor = %v, want 1", cfg.BandwidthFactor)
	}
	if cfg.R0 != 200 || cfg.S0 != 20000 {
		t.Errorf("R0/S0 = %d/%d, want 200/20000", cfg.R0, cfg.S0)
	}
	if cfg.HBackoff != 4 || cfg.HBuffer != 1.5 || cfg.HGrowth != 4 {
		t.Errorf("backoff/buffer/growth = %v/%v/%v, want 4/1.5/4", cfg.HBackoff, cfg.HBuffer, cfg.HGrowth)
	}
	if cfg.MaxGridDim != 4 {
		t.Errorf("MaxGridDim = %d, want 4", cfg.MaxGridDim)
	}
	if cfg.Split != kdtree.SplitEquiWidth {
		t.Errorf("Split = %v, want equiwidth", cfg.Split)
	}
}

func TestTrainValidation(t *testing.T) {
	cfg := testConfig()
	if _, err := Train(nil, cfg); err == nil {
		t.Error("empty dataset should error")
	}
	if _, err := Train([][]float64{{}}, cfg); err == nil {
		t.Error("zero-dimensional data should error")
	}
	if _, err := Train([][]float64{{1, 2}, {3}}, cfg); err == nil {
		t.Error("ragged data should error")
	}
	if _, err := Train([][]float64{{math.NaN()}}, cfg); err == nil {
		t.Error("NaN data should error")
	}
	if _, err := Train([][]float64{{math.Inf(-1)}}, cfg); err == nil {
		t.Error("Inf data should error")
	}

	data := [][]float64{{1}, {2}, {3}}
	bad := []Config{}
	for _, mut := range []func(*Config){
		func(c *Config) { c.P = 0 },
		func(c *Config) { c.P = 1 },
		func(c *Config) { c.Epsilon = 0 },
		func(c *Config) { c.Delta = 0 },
		func(c *Config) { c.Delta = 1 },
		func(c *Config) { c.BandwidthFactor = -1 },
		func(c *Config) { c.R0 = -1 },
		func(c *Config) { c.S0 = -1 },
		func(c *Config) { c.HBackoff = 0.5 },
		func(c *Config) { c.HBuffer = 0.5 },
		func(c *Config) { c.HGrowth = 1 },
		func(c *Config) { c.Kernel = KernelFamily(99) },
	} {
		c := testConfig()
		mut(&c)
		bad = append(bad, c)
	}
	for i, c := range bad {
		if _, err := Train(data, c); err == nil {
			t.Errorf("bad config %d should error", i)
		}
	}
}

// TestClassificationMatchesExactKDE is the core correctness test: tKDC's
// labels must agree with exact-KDE classification for every training point
// whose density is outside the ±ε·t band (Problem 1).
func TestClassificationMatchesExactKDE(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := gauss2D(rng, 3000)
	cfg := testConfig()
	c, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Ground truth: exact densities, exact quantile threshold.
	pts := mustStore(data)
	h, _ := kernel.ScottBandwidths(pts, 1)
	kern, _ := kernel.NewGaussian(h)
	exact := make([]float64, len(data))
	for i, x := range data {
		exact[i] = exactDensity(pts, kern, x)
	}
	corrected := make([]float64, len(data))
	self := kern.AtZero() / float64(len(data))
	for i, f := range exact {
		corrected[i] = f - self
	}
	sort.Float64s(corrected)
	trueT, _ := stats.SortedQuantile(corrected, cfg.P)

	// t̃ must approximate the true threshold within ε (plus the ordering
	// slack of nearby densities).
	if math.Abs(c.Threshold()-trueT) > 3*cfg.Epsilon*trueT {
		t.Fatalf("threshold = %g, exact = %g (rel err %.4f)", c.Threshold(), trueT, math.Abs(c.Threshold()-trueT)/trueT)
	}

	band := cfg.Epsilon * c.Threshold()
	mismatches := 0
	checked := 0
	for i, x := range data {
		r, err := c.Score(x)
		if err != nil {
			t.Fatal(err)
		}
		f := exact[i]
		if math.Abs(f-c.Threshold()) <= 2*band {
			continue // undefined zone
		}
		checked++
		want := Low
		if f > c.Threshold() {
			want = High
		}
		if r.Label != want {
			mismatches++
		}
	}
	if checked < len(data)/2 {
		t.Fatalf("only %d points outside the ε band; test data degenerate", checked)
	}
	if mismatches > 0 {
		t.Fatalf("%d of %d clear-margin points misclassified", mismatches, checked)
	}
}

// TestScoreBoundsContainExactDensity: certified bounds must bracket the
// exact density on arbitrary (non-training) queries.
func TestScoreBoundsContainExactDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	data := gauss2D(rng, 1500)
	cfg := testConfig()
	cfg.DisableGrid = true // force tree bounds
	c, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pts := mustStore(data)
	h, _ := kernel.ScottBandwidths(pts, 1)
	kern, _ := kernel.NewGaussian(h)
	for trial := 0; trial < 200; trial++ {
		q := []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		r, err := c.Score(q)
		if err != nil {
			t.Fatal(err)
		}
		f := exactDensity(pts, kern, q)
		slack := 1e-9 * math.Max(f, 1e-300)
		if r.Lower > f+slack || r.Upper < f-slack {
			t.Fatalf("bounds [%g, %g] do not contain exact density %g at %v", r.Lower, r.Upper, f, q)
		}
	}
}

func TestGridAndNoGridAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	data := gauss2D(rng, 2000)
	cfg := testConfig()
	withGrid, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.DisableGrid = true
	noGrid, err := Train(data, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if !withGrid.TrainStats().GridEnabled || noGrid.TrainStats().GridEnabled {
		t.Fatal("grid enablement flags wrong")
	}
	band := cfg.Epsilon * withGrid.Threshold() * 4
	for trial := 0; trial < 300; trial++ {
		q := []float64{rng.NormFloat64() * 2, rng.NormFloat64() * 2}
		a, err := withGrid.Score(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := noGrid.Score(q)
		if err != nil {
			t.Fatal(err)
		}
		if a.Label != b.Label {
			// Disagreement is only legitimate right at the threshold.
			est := b.Estimate()
			if math.Abs(est-withGrid.Threshold()) > band {
				t.Fatalf("grid/no-grid disagree at %v (density %g, threshold %g)", q, est, withGrid.Threshold())
			}
		}
	}
	if withGrid.Stats().GridHits == 0 {
		t.Fatal("grid never fired on a dense Gaussian; cache ineffective")
	}
}

func TestGridDisabledAboveMaxDim(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	data := make([][]float64, 600)
	for i := range data {
		row := make([]float64, 5)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		data[i] = row
	}
	c, err := Train(data, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c.TrainStats().GridEnabled {
		t.Fatal("grid must be disabled for d > 4")
	}
}

func TestOptimizationTogglesPreserveLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	data := gauss2D(rng, 1200)
	base := testConfig()
	ref, err := Train(data, base)
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string]func(*Config){
		"noThreshold": func(c *Config) { c.DisableThresholdRule = true },
		"noTolerance": func(c *Config) { c.DisableToleranceRule = true },
		"noGrid":      func(c *Config) { c.DisableGrid = true },
		"median":      func(c *Config) { c.Split = kdtree.SplitMedian },
		"allOff": func(c *Config) {
			c.DisableThresholdRule = true
			c.DisableToleranceRule = true
			c.DisableGrid = true
		},
	}
	for name, mut := range variants {
		cfg := base
		mut(&cfg)
		alt, err := Train(data, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		band := 4 * base.Epsilon * ref.Threshold()
		for trial := 0; trial < 150; trial++ {
			q := []float64{rng.NormFloat64() * 2, rng.NormFloat64() * 2}
			a, err := ref.Score(q)
			if err != nil {
				t.Fatal(err)
			}
			b, err := alt.Score(q)
			if err != nil {
				t.Fatal(err)
			}
			if a.Label != b.Label {
				est := b.Estimate()
				if math.IsInf(est, 1) {
					est = a.Estimate()
				}
				if math.Abs(est-ref.Threshold()) > band {
					t.Fatalf("%s: labels disagree at %v (density %g, threshold %g)", name, q, est, ref.Threshold())
				}
			}
		}
	}
}

func TestClassifyAllMatchesSequentialAndParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	data := gauss2D(rng, 1500)
	queries := gauss2D(rng, 400)

	cfg := testConfig()
	seq, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgP := cfg
	cfgP.Workers = 4
	par, err := Train(data, cfgP)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Threshold() != par.Threshold() {
		t.Fatalf("thresholds differ: %g vs %g (training must be deterministic)", seq.Threshold(), par.Threshold())
	}
	a, err := seq.ClassifyAll(queries)
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.ClassifyAll(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("query %d: sequential %v vs parallel %v", i, a[i], b[i])
		}
	}
}

func TestClassifyAllValidatesQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	data := gauss2D(rng, 500)
	c, err := Train(data, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ClassifyAll([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("dimension mismatch in batch should error")
	}
	if _, err := c.Classify([]float64{math.NaN(), 0}); err == nil {
		t.Fatal("NaN query should error")
	}
	if _, err := c.Classify([]float64{1}); err == nil {
		t.Fatal("wrong-dimension query should error")
	}
}

func TestDensityBoundsPrecision(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	data := gauss2D(rng, 1000)
	c, err := Train(data, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	pts := mustStore(data)
	h, _ := kernel.ScottBandwidths(pts, 1)
	kern, _ := kernel.NewGaussian(h)
	for trial := 0; trial < 50; trial++ {
		q := []float64{rng.NormFloat64(), rng.NormFloat64()}
		fl, fu, err := c.DensityBounds(q, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if fu-fl > 0.01*fl*(1+1e-9)+1e-300 {
			t.Fatalf("bounds [%g, %g] not within 1%% relative precision", fl, fu)
		}
		f := exactDensity(pts, kern, q)
		if fl > f*(1+1e-9) || fu < f*(1-1e-9) {
			t.Fatalf("bounds [%g, %g] miss exact %g", fl, fu, f)
		}
	}
	// rel ≤ 0 computes exactly.
	q := []float64{0.3, -0.2}
	fl, fu, err := c.DensityBounds(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := exactDensity(pts, kern, q)
	if math.Abs(fl-f) > 1e-9*f || math.Abs(fu-f) > 1e-9*f {
		t.Fatalf("exact-mode bounds [%g, %g] differ from %g", fl, fu, f)
	}
}

func TestOneDimensionalData(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	data := make([][]float64, 800)
	for i := range data {
		data[i] = []float64{rng.NormFloat64()}
	}
	c, err := Train(data, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Tail point is LOW, center is HIGH.
	tail, err := c.Classify([]float64{8})
	if err != nil {
		t.Fatal(err)
	}
	if tail != Low {
		t.Fatalf("x=8 classified %v, want LOW", tail)
	}
	center, err := c.Classify([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if center != High {
		t.Fatalf("x=0 classified %v, want HIGH", center)
	}
}

func TestTinyDataset(t *testing.T) {
	data := [][]float64{{0, 0}, {0.1, 0}, {0, 0.1}, {5, 5}, {0.05, 0.05}}
	c, err := Train(data, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 5 || c.Dim() != 2 {
		t.Fatalf("N=%d Dim=%d", c.N(), c.Dim())
	}
	if _, err := c.Classify([]float64{0, 0}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicatePointsDataset(t *testing.T) {
	data := make([][]float64, 400)
	for i := range data {
		data[i] = []float64{float64(i % 4), float64(i % 2)}
	}
	c, err := Train(data, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	lab, err := c.Classify([]float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if lab != High {
		t.Fatalf("duplicated mode classified %v, want HIGH", lab)
	}
}

func TestConstantColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	data := make([][]float64, 600)
	for i := range data {
		data[i] = []float64{rng.NormFloat64(), 42}
	}
	c, err := Train(data, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Classify([]float64{0, 42}); err != nil {
		t.Fatal(err)
	}
}

func TestEpanechnikovKernelPath(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	data := gauss2D(rng, 1200)
	cfg := testConfig()
	cfg.Kernel = KernelEpanechnikov
	c, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pts := mustStore(data)
	kern, _ := kernel.NewEpanechnikov(c.Bandwidths())
	for trial := 0; trial < 100; trial++ {
		q := []float64{rng.NormFloat64() * 2, rng.NormFloat64() * 2}
		r, err := c.Score(q)
		if err != nil {
			t.Fatal(err)
		}
		f := exactDensity(pts, kern, q)
		slack := 1e-9*f + 1e-300
		if !r.Stats.GridHit && (r.Lower > f+slack || r.Upper < f-slack) {
			t.Fatalf("epanechnikov bounds [%g, %g] miss exact %g", r.Lower, r.Upper, f)
		}
	}
}

func TestCountersAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	data := gauss2D(rng, 1000)
	cfg := testConfig()
	cfg.DisableGrid = true
	c, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Stats(); got.Queries != 0 {
		t.Fatalf("fresh classifier reports %d queries", got.Queries)
	}
	for i := 0; i < 50; i++ {
		if _, err := c.Classify([]float64{rng.NormFloat64(), rng.NormFloat64()}); err != nil {
			t.Fatal(err)
		}
	}
	got := c.Stats()
	if got.Queries != 50 {
		t.Fatalf("Queries = %d, want 50", got.Queries)
	}
	if got.Kernels() == 0 || got.NodesVisited == 0 {
		t.Fatal("work counters did not accumulate")
	}
	ts := c.TrainStats()
	if ts.TrainKernels == 0 || ts.BootstrapRounds < 1 || ts.Threshold <= 0 {
		t.Fatalf("train stats incomplete: %+v", ts)
	}
	if ts.N != 1000 || ts.Dim != 2 || len(ts.Bandwidths) != 2 {
		t.Fatalf("train stats metadata wrong: %+v", ts)
	}
}

// TestTheorem1SublinearKernelEvals checks the headline asymptotic claim:
// per-query kernel evaluations grow sublinearly in n for d = 2
// (Theorem 1: O(n^{1/2}) here), while the exact computation is Θ(n).
func TestTheorem1SublinearKernelEvals(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(23))
	sizes := []int{2000, 8000, 32000}
	perQuery := make([]float64, len(sizes))
	for si, n := range sizes {
		data := gauss2D(rng, n)
		cfg := testConfig()
		cfg.DisableGrid = true // count pure traversal work
		c, err := Train(data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		const q = 200
		for i := 0; i < q; i++ {
			if _, err := c.Score([]float64{rng.NormFloat64(), rng.NormFloat64()}); err != nil {
				t.Fatal(err)
			}
		}
		perQuery[si] = float64(c.Stats().Kernels()) / q
	}
	// Between n=2000 and n=32000 (16×), O(√n) predicts 4× work; Θ(n)
	// predicts 16×. Require clearly sublinear growth.
	growth := perQuery[len(perQuery)-1] / perQuery[0]
	if growth > 8 {
		t.Fatalf("kernel evals grew %.1f× over a 16× data increase; not sublinear (per-query: %v)", growth, perQuery)
	}
}

func TestLabelString(t *testing.T) {
	if Low.String() != "LOW" || High.String() != "HIGH" {
		t.Fatal("label names wrong")
	}
	if KernelGaussian.String() != "gaussian" || KernelEpanechnikov.String() != "epanechnikov" {
		t.Fatal("kernel family names wrong")
	}
	if KernelFamily(7).String() == "" {
		t.Fatal("unknown family should render")
	}
}

func TestResultEstimate(t *testing.T) {
	r := Result{Lower: 2, Upper: 4, Density: 3}
	if r.Estimate() != 3 {
		t.Fatalf("Estimate = %v, want 3", r.Estimate())
	}
	g := Result{Lower: 5, Upper: math.Inf(1), Density: 5}
	if g.Estimate() != 5 {
		t.Fatalf("grid-hit Estimate = %v, want 5", g.Estimate())
	}
}

func TestDeterministicTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	data := gauss2D(rng, 1000)
	cfg := testConfig()
	a, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Threshold() != b.Threshold() {
		t.Fatalf("same seed produced thresholds %g and %g", a.Threshold(), b.Threshold())
	}
	lo1, hi1 := a.ThresholdBounds()
	lo2, hi2 := b.ThresholdBounds()
	if lo1 != lo2 || hi1 != hi2 {
		t.Fatal("threshold bounds not deterministic")
	}
}

func TestEpanechnikovWithGridTrains(t *testing.T) {
	// The grid's cell diagonal in scaled space equals d, which is outside
	// the Epanechnikov support (radius 1): the grid bound is always zero
	// and must be harmless.
	rng := rand.New(rand.NewSource(81))
	data := gauss2D(rng, 800)
	cfg := testConfig()
	cfg.Kernel = KernelEpanechnikov
	c, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !c.TrainStats().GridEnabled {
		t.Fatal("grid should still be built")
	}
	if _, err := c.Classify([]float64{0, 0}); err != nil {
		t.Fatal(err)
	}
	if c.Stats().GridHits != 0 {
		t.Fatal("epanechnikov grid bound can never certify beyond one cell diagonal")
	}
}

func TestConfigNormalizedFillsDefaults(t *testing.T) {
	cfg := Config{P: 0.5, Epsilon: 0.1, Delta: 0.1, BandwidthFactor: 2}
	n := cfg.normalized()
	if n.MaxGridDim != 4 || n.R0 != 200 || n.S0 != 20000 {
		t.Fatalf("defaults not filled: %+v", n)
	}
	if n.HBackoff != 4 || n.HBuffer != 1.5 || n.HGrowth != 4 {
		t.Fatalf("bootstrap defaults not filled: %+v", n)
	}
	// Explicit values survive.
	if n.P != 0.5 || n.BandwidthFactor != 2 {
		t.Fatalf("explicit values overwritten: %+v", n)
	}
}

func TestCountersKernels(t *testing.T) {
	c := Counters{PointKernels: 7, BoundKernels: 5}
	if c.Kernels() != 12 {
		t.Fatalf("Kernels = %d, want 12", c.Kernels())
	}
}
