package core

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"tkdc/internal/estimator"
	"tkdc/internal/points"
)

// modelSnapshot is the serialized form of a trained classifier. The
// spatial index and grid are rebuilt deterministically from the data on
// load (they are pure functions of data + config), so only the training
// outcome — the threshold and its bounds — needs to persist alongside the
// data. Loading therefore skips the expensive phases of Train entirely.
//
// Format v3 records the resolved density backend tag and the sampling
// backend's parameters alongside the v2 layout, so a loaded replica runs
// the same engine the model was trained with even if the auto-selection
// policy changes between releases. Format v2 stores the dataset as one
// contiguous row-major buffer (Flat + Dim), matching the in-memory
// points.Store layout; format v1 stored a slice of rows (Data). Save
// always writes v3; Load decodes all three. Gob matches fields by name,
// so one struct covers every version.
type modelSnapshot struct {
	Version   int
	Config    Config
	Data      [][]float64 // v1 layout; nil in v2+ snapshots
	Flat      []float64   // v2+ layout: row-major buffer …
	Dim       int         // … with this row width
	Threshold float64
	TLow      float64
	THigh     float64
	Train     TrainStats
	// Backend is the resolved backend tag (v3; empty in v1/v2, which
	// predate backends and always resolve to the tree).
	Backend string
	// Sampler records the sampling backend's tuning parameters at save
	// time (v3). They are currently package constants — persisted so a
	// future release that makes them configurable can honor old
	// snapshots, and so operators can audit what an artifact ran with.
	Sampler samplerParams
}

// samplerParams is the persisted tuning of the sampling backend.
type samplerParams struct {
	NearCut                float64
	MinSamples, MaxSamples int
}

// modelVersion identifies the current snapshot format: 3 = flat buffer
// plus backend tag.
const modelVersion = 3

// Save serializes the trained classifier (including its training data —
// a KDE *is* its data) so a later Load can serve queries without
// retraining. The format is Go-specific (encoding/gob) and versioned;
// the dataset is written as the flat row-major buffer of format v2.
func (c *Classifier) Save(w io.Writer) error {
	cfg := c.cfg
	// The recorder is live runtime wiring, not model state: drop it so
	// gob never sees a non-nil interface (which it cannot encode without
	// registration). Load-ed models start with telemetry off; reattach
	// with SetRecorder.
	cfg.Recorder = nil
	snap := modelSnapshot{
		Version:   modelVersion,
		Config:    cfg,
		Flat:      c.data.Data,
		Dim:       c.data.Dim,
		Threshold: c.threshold,
		TLow:      c.tLow,
		THigh:     c.tHigh,
		Train:     c.train,
		Backend:   c.backend,
		Sampler: samplerParams{
			NearCut:    estimator.DefaultNearCut,
			MinSamples: estimator.DefaultMinSamples,
			MaxSamples: estimator.DefaultMaxSamples,
		},
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("core: save model: %w", err)
	}
	return nil
}

// SaveFile atomically persists the classifier to path: the snapshot is
// written to path+".tmp", fsynced, renamed over path, and the containing
// directory fsynced, so a crash mid-save can never leave a truncated or
// half-written model file where a good one used to be. This is the
// helper behind the CLI's -save and the streaming lifecycle's per-swap
// snapshots; concurrent SaveFile calls on the same path are not safe
// (they share the temp name).
func (c *Classifier) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("core: save model: %w", err)
	}
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := c.Save(f); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("core: save model: sync: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: save model: close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: save model: %w", err)
	}
	// Fsync the directory so the rename itself survives a crash. Best
	// effort: some filesystems reject directory syncs.
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// Load reconstructs a classifier saved with Save: the k-d tree and grid
// are rebuilt from the stored data, and the persisted threshold is used
// directly, skipping the bootstrap and the full-dataset density pass.
// All snapshot formats are accepted: v3 (flat buffer + backend tag),
// v2 (flat buffer), and the legacy v1 (slice of rows), which is
// converted to flat storage on the way in. A v3 snapshot's recorded
// backend pins the loaded model's engine — an auto-selection policy
// change between releases cannot silently flip a serving replica.
func Load(r io.Reader) (*Classifier, error) {
	var snap modelSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: load model: %w", err)
	}
	var store *points.Store
	switch snap.Version {
	case 1:
		if len(snap.Data) == 0 {
			return nil, errors.New("core: model contains no data")
		}
		s, err := points.FromRows(snap.Data)
		if err != nil {
			return nil, fmt.Errorf("core: load model: %w", err)
		}
		store = s
	case 2, 3:
		if len(snap.Flat) == 0 {
			return nil, errors.New("core: model contains no data")
		}
		s, err := points.FromFlat(snap.Flat, snap.Dim)
		if err != nil {
			return nil, fmt.Errorf("core: load model: %w", err)
		}
		store = s
	default:
		return nil, fmt.Errorf("core: unsupported model version %d (want 1 to %d)", snap.Version, modelVersion)
	}
	if math.IsNaN(snap.Threshold) {
		return nil, errors.New("core: model threshold is NaN")
	}
	cfg := snap.Config.normalized()
	if snap.Backend != "" {
		cfg.Backend = snap.Backend
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := store.CheckFinite(); err != nil {
		return nil, fmt.Errorf("core: load model: %w", err)
	}

	c, err := assemble(store, cfg)
	if err != nil {
		return nil, err
	}
	c.tLow = snap.TLow
	c.tHigh = snap.THigh
	c.threshold = snap.Threshold
	c.train = snap.Train
	return c, nil
}
