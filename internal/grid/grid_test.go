package grid

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"tkdc/internal/kernel"
	"tkdc/internal/points"
)

func storeOf(tb testing.TB, rows [][]float64) *points.Store {
	tb.Helper()
	s, err := points.FromRows(rows)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	pts := storeOf(t, [][]float64{{1, 2}})
	if _, err := New(nil, []float64{1}); err == nil {
		t.Fatal("empty points should error")
	}
	if _, err := New(pts, nil); err == nil {
		t.Fatal("empty widths should error")
	}
	if _, err := New(pts, []float64{1, 0}); err == nil {
		t.Fatal("zero width should error")
	}
	if _, err := New(pts, []float64{1, math.NaN()}); err == nil {
		t.Fatal("NaN width should error")
	}
	if _, err := New(pts, []float64{1}); err == nil {
		t.Fatal("dimension mismatch should error")
	}
}

func TestCountBasics(t *testing.T) {
	pts := storeOf(t, [][]float64{
		{0.1, 0.1}, {0.9, 0.9}, // cell (0,0)
		{1.5, 0.5},   // cell (1,0)
		{-0.5, -0.5}, // cell (-1,-1)
	})
	g, err := New(pts, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Count([]float64{0.5, 0.5}); got != 2 {
		t.Fatalf("cell (0,0) count = %d, want 2", got)
	}
	if got := g.Count([]float64{1.2, 0.8}); got != 1 {
		t.Fatalf("cell (1,0) count = %d, want 1", got)
	}
	if got := g.Count([]float64{-0.1, -0.9}); got != 1 {
		t.Fatalf("cell (-1,-1) count = %d, want 1", got)
	}
	if got := g.Count([]float64{100, 100}); got != 0 {
		t.Fatalf("empty cell count = %d, want 0", got)
	}
	if g.N() != 4 || g.Dim() != 2 || g.Cells() != 3 {
		t.Fatalf("N=%d Dim=%d Cells=%d, want 4/2/3", g.N(), g.Dim(), g.Cells())
	}
}

func TestNegativeCoordinateCells(t *testing.T) {
	// floor semantics: -0.5 with width 1 lands in cell -1, not 0.
	g, err := New(storeOf(t, [][]float64{{-0.5}}), []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Count([]float64{-0.01}); got != 1 {
		t.Fatalf("cell -1 count = %d, want 1", got)
	}
	if got := g.Count([]float64{0.01}); got != 0 {
		t.Fatalf("cell 0 count = %d, want 0", got)
	}
}

func TestDiagSqScaledEqualsDimWhenWidthsAreBandwidths(t *testing.T) {
	h := []float64{0.3, 2.5, 7}
	k, err := kernel.NewGaussian(h)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(storeOf(t, [][]float64{{0, 0, 0}}), h)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.DiagSqScaled(k.InvBandwidthsSq()); math.Abs(got-3) > 1e-12 {
		t.Fatalf("DiagSqScaled = %v, want 3 (= d)", got)
	}
}

// Property: the grid's density bound is a true lower bound on the exact
// kernel density for random data and queries.
func TestLowerBoundDensityIsLowerBound(t *testing.T) {
	h := []float64{0.5, 0.5}
	k, err := kernel.NewGaussian(h)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(500)
		pts := points.New(n, 2)
		for i := range pts.Data {
			pts.Data[i] = rng.NormFloat64()
		}
		g, err := New(pts, h)
		if err != nil {
			return false
		}
		kDiag := k.FromScaledSqDist(g.DiagSqScaled(k.InvBandwidthsSq()))
		for trial := 0; trial < 10; trial++ {
			q := []float64{rng.NormFloat64(), rng.NormFloat64()}
			exact := 0.0
			for i := 0; i < n; i++ {
				exact += kernel.At(k, q, pts.Row(i))
			}
			exact /= float64(n)
			if g.LowerBoundDensity(q, kDiag) > exact+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDenseClusterTriggersBound(t *testing.T) {
	// 1000 points in one tight cluster: the grid bound at the cluster
	// center must be strongly positive.
	rng := rand.New(rand.NewSource(9))
	pts := points.New(1000, 2)
	for i := range pts.Data {
		// Centered inside cell (0,0) so the whole cluster shares one cell.
		pts.Data[i] = 0.5 + rng.NormFloat64()*0.01
	}
	h := []float64{1, 1}
	k, _ := kernel.NewGaussian(h)
	g, err := New(pts, h)
	if err != nil {
		t.Fatal(err)
	}
	kDiag := k.FromScaledSqDist(g.DiagSqScaled(k.InvBandwidthsSq()))
	lb := g.LowerBoundDensity([]float64{0.5, 0.5}, kDiag)
	// Nearly all mass within the cell: bound ≈ K(d_diag) ≈ norm·e^{-1}.
	if lb < 0.9*k.AtZero()*math.Exp(-1) {
		t.Fatalf("cluster lower bound = %v, too weak", lb)
	}
}

func BenchmarkGridBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	pts := points.New(100_000, 2)
	for i := range pts.Data {
		pts.Data[i] = rng.NormFloat64()
	}
	h := []float64{0.05, 0.05}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(pts, h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGridCount(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	pts := points.New(100_000, 2)
	for i := range pts.Data {
		pts.Data[i] = rng.NormFloat64()
	}
	g, err := New(pts, []float64{0.05, 0.05})
	if err != nil {
		b.Fatal(err)
	}
	q := []float64{0.1, -0.2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Count(q)
	}
}

// TestObserveCounters checks the telemetry lookup counters: they start
// at zero, tally hits and misses independently, and are safe to bump
// from concurrent queries.
func TestObserveCounters(t *testing.T) {
	pts := storeOf(t, [][]float64{{0.5, 0.5}})
	g, err := New(pts, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if h, m := g.Counters(); h != 0 || m != 0 {
		t.Fatalf("fresh grid counters = (%d, %d), want (0, 0)", h, m)
	}
	g.Observe(true)
	g.Observe(true)
	g.Observe(false)
	if h, m := g.Counters(); h != 2 || m != 1 {
		t.Fatalf("counters = (%d, %d), want (2, 1)", h, m)
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Observe(i%2 == 0)
			}
		}()
	}
	wg.Wait()
	if h, m := g.Counters(); h != 2+4*500 || m != 1+4*500 {
		t.Fatalf("concurrent counters = (%d, %d), want (%d, %d)", h, m, 2+4*500, 1+4*500)
	}
}

// TestNewWorkersMatchesSequential checks the parallel fill produces the
// exact same cell-count map as the sequential one across worker counts
// — including counts above the chunk boundaries (duplicate-heavy rows).
func TestNewWorkersMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{1, 3, 100, 2377} {
		for _, d := range []int{1, 2, 3} {
			pts := points.New(n, d)
			for i := range pts.Data {
				// Discretized draws so many rows share cells across chunks.
				pts.Data[i] = float64(rng.Intn(6)) * 0.7
			}
			widths := make([]float64, d)
			for j := range widths {
				widths[j] = 0.5 + rng.Float64()
			}
			ref, err := New(pts, widths)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{2, 4, 7} {
				g, err := NewWorkers(pts, widths, w)
				if err != nil {
					t.Fatalf("NewWorkers(n=%d d=%d w=%d): %v", n, d, w, err)
				}
				if len(g.counts) != len(ref.counts) {
					t.Fatalf("n=%d d=%d w=%d: %d cells, sequential %d", n, d, w, len(g.counts), len(ref.counts))
				}
				for k, v := range ref.counts {
					if g.counts[k] != v {
						t.Fatalf("n=%d d=%d w=%d: cell count %d, sequential %d", n, d, w, g.counts[k], v)
					}
				}
			}
		}
	}
}
