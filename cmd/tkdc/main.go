// Command tkdc trains a thresholded kernel density classifier on a CSV
// dataset and classifies query points, printing one label per query row.
//
// Usage:
//
//	tkdc -train data.csv                      # classify the training rows
//	tkdc -train data.csv -query probes.csv    # classify separate queries
//	tkdc -train data.csv -p 0.05 -density     # also print density bounds
//	tkdc -train data.csv -save model.tkdc     # persist the trained model
//	tkdc -load model.tkdc -query probes.csv   # serve queries, no retraining
//	tkdc -train data.csv -stats               # post-run telemetry summary
//	tkdc -train data.csv -stats -trace-slow 1ms
//	                                          # flight-record queries, log slow ones
//	tkdc -train data.csv -serve :8080         # HTTP serving mode
//	tkdc -train data.csv -serve :8080 -stream -retrain-every 10000
//	                                          # streaming ingest + retrains
//	tkdc -follow http://leader:8080 -serve :8081
//	                                          # stateless serving replica
//
// Output is CSV: label[,lower,upper] per query row, preceded by a summary
// of the trained model on stderr. With -stats, a telemetry report (train
// phase spans, query latency percentiles, kernels per query) follows on
// stderr. With -trace-slow, every query leaves a flight record — a
// per-stage trace of the work it did — retained for the slowest and most
// recent queries plus every threshold-straddler; queries at least that
// slow are additionally logged as they happen, and the recorder's summary
// joins the -stats report (or GET /debug/queries under -serve). With
// -serve, no batch classification happens; instead the process serves
// POST /classify (CSV or JSON rows) plus /metrics, /healthz,
// /debug/queries, and /debug/pprof/* until interrupted. Adding -stream also
// accepts POST /ingest into a bounded sample and retrains in the
// background (-retrain-every rows, -max-model-age, -drift-tolerance),
// hot-swapping the model without interrupting queries; -window trades
// the uniform reservoir for a sliding window over the newest -sample
// rows, -ingest-shards lock-stripes ingest over independent reservoirs
// (merged deterministically at retrain; 0 = one per core) so ingest
// throughput scales past one core, and -save doubles as the path for
// atomic model snapshots after each swap.
//
// With -follow URL the process is a stateless serving replica: it
// bootstraps its model from the leader's GET /snapshot, polls every
// -poll-every (jittered, with exponential backoff on faults), verifies
// each snapshot's checksum, and hot-swaps generations without blocking
// queries. A replica keeps serving its last good model through leader
// outages; with -stale-after set, /healthz flips to 503 once it has gone
// that long without a successful sync so load balancers drain it. Every
// serving process — leader or replica — exposes GET /snapshot and
// /snapshot/meta, so replicas can fan out behind replicas.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"tkdc"
	"tkdc/internal/dataset"
	"tkdc/internal/fleet"
	"tkdc/internal/server"
	"tkdc/internal/telemetry"
)

func main() {
	var (
		trainPath = flag.String("train", "", "training CSV (required unless -load)")
		loadPath  = flag.String("load", "", "load a model saved with -save instead of training")
		savePath  = flag.String("save", "", "save the trained model to this path")
		queryPath = flag.String("query", "", "query CSV (default: classify the training rows)")
		p         = flag.Float64("p", 0.01, "quantile classification rate p")
		eps       = flag.Float64("epsilon", 0.01, "multiplicative classification error")
		delta     = flag.Float64("delta", 0.01, "threshold bound failure probability")
		bw        = flag.Float64("b", 1, "bandwidth scale factor (Scott's rule multiplier)")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "training and classification goroutines (models are bit-identical at any count)")
		backend   = flag.String("backend", tkdc.BackendAuto, "density backend: auto (tree for d<=8, sampling above), tree, or sampling")
		seed      = flag.Int64("seed", 42, "training seed")
		density   = flag.Bool("density", false, "print density bounds alongside labels")
		stats     = flag.Bool("stats", false, "print a post-run telemetry summary to stderr")
		serve     = flag.String("serve", "", "serve HTTP on this address (e.g. :8080) instead of batch-classifying")

		batchWindow = flag.Duration("batch-window", 0, "with -serve: coalesce concurrent /classify rows for up to this long and answer them in one batch pass (0 disables coalescing; try 500us-2ms under concurrent load)")
		batchMax    = flag.Int("batch-max", server.DefaultBatchMaxRows, "with -serve: flush a coalescing batch once it holds this many rows")
		traceSlow   = flag.Duration("trace-slow", 0, "record per-query flight traces (GET /debug/queries, -stats summary) and log queries at least this slow (0 traces without slow-logging)")

		streamMode   = flag.Bool("stream", false, "with -serve: accept POST /ingest and retrain in the background")
		retrainEvery = flag.Int64("retrain-every", 0, "with -stream: retrain after this many newly ingested rows (0 disables)")
		maxModelAge  = flag.Duration("max-model-age", 0, "with -stream: retrain when the model is older than this and new rows arrived (0 disables)")
		driftTol     = flag.Float64("drift-tolerance", 0, "with -stream: retrain when a threshold probe drifts past this relative fraction (0 disables)")
		window       = flag.Bool("window", false, "with -stream: keep a sliding window of the newest -sample rows instead of a uniform reservoir")
		sampleCap    = flag.Int("sample", 100_000, "with -stream: bounded in-memory sample capacity in rows")
		ingestShards = flag.Int("ingest-shards", 1, "with -stream: lock-stripe ingest over this many independent reservoirs, merged deterministically at retrain (1 = single lock, bit-identical to prior releases; 0 = one per core; memory scales as shards x -sample)")

		follow     = flag.String("follow", "", "replicate a leader: poll URL/snapshot and hot-swap generations (requires -serve; excludes -train/-load/-stream)")
		pollEvery  = flag.Duration("poll-every", 2*time.Second, "with -follow: steady-state snapshot poll interval (jittered; backs off exponentially on failures)")
		staleAfter = flag.Duration("stale-after", 0, "with -follow: answer 503 on /healthz after this long without a successful leader sync (0 disables)")
	)
	flag.Parse()
	if err := validateFlags(*trainPath, *loadPath, *follow, *serve, *streamMode); err != nil {
		fmt.Fprintln(os.Stderr, "tkdc:", err)
		os.Exit(2)
	}
	if err := validateBackend(*backend); err != nil {
		fmt.Fprintln(os.Stderr, "tkdc:", err)
		os.Exit(2)
	}
	if err := validateBatch(*batchWindow, *batchMax); err != nil {
		fmt.Fprintln(os.Stderr, "tkdc:", err)
		os.Exit(2)
	}
	if err := validateShards(*ingestShards); err != nil {
		fmt.Fprintln(os.Stderr, "tkdc:", err)
		os.Exit(2)
	}
	batchOpts := server.BatchOptions{Window: *batchWindow, MaxRows: *batchMax}

	// The slow-log threshold of 0 is meaningful (trace everything, log
	// nothing), so flag presence — not value — turns the recorder on.
	traceSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "trace-slow" {
			traceSet = true
		}
	})

	// -stats and -serve both record into the process-wide registry, so
	// tkdc.Metrics() and the /metrics endpoint see the same stream.
	var reg *telemetry.Registry
	if *stats || *serve != "" || traceSet {
		reg = telemetry.Default
	}
	var flight *telemetry.FlightRecorder
	if traceSet {
		flight = telemetry.NewFlightRecorder(telemetry.FlightOptions{
			SlowThreshold: *traceSlow,
			Logger:        slog.New(slog.NewTextHandler(os.Stderr, nil)),
		})
		reg.AttachFlightRecorder(flight)
	}

	if *follow != "" {
		runFollower(*follow, *serve, fleetOptions{
			pollEvery:  *pollEvery,
			staleAfter: *staleAfter,
			workers:    *workers,
			seed:       *seed,
		}, reg, flight, batchOpts)
		return
	}

	var clf *tkdc.Classifier
	var queries [][]float64
	if *loadPath != "" {
		var err error
		clf, err = tkdc.LoadFile(*loadPath)
		if err != nil {
			fail(err)
		}
		if reg != nil {
			clf.SetRecorder(reg)
		}
		// The snapshot carries the training machine's Workers; serve with
		// this host's budget instead (also inherited by -stream retrains).
		clf.SetWorkers(*workers)
		if *queryPath == "" && *serve == "" {
			fmt.Fprintln(os.Stderr, "tkdc: -load requires -query or -serve")
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "tkdc: loaded model (n=%d d=%d, threshold %.6g, backend %s)\n",
			clf.N(), clf.Dim(), clf.Threshold(), clf.Backend())
	} else {
		data, err := readCSVFile(*trainPath)
		if err != nil {
			fail(err)
		}
		queries = data

		cfg := tkdc.DefaultConfig()
		cfg.P = *p
		cfg.Epsilon = *eps
		cfg.Delta = *delta
		cfg.BandwidthFactor = *bw
		cfg.Workers = *workers
		cfg.Backend = *backend
		cfg.Seed = *seed
		if reg != nil {
			cfg.Recorder = reg
		}

		clf, err = tkdc.Train(data, cfg)
		if err != nil {
			fail(err)
		}
		ts := clf.TrainStats()
		fmt.Fprintf(os.Stderr, "tkdc: trained on n=%d d=%d; threshold t(p=%g)=%.6g in [%.6g, %.6g]; %d bootstrap rounds; %d workers; %s backend\n",
			ts.N, ts.Dim, *p, ts.Threshold, ts.ThresholdLow, ts.ThresholdHigh, ts.BootstrapRounds, ts.Workers, clf.Backend())
		if *savePath != "" {
			if err := clf.SaveFile(*savePath); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "tkdc: model saved to %s\n", *savePath)
		}
	}

	if *serve != "" {
		var svc *tkdc.StreamService
		var pub *fleet.Publisher
		if *streamMode {
			var err error
			svc, err = tkdc.NewStreamService(clf, tkdc.StreamConfig{
				Capacity:       *sampleCap,
				Window:         *window,
				Seed:           *seed,
				Shards:         resolveShards(*ingestShards),
				RetrainEvery:   *retrainEvery,
				MaxModelAge:    *maxModelAge,
				DriftTolerance: *driftTol,
				SnapshotPath:   *savePath,
				Prefill:        true,
				Recorder:       reg,
				// Re-encode the replication snapshot in the retrain
				// goroutine so follower fetches after a swap hit the cache.
				OnSwap: func(uint64) {
					if pub != nil {
						pub.Refresh()
					}
				},
			})
			if err != nil {
				fail(err)
			}
			pub = fleet.NewPublisher(svc.Model())
			svc.Start() // after pub: the hook must see the assignment
		}
		runServer(clf, reg, flight, *serve, svc, pub, batchOpts)
		if svc != nil {
			if err := svc.Close(); err != nil {
				fail(err)
			}
		}
		return
	}

	if *queryPath != "" {
		var err error
		queries, err = readCSVFile(*queryPath)
		if err != nil {
			fail(err)
		}
	}

	w := bufio.NewWriter(os.Stdout)
	for i, q := range queries {
		if *density {
			r, err := clf.Score(q)
			if err != nil {
				fail(fmt.Errorf("query %d: %w", i, err))
			}
			fmt.Fprintf(w, "%s,%g,%g\n", r.Label, r.Lower, r.Upper)
			continue
		}
		label, err := clf.Classify(q)
		if err != nil {
			fail(fmt.Errorf("query %d: %w", i, err))
		}
		fmt.Fprintln(w, label)
	}
	w.Flush()

	if *stats {
		fmt.Fprintf(os.Stderr, "tkdc: telemetry (backend %s)\n%s", clf.Backend(), indent(clf.Snapshot().String()))
		if flight != nil {
			fmt.Fprintf(os.Stderr, "tkdc: flight recorder\n%s", indent(flight.Snapshot().String()))
		}
	}
}

// runServer blocks serving HTTP until SIGINT/SIGTERM, then shuts down
// gracefully. With a non-nil streaming service, the handlers serve its
// live model and accept ingest; the caller owns the service lifecycle.
func runServer(clf *tkdc.Classifier, reg *telemetry.Registry, flight *telemetry.FlightRecorder, addr string, svc *tkdc.StreamService, pub *fleet.Publisher, batch server.BatchOptions) {
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	serveLoop(addr, logger, server.Options{Registry: reg, Logger: logger, Stream: svc, Flight: flight, Publisher: pub, Batch: batch}, clf,
		slog.Bool("stream", svc != nil))
}

// fleetOptions carries the -follow tuning from main to runFollower.
type fleetOptions struct {
	pollEvery  time.Duration
	staleAfter time.Duration
	workers    int
	seed       int64
}

// runFollower is the -follow serving mode: bootstrap-sync a replica from
// the leader (retrying until the first snapshot lands or the process is
// interrupted), then serve it while the background poll loop hot-swaps
// generations underneath the handlers.
func runFollower(leaderURL, addr string, fo fleetOptions, reg *telemetry.Registry, flight *telemetry.FlightRecorder, batch server.BatchOptions) {
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	cfg := fleet.FollowerConfig{
		URL:        leaderURL,
		PollEvery:  fo.pollEvery,
		StaleAfter: fo.staleAfter,
		Workers:    fo.workers,
		Logger:     logger,
		Seed:       fo.seed,
	}
	if reg != nil {
		cfg.Recorder = reg
	}
	f, err := fleet.NewFollower(cfg)
	if err != nil {
		fail(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger.Info("fleet: syncing from leader", slog.String("leader", leaderURL))
	if err := f.Sync(ctx); err != nil {
		fail(err)
	}
	f.Start()
	defer f.Close()

	clf := f.Model().Current()
	serveLoop(addr, logger, server.Options{Registry: reg, Logger: logger, Flight: flight, Follower: f, Batch: batch}, clf,
		slog.String("role", "follower"), slog.String("leader", leaderURL))
}

// serveLoop is the shared HTTP serving loop behind -serve and -follow:
// build the handler, listen, and shut down gracefully on SIGINT/SIGTERM.
func serveLoop(addr string, logger *slog.Logger, opts server.Options, clf *tkdc.Classifier, extra ...slog.Attr) {
	handler := server.New(clf, opts)
	srv := newHTTPServer(addr, handler)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	fields := []any{
		slog.String("addr", addr),
		slog.Int("n", clf.N()),
		slog.Int("dim", clf.Dim()),
		slog.Float64("threshold", clf.Threshold()),
	}
	for _, a := range extra {
		fields = append(fields, a)
	}
	logger.Info("serving", fields...)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fail(err)
	}
	// Shutdown has drained in-flight requests; flush any batch still
	// coalescing so its waiters get answers before the process exits.
	handler.Close()
	logger.Info("shut down")
}

// newHTTPServer wraps the handler in an http.Server with serving
// timeouts: a header deadline against slowloris clients, a bound on
// reading request bodies, and keep-alive reaping. WriteTimeout stays
// zero because /debug/pprof/profile and /debug/pprof/trace stream their
// responses for a caller-chosen duration.
func newHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

// validateFlags rejects incoherent mode combinations right after flag
// parsing, before any CSV is read, a model is trained, or a socket is
// opened — mirroring validateBackend's fail-fast contract. The modes:
//
//   - batch / serve: exactly one of -train or -load supplies the model
//   - follower: -follow supplies the model over the network and needs
//     -serve; it excludes -train, -load, and -stream (a replica is
//     stateless — it neither trains nor ingests)
//   - streaming: -stream needs a trained/loaded model and -serve
func validateFlags(train, load, follow, serve string, streamMode bool) error {
	if follow != "" {
		var conflicts []string
		if train != "" {
			conflicts = append(conflicts, "-train")
		}
		if load != "" {
			conflicts = append(conflicts, "-load")
		}
		if streamMode {
			conflicts = append(conflicts, "-stream")
		}
		if len(conflicts) > 0 {
			return fmt.Errorf("-follow replicates its model from the leader and cannot be combined with %s (a follower is stateless: it neither trains nor ingests)",
				strings.Join(conflicts, ", "))
		}
		if serve == "" {
			return errors.New("-follow requires -serve (a follower exists to serve queries)")
		}
		return nil
	}
	if (train == "") == (load == "") {
		return errors.New("exactly one of -train or -load is required (or -follow URL to replicate a leader)")
	}
	if streamMode && serve == "" {
		return errors.New("-stream requires -serve (ingest arrives over POST /ingest)")
	}
	return nil
}

// validateShards bounds -ingest-shards: 0 (auto) and 1..64 are valid;
// each shard holds a full -sample buffer, so counts past 64 buy no
// parallelism and multiply memory.
func validateShards(shards int) error {
	if shards < 0 {
		return fmt.Errorf("-ingest-shards must be >= 0 (got %d; 0 means one per core)", shards)
	}
	if shards > 64 {
		return fmt.Errorf("-ingest-shards %d is past the sanity cap of 64 (each shard holds a full -sample buffer; more shards than cores buys nothing)", shards)
	}
	return nil
}

// resolveShards maps the -ingest-shards flag to a stream.Config.Shards
// value: 0 (auto) becomes one shard per core, explicit counts pass
// through. The mapping lives here — not in stream.Config, whose zero
// value stays at one shard — so only operators who opt in get sharding.
func resolveShards(shards int) int {
	if shards == 0 {
		return tkdc.DefaultIngestShards()
	}
	return shards
}

// validateBatch bounds the batch-engine tuning: the coalescing window
// is pure added latency for the first row of every batch, so values
// past 100ms are almost certainly a units mistake (-batch-window 2
// means 2ns, not 2ms; write 2ms).
func validateBatch(window time.Duration, maxRows int) error {
	if window < 0 {
		return fmt.Errorf("-batch-window must be >= 0 (got %v)", window)
	}
	if window > 100*time.Millisecond {
		return fmt.Errorf("-batch-window %v is past the 100ms sanity cap (every /classify pays it as queueing latency; typical values are 0-2ms)", window)
	}
	if maxRows < 1 {
		return fmt.Errorf("-batch-max must be >= 1 (got %d)", maxRows)
	}
	return nil
}

// validateBackend fails fast on an unknown -backend value, before any
// CSV is read or training starts, listing the valid names.
func validateBackend(name string) error {
	for _, b := range tkdc.Backends() {
		if name == b {
			return nil
		}
	}
	return fmt.Errorf("unknown -backend %q (valid: %s)", name, strings.Join(tkdc.Backends(), ", "))
}

// indent prefixes every line for the stderr telemetry block.
func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "  " + strings.Join(lines, "\n  ") + "\n"
}

func readCSVFile(path string) ([][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadCSV(f)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tkdc:", err)
	os.Exit(1)
}
