package core

import (
	"math"
	"math/rand"
	"testing"

	"tkdc/internal/kernel"
)

// TestDualTreeMatchesPerQuery: dual-tree labels must agree with Score's
// labels for every point whose exact density is outside the ε band.
func TestDualTreeMatchesPerQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	data := gauss2D(rng, 3000)
	cfg := testConfig()
	c, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([][]float64, 2000)
	for i := range queries {
		queries[i] = []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
	}
	dual, err := c.ClassifyAllDualTree(queries)
	if err != nil {
		t.Fatal(err)
	}

	pts := mustStore(data)
	h, _ := kernel.ScottBandwidths(pts, 1)
	kern, _ := kernel.NewGaussian(h)
	band := 2 * cfg.Epsilon * c.Threshold()
	for i, q := range queries {
		f := exactDensity(pts, kern, q)
		if math.Abs(f-c.Threshold()) <= band {
			continue
		}
		want := Low
		if f > c.Threshold() {
			want = High
		}
		if dual[i] != want {
			t.Fatalf("query %d (%v, density %g): dual-tree %v, want %v (threshold %g)",
				i, q, f, dual[i], want, c.Threshold())
		}
	}
}

// TestDualTreeGridEvaluation: on a dense evaluation grid — the Figure 1/2
// rendering workload — dual-tree classification must agree with
// per-query classification and certify most cells in groups.
func TestDualTreeGridEvaluation(t *testing.T) {
	skipUnlessTreeEfficiency(t)
	rng := rand.New(rand.NewSource(61))
	data := gauss2D(rng, 4000)
	cfg := testConfig()
	cfg.DisableGrid = true // make savings attributable to grouping
	c, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var queries [][]float64
	for x := -10.0; x <= 10; x += 0.1 {
		for y := -10.0; y <= 10; y += 0.1 {
			queries = append(queries, []float64{x, y})
		}
	}
	before := c.Stats()
	dual, err := c.ClassifyAllDualTree(queries)
	if err != nil {
		t.Fatal(err)
	}
	dualKernels := c.Stats().Kernels() - before.Kernels()

	single := make([]Label, len(queries))
	before = c.Stats()
	for i, q := range queries {
		r, err := c.Score(q)
		if err != nil {
			t.Fatal(err)
		}
		single[i] = r.Label
	}
	singleKernels := c.Stats().Kernels() - before.Kernels()

	disagreements := 0
	for i := range queries {
		if dual[i] != single[i] {
			disagreements++
		}
	}
	// Disagreements are only legitimate inside the ε band — a thin
	// contour of the evaluation grid.
	if disagreements > len(queries)/50 {
		t.Fatalf("%d of %d grid cells disagree between dual-tree and per-query", disagreements, len(queries))
	}
	// Group certification should remove a solid fraction of the kernel
	// work (the near-contour queries are irreducible, which caps the
	// gain; see the ClassifyAllDualTree doc comment).
	if float64(dualKernels)*1.15 > float64(singleKernels) {
		t.Fatalf("dual-tree saved too little: %d vs %d kernel evaluations", dualKernels, singleKernels)
	}
}

func TestDualTreeEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	data := gauss2D(rng, 800)
	c, err := Train(data, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Empty batch.
	out, err := c.ClassifyAllDualTree(nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v, %v", out, err)
	}
	// Single query.
	out, err = c.ClassifyAllDualTree([][]float64{{0, 0}})
	if err != nil || len(out) != 1 || out[0] != High {
		t.Fatalf("single query: %v, %v", out, err)
	}
	// All-identical queries exercise the zero-extent split path.
	same := make([][]float64, 100)
	for i := range same {
		same[i] = []float64{30, 30}
	}
	out, err = c.ClassifyAllDualTree(same)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range out {
		if l != Low {
			t.Fatalf("identical far queries: got %v, want LOW", l)
		}
	}
	// Validation.
	if _, err := c.ClassifyAllDualTree([][]float64{{1}}); err == nil {
		t.Fatal("dimension mismatch should error")
	}
	if _, err := c.ClassifyAllDualTree([][]float64{{math.NaN(), 0}}); err == nil {
		t.Fatal("NaN query should error")
	}
}

func TestDualTreeCountsQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	data := gauss2D(rng, 600)
	c, err := Train(data, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	queries := make([][]float64, 250)
	for i := range queries {
		queries[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	if _, err := c.ClassifyAllDualTree(queries); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Queries; got != 250 {
		t.Fatalf("Queries = %d, want 250", got)
	}
}
