package kernel

import (
	"errors"
	"fmt"
	"math"

	"tkdc/internal/points"
	"tkdc/internal/stats"
)

// ScottBandwidths computes per-dimension bandwidths by Scott's rule
// (Equation 4 of the paper):
//
//	h_i = b · n^{−1/(d+4)} · σ_i
//
// where σ_i is the population standard deviation of column i and b is a
// user-supplied scale factor (b = 1 by default in the paper, 3 for the
// PCA-reduced mnist runs).
//
// Columns with zero standard deviation (constant columns) carry no density
// information; their bandwidth is set to b·n^{−1/(d+4)} (σ replaced by 1)
// so the kernel stays finite and normalizable.
func ScottBandwidths(pts *points.Store, b float64) ([]float64, error) {
	if pts.Len() == 0 {
		return nil, errors.New("kernel: Scott bandwidth of empty dataset")
	}
	if b <= 0 {
		return nil, fmt.Errorf("kernel: bandwidth factor b = %v must be positive", b)
	}
	d := pts.Dim
	sigmas := stats.ColumnStdDevsFlat(pts.Data, d)
	factor := b * scottFactor(pts.Len(), d)
	h := make([]float64, d)
	for i, s := range sigmas {
		if s <= 0 {
			s = 1
		}
		h[i] = factor * s
	}
	return h, nil
}

// scottFactor returns n^{−1/(d+4)}.
func scottFactor(n, d int) float64 {
	return math.Pow(float64(n), -1/float64(d+4))
}
