package core

import (
	"math/rand"
	"testing"
)

// TestEstimatorPoolCapsRetainedHeap: one pathological query can grow an
// estimator's refine heap to O(tree nodes); returning that estimator to
// the pool must not pin the oversized backing array for the classifier's
// lifetime. putEstimator drops any heap above maxPooledHeapItems.
func TestEstimatorPoolCapsRetainedHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	clf, err := Train(gauss2D(rng, 300), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	// A modest heap must survive pooling untouched (the reuse the pool
	// exists for). d=2 resolves to the tree backend, so the pooled
	// backends are densityEstimators.
	small := clf.getEstimator().(*densityEstimator)
	small.heap.items = make([]heapItem, 0, maxPooledHeapItems/2)
	clf.putEstimator(small)
	if cap(small.heap.items) != maxPooledHeapItems/2 {
		t.Fatalf("pool dropped a modest heap (cap %d)", cap(small.heap.items))
	}

	// An oversized heap must be released on Put.
	big := clf.getEstimator().(*densityEstimator)
	big.heap.items = make([]heapItem, 0, 4*maxPooledHeapItems)
	clf.putEstimator(big)
	if cap(big.heap.items) != 0 {
		t.Fatalf("pool retained a pathological heap (cap %d, limit %d)",
			cap(big.heap.items), maxPooledHeapItems)
	}
}

// TestEstimatorPoolNotMonotone cycles estimators through pathological
// growth and normal queries: no estimator coming out of the pool may
// ever carry a heap above the cap, so pooled memory cannot ratchet up
// monotonically with the worst query ever served.
func TestEstimatorPoolNotMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	data := gauss2D(rng, 500)
	clf, err := Train(data, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 50; round++ {
		e := clf.getEstimator().(*densityEstimator)
		if cap(e.heap.items) > maxPooledHeapItems {
			t.Fatalf("round %d: pool handed out a heap of cap %d (limit %d)",
				round, cap(e.heap.items), maxPooledHeapItems)
		}
		// Simulate a pathological traversal growing the heap.
		e.heap.items = append(e.heap.items[:0], make([]heapItem, 2*maxPooledHeapItems)...)
		clf.putEstimator(e)
		// Interleave real queries so the pool keeps cycling.
		if _, err := clf.Score(data[round%len(data)]); err != nil {
			t.Fatal(err)
		}
	}
}
