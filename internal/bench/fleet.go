package bench

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"tkdc/internal/core"
	"tkdc/internal/dataset"
	"tkdc/internal/fleet"
	"tkdc/internal/stream"
)

// Fleet measures what the replication subsystem promises: aggregate
// query throughput grows roughly linearly with replica count, because
// replicas answer from local snapshots and never talk to the leader on
// the query path. One leader churns generations (ingest + retrain) the
// whole time; 1, 2, and 4 followers replicate it over real HTTP and are
// each driven by a dedicated reader. A leader-only row anchors the
// single-node baseline.
func Fleet(opts Options) ([]Table, error) {
	opts = opts.normalized()
	n := opts.scaled(100_000, 2000)
	data := dataset.Gauss(n, 2, opts.Seed)
	queries := data
	if len(queries) > opts.MaxQueries {
		queries = queries[:opts.MaxQueries]
	}

	clf, err := core.Train(data, opts.config())
	if err != nil {
		return nil, err
	}
	svc, err := stream.NewService(clf, stream.Config{
		Capacity: n,
		Seed:     opts.Seed,
		Prefill:  true,
	})
	if err != nil {
		return nil, err
	}
	defer svc.Close()

	// The leader's snapshot endpoint, exactly as internal/server mounts it.
	pub := fleet.NewPublisher(svc.Model())
	mux := http.NewServeMux()
	mux.HandleFunc("/snapshot", pub.ServeSnapshot)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	// Churn: drifting ingest plus periodic retrains for the whole run, so
	// every row below is measured against a leader that keeps publishing
	// new generations.
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(2)
	go func() {
		defer churn.Done()
		drift := dataset.Gauss(2048, 2, opts.Seed+1)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
			batch := make([][]float64, 64)
			for j := range batch {
				row := drift[(i*64+j)%len(drift)]
				batch[j] = []float64{row[0] + float64(i)*0.01, row[1]}
			}
			if _, err := svc.Ingest(batch); err != nil {
				return
			}
		}
	}()
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(25 * time.Millisecond):
				if err := svc.Retrain(); err != nil {
					return
				}
			}
		}
	}()
	defer func() {
		close(stop)
		churn.Wait()
	}()

	t := Table{
		Title:   "Replication fleet: aggregate throughput vs replica count (leader churning)",
		Columns: []string{"Replicas", "Aggregate q/s", "Per-replica q/s", "p50 us", "p99 us", "p999 us", "Syncs"},
	}

	// Baseline: one reader on the leader's own handle, no replication.
	leaderModel := svc.Model()
	base, err := measureLatencyFor(queries, fleetMeasureTime, func(q []float64) error {
		_, err := leaderModel.Score(q)
		return err
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("leader only", fmtRate(base.qps), fmtRate(base.qps),
		fmtMicros(base.p50), fmtMicros(base.p99), fmtMicros(base.p999), "-")

	for _, replicas := range []int{1, 2, 4} {
		agg, per, lat, syncs, err := measureFleet(ts.URL, replicas, queries)
		if err != nil {
			return nil, fmt.Errorf("bench: fleet with %d replicas: %w", replicas, err)
		}
		t.AddRow(fmt.Sprintf("%d", replicas), fmtRate(agg), fmtRate(per),
			fmtMicros(lat.p50), fmtMicros(lat.p99), fmtMicros(lat.p999),
			fmtCount(float64(syncs)))
	}

	t.Notes = append(t.Notes,
		"each replica polls the leader over HTTP (50ms interval) and hot-swaps generations while readers query",
		"readers are measured one at a time (replicas share nothing on the query path, so each rate is what",
		"  that replica delivers on its own host); aggregate = sum, linear iff per-replica q/s stays flat",
		"p999 staying flat across rows shows snapshot swaps cost readers nothing (one atomic pointer load)")
	t.Fprint(opts.Out)
	return []Table{t}, nil
}

// measureFleet syncs `replicas` followers against the leader at url,
// drives one reader through each follower's Model, and returns the
// aggregate and per-replica throughput, combined latency quantiles, and
// total snapshot syncs observed.
func measureFleet(url string, replicas int, queries [][]float64) (agg, per float64, lat latencyStats, syncs int64, err error) {
	followers := make([]*fleet.Follower, 0, replicas)
	defer func() {
		for _, f := range followers {
			f.Close()
		}
	}()
	for i := 0; i < replicas; i++ {
		f, ferr := fleet.NewFollower(fleet.FollowerConfig{
			URL:       url,
			PollEvery: 50 * time.Millisecond,
			Seed:      int64(i + 1),
		})
		if ferr != nil {
			return 0, 0, lat, 0, ferr
		}
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		ferr = f.Sync(ctx)
		cancel()
		if ferr != nil {
			return 0, 0, lat, 0, ferr
		}
		f.Start()
		followers = append(followers, f)
	}

	// Each reader is measured in turn while every follower keeps polling
	// and swapping in the background. Replicas share nothing on the query
	// path (each answers from its own loaded snapshot), so one reader's
	// isolated rate is what that replica would deliver on its own host;
	// the aggregate is their sum. Measuring readers concurrently here
	// would only benchmark this machine's core count.
	results := make([]latencyStats, replicas)
	for i, f := range followers {
		m := f.Model()
		results[i], err = measureLatencyFor(queries, fleetMeasureTime, func(q []float64) error {
			_, err := m.Score(q)
			return err
		})
		if err != nil {
			return 0, 0, lat, 0, err
		}
	}

	// Aggregate = sum of per-reader rates. Every reader ran the same query
	// count, so the fleet p50/p99 are the medians across readers; the
	// fleet p999 is the worst reader's (the tail the ISSUE cares about).
	p50s := make([]float64, replicas)
	p99s := make([]float64, replicas)
	p999s := make([]float64, replicas)
	for i, r := range results {
		agg += r.qps
		p50s[i], p99s[i], p999s[i] = r.p50, r.p99, r.p999
	}
	per = agg / float64(replicas)
	lat = latencyStats{p50: median(p50s), p99: median(p99s), p999: maxOf(p999s), qps: agg}
	for _, f := range followers {
		syncs += f.Stats().Applied
	}
	return agg, per, lat, syncs, nil
}

// fleetMeasureTime is how long each fleet reader measures: long enough
// that several poll intervals (50ms) and leader retrains (25ms) land
// mid-measurement, so the reported tails include generation swaps.
const fleetMeasureTime = 1500 * time.Millisecond

// measureLatencyFor repeats passes over queries until at least minDur of
// wall time has elapsed (always completing at least one pass), returning
// the same quantile/throughput summary as measureLatency.
func measureLatencyFor(queries [][]float64, minDur time.Duration, score func([]float64) error) (latencyStats, error) {
	lat := make([]float64, 0, len(queries))
	start := time.Now()
	for pass := 0; pass == 0 || time.Since(start) < minDur; pass++ {
		for _, q := range queries {
			qs := time.Now()
			if err := score(q); err != nil {
				return latencyStats{}, err
			}
			lat = append(lat, time.Since(qs).Seconds())
		}
	}
	total := time.Since(start).Seconds()
	sort.Float64s(lat)
	return latencyStats{
		p50:  lat[len(lat)/2],
		p99:  lat[len(lat)*99/100],
		p999: lat[len(lat)*999/1000],
		qps:  float64(len(lat)) / total,
	}, nil
}

// median of a small unsorted slice.
func median(v []float64) float64 {
	sort.Float64s(v)
	return v[len(v)/2]
}

// maxOf returns the maximum — the fleet-wide worst case for tail
// quantiles.
func maxOf(v []float64) float64 {
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
