package server

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tkdc/internal/core"
	"tkdc/internal/stream"
	"tkdc/internal/telemetry"
)

// streamServer builds a streaming-mode server (no background retrainer;
// tests drive retrains explicitly) over a small 2-d classifier.
func streamServer(t *testing.T, opts Options) (*httptest.Server, *stream.Service) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	data := make([][]float64, 800)
	for i := range data {
		data[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	cfg := core.DefaultConfig()
	cfg.S0 = 2000
	clf, err := core.Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := stream.NewService(clf, stream.Config{Capacity: 2000, Seed: 7, Prefill: true})
	if err != nil {
		t.Fatal(err)
	}
	opts.Stream = svc
	if opts.Registry == nil {
		opts.Registry = telemetry.NewRegistry()
	}
	ts := httptest.NewServer(New(nil, opts))
	t.Cleanup(func() { ts.Close(); svc.Close() })
	return ts, svc
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp, out
}

// TestIngestRoundTrip covers the acceptance criterion: /ingest accepts
// CSV and JSON batches with /classify's exact semantics, /model reflects
// them, and a retrain advances the generation served to both endpoints.
func TestIngestRoundTrip(t *testing.T) {
	ts, svc := streamServer(t, Options{})

	resp, out := postJSON(t, ts.URL+"/ingest", `{"points":[[0.5,0.5],[1,1]]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("JSON ingest status = %d: %v", resp.StatusCode, out)
	}
	if out["accepted"].(float64) != 2 {
		t.Fatalf("accepted = %v, want 2", out["accepted"])
	}
	if out["ingested_total"].(float64) != 802 { // 800 prefill + 2
		t.Fatalf("ingested_total = %v, want 802", out["ingested_total"])
	}

	csvResp, err := http.Post(ts.URL+"/ingest", "text/csv", strings.NewReader("0.1,0.2\n-0.3,0.4\n0.5,-0.6\n"))
	if err != nil {
		t.Fatal(err)
	}
	csvResp.Body.Close()
	if csvResp.StatusCode != http.StatusOK {
		t.Fatalf("CSV ingest status = %d, want 200", csvResp.StatusCode)
	}

	resp, model := getJSON(t, ts.URL+"/model")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/model status = %d: %v", resp.StatusCode, model)
	}
	if model["generation"].(float64) != 1 || model["streaming"] != true {
		t.Fatalf("model descriptor = %v, want generation 1, streaming true", model)
	}
	if model["ingested_total"].(float64) != 805 {
		t.Fatalf("ingested_total = %v, want 805", model["ingested_total"])
	}

	if err := svc.Retrain(); err != nil {
		t.Fatal(err)
	}
	_, model = getJSON(t, ts.URL+"/model")
	if model["generation"].(float64) != 2 {
		t.Fatalf("generation after retrain = %v, want 2", model["generation"])
	}
	if _, out := postJSON(t, ts.URL+"/classify", `{"points":[[0,0]]}`); out["labels"].([]any)[0] != "HIGH" {
		t.Fatalf("classify after retrain = %v, want [HIGH]", out["labels"])
	}
}

// TestIngestErrors mirrors /classify's error semantics on /ingest: 405
// on GET, 400 on malformed/empty/bad-dimension rows (whole batch
// rejected), 413 past the body cap, 409 without streaming.
func TestIngestErrors(t *testing.T) {
	ts, svc := streamServer(t, Options{MaxBodyBytes: 256})

	resp, err := http.Get(ts.URL + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d, want 405", resp.StatusCode)
	}

	before := svc.Stats().Ingested
	for body, name := range map[string]string{
		`{"points":[[1,2],[1,2,3]]}`: "bad dimension",
		`{"points":[[1,2],[NaN,2]]}`: "malformed JSON",
		`{"points":[]}`:              "empty batch",
		``:                           "empty body",
	} {
		resp, out := postJSON(t, ts.URL+"/ingest", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s status = %d, want 400: %v", name, resp.StatusCode, out)
		}
		if _, ok := out["error"]; !ok {
			t.Fatalf("%s: error response has no error field", name)
		}
	}
	if after := svc.Stats().Ingested; after != before {
		t.Fatalf("rejected batches changed ingested count: %d -> %d", before, after)
	}

	big, err := http.Post(ts.URL+"/ingest", "text/csv", strings.NewReader(strings.Repeat("0,0\n", 200)))
	if err != nil {
		t.Fatal(err)
	}
	big.Body.Close()
	if big.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized status = %d, want 413", big.StatusCode)
	}
}

// TestIngestWithoutStreaming: a static server refuses ingest with 409
// and says how to enable it, and /model still serves the descriptor.
func TestIngestWithoutStreaming(t *testing.T) {
	ts, _ := testServer(t)
	resp, out := postJSON(t, ts.URL+"/ingest", `{"points":[[0,0]]}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status = %d, want 409: %v", resp.StatusCode, out)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "-stream") {
		t.Fatalf("409 error %q does not mention -stream", msg)
	}

	resp, model := getJSON(t, ts.URL+"/model")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/model status = %d: %v", resp.StatusCode, model)
	}
	if model["streaming"] != false || model["generation"].(float64) != 1 {
		t.Fatalf("static /model = %v, want streaming false, generation 1", model)
	}
	if _, ok := model["ingested_total"]; ok {
		t.Fatal("static /model leaked stream fields")
	}
}

// TestStreamMetrics checks the streaming gauges appear on /metrics and
// track ingest and retrains.
func TestStreamMetrics(t *testing.T) {
	ts, svc := streamServer(t, Options{})

	exp := getMetrics(t, ts.URL)
	if got := metricValue(t, exp, "tkdc_stream_ingested_total"); got != 800 {
		t.Fatalf("ingested_total = %d, want 800 (prefill)", got)
	}
	if got := metricValue(t, exp, "tkdc_model_generation"); got != 1 {
		t.Fatalf("generation = %d, want 1", got)
	}
	if !strings.Contains(exp, "tkdc_model_age_seconds ") {
		t.Fatal("exposition missing tkdc_model_age_seconds")
	}
	metricValue(t, exp, "tkdc_stream_sample_capacity")
	if got := metricValue(t, exp, "tkdc_ingest_shards"); got != 1 {
		t.Fatalf("ingest_shards = %d, want 1 (unsharded default)", got)
	}
	if !strings.Contains(exp, `tkdc_stream_shard_fill{shard="0"} `) {
		t.Fatal("exposition missing per-shard fill gauge")
	}

	if _, out := postJSON(t, ts.URL+"/ingest", `{"points":[[0.2,0.1]]}`); out["accepted"].(float64) != 1 {
		t.Fatalf("ingest failed: %v", out)
	}
	if err := svc.Retrain(); err != nil {
		t.Fatal(err)
	}
	exp = getMetrics(t, ts.URL)
	if got := metricValue(t, exp, "tkdc_stream_ingested_total"); got != 801 {
		t.Fatalf("ingested_total = %d, want 801", got)
	}
	if got := metricValue(t, exp, "tkdc_stream_retrains_total"); got != 1 {
		t.Fatalf("retrains_total = %d, want 1", got)
	}
	if got := metricValue(t, exp, "tkdc_model_generation"); got != 2 {
		t.Fatalf("generation = %d, want 2", got)
	}
	if got := metricValue(t, exp, "tkdc_stream_sample_size"); got != 801 {
		t.Fatalf("sample_size = %d, want 801", got)
	}
}
