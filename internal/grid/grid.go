// Package grid implements tKDC's hypergrid inlier cache (Section 3.7 of
// the paper): a d-dimensional grid with cell edges equal to the kernel
// bandwidth. A single pass over the dataset counts the points in each
// cell (fanned out across goroutines by NewWorkers, with per-worker
// partial maps merged into the same totals); at query time, a cell
// count G large enough that
//
//	G/n · K_H(d_diag) > threshold
//
// (where d_diag is the cell diagonal, the farthest any same-cell point can
// be) proves the query's density exceeds the threshold before any tree
// traversal. The paper enables the grid only for d ≤ 4; the caller owns
// that policy.
package grid

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"tkdc/internal/points"
)

// Grid counts dataset points per hypercube cell. The cell structure is
// immutable after New and safe for concurrent readers; the hit/miss
// telemetry counters are atomic, so concurrent queries may record
// lookup outcomes freely.
type Grid struct {
	widths []float64
	inv    []float64
	counts map[string]int
	n      int

	hits   atomic.Int64
	misses atomic.Int64
}

// New builds a grid over a flat point store with the given per-dimension
// cell widths (the paper sets them equal to the bandwidths). All widths
// must be positive and finite.
func New(pts *points.Store, cellWidths []float64) (*Grid, error) {
	return NewWorkers(pts, cellWidths, 1)
}

// NewWorkers builds the same grid as New, filling the per-cell counts
// with the given number of goroutines: each worker counts a contiguous
// row range into a private map and the partials are merged afterwards.
// Cell counts are sums, so the merged map is identical to a sequential
// fill at any worker count. Values below 2 fill single-threaded; the
// count is clamped to a small multiple of GOMAXPROCS.
func NewWorkers(pts *points.Store, cellWidths []float64, workers int) (*Grid, error) {
	if pts.Len() == 0 {
		return nil, errors.New("grid: no points")
	}
	d := len(cellWidths)
	if d == 0 {
		return nil, errors.New("grid: empty cell widths")
	}
	if pts.Dim != d {
		return nil, fmt.Errorf("grid: points have dimension %d, want %d", pts.Dim, d)
	}
	for i, w := range cellWidths {
		if math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 {
			return nil, fmt.Errorf("grid: cell width[%d] = %v must be positive and finite", i, w)
		}
	}
	g := &Grid{
		widths: append([]float64(nil), cellWidths...),
		inv:    make([]float64, d),
		counts: make(map[string]int),
		n:      pts.Len(),
	}
	for i, w := range cellWidths {
		g.inv[i] = 1 / w
	}
	n := pts.Len()
	if limit := runtime.GOMAXPROCS(0) * 4; workers > limit {
		workers = limit
	}
	if workers > n {
		workers = n
	}
	if workers < 2 {
		g.countRange(g.counts, pts.Data)
		return g, nil
	}
	partials := make([]map[string]int, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			m := make(map[string]int, (hi-lo)/4)
			g.countRange(m, pts.Data[lo*d:hi*d])
			partials[w] = m
		}(w, lo, hi)
	}
	wg.Wait()
	for _, m := range partials {
		for k, v := range m {
			g.counts[k] += v
		}
	}
	return g, nil
}

// countRange folds the rows of one flat slab into counts.
func (g *Grid) countRange(counts map[string]int, flat []float64) {
	d := len(g.inv)
	buf := make([]byte, 8*d)
	for off := 0; off < len(flat); off += d {
		counts[string(g.key(flat[off:off+d], buf))]++
	}
}

// key encodes the cell coordinates of x into buf and returns it.
func (g *Grid) key(x []float64, buf []byte) []byte {
	for i, xi := range x {
		c := int64(math.Floor(xi * g.inv[i]))
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(c))
	}
	return buf
}

// Count returns the number of dataset points sharing x's grid cell.
func (g *Grid) Count(x []float64) int {
	buf := make([]byte, 8*len(g.inv))
	return g.counts[string(g.key(x, buf))]
}

// N returns the number of points the grid was built over.
func (g *Grid) N() int { return g.n }

// Dim returns the grid dimensionality.
func (g *Grid) Dim() int { return len(g.widths) }

// Cells returns the number of occupied cells.
func (g *Grid) Cells() int { return len(g.counts) }

// DiagSqScaled returns the squared length of the cell diagonal measured in
// bandwidth-scaled space: Σ_i widths_i² · invH2_i. With cell widths equal
// to the bandwidths this is exactly d. The result feeds a kernel's
// FromScaledSqDist to get the worst-case same-cell kernel value.
func (g *Grid) DiagSqScaled(invH2 []float64) float64 {
	s := 0.0
	for i, w := range g.widths {
		s += w * w * invH2[i]
	}
	return s
}

// LowerBoundDensity returns a certified lower bound on the kernel density
// at x: the contribution of same-cell points alone, each at worst a full
// cell diagonal away. kernelAtDiag must be K_H evaluated at DiagSqScaled.
func (g *Grid) LowerBoundDensity(x []float64, kernelAtDiag float64) float64 {
	return float64(g.Count(x)) / float64(g.n) * kernelAtDiag
}

// Observe records the outcome of one cache lookup: hit means the cell
// count alone proved the query's density exceeds the threshold, so no
// tree traversal was needed. Callers gate Observe behind their telemetry
// flag, keeping the lookup itself side-effect-free when telemetry is
// off.
func (g *Grid) Observe(hit bool) {
	if hit {
		g.hits.Add(1)
	} else {
		g.misses.Add(1)
	}
}

// Counters returns the lookup outcomes recorded by Observe.
func (g *Grid) Counters() (hits, misses int64) {
	return g.hits.Load(), g.misses.Load()
}
