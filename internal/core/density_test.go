package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tkdc/internal/kdtree"
	"tkdc/internal/kernel"
	"tkdc/internal/points"
)

// buildEstimator constructs a tree + estimator over random data.
func buildEstimator(t testing.TB, rng *rand.Rand, n, d int) (*densityEstimator, *points.Store, kernel.Kernel) {
	t.Helper()
	pts := points.New(n, d)
	for i := range pts.Data {
		pts.Data[i] = rng.NormFloat64() * 5
	}
	h, err := kernel.ScottBandwidths(pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	kern, err := kernel.NewGaussian(h)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := kdtree.Build(pts, kdtree.Options{LeafSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	return newDensityEstimator(tree, kern, false, false), pts, kern
}

// Property: boundDensity's certified bounds always bracket the exact
// density, for arbitrary thresholds (which only change where it stops).
func TestBoundDensityBracketsExactProperty(t *testing.T) {
	f := func(seed int64, rawTl, rawTu float64) bool {
		rng := rand.New(rand.NewSource(seed))
		est, pts, kern := buildEstimator(t, rng, 100+rng.Intn(400), 1+rng.Intn(3))
		d := pts.Dim
		q := make([]float64, d)
		for j := range q {
			q[j] = rng.NormFloat64() * 8
		}
		tl := math.Abs(math.Mod(rawTl, 1)) * 0.01
		tu := tl + math.Abs(math.Mod(rawTu, 1))*0.01
		var qs QueryStats
		fl, fu := est.boundDensity(q, tl, tu, 0.01*tl, &qs)
		exact := exactDensity(pts, kern, q)
		slack := 1e-9*math.Max(exact, fl) + 1e-300
		return fl <= exact+slack && fu >= exact-slack && fl <= fu
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// With both pruning rules disabled the traversal must compute the exact
// density (the Figure 12 "Baseline" configuration).
func TestBoundDensityExactWhenRulesDisabled(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts := mustStore(gauss2D(rng, 500))
	h, _ := kernel.ScottBandwidths(pts, 1)
	kern, _ := kernel.NewGaussian(h)
	tree, err := kdtree.Build(pts, kdtree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	est := newDensityEstimator(tree, kern, true, true)
	for trial := 0; trial < 50; trial++ {
		q := []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		var qs QueryStats
		fl, fu := est.boundDensity(q, 0.001, 0.001, 0.001*0.01, &qs)
		exact := exactDensity(pts, kern, q)
		if math.Abs(fl-exact) > 1e-9*exact+1e-300 || math.Abs(fu-exact) > 1e-9*exact+1e-300 {
			t.Fatalf("rules-disabled traversal not exact: [%g, %g] vs %g", fl, fu, exact)
		}
		if qs.PointKernels != int64(pts.Len()) {
			t.Fatalf("exact traversal evaluated %d point kernels, want %d", qs.PointKernels, pts.Len())
		}
	}
}

// The threshold rule must dramatically reduce work for points far from
// the threshold.
func TestThresholdRuleSavesWork(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	pts := mustStore(gauss2D(rng, 5000))
	h, _ := kernel.ScottBandwidths(pts, 1)
	kern, _ := kernel.NewGaussian(h)
	tree, err := kdtree.Build(pts, kdtree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pruned := newDensityEstimator(tree, kern, false, false)
	unpruned := newDensityEstimator(tree, kern, true, false)

	// A deep-center point is far above any small threshold.
	q := []float64{0, 0}
	tl, tu := 1e-4, 1.2e-4
	var prunedStats, unprunedStats QueryStats
	pruned.boundDensity(q, tl, tu, 0.01*tl, &prunedStats)
	unpruned.boundDensity(q, tl, tu, 0.01*tl, &unprunedStats)
	if prunedStats.Kernels()*10 > unprunedStats.Kernels() {
		t.Fatalf("threshold rule saved too little: %d vs %d kernels", prunedStats.Kernels(), unprunedStats.Kernels())
	}
}

func TestEstimateDensityReachesRequestedPrecision(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	est, pts, kern := buildEstimator(t, rng, 2000, 2)
	for _, rel := range []float64{0.1, 0.01, 0.001} {
		q := []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		var qs QueryStats
		fl, fu := est.estimateDensity(q, rel, &qs)
		if fu-fl > rel*fl*(1+1e-9)+1e-300 {
			t.Fatalf("rel=%v: bounds [%g, %g] too loose", rel, fl, fu)
		}
		exact := exactDensity(pts, kern, q)
		if fl > exact*(1+1e-9) || fu < exact*(1-1e-9) {
			t.Fatalf("rel=%v: bounds miss exact", rel)
		}
	}
}

// Coarser tolerance must not require more work.
func TestEstimateDensityWorkMonotoneInPrecision(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	est, _, _ := buildEstimator(t, rng, 3000, 2)
	q := []float64{0.5, -0.5}
	var loose, tight QueryStats
	est.estimateDensity(q, 0.5, &loose)
	est.estimateDensity(q, 1e-4, &tight)
	if loose.Kernels() > tight.Kernels() {
		t.Fatalf("loose tolerance did more work: %d > %d", loose.Kernels(), tight.Kernels())
	}
}

func TestRefineHeapOrdering(t *testing.T) {
	var h refineHeap
	prios := []float64{0.3, 0.9, 0.1, 0.7, 0.5}
	for _, p := range prios {
		h.push(heapItem{wlo: 0, whi: p})
	}
	prev := math.Inf(1)
	for h.len() > 0 {
		it := h.pop()
		if it.pri > prev {
			t.Fatalf("heap popped %v after %v", it.pri, prev)
		}
		prev = it.pri
	}
}

func TestQueryStatsAggregation(t *testing.T) {
	a := QueryStats{PointKernels: 3, BoundKernels: 4, NodesVisited: 2}
	b := QueryStats{PointKernels: 1, BoundKernels: 2, NodesVisited: 1, GridHit: true}
	a.add(b)
	if a.PointKernels != 4 || a.BoundKernels != 6 || a.NodesVisited != 3 || !a.GridHit {
		t.Fatalf("aggregated stats wrong: %+v", a)
	}
	if a.Kernels() != 10 {
		t.Fatalf("Kernels() = %d, want 10", a.Kernels())
	}
}
