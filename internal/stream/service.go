package stream

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"tkdc/internal/core"
	"tkdc/internal/telemetry"
)

// Config tunes the streaming service. The zero value of every field is
// usable: defaults are filled in by NewService.
type Config struct {
	// Capacity bounds the in-memory sample (default 100 000 rows).
	Capacity int
	// Window keeps a sliding window of the most recent Capacity rows
	// instead of a uniform reservoir, so retrains track drift.
	Window bool
	// Seed drives reservoir eviction and the drift probe; ingestion and
	// retraining are deterministic for a fixed seed and batch sequence.
	Seed int64
	// Shards lock-stripes the ingest path over this many independent
	// reservoirs, merged deterministically at snapshot time (see
	// ShardedIngestor). 0 and 1 both mean one shard — the unsharded code
	// path, bit-identical to earlier releases and to batch training via
	// the determinism bridge. Samples are reproducible for a fixed shard
	// count and batch→shard assignment, but differ across shard counts.
	Shards int

	// RetrainEvery retrains after this many newly ingested rows
	// (0 disables the count trigger).
	RetrainEvery int64
	// MaxModelAge retrains when the live model is older than this and new
	// rows have arrived since it was trained (0 disables the age trigger).
	MaxModelAge time.Duration
	// DriftTolerance retrains when a cheap bootstrap-style threshold
	// probe over the current sample differs from the live threshold by
	// more than this relative fraction (0 disables the drift trigger).
	DriftTolerance float64
	// ProbeRows and ProbeQueries size the drift probe's mini-KDE
	// (defaults 512 reference rows, 256 probe queries).
	ProbeRows    int
	ProbeQueries int

	// CheckInterval paces the background trigger checks (default 500ms).
	CheckInterval time.Duration

	// SnapshotPath, when non-empty, receives an atomic on-disk model
	// snapshot (temp file + rename) after every swap and on Close.
	SnapshotPath string

	// Train configures retrains. The zero value inherits the initial
	// classifier's configuration, which keeps retrained models directly
	// comparable to the model they replace. Config.Workers flows through
	// here: background retrains fan the tree build, bootstrap scoring,
	// and grid fill out over the same worker budget the initial training
	// used.
	Train core.Config

	// Prefill seeds the sample with the initial classifier's training
	// rows, so the first retrain does not forget the batch-trained model.
	// Leave false when the stream alone should define the sample (e.g.
	// the determinism bridge: feed rows, retrain, compare to batch Train).
	Prefill bool

	// Recorder receives one telemetry span per retrain
	// ("retrain/gen-N") and is attached to retrains' Train config. Nil
	// inherits Train.Recorder (telemetry off if that is nil too).
	Recorder telemetry.Recorder

	// OnSwap, when non-nil, is called after each publish with the new
	// generation number, from the retrain goroutine. The replication
	// publisher hooks here to re-encode the snapshot eagerly (off the
	// follower fetch path); keep it fast — it delays the next trigger
	// check, never queries.
	OnSwap func(gen uint64)
}

// Stats is a coherent view of the streaming lifecycle.
type Stats struct {
	// Generation and ModelAge describe the live model.
	Generation uint64
	ModelAge   time.Duration
	ModelN     int
	Threshold  float64

	// Ingested counts rows ever accepted; SampleSize is the bounded
	// sample's current occupancy; Pending counts rows ingested since the
	// live sample was last trained on.
	Ingested   int64
	SampleSize int
	Capacity   int
	Window     bool
	Pending    int64

	// Shards is the ingest shard count (1 = unsharded); ShardFill holds
	// each shard's occupancy as a fraction of capacity.
	Shards    int
	ShardFill []float64

	// Retrains counts completed retrains (publishes); LastError is the
	// most recent background retrain or snapshot failure, "" when clean.
	Retrains  int64
	LastError string

	// DriftScore is the most recent drift probe's relative threshold
	// deviation |probe−live|/live (0 before any probe); DriftProbes
	// counts probes run. LastRetrainReason names the trigger behind the
	// most recent retrain ("count", "age", "drift", or "manual") and
	// LastRetrainDuration its wall-clock training time.
	DriftScore          float64
	DriftProbes         int64
	LastRetrainReason   string
	LastRetrainDuration time.Duration
}

// Service owns the streaming lifecycle: it accepts ingest batches,
// watches retrain triggers from a background goroutine, and publishes
// rebuilt classifiers through its Model handle. Construct with
// NewService, begin background retraining with Start, and Close on
// shutdown (idempotent; writes a final snapshot).
type Service struct {
	cfg      Config
	trainCfg core.Config
	ing      *ShardedIngestor
	model    *Model
	rec      telemetry.Recorder

	retrainMu   sync.Mutex // serializes retrains
	lastTrained atomic.Int64
	retrains    atomic.Int64
	probeSeq    atomic.Int64

	// Drift and retrain observability: the latest probe's relative
	// deviation (float bits), probe count, and the last retrain's
	// trigger + duration.
	driftScore    atomic.Uint64
	driftProbes   atomic.Int64
	lastReason    atomic.Pointer[string]
	lastRetrainNS atomic.Int64

	errMu   sync.Mutex
	lastErr error

	done     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewService wraps an initial trained classifier in a streaming
// lifecycle. The classifier stays live until the first retrain swaps it
// out; its configuration becomes the retrain configuration unless
// cfg.Train overrides it.
func NewService(initial *core.Classifier, cfg Config) (*Service, error) {
	if initial == nil {
		return nil, fmt.Errorf("stream: NewService requires an initial classifier")
	}
	if cfg.Capacity == 0 {
		cfg.Capacity = 100_000
	}
	if cfg.CheckInterval <= 0 {
		cfg.CheckInterval = 500 * time.Millisecond
	}
	if cfg.ProbeRows <= 0 {
		cfg.ProbeRows = 512
	}
	if cfg.ProbeQueries <= 0 {
		cfg.ProbeQueries = 256
	}
	if cfg.RetrainEvery < 0 || cfg.Capacity < 0 {
		return nil, fmt.Errorf("stream: negative Capacity or RetrainEvery")
	}
	if cfg.Shards == 0 {
		// Default to one shard, not GOMAXPROCS: the unsharded path is
		// bit-identical to earlier releases, so existing deployments and
		// the determinism bridge are unaffected unless sharding is asked
		// for explicitly.
		cfg.Shards = 1
	}
	trainCfg := cfg.Train
	if trainCfg.P == 0 {
		// An unset Train config (P is required, so 0 means "not
		// configured") inherits the initial classifier's parameters.
		trainCfg = initial.Config()
	}
	if cfg.Recorder != nil {
		trainCfg.Recorder = cfg.Recorder
	}
	rec := trainCfg.Recorder
	if rec == nil {
		rec = telemetry.Nop{}
	}

	ing, err := NewShardedIngestor(cfg.Capacity, initial.Dim(), cfg.Seed, cfg.Window, cfg.Shards)
	if err != nil {
		return nil, err
	}
	s := &Service{
		cfg:      cfg,
		trainCfg: trainCfg,
		ing:      ing,
		model:    NewModel(initial),
		rec:      rec,
		done:     make(chan struct{}),
	}
	if cfg.Prefill {
		data := initial.TrainingData()
		if _, err := ing.AddFlat(data.Data, data.Dim); err != nil {
			return nil, fmt.Errorf("stream: prefill: %w", err)
		}
		// The prefilled rows are already served by the initial model;
		// only rows beyond them count toward the retrain triggers.
		s.lastTrained.Store(ing.Seen())
	}
	return s, nil
}

// Model returns the zero-downtime query handle. It remains valid for the
// life of the service (and after Close).
func (s *Service) Model() *Model { return s.model }

// Ingestor exposes the bounded sample, mainly for tests and stats.
func (s *Service) Ingestor() *ShardedIngestor { return s.ing }

// Ingest validates and ingests a batch of rows, returning how many were
// accepted. The batch is rejected whole on the first malformed row.
// Ingestion never blocks on retraining: it contends only with other
// ingest batches and the brief sample copy at the start of a retrain.
func (s *Service) Ingest(rows [][]float64) (int, error) {
	return s.ing.Add(rows)
}

// IngestFlat is Ingest over rows already in flat row-major form (the
// server's parse buffer), avoiding per-row slice re-boxing.
func (s *Service) IngestFlat(flat []float64, dim int) (int, error) {
	return s.ing.AddFlat(flat, dim)
}

// Start launches the background retrainer, which checks triggers every
// CheckInterval and rebuilds off the query path when one fires. Safe to
// call at most once; Close stops it.
func (s *Service) Start() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(s.cfg.CheckInterval)
		defer t.Stop()
		for {
			select {
			case <-s.done:
				return
			case <-t.C:
				if _, err := s.maybeRetrain(); err != nil {
					s.setErr(err)
				}
			}
		}
	}()
}

// Close stops the background retrainer and writes a final atomic
// snapshot of the live model when SnapshotPath is configured.
// Idempotent; the Model handle keeps serving afterwards.
func (s *Service) Close() error {
	s.stopOnce.Do(func() { close(s.done) })
	s.wg.Wait()
	if s.cfg.SnapshotPath == "" {
		return nil
	}
	return s.model.Current().SaveFile(s.cfg.SnapshotPath)
}

// Retrain synchronously rebuilds a classifier from the current sample
// and publishes it, regardless of triggers. It is the manual control
// surface (tests, admin endpoints); concurrent retrains serialize.
func (s *Service) Retrain() error { return s.retrain("manual") }

// maybeRetrain checks the triggers and retrains when one fires,
// returning the trigger's name ("" if none fired). It is the body of the
// background loop, split out so tests can drive it without the ticker.
func (s *Service) maybeRetrain() (string, error) {
	reason := s.trigger()
	if reason == "" {
		return "", nil
	}
	return reason, s.retrain(reason)
}

// trigger names the first retrain trigger currently firing. All triggers
// require at least one row ingested since the last retrain: a model
// never goes stale against data it has already seen.
func (s *Service) trigger() string {
	pending := s.ing.Seen() - s.lastTrained.Load()
	if pending <= 0 {
		return ""
	}
	if s.cfg.RetrainEvery > 0 && pending >= s.cfg.RetrainEvery {
		return "count"
	}
	if s.cfg.MaxModelAge > 0 && s.model.Age() >= s.cfg.MaxModelAge {
		return "age"
	}
	if s.cfg.DriftTolerance > 0 && s.thresholdDrifted() {
		return "drift"
	}
	return ""
}

// thresholdDrifted compares the live threshold against a cheap
// bootstrap-style probe of the current sample (core.ProbeThreshold).
// Each check uses a fresh derived seed so repeated probes of a drifting
// stream don't resample identical rows.
func (s *Service) thresholdDrifted() bool {
	live := s.model.Current().Threshold()
	if live <= 0 || math.IsInf(live, 0) || math.IsNaN(live) {
		return false
	}
	sample := s.ing.Sample(s.cfg.ProbeRows+s.cfg.ProbeQueries, s.cfg.Seed+s.probeSeq.Add(1))
	if sample == nil || sample.Len() < 3 {
		return false
	}
	probe, err := core.ProbeThreshold(sample, s.trainCfg, s.cfg.ProbeRows, s.cfg.ProbeQueries, s.cfg.Seed)
	if err != nil || probe <= 0 {
		return false
	}
	score := math.Abs(probe-live) / live
	s.driftScore.Store(math.Float64bits(score))
	s.driftProbes.Add(1)
	return score > s.cfg.DriftTolerance
}

// retrain rebuilds from a snapshot of the sample and publishes the
// result. The sample copy is the only moment it touches the ingest lock;
// training runs entirely off both the ingest and query paths.
func (s *Service) retrain(reason string) error {
	s.retrainMu.Lock()
	defer s.retrainMu.Unlock()

	snap, seen := s.ing.Snapshot()
	if snap == nil {
		return errEmpty
	}
	start := time.Now()
	clf, err := core.TrainStore(snap, s.trainCfg)
	if err != nil {
		return fmt.Errorf("stream: retrain: %w", err)
	}
	dur := time.Since(start)
	gen := s.model.Publish(clf)
	s.lastTrained.Store(seen)
	s.retrains.Add(1)
	s.lastReason.Store(&reason)
	s.lastRetrainNS.Store(int64(dur))
	if s.rec.Enabled() {
		s.rec.RecordSpan(telemetry.Span{
			Name:     fmt.Sprintf("retrain/gen-%d", gen),
			Duration: dur,
			Kernels:  clf.TrainStats().TrainKernels,
			Items:    int64(snap.Len()),
		})
	}
	if s.cfg.SnapshotPath != "" {
		if err := clf.SaveFile(s.cfg.SnapshotPath); err != nil {
			return err
		}
	}
	if s.cfg.OnSwap != nil {
		s.cfg.OnSwap(gen)
	}
	s.setErr(nil)
	return nil
}

func (s *Service) setErr(err error) {
	s.errMu.Lock()
	s.lastErr = err
	s.errMu.Unlock()
}

// Stats snapshots the lifecycle.
func (s *Service) Stats() Stats {
	clf, gen, born := s.model.View()
	st := Stats{
		Generation: gen,
		ModelAge:   time.Since(born),
		ModelN:     clf.N(),
		Threshold:  clf.Threshold(),
		Ingested:   s.ing.Seen(),
		SampleSize: s.ing.Len(),
		Capacity:   s.ing.Capacity(),
		Window:     s.ing.WindowMode(),
		Shards:     s.ing.Shards(),
		ShardFill:  s.ing.ShardFills(),
		Retrains:   s.retrains.Load(),

		DriftScore:          math.Float64frombits(s.driftScore.Load()),
		DriftProbes:         s.driftProbes.Load(),
		LastRetrainDuration: time.Duration(s.lastRetrainNS.Load()),
	}
	st.Pending = st.Ingested - s.lastTrained.Load()
	if st.Pending < 0 {
		st.Pending = 0
	}
	if r := s.lastReason.Load(); r != nil {
		st.LastRetrainReason = *r
	}
	s.errMu.Lock()
	if s.lastErr != nil {
		st.LastError = s.lastErr.Error()
	}
	s.errMu.Unlock()
	return st
}
