// Outliers reproduces the Figure 1 scenario: density classification of
// two shuttle sensor measurements. It trains tKDC on shuttle-like 2-d
// data (the analogue of columns 4 and 6), reports the rare low-density
// readings — candidate "unusual operating modes" — and renders the
// classification region as ASCII art, the textual analogue of Figure 1b.
package main

import (
	"fmt"
	"log"
	"math"

	"tkdc"
	"tkdc/internal/dataset"
)

func main() {
	// Shuttle-like sensor data, projected to two measurement columns as in
	// Figure 1 (columns 4 and 6 of the original dataset).
	full := dataset.Shuttle(43500, 7)
	data, err := dataset.TakeColumns(full, 2)
	if err != nil {
		log.Fatal(err)
	}

	cfg := tkdc.DefaultConfig()
	cfg.P = 0.01 // flag the least-likely 1% of readings
	cfg.Workers = 4
	clf, err := tkdc.Train(data, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d shuttle-like readings; density threshold %.3g\n",
		clf.N(), clf.Threshold())

	// Classify every reading; collect the outliers.
	labels, err := clf.ClassifyAll(data)
	if err != nil {
		log.Fatal(err)
	}
	outliers := 0
	var firstFew [][]float64
	for i, l := range labels {
		if l == tkdc.Low {
			outliers++
			if len(firstFew) < 5 {
				firstFew = append(firstFew, data[i])
			}
		}
	}
	fmt.Printf("%d of %d readings (%.2f%%) classified as low-density outliers\n",
		outliers, len(data), 100*float64(outliers)/float64(len(data)))
	fmt.Println("example outlier readings (unusual operating modes):")
	for _, p := range firstFew {
		fmt.Printf("  A=%8.2f  B=%8.2f\n", p[0], p[1])
	}

	// Render the classified region like Figure 1b: '#' where density is
	// above the threshold, '.' below.
	lo, hi := bounds(data)
	const W, H = 72, 24
	fmt.Println("\nclassification map ('#' = above threshold):")
	for row := H - 1; row >= 0; row-- {
		line := make([]byte, W)
		for col := 0; col < W; col++ {
			x := lo[0] + (hi[0]-lo[0])*float64(col)/float64(W-1)
			y := lo[1] + (hi[1]-lo[1])*float64(row)/float64(H-1)
			label, err := clf.Classify([]float64{x, y})
			if err != nil {
				log.Fatal(err)
			}
			if label == tkdc.High {
				line[col] = '#'
			} else {
				line[col] = '.'
			}
		}
		fmt.Println(string(line))
	}
	st := clf.Stats()
	fmt.Printf("\ntotal queries: %d; avg kernels/query %.1f of %d points\n",
		st.Queries, float64(st.Kernels())/float64(st.Queries), clf.N())
}

func bounds(data [][]float64) (lo, hi []float64) {
	lo = []float64{math.Inf(1), math.Inf(1)}
	hi = []float64{math.Inf(-1), math.Inf(-1)}
	for _, p := range data {
		for j := 0; j < 2; j++ {
			lo[j] = math.Min(lo[j], p[j])
			hi[j] = math.Max(hi[j], p[j])
		}
	}
	return lo, hi
}
