package main

import (
	"net/http"
	"testing"
)

// TestHTTPServerTimeouts pins the serving-mode hardening: every tkdc
// server must carry header/read/idle deadlines so a slow or stalled
// client cannot pin a connection forever, while WriteTimeout stays zero
// so the streaming pprof endpoints (profile, trace) are not cut off.
func TestHTTPServerTimeouts(t *testing.T) {
	srv := newHTTPServer(":0", http.NewServeMux())
	if srv.ReadHeaderTimeout <= 0 {
		t.Fatal("ReadHeaderTimeout unset: slowloris protection missing")
	}
	if srv.ReadTimeout <= 0 {
		t.Fatal("ReadTimeout unset: a stalled body upload pins a connection")
	}
	if srv.IdleTimeout <= 0 {
		t.Fatal("IdleTimeout unset: idle keep-alive connections never reaped")
	}
	if srv.WriteTimeout != 0 {
		t.Fatal("WriteTimeout set: it would cut off streaming pprof profiles")
	}
	if srv.Addr != ":0" || srv.Handler == nil {
		t.Fatal("newHTTPServer dropped the address or handler")
	}
}
