package core

import (
	"fmt"

	"tkdc/internal/estimator"
	"tkdc/internal/kdtree"
	"tkdc/internal/kernel"
)

// DensityBackend is the density-estimation engine behind one query: it
// produces lower/upper density bounds under tKDC's threshold and
// tolerance stopping rules (Algorithm 2's contract) together with a
// point estimate, and accounts the work performed into QueryStats.
//
// Implementations are not safe for concurrent use; the classifier pools
// one per goroutine. The bounds' nature differs per backend — see
// Certified.
type DensityBackend interface {
	// BoundDensity refines bounds for x until the threshold rule
	// (fl > tu or fu < tl), the tolerance rule (fu−fl < tolCut), or the
	// backend's budget stops it, returning fl ≤ est ≤ fu. est is the
	// backend's best point estimate of f(x); classification compares est
	// to the threshold.
	BoundDensity(x []float64, tl, tu, tolCut float64, stats *QueryStats) (fl, fu, est float64)
	// EstimateDensity tightens bounds to relative precision rel
	// (fu − fl ≤ rel·fl) regardless of any threshold; rel ≤ 0 demands an
	// exact density.
	EstimateDensity(x []float64, rel float64, stats *QueryStats) (fl, fu, est float64)
	// Name returns the backend tag (BackendTree or BackendSampling).
	Name() string
	// Certified reports whether the bounds are deterministic certificates
	// (tree traversal) rather than probabilistic confidence bands valid
	// with probability ≥ 1−δ (sampling).
	Certified() bool
	// Recycle trims any oversized scratch state before the backend
	// returns to the classifier's pool.
	Recycle()
}

// Backend names accepted by Config.Backend.
const (
	// BackendAuto selects the backend by dimension: tree for
	// d ≤ AutoTreeMaxDim, sampling above.
	BackendAuto = "auto"
	// BackendTree is the paper's certified k-d tree traversal
	// (Algorithm 2).
	BackendTree = "tree"
	// BackendSampling is the DEANN-style split estimator: exact near
	// field plus a seeded random sample of the far field with a
	// variance-derived confidence band.
	BackendSampling = "sampling"
)

// AutoTreeMaxDim is the largest dimensionality at which BackendAuto
// keeps the tree traversal. Above it the tree's distance bounds
// degenerate toward a linear scan (BENCH_core.json: ~5 nodes/op at d=1
// versus ~154 at d=8, worse beyond) and sampling wins.
const AutoTreeMaxDim = 8

// Backends lists the valid Config.Backend values.
func Backends() []string {
	return []string{BackendAuto, BackendTree, BackendSampling}
}

// validBackend reports whether name is a recognized backend selector.
func validBackend(name string) bool {
	switch name {
	case "", BackendAuto, BackendTree, BackendSampling:
		return true
	}
	return false
}

// resolveBackend maps a configured backend selector to a concrete
// backend tag for data of the given dimensionality.
func resolveBackend(name string, dim int) string {
	if name == "" || name == BackendAuto {
		if dim <= AutoTreeMaxDim {
			return BackendTree
		}
		return BackendSampling
	}
	return name
}

// newQueryBackend constructs the configured density backend over a built
// index. Every query path in the package — serving, the training
// refinement pass, the threshold bootstrap's mini-KDEs, the drift probe —
// builds backends through here, so one Config selects the engine
// everywhere.
func newQueryBackend(tree *kdtree.Tree, kern kernel.Kernel, cfg Config) DensityBackend {
	switch resolveBackend(cfg.Backend, tree.Dim) {
	case BackendSampling:
		return &samplingBackend{s: estimator.New(tree, kern, estimator.Options{
			Seed:             cfg.Seed,
			Delta:            cfg.Delta,
			DisableThreshold: cfg.DisableThresholdRule,
			DisableTolerance: cfg.DisableToleranceRule,
		})}
	default:
		return newDensityEstimator(tree, kern, cfg.DisableThresholdRule, cfg.DisableToleranceRule)
	}
}

// --- tree backend -----------------------------------------------------

// The tree backend is densityEstimator itself: the exported interface
// methods wrap the historical lowercase traversals without touching
// them, and report the bound midpoint as the point estimate — exactly
// the quantity the pre-interface code classified on, so tree-backend
// labels and trained models are bit-identical across the refactor.

// BoundDensity implements DensityBackend over Algorithm 2's traversal.
func (e *densityEstimator) BoundDensity(x []float64, tl, tu, tolCut float64, stats *QueryStats) (fl, fu, est float64) {
	fl, fu = e.boundDensity(x, tl, tu, tolCut, stats)
	return fl, fu, 0.5 * (fl + fu)
}

// EstimateDensity implements DensityBackend over the tolerance-only
// traversal.
func (e *densityEstimator) EstimateDensity(x []float64, rel float64, stats *QueryStats) (fl, fu, est float64) {
	fl, fu = e.estimateDensity(x, rel, stats)
	return fl, fu, 0.5 * (fl + fu)
}

// Name returns BackendTree.
func (e *densityEstimator) Name() string { return BackendTree }

// Certified reports true: tree bounds are deterministic certificates.
func (e *densityEstimator) Certified() bool { return true }

// Recycle drops an oversized refine heap before pooling. One
// pathological query (a dense region with pruning disabled, say) can
// grow the heap to O(nodes); without the cap that backing array would be
// pinned by the pool for the classifier's lifetime and multiplied across
// every pooled backend.
func (e *densityEstimator) Recycle() {
	if cap(e.heap.items) > maxPooledHeapItems {
		e.heap.items = nil
	}
}

// --- sampling backend -------------------------------------------------

// samplingBackend adapts estimator.Sampler to the DensityBackend
// contract, translating its work counters into QueryStats. The package
// split keeps internal/estimator free of core types (it depends only on
// the kdtree arena and the kernel), so further backends can follow the
// same shape.
type samplingBackend struct {
	s *estimator.Sampler
}

func (b *samplingBackend) BoundDensity(x []float64, tl, tu, tolCut float64, stats *QueryStats) (fl, fu, est float64) {
	w := estimator.Work{Trace: stats.Trace}
	fl, fu, est = b.s.BoundDensity(x, tl, tu, tolCut, &w)
	addWork(stats, w)
	return fl, fu, est
}

func (b *samplingBackend) EstimateDensity(x []float64, rel float64, stats *QueryStats) (fl, fu, est float64) {
	w := estimator.Work{Trace: stats.Trace}
	fl, fu, est = b.s.EstimateDensity(x, rel, &w)
	addWork(stats, w)
	return fl, fu, est
}

// Name returns BackendSampling.
func (b *samplingBackend) Name() string { return BackendSampling }

// Certified reports false: the bounds hold with probability ≥ 1−δ.
func (b *samplingBackend) Certified() bool { return false }

// Recycle is a no-op: the sampler's scratch (near-phase heap and
// far-range table) is bounded by its node budget.
func (b *samplingBackend) Recycle() {}

func addWork(stats *QueryStats, w estimator.Work) {
	stats.PointKernels += w.PointKernels
	stats.BoundKernels += w.BoundKernels
	stats.NodesVisited += w.NodesVisited
	stats.SamplingRounds += w.FarRounds
	stats.SampledPoints += w.FarSamples
}

// backendError builds the rejection for an unknown Config.Backend.
func backendError(name string) error {
	return fmt.Errorf("core: unknown backend %q (valid: %s, %s, %s)", name, BackendAuto, BackendTree, BackendSampling)
}
