package stream

import (
	"fmt"
	"math/rand"
	"testing"

	"tkdc/internal/core"
)

func benchClassifier(b *testing.B) (*core.Classifier, [][]float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	rows := make([][]float64, 20000)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	clf, err := core.Train(rows, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return clf, rows
}

// BenchmarkScoreDirect is the reference: queries straight at the
// classifier, no handle.
func BenchmarkScoreDirect(b *testing.B) {
	clf, rows := benchClassifier(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := clf.Score(rows[i%len(rows)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScoreModel measures the same queries through the live Model
// handle — the acceptance criterion is that the one extra atomic load is
// within noise of BenchmarkScoreDirect.
func BenchmarkScoreModel(b *testing.B) {
	clf, rows := benchClassifier(b)
	model := NewModel(clf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Score(rows[i%len(rows)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScoreModelParallel checks the handle does not serialize
// concurrent readers.
func BenchmarkScoreModelParallel(b *testing.B) {
	clf, rows := benchClassifier(b)
	model := NewModel(clf)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := model.Score(rows[i%len(rows)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkIngest measures reservoir ingestion throughput in rows/op
// (batches of 100).
func BenchmarkIngest(b *testing.B) {
	ing, err := NewIngestor(100_000, 2, 1, false)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	batch := make([][]float64, 100)
	for i := range batch {
		batch[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ing.Add(batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestBatch measures batch ingest cost across batch sizes in
// three configurations, all driven through b.RunParallel so -cpu=1,4,8
// shows how each scales with concurrent ingesters:
//
//   - direct: the unsharded Ingestor — every batch funnels through one
//     mutex, the pre-sharding baseline. Expect flat-or-worse throughput
//     as -cpu grows.
//   - shards=1: ShardedIngestor with K=1, the delegation wrapper. The
//     CI K=1 guard pins this within 30% of direct.
//   - sharded: ShardedIngestor with K=DefaultShards — the lock-striped
//     path that should scale near-linearly until memory bandwidth.
//
// ns/row is reported alongside ns/op (batches differ in size).
func BenchmarkIngestBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	type adder interface {
		Add(rows [][]float64) (int, error)
	}
	for _, batch := range []int{1, 64, 1024} {
		rows := make([][]float64, batch)
		for i := range rows {
			rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		}
		variants := []struct {
			name  string
			build func(b *testing.B) adder
		}{
			{"direct", func(b *testing.B) adder {
				ing, err := NewIngestor(10_000, 2, 1, false)
				if err != nil {
					b.Fatal(err)
				}
				return ing
			}},
			{"shards=1", func(b *testing.B) adder {
				s, err := NewShardedIngestor(10_000, 2, 1, false, 1)
				if err != nil {
					b.Fatal(err)
				}
				return s
			}},
			{"sharded", func(b *testing.B) adder {
				s, err := NewShardedIngestor(10_000, 2, 1, false, 0)
				if err != nil {
					b.Fatal(err)
				}
				return s
			}},
		}
		for _, v := range variants {
			b.Run(fmt.Sprintf("rows=%d/%s", batch, v.name), func(b *testing.B) {
				ing := v.build(b)
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						if _, err := ing.Add(rows); err != nil {
							b.Fatal(err)
						}
					}
				})
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/row")
			})
		}
	}
}

// BenchmarkSample watches the drift probe's sampling cost: k probe rows
// drawn from an n-row reservoir. The sparse Fisher–Yates keeps the
// allocation O(k) — before it, every probe allocated an n-entry index
// slice (800 KB per probe at n=100k) regardless of k.
func BenchmarkSample(b *testing.B) {
	const n, dim = 100_000, 2
	ing, err := NewIngestor(n, dim, 1, false)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	flat := make([]float64, n*dim)
	for i := range flat {
		flat[i] = rng.NormFloat64()
	}
	if _, err := ing.AddFlat(flat, dim); err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{64, 768} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if s := ing.Sample(k, int64(i)); s == nil {
					b.Fatal("nil sample")
				}
			}
		})
	}
}
