package kernel

import (
	"math"
	"math/rand"
	"testing"
)

// countingKernel is a finite-support kernel outside the concrete fast
// paths, so Sum takes the generic fallback. It counts FromScaledSqDist
// calls to verify the hoisted support-radius check skips out-of-support
// rows without the interface call.
type countingKernel struct {
	*Epanechnikov
	calls int
}

func (c *countingKernel) FromScaledSqDist(s float64) float64 {
	c.calls++
	return c.Epanechnikov.FromScaledSqDist(s)
}

func TestSumGenericFallbackSkipsBeyondSupport(t *testing.T) {
	epan, err := NewEpanechnikov([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	ck := &countingKernel{Epanechnikov: epan}

	// Two in-support rows, two far outside the unit support radius.
	rows := []float64{
		0.1, 0.1,
		-0.2, 0.3,
		5, 5,
		-40, 12,
	}
	x := []float64{0, 0}
	got := Sum(ck, x, rows)

	// Reference: direct per-row evaluation through the plain kernel.
	want := 0.0
	for off := 0; off < len(rows); off += 2 {
		want += At(epan, x, rows[off:off+2])
	}
	if got != want {
		t.Fatalf("generic Sum = %v, reference %v", got, want)
	}
	if ck.calls != 2 {
		t.Fatalf("generic Sum made %d FromScaledSqDist calls, want 2 (out-of-support rows must be skipped)", ck.calls)
	}
}

// The skip must be invisible in the sum: generic fallback and concrete
// fast path agree bit-for-bit on random data for both families.
func TestSumGenericMatchesConcrete(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, d := range []int{1, 3} {
		h := make([]float64, d)
		for j := range h {
			h[j] = 0.5 + rng.Float64()
		}
		gauss, err := NewGaussian(h)
		if err != nil {
			t.Fatal(err)
		}
		epan, err := NewEpanechnikov(h)
		if err != nil {
			t.Fatal(err)
		}
		rows := make([]float64, 200*d)
		for i := range rows {
			rows[i] = rng.NormFloat64() * 2
		}
		x := make([]float64, d)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		// Route each kernel through the generic loop by hiding its
		// concrete type behind a wrapper.
		if got, want := Sum(&countingKernel{Epanechnikov: epan}, x, rows), epan.SumFlat(x, rows); got != want {
			t.Fatalf("d=%d epanechnikov: generic %v != concrete %v", d, got, want)
		}
		type hidden struct{ Kernel }
		if got, want := Sum(hidden{gauss}, x, rows), gauss.SumFlat(x, rows); got != want {
			t.Fatalf("d=%d gaussian: generic %v != concrete %v", d, got, want)
		}
	}
}

// Infinite-support kernels (the untruncated view) must never skip: a
// support radius of +Inf admits every finite distance.
func TestSumGenericInfiniteSupport(t *testing.T) {
	if math.Inf(1) <= 1e308 {
		t.Fatal("sanity")
	}
	gauss, err := NewGaussian([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	type hidden struct{ Kernel }
	rows := []float64{0, 1, 2, 30}
	got := Sum(hidden{gauss}, []float64{0}, rows)
	want := gauss.SumFlat([]float64{0}, rows)
	if got != want {
		t.Fatalf("generic %v != concrete %v", got, want)
	}
}
